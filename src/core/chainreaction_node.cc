#include "src/core/chainreaction_node.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/storage/checkpoint.h"
#include "src/common/result.h"

namespace chainreaction {

namespace {
constexpr size_t kCompletedReqCap = 8192;

// Recovery replay is a real I/O cost, measured on the wall clock (the node
// may not even have an Env attached yet when it recovers).
int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ChainReactionNode::ChainReactionNode(NodeId id, CrxConfig config, Ring initial_ring)
    : id_(id),
      config_(config),
      ring_(std::move(initial_ring)),
      reads_by_position_(config.replication, 0) {
  CHAINRX_CHECK(config_.k_stability >= 1 && config_.k_stability <= config_.replication);
  if (config_.dep_watermark) {
    store_.TrackStabilityFor(config_.local_dc);
  }
}

Status ChainReactionNode::SaveStateCheckpoint(const std::string& path) const {
  return SaveCheckpoint(store_, path);
}

Status ChainReactionNode::LoadStateCheckpoint(const std::string& path) {
  const Status status = LoadCheckpoint(path, &store_);
  if (!status.ok()) {
    return status;
  }
  RebuildRecoveredState();
  return Status::Ok();
}

void ChainReactionNode::RebuildRecoveredState() {
  // Rebuild the stability cache and unstable-head tracking from the store.
  // Metadata-only accessors keep this O(index) under a disk engine — the
  // scan never faults values in from the log.
  store_.ForEachKey([this](const Key& key, const StoredVersion& latest) {
    if (const StoredVersion* stable = store_.LatestStableMeta(key)) {
      stable_vv_[key].MergeMax(stable->version.vv);
    }
    if (store_.HasUnstable(key) && ring_.PositionOf(key, id_) == 1) {
      unstable_head_keys_.insert(key);
    }
    lamport_ = std::max(lamport_, latest.version.lamport);
  });
}

Status ChainReactionNode::EnsureEngine(const std::string& data_dir) {
  if (config_.engine != StorageEngineKind::kDisk ||
      store_.engine()->kind() == StorageEngineKind::kDisk) {
    return Status::Ok();
  }
  std::unique_ptr<StorageEngine> engine;
  DiskEngineOptions opts;
  opts.segment_bytes = config_.engine_segment_bytes;
  opts.compact_garbage_ratio = config_.engine_compact_garbage;
  const Status st = OpenDiskEngine(data_dir + "/vlog", opts, &engine);
  if (!st.ok()) {
    return st;
  }
  store_.AttachEngine(std::move(engine));
  store_.SetCacheBudget(config_.engine_cache_bytes);
  return Status::Ok();
}

Status ChainReactionNode::EnableDurability(const std::string& data_dir,
                                           const WalOptions& options) {
  data_dir_ = data_dir;
  const Status engine_status = EnsureEngine(data_dir);
  if (!engine_status.ok()) {
    return engine_status;
  }
  const Status status = Wal::Open(data_dir, options, &wal_);
  if (status.ok()) {
    wal_->SetRecorder(&events_);
    if (metrics_ != nullptr) {
      wal_->AttachObs(metrics_, std::to_string(id_));
    }
  }
  return status;
}

Status ChainReactionNode::RecoverFrom(const std::string& data_dir) {
  const int64_t start = WallMicros();
  const Status engine_status = EnsureEngine(data_dir);
  if (!engine_status.ok()) {
    return engine_status;
  }
  uint64_t wal_floor = 0;
  const Status ckpt = LoadCheckpoint(CheckpointPath(data_dir), &store_, &wal_floor);
  if (!ckpt.ok() && ckpt.code() != StatusCode::kNotFound) {
    return ckpt;
  }
  // Replay writes to the store directly: records are idempotent (exact
  // duplicate versions are absorbed), so overlap with the checkpoint or
  // with segments below the truncation floor is harmless.
  const Status replay = Wal::Replay(
      data_dir, wal_floor,
      [this](const WalRecord& record) {
        switch (record.type) {
          case WalRecordType::kApply:
            store_.Apply(record.key, record.value, record.version, record.deps);
            break;
          case WalRecordType::kStable:
            store_.MarkStable(record.key, record.version);
            break;
        }
      },
      &recovery_stats_);
  if (!replay.ok() && replay.code() != StatusCode::kNotFound) {
    return replay;
  }
  RebuildRecoveredState();
  recovery_replay_us_ = WallMicros() - start;
  events_.Emit(EventKind::kWalRecovery, WallMicros(),
               static_cast<int64_t>(recovery_stats_.records),
               static_cast<int64_t>(recovery_stats_.segments_replayed));
  if (metrics_ != nullptr) {
    const MetricLabels labels = {{"node", std::to_string(id_)}};
    metrics_->GetLatency("crx_wal_recovery_replay_us", labels)->Record(recovery_replay_us_);
    metrics_->GetCounter("crx_wal_recovery_records", labels)->Inc(recovery_stats_.records);
  }
  RefreshStoreGauges();
  return Status::Ok();
}

Status ChainReactionNode::CheckpointAndTruncate() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability not enabled");
  }
  // Rotate first: everything in segments below the new active one is
  // already applied, so the checkpoint taken now covers them. No messages
  // are processed between these steps (single-threaded actor).
  const uint64_t floor_seq = wal_->Rotate();
  const Status saved = SaveCheckpoint(store_, CheckpointPath(data_dir_), floor_seq);
  if (!saved.ok()) {
    return saved;
  }
  wal_->DeleteSegmentsBelow(floor_seq);
  // The durable checkpoint just written no longer references fully-dead
  // value-log segments, so they can go too (mirrors the WAL truncation).
  store_.PurgeEngineGarbage();
  RefreshStoreGauges();
  return Status::Ok();
}

void ChainReactionNode::CrashDurability() {
  if (wal_ != nullptr) {
    wal_->AbandonPending();
  }
}

bool ChainReactionNode::DurableApply(const Key& key, std::string_view value,
                                     const Version& version,
                                     std::span<const Dependency> deps) {
  // Write-ahead: the record hits the log before the store. Versions already
  // present (retries, repair re-propagation) are already logged.
  if (wal_ != nullptr && store_.FindMeta(key, version) == nullptr) {
    wal_->Append(WalRecord::Apply(key, Value(value), version, {deps.begin(), deps.end()}));
  }
  return store_.Apply(key, value, version, deps);
}

void ChainReactionNode::DurableMarkStable(const Key& key, const Version& version) {
  if (wal_ != nullptr) {
    const StoredVersion* sv = store_.FindMeta(key, version);
    if (sv == nullptr || !sv->stable) {
      wal_->Append(WalRecord::Stable(key, version));
    }
  }
  store_.MarkStable(key, version);
}

void ChainReactionNode::AttachEnv(Env* env) {
  env_ = env;
  if (config_.membership != 0 && config_.heartbeat_interval > 0) {
    SendHeartbeat();
  }
}

void ChainReactionNode::AttachObs(MetricsRegistry* metrics, TraceCollector* traces) {
  trace_sink_ = traces;
  metrics_ = metrics;
  if (metrics == nullptr) {
    return;
  }
  const std::string node = std::to_string(id_);
  if (wal_ != nullptr) {
    wal_->AttachObs(metrics, node);
  }
  const MetricLabels node_label = {{"node", node}};
  m_puts_head_ = metrics->GetCounter("crx_node_puts_applied", {{"node", node}, {"role", "head"}});
  m_puts_middle_ =
      metrics->GetCounter("crx_node_puts_applied", {{"node", node}, {"role", "middle"}});
  m_puts_tail_ = metrics->GetCounter("crx_node_puts_applied", {{"node", node}, {"role", "tail"}});
  m_reads_by_position_.assign(config_.replication, nullptr);
  for (uint32_t i = 0; i < config_.replication; ++i) {
    m_reads_by_position_[i] = metrics->GetCounter(
        "crx_node_reads_served", {{"node", node}, {"position", std::to_string(i + 1)}});
  }
  m_dep_checks_ = metrics->GetCounter("crx_node_dep_checks_sent", node_label);
  m_gets_forwarded_ = metrics->GetCounter("crx_node_gets_forwarded", node_label);
  m_gated_depth_ = metrics->GetGauge("crx_node_gated_puts", node_label);
  m_dep_wait_ = metrics->GetLatency("crx_node_dep_wait_us", node_label);
  m_ack_batched_ = metrics->GetCounter("crx_ack_batched", node_label);
  m_store_resident_versions_ = metrics->GetGauge("crx_store_resident_versions", node_label);
  m_store_resident_bytes_ = metrics->GetGauge("crx_store_resident_bytes", node_label);
  m_engine_log_bytes_ = metrics->GetGauge("crx_engine_log_bytes", node_label);
  m_engine_compactions_ = metrics->GetCounter("crx_engine_compactions_total", node_label);
  m_engine_cache_hit_ratio_ = metrics->GetGauge("crx_engine_cache_hit_ratio", node_label);
  m_mig_entries_out_ = metrics->GetCounter("crx_mig_entries_streamed", node_label);
  m_mig_entries_in_ = metrics->GetCounter("crx_mig_entries_applied", node_label);
  m_mig_source_active_ = metrics->GetGauge("crx_mig_source_active", node_label);
  m_mig_keys_pending_ = metrics->GetGauge("crx_mig_keys_pending", node_label);
  m_mig_inflow_sessions_ = metrics->GetGauge("crx_mig_inflow_sessions", node_label);
  m_chain_lag_ = metrics->GetGauge("crx_chain_lag_us", node_label);
  m_dep_stalls_ = metrics->GetCounter("crx_dep_stalls_total", node_label);
  RefreshStoreGauges();
}

void ChainReactionNode::RefreshStoreGauges() {
  if (m_store_resident_versions_ == nullptr) {
    return;
  }
  const StorageEngineStats es = store_.engine()->Stats();
  m_store_resident_versions_->Set(static_cast<int64_t>(store_.resident_versions()));
  m_store_resident_bytes_->Set(static_cast<int64_t>(store_.resident_bytes()));
  m_engine_log_bytes_->Set(static_cast<int64_t>(es.log_bytes));
  if (es.compactions > engine_compactions_published_) {
    m_engine_compactions_->Inc(es.compactions - engine_compactions_published_);
    engine_compactions_published_ = es.compactions;
  }
  // Hit ratio as an integer percentage (gauges are int64).
  const uint64_t lookups = store_.cache_hits() + store_.cache_misses();
  if (lookups > 0) {
    m_engine_cache_hit_ratio_->Set(
        static_cast<int64_t>(store_.cache_hits() * 100 / lookups));
  }
}

void ChainReactionNode::SendHeartbeat() {
  MemHeartbeat hb;
  hb.node = id_;
  env_->Send(config_.membership, EncodeMessage(hb));
  env_->Schedule(config_.heartbeat_interval, [this]() { SendHeartbeat(); });
}

uint64_t ChainReactionNode::NextLamport() {
  lamport_ = std::max(lamport_ + 1, static_cast<uint64_t>(env_->Now()));
  return lamport_;
}

void ChainReactionNode::OnMessage(Address from, std::string_view payload) {
  // One message, one arena epoch: by the arena's lifetime rule nothing
  // handed out while processing the previous message is still referenced.
  arena_.Reset();
  switch (PeekType(payload)) {
    // The three hot types decode into views aliasing `payload` — zero
    // copies of key/value bytes until the store takes its single owned
    // copy. `payload` outlives the handler call (transport contract), and
    // the views never escape it (parking goes through ToOwned()).
    case MsgType::kCrxPut: {
      CrxPutView m;
      bool ok;
      {
        AllocPhaseScope phase(AllocPhase::kDecode);
        ok = DecodeMessage(payload, &m);
      }
      if (ok) {
        AllocPhaseScope phase(AllocPhase::kApply);
        HandlePut(m);
      }
      break;
    }
    case MsgType::kCrxChainPut: {
      CrxChainPutView m;
      bool ok;
      {
        AllocPhaseScope phase(AllocPhase::kDecode);
        ok = DecodeMessage(payload, &m);
      }
      if (ok) {
        AllocPhaseScope phase(AllocPhase::kApply);
        HandleChainPut(m, from);
      }
      break;
    }
    case MsgType::kCrxGet: {
      CrxGetView m;
      bool ok;
      {
        AllocPhaseScope phase(AllocPhase::kDecode);
        ok = DecodeMessage(payload, &m);
      }
      if (ok) {
        AllocPhaseScope phase(AllocPhase::kApply);
        HandleGet(m, from);
      }
      break;
    }
    case MsgType::kCrxStableNotify: {
      CrxStableNotify m;
      if (DecodeMessage(payload, &m)) {
        HandleStableNotify(m, from);
      }
      break;
    }
    case MsgType::kCrxStabilityCheck: {
      CrxStabilityCheck m;
      if (DecodeMessage(payload, &m)) {
        HandleStabilityCheck(m, from);
      }
      break;
    }
    case MsgType::kCrxStabilityConfirm: {
      CrxStabilityConfirm m;
      if (DecodeMessage(payload, &m)) {
        HandleStabilityConfirm(m);
      }
      break;
    }
    case MsgType::kCrxWatermark: {
      CrxWatermark m;
      if (DecodeMessage(payload, &m)) {
        HandleWatermark(m);
      }
      break;
    }
    case MsgType::kGeoRemotePut: {
      GeoRemotePut m;
      if (DecodeMessage(payload, &m)) {
        HandleRemotePut(std::move(m));
      }
      break;
    }
    case MsgType::kGeoLocalStableAck: {
      GeoLocalStableAck m;
      if (DecodeMessage(payload, &m)) {
        HandleGeoNotifyAck(m);
      }
      break;
    }
    case MsgType::kMemNewMembership: {
      MemNewMembership m;
      if (DecodeMessage(payload, &m)) {
        HandleNewMembership(m);
      }
      break;
    }
    case MsgType::kMemSyncKey: {
      MemSyncKey m;
      if (DecodeMessage(payload, &m)) {
        HandleSyncKey(m);
      }
      break;
    }
    case MsgType::kMemSyncDone: {
      MemSyncDone m;
      if (DecodeMessage(payload, &m)) {
        HandleSyncDone(m);
      }
      break;
    }
    case MsgType::kMigSnapshotRequest: {
      MigSnapshotRequest m;
      if (DecodeMessage(payload, &m)) {
        HandleMigSnapshotRequest(m);
      }
      break;
    }
    case MsgType::kMigKeyBatch: {
      MigKeyBatch m;
      if (DecodeMessage(payload, &m)) {
        HandleMigKeyBatch(m);
      }
      break;
    }
    case MsgType::kMigAbort: {
      MigAbort m;
      if (DecodeMessage(payload, &m)) {
        HandleMigAbort(m);
      }
      break;
    }
    default:
      LOG_WARN("node %u: unexpected message type %u", id_,
               static_cast<unsigned>(PeekType(payload)));
  }
}

bool ChainReactionNode::DepTriviallyStable(const Key& write_key, const Dependency& dep) const {
  if (dep.version.IsNull()) {
    return true;
  }
  // The client library only marks a dependency local_stable after a node of
  // the dependency's chain reported the version DC-Write-Stable; such deps
  // are carried for geo shipping but need no gating here.
  if (dep.local_stable) {
    return true;
  }
  // A dependency on an older version of the same key needs no wait: the
  // chain applies versions of one key in order, so any node holding the
  // new version holds (or has superseded) the dependency. Note this must
  // NOT be widened to "same chain": a reader of the new value may read a
  // *different* key of that chain at any position once it reports stable,
  // but the prefix property only covers positions up to the one read.
  if (dep.key == write_key) {
    return true;
  }
  // Watermark coverage: every local-origin version at or below the cluster
  // watermark W is DC-Write-Stable on every replica (DESIGN.md §14), so no
  // remote stability check is needed. This also releases deps a stale-ring
  // client could not compress away itself.
  if (config_.dep_watermark && dep.version.origin == config_.local_dc &&
      dep.version.lamport <= ClusterWatermark()) {
    return true;
  }
  auto it = stable_vv_.find(dep.key);
  return it != stable_vv_.end() && it->second.Dominates(dep.version.vv);
}

bool ChainReactionNode::DepStableHere(const Key& key, const Version& v) const {
  auto it = stable_vv_.find(key);
  if (it != stable_vv_.end() && it->second.Dominates(v.vv)) {
    return true;
  }
  const StoredVersion* latest_stable = store_.LatestStableMeta(key);
  return latest_stable != nullptr && v.LwwLess(latest_stable->version);
}

bool ChainReactionNode::ReadSatisfies(const Key& key, const Version& v) const {
  if (v.IsNull() || store_.HasAtLeast(key, v)) {
    return true;
  }
  const StoredVersion* latest = store_.LatestMeta(key);
  return latest != nullptr && v.LwwLess(latest->version);
}

void ChainReactionNode::HandlePut(CrxPutView& put) {
  // The one Key materialization for this put (SSO covers typical keys, so
  // even this usually costs no allocation).
  const Key key(put.key);
  // A client with a stale ring may address the wrong node; route onward.
  if (ring_.PositionOf(key, id_) != 1) {
    env_->Send(ring_.HeadFor(key), Enc(put));
    return;
  }

  if (config_.dep_watermark) {
    // A client's watermark hint is a W some node already computed for this
    // epoch — a valid floor for our own (W only grows within an epoch).
    if (put.wm_epoch == ring_.epoch() && put.dep_wm > wm_client_hint_) {
      wm_client_hint_ = put.dep_wm;
    }
    NudgeWatermarkGossip();
  }

  // Arrival hop: the boundary between client->head transit and head
  // processing on the critical path. Retries and rejoin re-drives re-enter
  // here with a later timestamp; the assembler keeps the earliest.
  TraceHopAndReport(&put.trace, trace_sink_, HopKind::kHeadRecv, id_, config_.local_dc,
                    static_cast<uint32_t>(put.deps.size()), env_->Now());

  // This node's store may be missing the newest versions of the key: it
  // either just rejoined after a crash-restart (rejoin_until_), or it just
  // became the key's head at an epoch change (IsJoinGuarded — e.g. the ring
  // successor absorbing a crashed head's slot). Assigning from a stale
  // per-key vv would fork the version order, so park puts until the repair
  // syncs land.
  if (env_->Now() < rejoin_until_ || IsJoinGuarded(key)) {
    rejoin_buffered_puts_.push_back(put.ToOwned());
    events_.Emit(EventKind::kPutParked, env_->Now(), static_cast<int64_t>(Fnv1a64(key)),
                 static_cast<int64_t>(rejoin_buffered_puts_.size()));
    return;
  }

  // Retry dedup: the version was already assigned; re-propagate it so the
  // ack (and stabilization) is regenerated, but do not assign a new version.
  auto seen = completed_reqs_.find({put.client, put.req});
  if (seen != completed_reqs_.end()) {
    const StoredVersion* sv = store_.Find(key, seen->second);
    if (sv != nullptr) {
      // Copy the value out first: re-propagation may stabilize the entry
      // and trigger store GC, which can relocate the vector element a view
      // of sv->value would dangle into.
      const Value value_copy = sv->value;
      ApplyVersion(key, value_copy, sv->version, put.client, put.req,
                   config_.k_stability, put.deps, /*chain_seq=*/0, put.trace);
      return;
    }
  }

  // A timed-out client may retry while the original is still parked:
  // re-probe the unconfirmed dependencies (confirm messages may have been
  // lost) instead of parking — or worse, applying — a second copy. This
  // check must precede the gating shortcut below, or a retry whose deps
  // have stabilized in the meantime would assign a second version and
  // orphan the parked original.
  if (auto dup = gated_reqs_.find({put.client, put.req}); dup != gated_reqs_.end()) {
    auto parked_it = gated_puts_.find(dup->second);
    if (parked_it != gated_puts_.end()) {
      for (const Dependency& dep : parked_it->second.pending_deps) {
        CrxStabilityCheck check;
        check.key = dep.key;
        check.version = dep.version;
        check.token = dup->second;
        dep_checks_sent_++;
        if (m_dep_checks_ != nullptr) {
          m_dep_checks_->Inc();
        }
        env_->Send(ring_.TailFor(dep.key), Enc(check));
      }
    }
    return;
  }

  // Gate on dependency stability (Section 3.2 of DESIGN.md): every
  // dependency must be DC-Write-Stable before this write becomes visible.
  // Gathered in per-message arena scratch — the common all-stable case
  // abandons it for free at the next OnMessage.
  ArenaVector<const Dependency*> pending{ArenaAllocator<const Dependency*>(&arena_)};
  if (!config_.disable_dependency_gating) {
    for (const Dependency& dep : put.deps) {
      if (!DepTriviallyStable(key, dep)) {
        pending.push_back(&dep);
      }
    }
  }
  if (pending.empty()) {
    ApplyAndPropagate(put);
    return;
  }

  const uint64_t token = next_token_++;
  gated_reqs_cache_.Claim(gated_reqs_, {put.client, put.req}).first->second = token;
  PendingPut& parked = gated_puts_cache_.Claim(gated_puts_, token).first->second;
  // Park field-by-field into the (possibly recycled) slot instead of
  // building a fresh owned CrxPut: the previous occupant's string and
  // vector capacities absorb the copies. Every field is assigned — a
  // recycled node keeps its old contents otherwise.
  parked.put.req = put.req;
  parked.put.client = put.client;
  parked.put.key.assign(put.key);
  parked.put.value.assign(put.value);
  parked.put.deps.assign(put.deps.begin(), put.deps.end());
  parked.put.trace = put.trace;
  parked.put.wm_epoch = put.wm_epoch;
  parked.put.dep_wm = put.dep_wm;
  parked.pending_deps.clear();
  parked.pending_deps.reserve(pending.size());
  for (const Dependency* dep : pending) {
    parked.pending_deps.push_back(*dep);
  }
  parked.parked_at = env_->Now();
  dep_waits_++;
  TraceHopAndReport(&parked.put.trace, trace_sink_, HopKind::kHeadGated, id_, config_.local_dc,
                    static_cast<uint32_t>(pending.size()), env_->Now());
  if (m_gated_depth_ != nullptr) {
    m_gated_depth_->Set(static_cast<int64_t>(gated_puts_.size()));
  }
  for (const Dependency& dep : parked.pending_deps) {
    CrxStabilityCheck check;
    check.key = dep.key;
    check.version = dep.version;
    check.token = token;
    dep_checks_sent_++;
    if (m_dep_checks_ != nullptr) {
      m_dep_checks_->Inc();
    }
    env_->Send(ring_.TailFor(dep.key), Enc(check));
  }
}

void ChainReactionNode::HandleStabilityConfirm(const CrxStabilityConfirm& msg) {
  auto it = gated_puts_.find(msg.token);
  if (it == gated_puts_.end()) {
    return;
  }
  auto& pending = it->second.pending_deps;
  const size_t before = pending.size();
  // The dependency this confirm releases — if it empties the pending set,
  // it is the write's LAST blocker and names the critical-path dep-wait.
  Dependency blocker;
  for (const Dependency& d : pending) {
    if (d.key == msg.key) {
      blocker = d;
      break;
    }
  }
  std::erase_if(pending, [&msg](const Dependency& d) { return d.key == msg.key; });
  if (pending.size() == before || !pending.empty()) {
    return;  // duplicate confirm, or more dependencies outstanding
  }
  const Duration waited = env_->Now() - it->second.parked_at;
  dep_wait_total_us_ += static_cast<uint64_t>(waited);
  dep_wait_hist_.Record(waited);
  if (m_dep_wait_ != nullptr) {
    m_dep_wait_->Record(waited);
  }
  CrxPut put = std::move(it->second.put);
  gated_puts_cache_.Erase(gated_puts_, it);
  gated_reqs_cache_.Erase(gated_reqs_, {put.client, put.req});
  if (m_gated_depth_ != nullptr) {
    m_gated_depth_->Set(static_cast<int64_t>(gated_puts_.size()));
  }

  // Critical-path attribution: close the dep-wait segment and name the
  // blocking dependency — key hash on the hop, full key/version/chain in a
  // collector note (notes never ride the wire).
  if (put.trace.active()) {
    const uint32_t waited_clamped = static_cast<uint32_t>(
        std::min<Duration>(waited, std::numeric_limits<uint32_t>::max()));
    TraceHopAndReport(&put.trace, trace_sink_, HopKind::kDepUnblocked, id_, config_.local_dc,
                      waited_clamped, env_->Now(), Fnv1a64(blocker.key));
    if (trace_sink_ != nullptr) {
      trace_sink_->AnnotateNote(
          put.trace.id, "blocked_by key=" + blocker.key +
                            " version=" + blocker.version.ToString() + " chain=" +
                            std::to_string(ring_.HeadFor(blocker.key)) + "->" +
                            std::to_string(ring_.TailFor(blocker.key)));
    }
  }

  // Stall watchdog: a dep-wait far beyond the typical head->tail
  // stabilization lag means the blocking chain is stuck (lost notify,
  // partitioned tail), not merely busy — flag it with the offender.
  if (config_.stall_depwait_multiple > 0 && chain_lag_ewma_us_ > 0 &&
      static_cast<double>(waited) >
          config_.stall_depwait_multiple * static_cast<double>(chain_lag_ewma_us_)) {
    events_.Emit(EventKind::kDepStall, env_->Now(),
                 static_cast<int64_t>(Fnv1a64(blocker.key)), static_cast<int64_t>(waited));
    if (m_dep_stalls_ != nullptr) {
      m_dep_stalls_->Inc();
    }
  }
  // Re-enter the view-based pipeline over the owned parked copy (it
  // outlives both calls below).
  CrxPutView view = CrxPutView::From(put);
  if (ring_.PositionOf(put.key, id_) != 1 || env_->Now() < rejoin_until_ ||
      IsJoinGuarded(put.key)) {
    // An epoch change while the put was gated moved the key's head away from
    // this node (or guarded it): minting here would assign a version the new
    // head never sees and propagate it past the chain prefix. Re-dispatch so
    // the put is forwarded (or parked) like any fresh arrival.
    events_.Emit(EventKind::kGatedRedispatch, env_->Now(),
                 static_cast<int64_t>(Fnv1a64(put.key)),
                 static_cast<int64_t>(ring_.epoch()));
    HandlePut(view);
    return;
  }
  ApplyAndPropagate(view);
}

void ChainReactionNode::ApplyAndPropagate(CrxPutView& put) {
  const Key key(put.key);
  Version version;
  if (const VersionVector* applied = store_.AppliedVv(key)) {
    version.vv = *applied;
  } else {
    version.vv = VersionVector(config_.num_dcs);
  }
  version.vv.Increment(config_.local_dc);
  version.lamport = NextLamport();
  version.origin = config_.local_dc;

  // At the FIFO cap (steady state) every put both inserts and evicts one
  // dedup entry; the recycled node makes that churn allocation-free.
  completed_cache_.Claim(completed_reqs_, {put.client, put.req}).first->second = version;
  completed_order_.push_back({put.client, put.req});
  while (completed_order_.size() > kCompletedReqCap) {
    completed_cache_.Erase(completed_reqs_, completed_order_.front());
    completed_order_.pop_front();
  }

  ApplyVersion(key, put.value, version, put.client, put.req, config_.k_stability,
               put.deps, /*chain_seq=*/0, std::move(put.trace));
}

bool ChainReactionNode::ApplyVersion(const Key& key, std::string_view value,
                                     const Version& version, Address client, RequestId req,
                                     ChainIndex ack_at, std::span<const Dependency> deps,
                                     uint64_t chain_seq, TraceContext trace) {
  const bool applied = DurableApply(key, value, version, deps);  // store keeps its own copy
  if (applied) {
    writes_applied_++;
    lamport_ = std::max(lamport_, version.lamport);
    ResolveDeferredGets(key);
    ResolveWatchers(key);
    if ((writes_applied_ & 0xFF) == 0) {
      RefreshStoreGauges();
    }
  }

  const ChainIndex pos = ring_.PositionOf(key, id_);
  if (pos == 0) {
    return applied;  // no longer a replica of this key (stale traffic)
  }

  // Migration catch-up mirror: while a planned transfer is active, the head
  // forwards every applied write to the key's future replicas so the bulk
  // snapshot stays current until the epoch flips. Before the value is moved
  // down-chain below.
  if (applied && pos == 1 && mig_src_ != nullptr) {
    MirrorMigrationEntry(key, /*has_value=*/true, value, version, /*stable=*/false, deps);
    // Timeline overlap marker: this write was applied while a planned
    // migration was live at the head (E18 analysis pairs these with the
    // crx_mig_* gauges to attribute migration-window latency).
    TraceHopAndReport(&trace, trace_sink_, HopKind::kMigPhase, id_, config_.local_dc,
                      static_cast<uint32_t>(mig_src_->pending.size() - mig_src_->cursor),
                      env_->Now(), mig_src_->migration_id);
  }

  // Annotate only newly applied versions so retries and anti-entropy
  // re-propagation do not duplicate hops (the collector dedups exact
  // re-reports anyway, but a retry would carry a distinct timestamp).
  if (applied && trace.active()) {
    TraceHopAndReport(&trace, trace_sink_,
                      pos == 1 ? HopKind::kHeadApply : HopKind::kChainApply, id_,
                      config_.local_dc, pos, env_->Now());
  }
  if (applied) {
    Counter* role = pos == 1 ? m_puts_head_
                             : (pos == config_.replication ? m_puts_tail_ : m_puts_middle_);
    if (role != nullptr) {
      role->Inc();
    }
  }

  if (pos == 1 && config_.replication > 1 && applied) {
    TrackUnstableHead(key);
  }

  if (ack_at != 0 && pos == ack_at && client != 0) {
    CrxPutAck ack;
    ack.req = req;
    ack.key = key;
    ack.version = version;
    ack.acked_at = pos;
    if (config_.dep_watermark) {
      ack.wm_epoch = ring_.epoch();
      ack.stable_wm = ClusterWatermark();
    }
    ack.trace = trace;
    TraceHopAndReport(&ack.trace, trace_sink_, HopKind::kKAck, id_, config_.local_dc, pos,
                      env_->Now());
    SendClientAck(std::move(ack), client, chain_seq);
  }

  if (pos == config_.replication) {
    StabilizeAtTail(key, version, deps, version.origin == config_.local_dc, value,
                    std::move(trace));
  } else {
    const NodeId succ = ring_.SuccessorFor(key, id_);
    // Down-chain forward assembled as a view: key/value bytes flow from the
    // inbound frame (or the store) straight into the encoder — the frame is
    // encoded exactly once per link and the payload is never rematerialized.
    CrxChainPutView fwd;
    fwd.key = key;
    fwd.value = value;
    fwd.version = version;
    fwd.client = client;
    fwd.req = req;
    fwd.ack_at = ack_at;
    fwd.epoch = ring_.epoch();
    fwd.chain_seq = ++next_chain_seq_[succ];
    // Every replica stores the dependency list: the tail ships it to the
    // geo replicator, and any replica serves it to multi-get read
    // transactions.
    fwd.deps.assign(deps.begin(), deps.end());
    if (config_.dep_watermark) {
      fwd.stable_cut = StableCut();
    }
    fwd.trace = std::move(trace);
    env_->Send(succ, Enc(fwd));
  }
  return applied;
}

void ChainReactionNode::SendClientAck(CrxPutAck ack, Address client, uint64_t chain_seq) {
  if (config_.ack_batch_window <= 0) {
    env_->Send(client, Enc(ack));
    return;
  }
  // The per-client entry is permanent (bounded by the client population):
  // each flush clears the ack vector but keeps its capacity, so a window's
  // worth of acks accumulates without reallocating every window.
  PendingAckBatch& entry = pending_client_acks_[client];
  entry.batch.up_to_seq = std::max(entry.batch.up_to_seq, chain_seq);
  entry.batch.acks.push_back(std::move(ack));
  if (m_ack_batched_ != nullptr) {
    m_ack_batched_->Inc();
  }
  if (!entry.armed) {
    entry.armed = true;
    env_->Schedule(config_.ack_batch_window, [this, client]() { FlushClientAcks(client); });
  }
}

void ChainReactionNode::FlushClientAcks(Address client) {
  auto it = pending_client_acks_.find(client);
  if (it == pending_client_acks_.end()) {
    return;
  }
  PendingAckBatch& entry = it->second;
  entry.armed = false;
  if (entry.batch.acks.empty()) {
    return;
  }
  env_->Send(client, Enc(entry.batch));
  entry.batch.acks.clear();
  entry.batch.up_to_seq = 0;  // next window reports only its own max
}

void ChainReactionNode::HandleChainPut(CrxChainPutView& msg, Address from) {
  if (config_.dep_watermark) {
    // Chain puts come from a peer node (predecessor, repairing head, or
    // migration-era mirror) — learn its piggybacked stable cut.
    if (from < kClientAddressBase && msg.stable_cut > 0) {
      LearnPeerCut(static_cast<NodeId>(from), msg.epoch, msg.stable_cut);
    }
    NudgeWatermarkGossip();
  }
  if (msg.epoch != ring_.epoch()) {
    // A reconfiguration happened while this write was in flight; the new
    // head re-propagates all unstable writes under the new epoch.
    return;
  }
  const Key key(msg.key);
  const ChainIndex pos = ring_.PositionOf(key, id_);
  if (pos == 0) {
    return;
  }
  // Arrival hop splits this link into transit (previous apply -> here) and
  // process (here -> this apply). Only for the first delivery — anti-entropy
  // re-propagation of an already-applied version is not the link's transit.
  if (msg.trace.active() && store_.FindMeta(key, msg.version) == nullptr) {
    TraceHopAndReport(&msg.trace, trace_sink_, HopKind::kChainRecv, id_, config_.local_dc,
                      pos, env_->Now(), msg.chain_seq);
  }
  ApplyVersion(key, msg.value, msg.version, msg.client, msg.req, msg.ack_at,
               msg.deps, msg.chain_seq, std::move(msg.trace));
}

void ChainReactionNode::StabilizeAtTail(const Key& key, const Version& version,
                                        std::span<const Dependency> deps,
                                        bool has_local_payload, std::string_view value,
                                        TraceContext trace) {
  DurableMarkStable(key, version);
  stable_vv_[key].MergeMax(version.vv);
  ResolveWatchers(key);
  ResolveUnstableHead(key);
  TraceHopAndReport(&trace, trace_sink_, HopKind::kTailStable, id_, config_.local_dc,
                    config_.replication, env_->Now());
  if (mig_src_ != nullptr && config_.replication == 1) {
    // Single-node chains: the head IS the tail, so the backward notify that
    // would mirror the stability mark never happens — mirror it here.
    MirrorMigrationEntry(key, /*has_value=*/false, {}, version, /*stable=*/true, {});
  }

  if (config_.replication > 1) {
    if (config_.stable_notify_delay <= 0) {
      CrxStableNotify notify;
      notify.key = key;
      notify.version = version;
      notify.epoch = ring_.epoch();
      if (config_.dep_watermark) {
        notify.stable_cut = StableCut();
      }
      const NodeId pred = ring_.PredecessorFor(key, id_);
      if (pred != kInvalidNode) {
        env_->Send(pred, Enc(notify));
      }
    } else {
      // Coalesce: remember the newest stable version per key and notify
      // once per delay window. On hot keys this collapses a per-write
      // backward wave into one message (stability is prefix-closed, so
      // notifying the newest version covers all older ones).
      // The merged (possibly synthetic) version dominates every version
      // stabilized in the window — including mutually concurrent geo
      // versions — so one message marks them all stable upstream.
      auto [it, inserted] = pending_notify_cache_.Claim(pending_notify_, key);
      if (inserted) {
        it->second = version;  // recycled nodes keep the old version; overwrite
        ScheduleStableNotify(key);
      } else {
        it->second.vv.MergeMax(version.vv);
        it->second.lamport = std::max(it->second.lamport, version.lamport);
      }
    }
  }

  if (config_.geo_replicator != 0) {
    GeoLocalStable msg;
    msg.key = key;
    msg.version = version;
    msg.has_payload = has_local_payload;
    if (has_local_payload) {
      msg.value = Value(value);
      msg.deps.assign(deps.begin(), deps.end());
    }
    msg.trace = std::move(trace);
    SendGeoNotify(msg);
  }
}

void ChainReactionNode::SendGeoNotify(const GeoLocalStable& msg) {
  ByteWriter w;
  w.PutString(msg.key);
  msg.version.Encode(&w);
  // Encode exactly once; the first send and every retry share the frame.
  Payload frame = Payload::Shared(EncodeMessage(msg));
  env_->Send(config_.geo_replicator, frame);
  pending_geo_notify_[w.Take()] = std::move(frame);
  ArmGeoNotifyRetry();
}

void ChainReactionNode::HandleGeoNotifyAck(const GeoLocalStableAck& msg) {
  ByteWriter w;
  w.PutString(msg.key);
  msg.version.Encode(&w);
  pending_geo_notify_.erase(w.data());
  if (pending_geo_notify_.empty() && geo_notify_timer_ != 0) {
    env_->CancelTimer(geo_notify_timer_);
    geo_notify_timer_ = 0;
  }
}

void ChainReactionNode::ArmGeoNotifyRetry() {
  if (geo_notify_timer_ != 0 || config_.anti_entropy_interval <= 0 ||
      pending_geo_notify_.empty()) {
    return;
  }
  geo_notify_timer_ = env_->Schedule(config_.anti_entropy_interval, [this]() {
    geo_notify_timer_ = 0;
    for (const auto& [vk, frame] : pending_geo_notify_) {
      env_->Send(config_.geo_replicator, frame);
    }
    ArmGeoNotifyRetry();
  });
}

void ChainReactionNode::ScheduleStableNotify(const Key& key) {
  // One timer per pending key, exactly like a per-key closure would fire —
  // but the closure captures only `this` (inside std::function's inline
  // buffer), and the key rides a FIFO instead: the delay is constant, so
  // timers fire in arming order and each firing flushes the oldest key.
  notify_fifo_.push_back(key);
  env_->Schedule(config_.stable_notify_delay, [this]() { FlushStableNotify(); });
}

void ChainReactionNode::FlushStableNotify() {
  if (notify_fifo_.empty()) {
    return;
  }
  const Key key = std::move(notify_fifo_.front());
  notify_fifo_.pop_front();
  auto pit = pending_notify_.find(key);
  if (pit == pending_notify_.end()) {
    return;
  }
  CrxStableNotify notify;
  notify.key = key;
  notify.version = pit->second;
  notify.epoch = ring_.epoch();
  if (config_.dep_watermark) {
    notify.stable_cut = StableCut();
  }
  pending_notify_cache_.Erase(pending_notify_, pit);
  const NodeId pred = ring_.PredecessorFor(key, id_);
  if (pred != kInvalidNode) {
    env_->Send(pred, Enc(notify));
  }
}

void ChainReactionNode::HandleStableNotify(const CrxStableNotify& msg, Address from) {
  if (config_.dep_watermark) {
    if (from < kClientAddressBase && msg.stable_cut > 0) {
      LearnPeerCut(static_cast<NodeId>(from), msg.epoch, msg.stable_cut);
    }
    NudgeWatermarkGossip();
  }
  DurableMarkStable(msg.key, msg.version);
  stable_vv_[msg.key].MergeMax(msg.version.vv);
  ResolveWatchers(msg.key);
  ResolveUnstableHead(msg.key);

  const ChainIndex pos = ring_.PositionOf(msg.key, id_);
  if (pos == 1 && mig_src_ != nullptr) {
    // Mirror the stability mark to the key's future replicas so they can
    // serve dependency checks and geo shipping right after cutover.
    MirrorMigrationEntry(msg.key, /*has_value=*/false, {}, msg.version,
                         /*stable=*/true, {});
  }
  if (pos > 1) {
    const NodeId pred = ring_.PredecessorFor(msg.key, id_);
    if (pred != kInvalidNode) {
      CrxStableNotify fwd = msg;
      if (config_.dep_watermark) {
        // Restamp: the receiver attributes the piggybacked cut to us.
        fwd.stable_cut = StableCut();
      }
      env_->Send(pred, Enc(fwd));
    }
  }
}

void ChainReactionNode::HandleStabilityCheck(const CrxStabilityCheck& msg, Address from) {
  if (DepStableHere(msg.key, msg.version)) {
    CrxStabilityConfirm confirm;
    confirm.token = msg.token;
    confirm.key = msg.key;
    env_->Send(from, Enc(confirm));
    return;
  }
  watchers_[msg.key].push_back(StabilityWatcher{msg.version, msg.token, from});
}

void ChainReactionNode::ResolveWatchers(const Key& key) {
  auto wit = watchers_.find(key);
  if (wit == watchers_.end()) {
    return;
  }
  auto& list = wit->second;
  for (size_t i = 0; i < list.size();) {
    if (DepStableHere(key, list[i].version)) {
      CrxStabilityConfirm confirm;
      confirm.token = list[i].token;
      confirm.key = key;
      env_->Send(list[i].reply_to, Enc(confirm));
      list[i] = list.back();
      list.pop_back();
    } else {
      ++i;
    }
  }
  if (list.empty()) {
    watchers_.erase(wit);
  }
}

void ChainReactionNode::HandleGet(const CrxGetView& get, Address /*from*/) {
  const Key key(get.key);
  const ChainIndex pos = ring_.PositionOf(key, id_);
  if (pos == 0) {
    // Stale client ring: route to the current head.
    gets_forwarded_++;
    if (m_gets_forwarded_ != nullptr) {
      m_gets_forwarded_->Inc();
    }
    env_->Send(ring_.HeadFor(key), Enc(get));
    return;
  }

  // This node just joined the key's chain (crash-recovery rejoin, or the
  // ring successor absorbing a failed node's chain slot): its store may
  // miss versions that are causally visible through *other* keys — the
  // all-replica stability invariant is broken until the repair sync lands,
  // and the client's per-key min_version cannot express such transitive
  // dependencies. Serve from an established replica instead: escalate
  // toward the predecessor, or — at the head — park the read until the
  // guard window closes.
  if (IsJoinGuarded(key)) {
    if (pos > 1) {
      gets_forwarded_++;
      if (m_gets_forwarded_ != nullptr) {
        m_gets_forwarded_->Inc();
      }
      env_->Send(ring_.PredecessorFor(key, id_), Enc(get));
    } else {
      join_guarded_gets_.push_back(get.ToOwned());
      events_.Emit(EventKind::kGetParked, env_->Now(), static_cast<int64_t>(Fnv1a64(key)),
                   static_cast<int64_t>(join_guarded_gets_.size()));
    }
    return;
  }

  if (!ReadSatisfies(key, get.min_version)) {
    if (pos > 1) {
      // This replica is behind the client's causal past (possible briefly
      // during chain repair); escalate toward the head, which applies
      // writes first.
      gets_forwarded_++;
      if (m_gets_forwarded_ != nullptr) {
        m_gets_forwarded_->Inc();
      }
      env_->Send(ring_.PredecessorFor(key, id_), Enc(get));
      return;
    }
    // Even the head is behind: the required version is still in flight
    // (e.g. a remote update). Defer until it lands.
    DeferredGet deferred;
    deferred.get = get.ToOwned();
    const RequestId req = get.req;
    deferred.timeout_timer = env_->Schedule(config_.deferred_read_timeout, [this, key, req]() {
      auto it = deferred_gets_.find(key);
      if (it == deferred_gets_.end()) {
        return;
      }
      auto& list = it->second;
      for (size_t i = 0; i < list.size(); ++i) {
        if (list[i].get.req == req) {
          CrxGet g = std::move(list[i].get);
          if (i + 1 != list.size()) {
            list[i] = std::move(list.back());
          }
          list.pop_back();
          AnswerGet(CrxGetView::From(g), ring_.PositionOf(g.key, id_));
          break;
        }
      }
      if (list.empty()) {
        deferred_gets_.erase(key);
      }
    });
    deferred_gets_[key].push_back(std::move(deferred));
    return;
  }

  AnswerGet(get, pos);
}

void ChainReactionNode::AnswerGet(const CrxGetView& get, ChainIndex position) {
  const Key key(get.key);
  // Reply assembled as a view: the answered value aliases the store entry,
  // which stays untouched until Enc() below copies it into the frame.
  CrxGetReplyView reply;
  reply.req = get.req;
  reply.key = get.key;
  reply.position = position;
  if (const StoredVersion* sv = store_.Latest(key)) {
    reply.found = true;
    reply.value = sv->value;
    reply.version = sv->version;
    reply.stable = sv->stable;
    if (get.with_deps) {
      reply.deps.assign(sv->deps.begin(), sv->deps.end());
    }
  }
  if (config_.dep_watermark) {
    reply.wm_epoch = ring_.epoch();
    reply.stable_wm = ClusterWatermark();
    NudgeWatermarkGossip();
  }
  reads_served_++;
  if (position >= 1 && position <= reads_by_position_.size()) {
    reads_by_position_[position - 1]++;
    if (position <= m_reads_by_position_.size() && m_reads_by_position_[position - 1] != nullptr) {
      m_reads_by_position_[position - 1]->Inc();
    }
  }
  env_->Send(get.client, Enc(reply));
}

void ChainReactionNode::ResolveDeferredGets(const Key& key) {
  auto it = deferred_gets_.find(key);
  if (it == deferred_gets_.end()) {
    return;
  }
  auto& list = it->second;
  for (size_t i = 0; i < list.size();) {
    if (ReadSatisfies(key, list[i].get.min_version)) {
      env_->CancelTimer(list[i].timeout_timer);
      CrxGet g = std::move(list[i].get);
      if (i + 1 != list.size()) {
        list[i] = std::move(list.back());
      }
      list.pop_back();
      AnswerGet(CrxGetView::From(g), ring_.PositionOf(g.key, id_));
    } else {
      ++i;
    }
  }
  if (list.empty()) {
    deferred_gets_.erase(it);
  }
}

void ChainReactionNode::TrackUnstableHead(const Key& key) {
  // Every head put lands here and the stabilization notify erases it a few
  // ms later — recycled nodes keep this churn allocation-free.
  unstable_keys_cache_.Insert(unstable_head_keys_, key);
  auto [sit, fresh] = unstable_since_cache_.Claim(unstable_since_, key);
  if (fresh) {
    sit->second = env_->Now();
  }
  ArmAntiEntropy();
}

void ChainReactionNode::ResolveUnstableHead(const Key& key) {
  auto it = unstable_head_keys_.find(key);
  if (it == unstable_head_keys_.end()) {
    return;
  }
  if (store_.HasUnstable(key)) {
    return;
  }
  unstable_keys_cache_.Erase(unstable_head_keys_, it);
  // Head->tail stabilization lag sample for this key, folded into the EWMA
  // the dep-stall watchdog compares against (alpha = 1/8).
  if (auto since = unstable_since_.find(key); since != unstable_since_.end()) {
    const int64_t lag = static_cast<int64_t>(env_->Now() - since->second);
    unstable_since_cache_.Erase(unstable_since_, since);
    if (lag >= 0) {
      chain_lag_ewma_us_ = chain_lag_ewma_us_ == 0 ? lag : (7 * chain_lag_ewma_us_ + lag) / 8;
      if (m_chain_lag_ != nullptr) {
        m_chain_lag_->Set(chain_lag_ewma_us_);
      }
    }
  }
  if (unstable_head_keys_.empty() && anti_entropy_timer_ != 0) {
    env_->CancelTimer(anti_entropy_timer_);
    anti_entropy_timer_ = 0;
  }
}

void ChainReactionNode::ArmAntiEntropy() {
  if (anti_entropy_timer_ != 0 || config_.anti_entropy_interval <= 0 ||
      unstable_head_keys_.empty()) {
    return;
  }
  anti_entropy_timer_ = env_->Schedule(config_.anti_entropy_interval, [this]() {
    anti_entropy_timer_ = 0;
    RunAntiEntropy();
    ArmAntiEntropy();
  });
}

void ChainReactionNode::RunAntiEntropy() {
  std::vector<Key> done;
  for (const Key& key : unstable_head_keys_) {
    if (ring_.PositionOf(key, id_) != 1) {
      done.push_back(key);  // chain moved; the new head owns re-propagation
      continue;
    }
    const std::vector<StoredVersion> unstable = store_.UnstableVersions(key);
    if (unstable.empty()) {
      done.push_back(key);
      continue;
    }
    for (const StoredVersion& sv : unstable) {
      CrxChainPut fwd;
      fwd.key = key;
      fwd.value = sv.value;
      fwd.version = sv.version;
      fwd.client = 0;
      fwd.req = 0;
      fwd.ack_at = 0;
      fwd.epoch = ring_.epoch();
      fwd.deps.assign(sv.deps.begin(), sv.deps.end());
      if (config_.dep_watermark) {
        fwd.stable_cut = StableCut();
      }
      env_->Send(ring_.SuccessorFor(key, id_), Enc(fwd));
    }
  }
  for (const Key& key : done) {
    unstable_head_keys_.erase(key);
    unstable_since_.erase(key);  // ownership moved or resolved: no lag sample
  }
}

void ChainReactionNode::HandleRemotePut(GeoRemotePut msg) {
  if (ring_.PositionOf(msg.key, id_) != 1) {
    env_->Send(ring_.HeadFor(msg.key), EncodeMessage(msg));
    return;
  }
  ApplyVersion(msg.key, msg.value, msg.version, /*client=*/0, /*req=*/0, /*ack_at=*/0,
               msg.deps, /*chain_seq=*/0, std::move(msg.trace));
}

void ChainReactionNode::HandleNewMembership(const MemNewMembership& msg) {
  if (msg.epoch <= ring_.epoch()) {
    return;
  }
  const Ring old_ring = ring_;
  ring_ = Ring(msg.nodes, config_.vnodes, config_.replication, msg.epoch, msg.weights);
  events_.Emit(EventKind::kEpochChange, env_->Now(), static_cast<int64_t>(msg.epoch),
               static_cast<int64_t>(msg.nodes.size()));
  // Watermark cuts are epoch-scoped: the new membership may include nodes
  // whose cuts we never learned (W must drop to 0 until they report) and
  // client hints from the old epoch no longer name this ring.
  wm_peer_cuts_.clear();
  wm_client_hint_ = 0;
  NudgeWatermarkGossip();
  if (mig_src_ != nullptr) {
    // Any epoch change ends the catch-up mirror: either this is our
    // migration's commit (the targets are chain members now, fed by normal
    // propagation) or the plan went stale and the coordinator will abort.
    mig_src_.reset();
    if (m_mig_source_active_ != nullptr) {
      m_mig_source_active_->Set(0);
      m_mig_keys_pending_->Set(0);
    }
  }
  // Inflow sessions two epochs back can no longer receive legitimate
  // stragglers (their source's marker passed long ago); drop the bookkeeping.
  for (auto it = mig_inflows_.begin(); it != mig_inflows_.end();) {
    it = it->second.created_epoch + 1 < msg.epoch ? mig_inflows_.erase(it) : ++it;
  }
  if (m_mig_inflow_sessions_ != nullptr) {
    m_mig_inflow_sessions_->Set(static_cast<int64_t>(mig_inflows_.size()));
  }
  if (!ring_.Contains(id_)) {
    // This node was removed (drain/leave, or oracle removal while still
    // alive). Before going passive, hand unfinished headship duties to the
    // new heads: unstable versions this node minted would otherwise be
    // re-driven by nobody — anti-entropy keys off *current* headship, and
    // the new head may have received them only via migration (which does
    // not register them for re-propagation).
    ArenaVector<Key> keys{ArenaAllocator<Key>(&arena_)};
    keys.reserve(store_.KeyCount());
    store_.ForEachKey([&keys](const Key& key, const StoredVersion&) { keys.push_back(key); });
    for (const Key& key : keys) {
      if (old_ring.PositionOf(key, id_) != 1) {
        continue;
      }
      for (const StoredVersion& sv : store_.UnstableVersions(key)) {
        CrxChainPut fwd;
        fwd.key = key;
        fwd.value = sv.value;
        fwd.version = sv.version;
        fwd.client = 0;
        fwd.req = 0;
        fwd.ack_at = 0;
        fwd.epoch = ring_.epoch();
        fwd.deps.assign(sv.deps.begin(), sv.deps.end());
        env_->Send(ring_.HeadFor(key), Enc(fwd));
      }
    }
    unstable_head_keys_.clear();
    unstable_since_.clear();
    return;  // no further traffic for this node
  }
  if (config_.rejoin_grace > 0) {
    // Guard reads of keys whose chain we just joined until repair syncs
    // have had time to land (see IsJoinGuarded).
    join_guards_.push_back({old_ring, env_->Now() + config_.rejoin_grace, msg.epoch});
    env_->Schedule(config_.rejoin_grace, [this]() { DrainGuardedGets(); });
    // Completion-based drain, every epoch and every node: each peer sends a
    // MemSyncDone marker after its repair pushes for this epoch (links are
    // FIFO, so the marker follows the pushes). Once all live peers report,
    // this epoch's guards drop without waiting out the time window — under
    // a planned migration that is the difference between a ~1 RTT cutover
    // and a quarter second of parked writes. Dead peers never report; the
    // window remains the fallback.
    rejoin_pending_peers_ = static_cast<uint32_t>(ring_.nodes().size()) - 1;
    auto early = sync_done_early_.find(ring_.epoch());
    if (early != sync_done_early_.end()) {
      rejoin_pending_peers_ -= std::min(rejoin_pending_peers_, early->second);
    }
    // Early-marker credit for this epoch is consumed; older slots are stale.
    for (auto it = sync_done_early_.begin(); it != sync_done_early_.end();) {
      it = it->first <= msg.epoch ? sync_done_early_.erase(it) : ++it;
    }
    if (!old_ring.Contains(id_)) {
      // This epoch re-adds us after a crash-restart: additionally hold ALL
      // client puts — the recovered store may be behind on any key, and
      // assigning versions from a stale per-key vv would fork the order.
      rejoin_until_ = env_->Now() + config_.rejoin_grace;
      env_->Schedule(config_.rejoin_grace, [this]() {
        if (env_->Now() < rejoin_until_) {
          return;  // a later epoch extended the window; its timer will drain
        }
        if (rejoin_pending_peers_ > 0) {
          DrainRejoin();
        }
      });
    }
    if (rejoin_pending_peers_ == 0) {
      DrainRejoin();  // every peer's marker beat our membership notification
    }
  }
  RepairChains(old_ring, msg.pre_synced);
  // Tell every peer our repair pushes for this epoch are all sent. The
  // marker bytes are identical for every peer: encode once, share the frame.
  MemSyncDone done_msg;
  done_msg.epoch = ring_.epoch();
  done_msg.from = id_;
  const Payload done_frame = Payload::Shared(EncodeMessage(done_msg));
  for (NodeId n : ring_.nodes()) {
    if (n != id_) {
      env_->Send(n, done_frame);
    }
  }
}

bool ChainReactionNode::IsJoinGuarded(const Key& key) const {
  const Time now = env_->Now();
  const ChainIndex pos = ring_.PositionOf(key, id_);
  for (const ChainJoinGuard& guard : join_guards_) {
    if (now >= guard.until) {
      continue;
    }
    // Guarded if this node's chain position improved at that epoch change:
    // it joined the chain (old position 0 — every key, for a node rejoining
    // after crash-recovery), or it moved toward the head (a chain-prefix
    // position now claims data the node may only receive via repair —
    // e.g. the old tail promoted to the middle when a peer crashed).
    const ChainIndex old_pos = guard.old_ring.PositionOf(key, id_);
    if (old_pos == 0 || pos < old_pos) {
      return true;
    }
  }
  return false;
}

void ChainReactionNode::DrainGuardedGets() {
  const Time now = env_->Now();
  join_guards_.erase(
      std::remove_if(join_guards_.begin(), join_guards_.end(),
                     [now](const ChainJoinGuard& g) { return now >= g.until; }),
      join_guards_.end());
  std::vector<CrxPut> parked_puts = std::move(rejoin_buffered_puts_);
  rejoin_buffered_puts_.clear();
  for (CrxPut& put : parked_puts) {
    CrxPutView view = CrxPutView::From(put);
    HandlePut(view);  // re-parks (via ToOwned) if still guarded
  }
  std::vector<CrxGet> parked = std::move(join_guarded_gets_);
  join_guarded_gets_.clear();
  for (const CrxGet& get : parked) {
    HandleGet(CrxGetView::From(get), /*from=*/0);  // re-parks if still guarded
  }
}

void ChainReactionNode::RepairChains(const Ring& old_ring,
                                     const std::vector<NodeId>& pre_synced) {
  const auto is_pre_synced = [&pre_synced](NodeId n) {
    return std::find(pre_synced.begin(), pre_synced.end(), n) != pre_synced.end();
  };
  // Collect keys first: repair sends messages but must not mutate the store.
  // Arena-backed scratch: dropped wholesale at the next message.
  ArenaVector<Key> keys{ArenaAllocator<Key>(&arena_)};
  keys.reserve(store_.KeyCount());
  store_.ForEachKey([&keys](const Key& key, const StoredVersion&) { keys.push_back(key); });
  events_.Emit(EventKind::kRepairStart, env_->Now(), static_cast<int64_t>(ring_.epoch()),
               static_cast<int64_t>(keys.size()));

  uint64_t chains_touched = 0;
  for (const Key& key : keys) {
    const ChainIndex pos = ring_.PositionOf(key, id_);

    // Headship handoff: a planned rebalance/drain can move a key's head
    // slot away from this (live) node while it holds unstable versions.
    // Nobody else re-drives those — anti-entropy keys off *current*
    // headship, and a pre-synced new head received them via migration
    // without registering them for re-propagation — so push them to the
    // new head, which propagates down-chain (idempotently) until the tail
    // stabilizes them.
    if (pos != 1 && old_ring.PositionOf(key, id_) == 1) {
      for (const StoredVersion& sv : store_.UnstableVersions(key)) {
        CrxChainPut fwd;
        fwd.key = key;
        fwd.value = sv.value;
        fwd.version = sv.version;
        fwd.client = 0;
        fwd.req = 0;
        fwd.ack_at = 0;
        fwd.epoch = ring_.epoch();
        fwd.deps.assign(sv.deps.begin(), sv.deps.end());
        env_->Send(ring_.HeadFor(key), Enc(fwd));
      }
      unstable_head_keys_.erase(key);
    }

    if (pos == 0) {
      continue;
    }
    const std::vector<NodeId>& chain = ring_.ChainFor(key);
    chains_touched++;

    // New head re-propagates everything not yet DC-Write-Stable so that
    // in-flight writes dropped by the epoch change reach the (new) tail.
    if (pos == 1 && config_.replication > 1) {
      for (const StoredVersion& sv : store_.UnstableVersions(key)) {
        CrxChainPut fwd;
        fwd.key = key;
        fwd.value = sv.value;
        fwd.version = sv.version;
        fwd.client = 0;
        fwd.req = 0;
        fwd.ack_at = 0;
        fwd.epoch = ring_.epoch();
        fwd.deps.assign(sv.deps.begin(), sv.deps.end());
        env_->Send(chain[1], Enc(fwd));
      }
    }

    // The predecessor of a freshly added chain member transfers the newest
    // stable version (unstable ones flow through the head re-propagation).
    // Members the migration pre-synced already hold it — skipping them is
    // what turns a planned cutover into a handful of messages instead of a
    // full repair storm.
    const std::vector<NodeId>& old_chain = old_ring.ChainFor(key);
    for (size_t i = 1; i < chain.size(); ++i) {
      const NodeId member = chain[i];
      const bool is_new =
          std::find(old_chain.begin(), old_chain.end(), member) == old_chain.end();
      if (is_new && chain[i - 1] == id_ && !is_pre_synced(member)) {
        if (const StoredVersion* stable = store_.LatestStable(key)) {
          MemSyncKey sync;
          sync.epoch = ring_.epoch();
          sync.key = key;
          sync.value = stable->value;
          sync.version = stable->version;
          sync.stable = true;
          env_->Send(member, EncodeMessage(sync));
        }
      }
    }

    // A freshly added HEAD (a node rejoining after a crash-restart) has no
    // predecessor to pull from, and it is also the re-propagation point for
    // writes the epoch change dropped — but its own store is the stale one.
    // Its successor was the head while it was down, so it holds everything:
    // it transfers the newest stable version and re-drives its unstable
    // versions as chain puts through the new head, which propagates them
    // down the chain (idempotently) until the tail stabilizes them.
    if (chain.size() > 1 && chain[1] == id_ &&
        std::find(old_chain.begin(), old_chain.end(), chain[0]) == old_chain.end()) {
      if (const StoredVersion* stable = store_.LatestStable(key);
          stable != nullptr && !is_pre_synced(chain[0])) {
        MemSyncKey sync;
        sync.epoch = ring_.epoch();
        sync.key = key;
        sync.value = stable->value;
        sync.version = stable->version;
        sync.stable = true;
        env_->Send(chain[0], EncodeMessage(sync));
      }
      for (const StoredVersion& sv : store_.UnstableVersions(key)) {
        CrxChainPut fwd;
        fwd.key = key;
        fwd.value = sv.value;
        fwd.version = sv.version;
        fwd.client = 0;
        fwd.req = 0;
        fwd.ack_at = 0;
        fwd.epoch = ring_.epoch();
        fwd.deps.assign(sv.deps.begin(), sv.deps.end());
        env_->Send(chain[0], Enc(fwd));
      }
    }
  }
  events_.Emit(EventKind::kRepairDone, env_->Now(), static_cast<int64_t>(ring_.epoch()),
               static_cast<int64_t>(chains_touched));
}

void ChainReactionNode::HandleSyncKey(const MemSyncKey& msg) {
  if (msg.epoch < ring_.epoch()) {
    return;
  }
  DurableApply(msg.key, msg.value, msg.version, {});
  lamport_ = std::max(lamport_, msg.version.lamport);
  if (msg.stable) {
    DurableMarkStable(msg.key, msg.version);
    stable_vv_[msg.key].MergeMax(msg.version.vv);
    ResolveWatchers(msg.key);
    ResolveUnstableHead(msg.key);
  }
  ResolveDeferredGets(msg.key);
}

void ChainReactionNode::HandleSyncDone(const MemSyncDone& msg) {
  if (msg.epoch > ring_.epoch()) {
    // A peer processed the membership change before our own notification
    // arrived (markers and membership travel on different links); remember
    // the marker so the rejoin branch can credit it.
    sync_done_early_[msg.epoch]++;
    return;
  }
  if (msg.epoch < ring_.epoch() || rejoin_pending_peers_ == 0) {
    return;
  }
  events_.Emit(EventKind::kSyncDone, env_->Now(), static_cast<int64_t>(msg.epoch),
               static_cast<int64_t>(rejoin_pending_peers_ - 1));
  if (--rejoin_pending_peers_ == 0) {
    DrainRejoin();
  }
}

void ChainReactionNode::DrainRejoin() {
  rejoin_pending_peers_ = 0;
  rejoin_until_ = env_->Now();  // expire the fallback window
  events_.Emit(EventKind::kGuardDrain, env_->Now(),
               static_cast<int64_t>(rejoin_buffered_puts_.size() + join_guarded_gets_.size()),
               static_cast<int64_t>(ring_.epoch()));
  // Drop the guards repair completion covers: the current epoch's guard
  // (every live peer reported its pushes sent — FIFO links mean the pushes
  // arrived first, and a peer's current-epoch marker also follows its
  // pushes for every earlier epoch on the same link), plus any rejoin
  // guard (old ring lacked this node). Other old-epoch guards keep their
  // time fallback: their membership may have included peers that are gone.
  join_guards_.erase(std::remove_if(join_guards_.begin(), join_guards_.end(),
                                    [this](const ChainJoinGuard& g) {
                                      return g.epoch == ring_.epoch() ||
                                             !g.old_ring.Contains(id_);
                                    }),
                     join_guards_.end());
  std::vector<CrxPut> parked = std::move(rejoin_buffered_puts_);
  rejoin_buffered_puts_.clear();
  for (CrxPut& put : parked) {
    CrxPutView view = CrxPutView::From(put);
    HandlePut(view);
  }
  DrainGuardedGets();
}

std::vector<NodeId> ChainReactionNode::MigrationTargetsFor(const Key& key) const {
  std::vector<NodeId> targets;
  if (mig_src_ == nullptr || ring_.PositionOf(key, id_) != 1) {
    return targets;
  }
  const std::vector<NodeId>& current = ring_.ChainFor(key);
  for (NodeId member : mig_src_->planned_ring.ChainFor(key)) {
    if (std::find(current.begin(), current.end(), member) == current.end()) {
      targets.push_back(member);
    }
  }
  return targets;
}

void ChainReactionNode::HandleMigSnapshotRequest(const MigSnapshotRequest& msg) {
  if (msg.epoch != ring_.epoch() || msg.planned_epoch <= ring_.epoch()) {
    // Stale plan: the ring moved after the coordinator drew it up. Refuse,
    // so the coordinator aborts instead of committing a layout that nobody
    // actually streamed data for.
    MigSnapshotDone done;
    done.migration_id = msg.migration_id;
    done.from = id_;
    done.aborted = true;
    env_->Send(msg.coordinator, EncodeMessage(done));
    return;
  }
  mig_src_ = std::make_unique<MigrationSource>();
  mig_src_->migration_id = msg.migration_id;
  mig_src_->epoch = msg.epoch;
  mig_src_->planned_epoch = msg.planned_epoch;
  mig_src_->planned_ring = Ring(msg.planned_nodes, config_.vnodes, config_.replication,
                                msg.planned_epoch, msg.planned_weights);
  mig_src_->coordinator = msg.coordinator;
  mig_src_->batch_keys = std::max<uint32_t>(1, msg.batch_keys);
  mig_src_->batch_interval = static_cast<Duration>(msg.batch_interval);
  // Snapshot queue: every key this node heads whose planned chain gains
  // members. Keys written after this scan are covered by the live mirror.
  store_.ForEachKey([this](const Key& key, const StoredVersion&) {
    if (!MigrationTargetsFor(key).empty()) {
      mig_src_->pending.push_back(key);
    }
  });
  if (m_mig_source_active_ != nullptr) {
    m_mig_source_active_->Set(1);
    m_mig_keys_pending_->Set(static_cast<int64_t>(mig_src_->pending.size()));
  }
  events_.Emit(EventKind::kMigSnapshot, env_->Now(),
               static_cast<int64_t>(msg.migration_id),
               static_cast<int64_t>(mig_src_->pending.size()));
  StreamMigrationBatch();
}

void ChainReactionNode::StreamMigrationBatch() {
  if (mig_src_ == nullptr || mig_src_->snapshot_done) {
    return;
  }
  MigrationSource& src = *mig_src_;
  do {
    std::map<NodeId, MigKeyBatch> per_target;
    uint32_t scanned = 0;
    while (src.cursor < src.pending.size() && scanned < src.batch_keys) {
      const Key& key = src.pending[src.cursor++];
      scanned++;
      const std::vector<NodeId> targets = MigrationTargetsFor(key);
      if (targets.empty()) {
        continue;  // re-checked live: chain ownership may have shifted
      }
      // Newest stable version (serves reads, dep checks, and geo shipping
      // at the target) plus every unstable version with its dependency
      // list (they may still stabilize or gate writes after cutover).
      std::vector<MigEntry> entries;
      if (const StoredVersion* stable = store_.LatestStable(key)) {
        MigEntry e;
        e.key = key;
        e.value = stable->value;
        e.version = stable->version;
        e.stable = true;
        e.deps.assign(stable->deps.begin(), stable->deps.end());
        entries.push_back(std::move(e));
      }
      for (const StoredVersion& sv : store_.UnstableVersions(key)) {
        MigEntry e;
        e.key = key;
        e.value = sv.value;
        e.version = sv.version;
        e.stable = false;
        e.deps.assign(sv.deps.begin(), sv.deps.end());
        entries.push_back(std::move(e));
      }
      if (entries.empty()) {
        continue;
      }
      src.keys_streamed++;
      for (NodeId target : targets) {
        MigKeyBatch& batch = per_target[target];
        batch.entries.insert(batch.entries.end(), entries.begin(), entries.end());
      }
    }
    for (auto& [target, batch] : per_target) {
      batch.migration_id = src.migration_id;
      batch.epoch = ring_.epoch();
      batch.source = id_;
      batch.target = target;
      batch.coordinator = src.coordinator;
      batch.seq = ++src.next_seq[target];
      src.targets.insert(target);
      src.entries_streamed += batch.entries.size();
      mig_entries_out_ += batch.entries.size();
      if (m_mig_entries_out_ != nullptr) {
        m_mig_entries_out_->Inc(static_cast<uint64_t>(batch.entries.size()));
      }
      env_->Send(target, EncodeMessage(batch));
    }
  } while (src.batch_interval <= 0 && src.cursor < src.pending.size());

  if (m_mig_keys_pending_ != nullptr) {
    m_mig_keys_pending_->Set(static_cast<int64_t>(src.pending.size() - src.cursor));
  }
  if (src.cursor < src.pending.size()) {
    const uint64_t id = src.migration_id;
    env_->Schedule(src.batch_interval, [this, id]() {
      if (mig_src_ != nullptr && mig_src_->migration_id == id) {
        StreamMigrationBatch();
      }
    });
    return;
  }

  // Bulk scan complete: close each stream with an (empty) `last` batch so
  // the target seals it, then report to the coordinator. The mirror keeps
  // feeding these targets until the epoch flips.
  src.snapshot_done = true;
  for (NodeId target : src.targets) {
    MigKeyBatch batch;
    batch.migration_id = src.migration_id;
    batch.epoch = ring_.epoch();
    batch.source = id_;
    batch.target = target;
    batch.coordinator = src.coordinator;
    batch.seq = ++src.next_seq[target];
    batch.last = true;
    env_->Send(target, EncodeMessage(batch));
  }
  MigSnapshotDone done;
  done.migration_id = src.migration_id;
  done.from = id_;
  done.keys_streamed = src.keys_streamed;
  done.targets.assign(src.targets.begin(), src.targets.end());
  env_->Send(src.coordinator, EncodeMessage(done));
  events_.Emit(EventKind::kMigStreamDone, env_->Now(),
               static_cast<int64_t>(src.migration_id),
               static_cast<int64_t>(src.entries_streamed));
}

void ChainReactionNode::MirrorMigrationEntry(const Key& key, bool has_value,
                                             std::string_view value, const Version& version,
                                             bool stable, std::span<const Dependency> deps) {
  const std::vector<NodeId> targets = MigrationTargetsFor(key);
  if (targets.empty()) {
    return;
  }
  MigEntry entry;
  entry.key = key;
  entry.has_value = has_value;
  entry.value = Value(value);
  entry.version = version;
  entry.stable = stable;
  entry.deps.assign(deps.begin(), deps.end());
  for (NodeId target : targets) {
    MigKeyBatch batch;
    batch.migration_id = mig_src_->migration_id;
    batch.epoch = ring_.epoch();
    batch.source = id_;
    batch.target = target;
    batch.coordinator = mig_src_->coordinator;
    batch.seq = ++mig_src_->next_seq[target];
    batch.entries.push_back(entry);
    mig_src_->entries_mirrored++;
    mig_entries_out_++;
    if (m_mig_entries_out_ != nullptr) {
      m_mig_entries_out_->Inc();
    }
    env_->Send(target, EncodeMessage(batch));
  }
}

void ChainReactionNode::HandleMigKeyBatch(const MigKeyBatch& msg) {
  const auto session_key = std::make_pair(msg.migration_id, msg.source);
  auto it = mig_inflows_.find(session_key);
  if (it == mig_inflows_.end()) {
    if (msg.epoch < ring_.epoch()) {
      // A stream this node never admitted, stamped with an epoch that has
      // already passed (e.g. a plan that predates a crash-driven
      // reconfiguration): drop it. Known sessions, by contrast, accept
      // stragglers across the flip — on the FIFO source link they precede
      // the source's MemSyncDone marker, so they are part of the barrier.
      return;
    }
    it = mig_inflows_.emplace(session_key, MigrationInflow{ring_.epoch(), 0, false}).first;
    if (m_mig_inflow_sessions_ != nullptr) {
      m_mig_inflow_sessions_->Set(static_cast<int64_t>(mig_inflows_.size()));
    }
  }
  MigrationInflow& inflow = it->second;
  for (const MigEntry& entry : msg.entries) {
    if (entry.has_value) {
      DurableApply(entry.key, entry.value, entry.version, entry.deps);
      lamport_ = std::max(lamport_, entry.version.lamport);
    }
    if (entry.stable) {
      DurableMarkStable(entry.key, entry.version);
      stable_vv_[entry.key].MergeMax(entry.version.vv);
      ResolveWatchers(entry.key);
    }
    ResolveDeferredGets(entry.key);
    inflow.entries_applied++;
    mig_entries_in_++;
    if (m_mig_entries_in_ != nullptr) {
      m_mig_entries_in_->Inc();
    }
  }
  if (msg.last && !inflow.sealed) {
    inflow.sealed = true;
    MigRangeSealed sealed;
    sealed.migration_id = msg.migration_id;
    sealed.source = msg.source;
    sealed.target = id_;
    sealed.entries_applied = inflow.entries_applied;
    env_->Send(msg.coordinator, EncodeMessage(sealed));
    events_.Emit(EventKind::kMigSealed, env_->Now(),
                 static_cast<int64_t>(msg.migration_id),
                 static_cast<int64_t>(inflow.entries_applied));
  }
}

void ChainReactionNode::HandleMigAbort(const MigAbort& msg) {
  // migration_id 0 is the wildcard a restarted coordinator sends to clear
  // sessions it no longer knows about.
  if (mig_src_ != nullptr &&
      (msg.migration_id == 0 || mig_src_->migration_id == msg.migration_id)) {
    LOG_INFO("node %u: migration %llu aborted (%s)", id_,
             static_cast<unsigned long long>(msg.migration_id), msg.reason.c_str());
    mig_src_.reset();
    if (m_mig_source_active_ != nullptr) {
      m_mig_source_active_->Set(0);
      m_mig_keys_pending_->Set(0);
    }
    events_.Emit(EventKind::kMigAborted, env_->Now(),
                 static_cast<int64_t>(msg.migration_id), 0);
  }
  // Inflow bookkeeping goes; the applied entries stay — they are real,
  // idempotent versions, harmless outside the chain.
  for (auto it = mig_inflows_.begin(); it != mig_inflows_.end();) {
    const bool match = msg.migration_id == 0 || it->first.first == msg.migration_id;
    it = match ? mig_inflows_.erase(it) : ++it;
  }
  if (m_mig_inflow_sessions_ != nullptr) {
    m_mig_inflow_sessions_->Set(static_cast<int64_t>(mig_inflows_.size()));
  }
}

std::string ChainReactionNode::StatusJson() const {
  // Chain role across the ring: how many segments this node heads, serves
  // as middle for, or tails — the /status summary of "who am I right now".
  uint64_t head = 0, middle = 0, tail = 0;
  for (const std::vector<NodeId>& chain : ring_.SegmentChains()) {
    if (chain.empty()) {
      continue;
    }
    if (chain.front() == id_) {
      head++;
    } else if (chain.back() == id_) {
      tail++;
    } else if (std::find(chain.begin(), chain.end(), id_) != chain.end()) {
      middle++;
    }
  }
  const StorageEngineStats es = store_.engine()->Stats();
  const uint64_t lookups = store_.cache_hits() + store_.cache_misses();
  // Per-range migration state: what the source still has queued vs already
  // shipped, and how much this node absorbed as a target.
  const size_t mig_pending =
      mig_src_ != nullptr ? mig_src_->pending.size() - mig_src_->cursor : 0;
  char buf[1152];
  std::snprintf(
      buf, sizeof(buf),
      "{\"node\":%u,\"dc\":%u,\"epoch\":%llu,"
      "\"segments\":{\"head\":%llu,\"middle\":%llu,\"tail\":%llu},"
      "\"wal\":{\"enabled\":%s,\"active_seq\":%llu,\"appends\":%llu},"
      "\"rejoin\":{\"pending_peers\":%u,\"buffered_puts\":%zu,"
      "\"guarded_gets\":%zu,\"join_guards\":%zu},"
      "\"migration\":{\"source_active\":%s,\"keys_pending\":%zu,"
      "\"entries_out\":%llu,\"entries_in\":%llu,\"inflows\":%zu},"
      "\"store\":{\"engine\":\"%s\",\"resident_versions\":%llu,"
      "\"resident_bytes\":%llu,\"log_bytes\":%llu,\"compactions\":%llu,"
      "\"cache_hit_pct\":%llu},"
      "\"store_keys\":%zu,\"gated_puts\":%zu,\"deferred_gets\":%zu,"
      "\"events_emitted\":%llu}",
      id_, config_.local_dc, static_cast<unsigned long long>(ring_.epoch()),
      static_cast<unsigned long long>(head), static_cast<unsigned long long>(middle),
      static_cast<unsigned long long>(tail), wal_ != nullptr ? "true" : "false",
      static_cast<unsigned long long>(wal_ != nullptr ? wal_->active_seq() : 0),
      static_cast<unsigned long long>(wal_ != nullptr ? wal_->appends() : 0),
      rejoin_pending_peers_, rejoin_buffered_puts_.size(), join_guarded_gets_.size(),
      join_guards_.size(), mig_src_ != nullptr ? "true" : "false", mig_pending,
      static_cast<unsigned long long>(mig_entries_out_),
      static_cast<unsigned long long>(mig_entries_in_), mig_inflows_.size(),
      StorageEngineKindName(store_.engine()->kind()),
      static_cast<unsigned long long>(store_.resident_versions()),
      static_cast<unsigned long long>(store_.resident_bytes()),
      static_cast<unsigned long long>(es.log_bytes),
      static_cast<unsigned long long>(es.compactions),
      static_cast<unsigned long long>(lookups == 0 ? 0 : store_.cache_hits() * 100 / lookups),
      store_.KeyCount(), gated_puts_.size(), deferred_gets_.size(),
      static_cast<unsigned long long>(events_.emitted()));
  return buf;
}

// Watermark machinery (dep_watermark; DESIGN.md §14) ------------------------

uint64_t ChainReactionNode::StableCut() const {
  // Clock cap: NextLamport() returns max(lamport_+1, Now()), so this node
  // never mints a version at or below max(lamport_, Now()-1) again. The cap
  // also advances the cut on idle nodes, letting a quiescent cluster's
  // watermark pass recently stabilized versions.
  const uint64_t now = static_cast<uint64_t>(env_->Now());
  uint64_t cut = std::max(lamport_, now > 0 ? now - 1 : 0);
  if (store_.HasTrackedUnstable()) {
    // Any not-yet-stable local-origin version held HERE caps the cut — even
    // ones minted by other nodes (their replicas bound the cluster minimum
    // when the minting head dies).
    const uint64_t oldest = store_.MinTrackedUnstableLamport();
    cut = std::min(cut, oldest > 0 ? oldest - 1 : 0);
  }
  return cut;
}

uint64_t ChainReactionNode::ClusterWatermark() const {
  if (!config_.dep_watermark) {
    return 0;
  }
  uint64_t w = StableCut();
  for (const NodeId n : ring_.nodes()) {
    if (n == id_) {
      continue;
    }
    auto it = wm_peer_cuts_.find(n);
    if (it == wm_peer_cuts_.end()) {
      w = 0;  // unknown peer: no claim about cluster-wide stability
      break;
    }
    w = std::min(w, it->second);
  }
  // A same-epoch client hint is a W some node already proved; W only grows
  // within an epoch, so it is a valid floor.
  return std::max(w, wm_client_hint_);
}

void ChainReactionNode::LearnPeerCut(NodeId node, uint64_t epoch, uint64_t cut) {
  if (!config_.dep_watermark || epoch != ring_.epoch() || node == id_) {
    return;
  }
  uint64_t& slot = wm_peer_cuts_[node];
  slot = std::max(slot, cut);
}

void ChainReactionNode::HandleWatermark(const CrxWatermark& msg) {
  LearnPeerCut(msg.node, msg.epoch, msg.cut);
}

void ChainReactionNode::NudgeWatermarkGossip() {
  if (!config_.dep_watermark || config_.wm_gossip_interval <= 0) {
    return;
  }
  wm_rounds_left_ = 2;
  ArmWatermarkGossip();
}

void ChainReactionNode::ArmWatermarkGossip() {
  if (wm_gossip_timer_ != 0 || wm_rounds_left_ == 0 || env_ == nullptr) {
    return;
  }
  wm_gossip_timer_ = env_->Schedule(config_.wm_gossip_interval, [this]() {
    wm_gossip_timer_ = 0;
    BroadcastWatermark();
    wm_rounds_left_--;
    ArmWatermarkGossip();
  });
}

void ChainReactionNode::BroadcastWatermark() {
  if (!ring_.Contains(id_)) {
    return;
  }
  CrxWatermark wm;
  wm.node = id_;
  wm.epoch = ring_.epoch();
  wm.cut = StableCut();
  // One encode, N-1 refcount bumps: the gossip frame is shared across the
  // whole ring fan-out.
  const Payload payload = Payload::Shared(Enc(wm));
  for (const NodeId n : ring_.nodes()) {
    if (n != id_) {
      env_->Send(n, payload);
    }
  }
}

}  // namespace chainreaction

// ChainReaction server node.
//
// One node participates in many chains (one per key, derived from the ring).
// Per chain role it implements:
//   head  — assigns versions, gates writes on the DC-Write-Stability of
//           their causal dependencies, starts down-chain propagation, and
//           re-propagates unstable writes after chain reconfigurations;
//   middle— applies and forwards; the node at position k acknowledges the
//           client (k-stability);
//   tail  — marks versions DC-Write-Stable, answers stability checks, sends
//           backward stability notifications, and feeds the geo replicator.
// Every node serves reads for the chains it belongs to (the paper's read
// distribution), forwarding toward the head when it is behind the version
// the client causally requires.
#ifndef SRC_CORE_CHAINREACTION_NODE_H_
#define SRC_CORE_CHAINREACTION_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/arena.h"
#include "src/common/histogram.h"
#include "src/common/node_cache.h"
#include "src/common/payload.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/core/config.h"
#include "src/msg/message.h"
#include "src/obs/alloc_phase.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ring/ring.h"
#include "src/sim/env.h"
#include "src/storage/versioned_store.h"
#include "src/wal/wal.h"

namespace chainreaction {

class ChainReactionNode : public Actor {
 public:
  ChainReactionNode(NodeId id, CrxConfig config, Ring initial_ring);

  // Attaches the runtime environment; starts the heartbeat loop when the
  // config names a membership service.
  void AttachEnv(Env* env);

  // Optional observability: registers this node's instruments (labeled by
  // node id / chain role / position) and the sink for trace-hop reports.
  // Either argument may be null. Call before the node starts serving.
  void AttachObs(MetricsRegistry* metrics, TraceCollector* traces);

  void OnMessage(Address from, std::string_view payload) override;

  // Recovery: persist / restore this node's store. Restore must happen
  // before the node starts serving (typically right after construction);
  // chain repair then re-propagates anything missed while down.
  Status SaveStateCheckpoint(const std::string& path) const;
  Status LoadStateCheckpoint(const std::string& path);

  // Durability -----------------------------------------------------------
  // Opens (creating) the write-ahead log in `data_dir`. From then on every
  // version and stability mark is logged before it mutates the store, so a
  // crashed node can be rebuilt from local state via RecoverFrom. Call
  // before the node starts serving; order relative to AttachObs does not
  // matter (whichever runs second hooks the WAL's instruments up).
  Status EnableDurability(const std::string& data_dir, const WalOptions& options = {});

  // Crash recovery: loads the newest valid checkpoint in `data_dir` (if
  // any) and replays the WAL tail over it — a torn final record is
  // truncated, not fatal — then rebuilds the causal bookkeeping. Call
  // BEFORE EnableDurability (torn-tail repair applies to the newest
  // segment; opening the WAL creates a fresh one) and before the node
  // starts serving; chain repair re-propagates only the delta the node
  // missed while down.
  Status RecoverFrom(const std::string& data_dir);

  // Atomically checkpoints the store and deletes the WAL segments the
  // checkpoint covers, bounding future recovery replay work. Requires
  // EnableDurability.
  Status CheckpointAndTruncate();

  // Crash simulation (harness): drops WAL records still in the group-commit
  // buffer, exactly as a process crash would, and closes the log files so a
  // successor node can recover from them.
  void CrashDurability();

  Wal* wal() { return wal_.get(); }
  const WalReplayStats& last_recovery_stats() const { return recovery_stats_; }
  // Wall-clock replay cost of the last RecoverFrom (real microseconds).
  int64_t last_recovery_replay_us() const { return recovery_replay_us_; }

  // Introspection for tests and benchmarks -------------------------------
  const VersionedStore& store() const { return store_; }
  NodeId id() const { return id_; }
  uint64_t epoch() const { return ring_.epoch(); }
  uint64_t reads_served() const { return reads_served_; }
  // reads_by_position()[i] = reads this node answered while at chain
  // position i+1 for the requested key (E5: read load distribution).
  const std::vector<uint64_t>& reads_by_position() const { return reads_by_position_; }
  uint64_t writes_applied() const { return writes_applied_; }
  uint64_t dep_checks_sent() const { return dep_checks_sent_; }
  uint64_t dep_wait_total_us() const { return dep_wait_total_us_; }
  const Histogram& dep_wait_hist() const { return dep_wait_hist_; }
  uint64_t dep_waits() const { return dep_waits_; }
  uint64_t gets_forwarded() const { return gets_forwarded_; }
  size_t gated_puts_pending() const { return gated_puts_.size(); }
  // Debug/tests: (client, req, remaining dep keys) of each parked write.
  std::vector<std::string> GatedPutsInfo() const {
    std::vector<std::string> out;
    for (const auto& [token, pp] : gated_puts_) {
      std::string s = "req=" + std::to_string(pp.put.req) + " client=" +
                      std::to_string(pp.put.client) + " key=" + pp.put.key + " deps:";
      for (const auto& d : pp.pending_deps) {
        s += " " + d.key + "@" + d.version.ToString();
      }
      out.push_back(s);
    }
    return out;
  }
  size_t deferred_gets_pending() const { return deferred_gets_.size(); }
  size_t unstable_head_keys_count() const { return unstable_head_keys_.size(); }
  std::string StableVvOf(const Key& key) const {
    auto it = stable_vv_.find(key);
    return it == stable_vv_.end() ? "(none)" : it->second.ToString();
  }
  size_t watchers_count() const { return watchers_.size(); }

  // Watermark introspection (dep_watermark; DESIGN.md §14) ----------------
  // This node's stable cut: every locally-originated version with
  // lamport <= StableCut() that this node has ever applied is
  // DC-Write-Stable here, and this node will never mint a version at or
  // below the cut again.
  uint64_t StableCut() const;
  // The cluster-wide watermark W: min of the stable cuts this node has
  // learned for every current-epoch ring peer (0 while any peer's cut is
  // unknown). Every local-origin version with lamport <= W is
  // DC-Write-Stable everywhere.
  uint64_t ClusterWatermark() const;

  // Telemetry ------------------------------------------------------------
  // The node's flight recorder: a ring of recent control-plane events
  // (epoch changes, repairs, guard parks/drains, WAL rotations). Always
  // live — Emit is lock-free and cheap enough to leave on.
  FlightRecorder* events() { return &events_; }
  const FlightRecorder* events() const { return &events_; }

  // Node status as a JSON object: id, epoch, chain role per ring segment,
  // WAL seq / checkpoint floor, rejoin/guard state, store + engine state.
  // Reads loop-thread-owned state: call on the actor's thread (the TCP
  // runtime posts to the loop; the simulator is single-threaded).
  std::string StatusJson() const;

  // Publishes store/engine gauges (resident versions/bytes, log bytes,
  // compactions, cache hit ratio) to the registry. Runs automatically every
  // few hundred writes and after recovery/checkpoints; exposed so tests and
  // shells can force a fresh sample.
  void RefreshStoreGauges();

 private:
  // A write parked at the head until its dependencies are DC-Write-Stable.
  struct PendingPut {
    CrxPut put;
    std::vector<Dependency> pending_deps;  // not yet confirmed stable
    Time parked_at = 0;
  };

  // A read parked because this node has not yet applied the version the
  // client causally requires (possible transiently during chain repair).
  struct DeferredGet {
    CrxGet get;
    uint64_t timeout_timer = 0;
  };

  // A stability watcher registered at this (tail) node by some head.
  struct StabilityWatcher {
    Version version;
    uint64_t token = 0;
    Address reply_to = 0;
  };

  // Hot-path handlers take decoded *views* whose string fields alias the
  // transport receive buffer (valid only for the current OnMessage call;
  // DESIGN.md §15). Parking a request past the call materializes it with
  // ToOwned(); replay re-enters through a From() view so there is a single
  // code path. Mutable refs because handlers append trace hops in place.
  void HandlePut(CrxPutView& put);
  void HandleChainPut(CrxChainPutView& msg, Address from);
  void HandleGet(const CrxGetView& get, Address from);
  void HandleStableNotify(const CrxStableNotify& msg, Address from);
  void HandleStabilityCheck(const CrxStabilityCheck& msg, Address from);
  void HandleStabilityConfirm(const CrxStabilityConfirm& msg);
  void HandleWatermark(const CrxWatermark& msg);
  void HandleRemotePut(GeoRemotePut msg);
  void HandleNewMembership(const MemNewMembership& msg);
  void HandleSyncKey(const MemSyncKey& msg);
  void HandleSyncDone(const MemSyncDone& msg);

  // Planned-migration duties (key-range transfer, see src/admin/): the
  // source streams a snapshot of the keys it heads that gain replicas in
  // the planned ring, then mirrors live writes and stability marks to those
  // targets (CATCHUP) until the epoch flips or the coordinator aborts.
  void HandleMigSnapshotRequest(const MigSnapshotRequest& msg);
  void HandleMigKeyBatch(const MigKeyBatch& msg);
  void HandleMigAbort(const MigAbort& msg);
  void StreamMigrationBatch();
  // Planned-chain members that are not in the key's current chain (i.e.
  // would miss the data without a transfer). Empty when no migration is
  // active or this node does not head the key.
  std::vector<NodeId> MigrationTargetsFor(const Key& key) const;
  void MirrorMigrationEntry(const Key& key, bool has_value, std::string_view value,
                            const Version& version, bool stable,
                            std::span<const Dependency> deps);

  // Assigns a version to a gated client write and starts propagation.
  void ApplyAndPropagate(CrxPutView& put);

  // Common apply path for a concrete (key, value, version); handles the
  // single-node-chain and tail special cases. Returns true if newly applied.
  // `value` may alias the inbound frame: the store makes the single owned
  // copy, and the down-chain forward / tail geo notification re-encode
  // straight from the view, so the payload is copied at most once end to
  // end. `deps` is borrowed for the call. `chain_seq` is the pipeline
  // sequence the write arrived with (0 at the head and for out-of-band
  // re-propagation) and feeds the cumulative ack batch.
  bool ApplyVersion(const Key& key, std::string_view value, const Version& version,
                    Address client, RequestId req, ChainIndex ack_at,
                    std::span<const Dependency> deps, uint64_t chain_seq, TraceContext trace);

  // Everything the tail must do when a version reaches it.
  void StabilizeAtTail(const Key& key, const Version& version,
                       std::span<const Dependency> deps, bool has_local_payload,
                       std::string_view value, TraceContext trace);

  // Client ack path: with ack_batch_window > 0 acks are coalesced per
  // client into one cumulative CrxPutAckBatch per window; otherwise each
  // ack is sent immediately (legacy wire behavior).
  void SendClientAck(CrxPutAck ack, Address client, uint64_t chain_seq);
  void FlushClientAcks(Address client);

  void ResolveWatchers(const Key& key);
  void ScheduleStableNotify(const Key& key);
  void FlushStableNotify();
  void TrackUnstableHead(const Key& key);
  void ResolveUnstableHead(const Key& key);
  void ArmAntiEntropy();
  void RunAntiEntropy();
  void SendGeoNotify(const GeoLocalStable& msg);
  void SendHeartbeat();
  void HandleGeoNotifyAck(const GeoLocalStableAck& msg);
  void ArmGeoNotifyRetry();
  void ResolveDeferredGets(const Key& key);
  void AnswerGet(const CrxGetView& get, ChainIndex position);

  // True if the dependency does not need a remote stability confirmation:
  // null versions, and dependencies living on this exact chain (the FIFO
  // down-chain link already serializes them before the new write).
  bool DepTriviallyStable(const Key& write_key, const Dependency& dep) const;

  // Causal+ stability predicate: `v` is marked stable here, OR a stable
  // LWW-newer version supersedes it (convergent conflict handling lets the
  // LWW winner stand in for a concurrent loser, which may even have been
  // garbage-collected).
  bool DepStableHere(const Key& key, const Version& v) const;

  // Read-freshness predicate: this node can answer a read that causally
  // requires `v` (it applied v's causal past, or holds an LWW-newer
  // version that convergence resolves to).
  bool ReadSatisfies(const Key& key, const Version& v) const;

  // Chain-repair duties after a membership change. `pre_synced` lists
  // nodes a planned migration already streamed data to; stable-version
  // pushes to them are skipped (the unstable re-drives still flow — they
  // carry the propagation duty, and they are idempotent).
  void RepairChains(const Ring& old_ring, const std::vector<NodeId>& pre_synced);

  // Write-ahead wrappers around the store: log the mutation (when it is not
  // already durable) before applying it. All protocol-path mutations go
  // through these; recovery replays write to store_ directly.
  bool DurableApply(const Key& key, std::string_view value, const Version& version,
                    std::span<const Dependency> deps);
  void DurableMarkStable(const Key& key, const Version& version);

  // Rebuilds stability cache, unstable-head tracking, and the lamport clock
  // from a freshly restored store (checkpoint load or WAL replay). Metadata
  // only — never materializes values, so disk-engine recovery is O(index).
  void RebuildRecoveredState();

  // Attaches the configured storage engine to the store (idempotent). The
  // disk engine lives in `<data_dir>/vlog`; called from both RecoverFrom
  // and EnableDurability, whichever runs first.
  Status EnsureEngine(const std::string& data_dir);

  static std::string CheckpointPath(const std::string& data_dir) {
    return data_dir + "/checkpoint.crx";
  }

  uint64_t NextLamport();

  // Encodes a hot-path message in the configured wire format. Cold-path
  // messages (membership, migration, geo, heartbeat) call EncodeMessage
  // directly and stay v1.
  template <typename M>
  std::string Enc(const M& m) const {
    AllocPhaseScope phase(AllocPhase::kEncode);
    return EncodeMessage(m, config_.wire_format);
  }

  // Watermark gossip (dep_watermark) -------------------------------------
  // Records a peer's stable cut if it is stamped with the current epoch.
  void LearnPeerCut(NodeId node, uint64_t epoch, uint64_t cut);
  // Requests a couple of direct CrxWatermark broadcast rounds; called on
  // protocol traffic so the gossip is activity-gated (quiescent clusters
  // stay quiescent and sim()->Run() still reaches quiescence).
  void NudgeWatermarkGossip();
  void ArmWatermarkGossip();
  void BroadcastWatermark();

  NodeId id_;
  CrxConfig config_;
  Env* env_ = nullptr;
  Ring ring_;
  VersionedStore store_;
  uint64_t lamport_ = 0;

  // Per-message scratch space, reset at the top of OnMessage. Nothing that
  // survives the current message may live here (see src/common/arena.h).
  Arena arena_;

  // Durability (null/empty until EnableDurability).
  std::string data_dir_;
  std::unique_ptr<Wal> wal_;
  WalReplayStats recovery_stats_;
  int64_t recovery_replay_us_ = 0;

  // Head state.
  uint64_t next_token_ = 1;
  std::unordered_map<uint64_t, PendingPut> gated_puts_;  // token -> parked put
  // Requests already assigned a version (client retry dedup). Bounded FIFO.
  std::map<std::pair<Address, RequestId>, Version> completed_reqs_;
  std::deque<std::pair<Address, RequestId>> completed_order_;
  // Requests currently parked behind dependency gating, mapped to their
  // gating token so client retries can re-probe instead of re-parking.
  std::map<std::pair<Address, RequestId>, uint64_t> gated_reqs_;
  // Node recyclers for the per-request churn above (insert on park/apply,
  // erase on confirm/evict — one heap node per put without them).
  MapNodeCache<std::unordered_map<uint64_t, PendingPut>> gated_puts_cache_;
  MapNodeCache<std::map<std::pair<Address, RequestId>, Version>> completed_cache_;
  MapNodeCache<std::map<std::pair<Address, RequestId>, uint64_t>> gated_reqs_cache_;
  // Keys this node heads whose newest version is not yet DC-Write-Stable;
  // re-propagated by the anti-entropy timer if stability stalls (lost
  // chain messages). Timer is armed iff the set is non-empty.
  std::unordered_set<Key> unstable_head_keys_;
  SetNodeCache<std::unordered_set<Key>> unstable_keys_cache_;
  // When each key first went unstable, feeding the chain-lag EWMA that the
  // dep-stall watchdog compares dep-waits against (a dep-wait far beyond
  // the typical head->tail stabilization time means the blocking chain is
  // stuck, not merely busy).
  std::unordered_map<Key, Time> unstable_since_;
  MapNodeCache<std::unordered_map<Key, Time>> unstable_since_cache_;
  int64_t chain_lag_ewma_us_ = 0;
  uint64_t anti_entropy_timer_ = 0;
  // Rejoin barrier: after an epoch re-adds this node, client puts are
  // buffered until every established peer's MemSyncDone marker arrives
  // (repair pushes complete — links are FIFO), so chain-repair syncs can
  // catch the recovered store up before it assigns versions again. The
  // time window (see CrxConfig::rejoin_grace) is only a fallback against
  // lost markers.
  Time rejoin_until_ = 0;
  uint32_t rejoin_pending_peers_ = 0;
  // Markers that arrived before our own membership notification, by epoch.
  std::unordered_map<uint64_t, uint32_t> sync_done_early_;
  std::vector<CrxPut> rejoin_buffered_puts_;
  void DrainRejoin();
  // Chain-join read guard: for `rejoin_grace` after an epoch change, reads
  // of keys whose chain this node just joined (old position 0 — including
  // every key, for a node rejoining after crash-recovery) are escalated to
  // an established replica or parked: until the repair sync lands this node
  // would answer stale or not-found.
  struct ChainJoinGuard {
    Ring old_ring;
    Time until;
    uint64_t epoch = 0;  // the epoch whose change installed this guard
  };
  std::vector<ChainJoinGuard> join_guards_;
  std::vector<CrxGet> join_guarded_gets_;
  bool IsJoinGuarded(const Key& key) const;
  void DrainGuardedGets();

  // Stability knowledge cache: key -> merged vv known DC-Write-Stable.
  std::unordered_map<Key, VersionVector> stable_vv_;

  // Watermark state (dep_watermark): newest stable cut learned per ring
  // peer in the current epoch (cleared on epoch change — cuts are
  // epoch-scoped so a node re-added with an empty store cannot resurrect a
  // stale high cut), plus the best same-epoch cluster watermark any client
  // hinted at us (a floor for our own computation).
  std::unordered_map<NodeId, uint64_t> wm_peer_cuts_;
  uint64_t wm_client_hint_ = 0;
  uint32_t wm_rounds_left_ = 0;
  uint64_t wm_gossip_timer_ = 0;

  // Migration source state: set while this node streams/mirrors key ranges
  // for a planned topology change. Cleared when the epoch flips (commit) or
  // on MigAbort.
  struct MigrationSource {
    uint64_t migration_id = 0;
    uint64_t epoch = 0;          // ring epoch the request was issued under
    uint64_t planned_epoch = 0;
    Ring planned_ring;
    Address coordinator = 0;
    uint32_t batch_keys = 64;
    Duration batch_interval = 0;
    std::vector<Key> pending;    // snapshot queue (keys left to stream)
    size_t cursor = 0;
    std::set<NodeId> targets;    // every target that received a stream
    std::map<NodeId, uint64_t> next_seq;  // per-target batch sequence
    uint64_t keys_streamed = 0;
    uint64_t entries_streamed = 0;
    uint64_t entries_mirrored = 0;
    bool snapshot_done = false;
  };
  std::unique_ptr<MigrationSource> mig_src_;

  // Migration inflow sessions keyed by (migration_id, source): entries
  // applied ahead of the epoch flip. A session must START in the epoch its
  // first batch was stamped with; stragglers of a known session are then
  // accepted across the flip (FIFO links put them before the source's
  // MemSyncDone marker), while unknown stale-epoch batches are dropped.
  struct MigrationInflow {
    uint64_t created_epoch = 0;
    uint64_t entries_applied = 0;
    bool sealed = false;
  };
  std::map<std::pair<uint64_t, NodeId>, MigrationInflow> mig_inflows_;
  uint64_t mig_entries_in_ = 0;
  uint64_t mig_entries_out_ = 0;

 public:
  // Migration introspection for tests / benches / status.
  bool migration_source_active() const { return mig_src_ != nullptr; }
  uint64_t mig_entries_in() const { return mig_entries_in_; }
  uint64_t mig_entries_out() const { return mig_entries_out_; }

 private:

  // Tail state.
  std::unordered_map<Key, std::vector<StabilityWatcher>> watchers_;
  // Coalesced backward stability notifications: newest stable version per
  // key whose notify timer is armed. Map nodes are recycled, and the armed
  // keys ride a FIFO so the per-key timers capture only `this` (see
  // ScheduleStableNotify).
  std::unordered_map<Key, Version> pending_notify_;
  MapNodeCache<std::unordered_map<Key, Version>> pending_notify_cache_;
  std::deque<Key> notify_fifo_;
  // Geo notifications not yet acknowledged by the local replicator,
  // resent periodically — a lost notification would otherwise silently
  // prevent an update from ever being shipped or acknowledged. Keyed by
  // encoded (key, version); the value is the shared frame encoded exactly
  // once at stabilization time, so every retry is a refcount bump.
  std::unordered_map<std::string, Payload> pending_geo_notify_;
  uint64_t geo_notify_timer_ = 0;

  std::unordered_map<Key, std::vector<DeferredGet>> deferred_gets_;

  // Chain pipelining: next sequence number per down-chain successor link.
  // Stamped on every in-band CrxChainPut forward; 0 marks out-of-band
  // re-propagation (anti-entropy, repair).
  std::unordered_map<NodeId, uint64_t> next_chain_seq_;

  // Cumulative client acks awaiting their flush timer (only populated when
  // config_.ack_batch_window > 0). Entries persist across windows so the
  // ack vector's capacity is reused; `armed` tracks the pending flush timer.
  struct PendingAckBatch {
    CrxPutAckBatch batch;
    bool armed = false;
  };
  std::unordered_map<Address, PendingAckBatch> pending_client_acks_;

  // Stats.
  uint64_t reads_served_ = 0;
  std::vector<uint64_t> reads_by_position_;
  uint64_t writes_applied_ = 0;
  uint64_t dep_checks_sent_ = 0;
  uint64_t dep_waits_ = 0;
  uint64_t dep_wait_total_us_ = 0;
  Histogram dep_wait_hist_;
  uint64_t gets_forwarded_ = 0;

  // Observability (all null until AttachObs; hot paths test one pointer).
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector* trace_sink_ = nullptr;
  Counter* m_puts_head_ = nullptr;
  Counter* m_puts_middle_ = nullptr;
  Counter* m_puts_tail_ = nullptr;
  std::vector<Counter*> m_reads_by_position_;
  Counter* m_dep_checks_ = nullptr;
  Counter* m_gets_forwarded_ = nullptr;
  Gauge* m_gated_depth_ = nullptr;
  LatencyMetric* m_dep_wait_ = nullptr;
  Counter* m_ack_batched_ = nullptr;
  Gauge* m_store_resident_versions_ = nullptr;
  Gauge* m_store_resident_bytes_ = nullptr;
  Gauge* m_engine_log_bytes_ = nullptr;
  Counter* m_engine_compactions_ = nullptr;
  Gauge* m_engine_cache_hit_ratio_ = nullptr;
  Counter* m_mig_entries_out_ = nullptr;
  Counter* m_mig_entries_in_ = nullptr;
  Gauge* m_mig_source_active_ = nullptr;
  Gauge* m_mig_keys_pending_ = nullptr;
  Gauge* m_mig_inflow_sessions_ = nullptr;
  Gauge* m_chain_lag_ = nullptr;
  Counter* m_dep_stalls_ = nullptr;
  uint64_t engine_compactions_published_ = 0;
  FlightRecorder events_;
};

}  // namespace chainreaction

#endif  // SRC_CORE_CHAINREACTION_NODE_H_

#include "src/core/chainreaction_client.h"

#include <utility>

#include "src/common/logging.h"

namespace chainreaction {

ChainReactionClient::ChainReactionClient(Address address, CrxConfig config, Ring ring,
                                         uint64_t seed)
    : address_(address), config_(config), ring_(std::move(ring)), rng_(seed) {
  sampling_.sample_every = config_.trace_sample_every;
  sampling_.probability = config_.trace_probability;
  sampling_.slow_trace_us = config_.slow_trace_us;
  trace_rng_ = (seed ^ (static_cast<uint64_t>(address) << 32)) | 1;
}

void ChainReactionClient::AttachObs(MetricsRegistry* metrics, TraceCollector* traces) {
  trace_sink_ = traces;
  if (metrics == nullptr) {
    return;
  }
  const MetricLabels labels = {{"client", std::to_string(address_)}};
  m_put_latency_ = metrics->GetLatency("crx_client_put_latency_us", labels);
  m_get_latency_ = metrics->GetLatency("crx_client_get_latency_us", labels);
  m_deps_bytes_ = metrics->GetGauge("crx_client_deps_bytes", labels);
  m_accessed_keys_ = metrics->GetGauge("crx_client_accessed_keys", labels);
  m_retries_ = metrics->GetCounter("crx_client_retries", labels);
  m_slow_traces_ = metrics->GetCounter("crx_client_slow_traces", labels);
}

void ChainReactionClient::BuildDeps(std::vector<Dependency>* out) const {
  std::vector<Dependency>& deps = *out;
  deps.clear();
  deps.reserve(accessed_.size());
  for (const auto& [key, entry] : accessed_) {
    // A dependency is known DC-Write-Stable either because a reply said so
    // or because the cluster watermark covers it.
    const bool covered = WatermarkCovers(entry.version);
    const bool stable = entry.stable || covered;
    if (stable && config_.num_dcs <= 1) {
      // Already on every replica of its chain; with no remote DCs nobody
      // ever needs this dependency again.
      continue;
    }
    if (covered && config_.num_dcs > 1) {
      // Watermark compression, multi-DC: the cluster watermark proved this
      // version DC-Write-Stable at least a gossip round before now, so its
      // geo notification left the tail well before the write we are about
      // to issue can stabilize and ship — FIFO geo channels then deliver it
      // first, and remote DCs never need the explicit entry. Deps that are
      // merely reply-stable stay on the wire: they can be arbitrarily
      // fresh, and remote apply still gates on them.
      continue;
    }
    deps.push_back(Dependency{key, entry.version, stable});
  }
}

void ChainReactionClient::LearnWatermark(uint64_t epoch, uint64_t wm) {
  if (!config_.dep_watermark || wm == 0) {
    return;
  }
  wm_cover_ = std::max(wm_cover_, wm);
  if (epoch > wm_epoch_) {
    wm_epoch_ = epoch;
    wm_hint_ = wm;
  } else if (epoch == wm_epoch_) {
    wm_hint_ = std::max(wm_hint_, wm);
  }
}

size_t ChainReactionClient::AccessedSetBytes() const {
  // Pure arithmetic (Dependency::EncodedSize): this runs on every put when a
  // metrics registry is attached, so it must not serialize anything.
  size_t bytes = 0;
  for (const auto& [key, entry] : accessed_) {
    bytes += 4 + key.size() + entry.version.EncodedSize() + 1;
  }
  return bytes;
}

ChainReactionClient::PendingOp& ChainReactionClient::ClaimPending(RequestId req) {
  PendingOp& op = pending_cache_.Claim(pending_, req).first->second;
  // A recycled node carries the previous op's state: reset every field, but
  // through clear() so key/value/deps keep their heap capacity.
  op.is_put = false;
  op.key.clear();
  op.value.clear();
  op.deps.clear();
  op.put_cb = nullptr;
  op.get_cb = nullptr;
  op.timer = 0;
  op.attempts = 0;
  op.started_at = 0;
  op.trace = TraceContext{};
  op.head_sampled = false;
  op.with_deps = false;
  op.has_min_override = false;
  op.min_override = Version{};
  return op;
}

void ChainReactionClient::Put(const Key& key, Value value, PutCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = ClaimPending(req);
  op.is_put = true;
  op.key = key;
  op.value = std::move(value);
  op.put_cb = std::move(cb);
  SendPut(req);
}

void ChainReactionClient::SendPut(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  PendingOp& op = it->second;
  if (op.attempts == 0) {
    // Snapshot the dependency set once; retries must resend the same deps
    // even if other (pipelined) operations changed the accessed-set since.
    // The deps vector was handed off to the last PutResult; take back the
    // buffer reclaimed after that callback so the fill below reuses it.
    if (op.deps.capacity() == 0) {
      op.deps.swap(spare_result_deps_);
    }
    BuildDeps(&op.deps);
    op.started_at = env_->Now();
    if (m_deps_bytes_ != nullptr) {
      m_deps_bytes_->Set(static_cast<int64_t>(AccessedSetBytes()));
      m_accessed_keys_->Set(static_cast<int64_t>(accessed_.size()));
    }
    // Head sampling decides up front; with tail capture on, every put is
    // traced and the keep/drop decision happens at ack time.
    op.head_sampled = sampling_.HeadSample(puts_started_++, &trace_rng_);
    if (op.head_sampled || sampling_.capture_all()) {
      op.trace.id = MakeTraceId(address_, req);
      TraceHopAndReport(&op.trace, trace_sink_, HopKind::kClientPut, address_, config_.local_dc,
                        static_cast<uint32_t>(op.deps.size()), env_->Now());
    }
  }
  op.attempts++;
  // Encode through a view over the pending op's own fields: no owned CrxPut
  // is built just to serialize it. The view dies before Send returns.
  CrxPutView msg;
  msg.req = req;
  msg.client = address_;
  msg.key = op.key;
  msg.value = op.value;
  msg.deps.assign(op.deps.begin(), op.deps.end());
  if (config_.dep_watermark) {
    msg.wm_epoch = wm_epoch_;
    msg.dep_wm = wm_hint_;
  }
  msg.trace = op.trace;
  env_->Send(ring_.HeadFor(op.key), Enc(msg));
  ArmTimer(req);
}

ChainIndex ChainReactionClient::AllowedPrefix(const Key& key) const {
  switch (config_.read_policy) {
    case ReadPolicy::kHeadOnly:
      return 1;
    case ReadPolicy::kAnyNodeUnsafe:
      return config_.replication;
    case ReadPolicy::kUniformPrefix:
      break;
  }
  auto it = metadata_.find(key);
  if (it == metadata_.end()) {
    // No constraint on this key: anything it could transitively depend on
    // was made DC-Write-Stable by the write gating, so the whole chain is
    // safe to read.
    return config_.replication;
  }
  // Watermark coverage proves the version DC-Write-Stable on every replica —
  // the same condition under which a stable read reply widens the prefix.
  if (WatermarkCovers(it->second.version)) {
    return config_.replication;
  }
  return it->second.chain_index;
}

void ChainReactionClient::Get(const Key& key, GetCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = ClaimPending(req);
  op.key = key;
  op.get_cb = std::move(cb);
  SendGet(req);
}

void ChainReactionClient::SendGet(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  PendingOp& op = it->second;
  if (op.attempts == 0) {
    op.started_at = env_->Now();
  }
  op.attempts++;

  CrxGet msg;
  msg.req = req;
  msg.client = address_;
  msg.key = op.key;
  msg.with_deps = op.with_deps;
  if (op.has_min_override) {
    msg.min_version = op.min_override;
  } else if (config_.read_policy != ReadPolicy::kAnyNodeUnsafe) {
    auto md = metadata_.find(op.key);
    if (md != metadata_.end()) {
      msg.min_version = md->second.version;
    }
  }

  const ChainIndex allowed = std::max<ChainIndex>(1, AllowedPrefix(op.key));
  const ChainIndex pos = 1 + static_cast<ChainIndex>(rng_.NextBelow(allowed));
  const NodeId target = ring_.ChainFor(op.key)[pos - 1];
  env_->Send(target, Enc(msg));
  ArmTimer(req);
}

void ChainReactionClient::ArmTimer(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  it->second.timer = env_->Schedule(config_.client_timeout, [this, req]() {
    auto pit = pending_.find(req);
    if (pit == pending_.end()) {
      return;
    }
    retries_++;
    if (m_retries_ != nullptr) {
      m_retries_->Inc();
    }
    if (pit->second.is_put) {
      SendPut(req);
    } else {
      SendGet(req);
    }
  });
}

void ChainReactionClient::OnMessage(Address /*from*/, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kCrxPutAck: {
      CrxPutAck m;
      bool ok;
      {
        AllocPhaseScope phase(AllocPhase::kDecode);
        ok = DecodeMessage(payload, &m);
      }
      if (ok) {
        HandlePutAck(m);
      }
      break;
    }
    case MsgType::kCrxPutAckBatch: {
      // Cumulative ack: entries are in ack order, so processing them
      // sequentially is identical to receiving individual CrxPutAcks.
      CrxPutAckBatch m;
      bool ok;
      {
        AllocPhaseScope phase(AllocPhase::kDecode);
        ok = DecodeMessage(payload, &m);
      }
      if (ok) {
        for (const CrxPutAck& ack : m.acks) {
          HandlePutAck(ack);
        }
      }
      break;
    }
    case MsgType::kCrxGetReply: {
      // Hot path: the view's key/value alias `payload` and stay valid for
      // the duration of this call only.
      CrxGetReplyView m;
      bool ok;
      {
        AllocPhaseScope phase(AllocPhase::kDecode);
        ok = DecodeMessage(payload, &m);
      }
      if (ok) {
        HandleGetReply(m);
      }
      break;
    }
    case MsgType::kMemNewMembership: {
      MemNewMembership m;
      if (DecodeMessage(payload, &m) && m.epoch > ring_.epoch()) {
        ring_ = Ring(m.nodes, config_.vnodes, config_.replication, m.epoch, m.weights);
      }
      break;
    }
    default:
      LOG_WARN("client %u: unexpected message type %u", address_,
               static_cast<unsigned>(PeekType(payload)));
  }
}

void ChainReactionClient::HandlePutAck(const CrxPutAck& ack) {
  auto it = pending_.find(ack.req);
  if (it == pending_.end() || !it->second.is_put) {
    return;  // duplicate ack after retry
  }
  env_->CancelTimer(it->second.timer);
  LearnWatermark(ack.wm_epoch, ack.stable_wm);
  const int64_t latency = env_->Now() - it->second.started_at;
  if (m_put_latency_ != nullptr) {
    // Traced puts attach their id as a histogram exemplar, linking the
    // latency bucket to the retained trace.
    m_put_latency_->RecordWithExemplar(latency, ack.trace.id);
  }
  if (ack.trace.active()) {
    TraceContext done = ack.trace;
    TraceHopAndReport(&done, trace_sink_, HopKind::kClientAck, address_, config_.local_dc,
                      ack.acked_at, env_->Now());
    // Tail decision: slow puts are always retained (never lost to the
    // sampler); fast ones survive only if head-sampled.
    if (sampling_.capture_all() && trace_sink_ != nullptr) {
      if (latency >= sampling_.slow_trace_us) {
        trace_sink_->Retain(done.id);
        if (m_slow_traces_ != nullptr) {
          m_slow_traces_->Inc();
        }
      } else if (!it->second.head_sampled) {
        trace_sink_->Discard(done.id);
      }
    }
  }

  const bool stable = ack.acked_at >= config_.replication;
  metadata_[ack.key] = KeyMetadata{ack.version, ack.acked_at};
  // The new write causally subsumes everything accessed before it. In the
  // steady put stream the set holds exactly one entry, so rewrite that node
  // in place instead of freeing and reallocating it on every ack.
  if (accessed_.size() == 1) {
    auto node = accessed_.extract(accessed_.begin());
    node.key() = ack.key;
    node.mapped() = AccessedEntry{ack.version, stable};
    accessed_.insert(std::move(node));
  } else {
    accessed_.clear();
    accessed_[ack.key] = AccessedEntry{ack.version, stable};
  }

  PutCallback cb = std::move(it->second.put_cb);
  std::vector<Dependency> deps = std::move(it->second.deps);
  pending_cache_.Erase(pending_, it);
  if (cb) {
    AllocPhaseScope phase(AllocPhase::kCallback);
    PutResult result{Status::Ok(), ack.version, std::move(deps)};
    cb(result);
    // The callback sees the result by const ref, so the deps buffer is
    // intact afterwards; keep it for the next SendPut's dependency fill.
    result.deps.clear();
    spare_result_deps_ = std::move(result.deps);
  }
}

void ChainReactionClient::HandleGetReply(const CrxGetReplyView& reply) {
  auto it = pending_.find(reply.req);
  if (it == pending_.end() || it->second.is_put) {
    return;
  }
  env_->CancelTimer(it->second.timer);
  LearnWatermark(reply.wm_epoch, reply.stable_wm);
  if (m_get_latency_ != nullptr) {
    m_get_latency_->Record(env_->Now() - it->second.started_at);
  }

  if (reply.found) {
    const Key key(reply.key);  // materialized once; the view dies with the call
    const ChainIndex new_index = reply.stable ? config_.replication : reply.position;
    auto md = metadata_.find(key);
    if (md == metadata_.end()) {
      metadata_[key] = KeyMetadata{reply.version, new_index};
    } else if (md->second.version == reply.version) {
      md->second.chain_index = std::max(md->second.chain_index, new_index);
    } else if (md->second.version.LwwLess(reply.version)) {
      md->second = KeyMetadata{reply.version, new_index};
    }
    // else: the node answered with an older version than our causal past —
    // only possible in kAnyNodeUnsafe mode; keep the stronger metadata.

    auto acc = accessed_.find(key);
    if (acc == accessed_.end() || acc->second.version.LwwLess(reply.version)) {
      accessed_[key] = AccessedEntry{reply.version, reply.stable};
    } else if (acc->second.version == reply.version && reply.stable) {
      acc->second.stable = true;
    }
  }

  GetCallback cb = std::move(it->second.get_cb);
  GetResult result;
  result.status = Status::Ok();
  result.found = reply.found;
  result.value = Value(reply.value);  // the result owns its copy
  result.version = reply.version;
  result.answered_by_position = reply.position;
  result.deps.assign(reply.deps.begin(), reply.deps.end());
  pending_cache_.Erase(pending_, it);
  if (cb) {
    AllocPhaseScope phase(AllocPhase::kCallback);
    cb(result);
  }
}

void ChainReactionClient::MultiGet(std::vector<Key> keys, MultiGetCallback cb) {
  const uint64_t txn_id = next_txn_id_++;
  PendingMultiGet& txn = multigets_[txn_id];
  txn.keys = std::move(keys);
  txn.results.resize(txn.keys.size());
  txn.outstanding = txn.keys.size();
  txn.cb = std::move(cb);
  if (txn.keys.empty()) {
    MultiGetResult out;
    out.status = Status::Ok();
    MultiGetCallback done = std::move(txn.cb);
    multigets_.erase(txn_id);
    done(out);
    return;
  }
  for (size_t i = 0; i < multigets_[txn_id].keys.size(); ++i) {
    StartTxnGet(txn_id, i, /*has_min=*/false, Version{});
  }
}

void ChainReactionClient::StartTxnGet(uint64_t txn_id, size_t index, bool has_min,
                                      const Version& min) {
  const Key key = multigets_[txn_id].keys[index];
  const RequestId req = next_req_++;
  PendingOp& op = ClaimPending(req);
  op.key = key;
  op.with_deps = true;
  op.has_min_override = has_min;
  op.min_override = min;
  op.get_cb = [this, txn_id, index](const GetResult& r) {
    auto it = multigets_.find(txn_id);
    if (it == multigets_.end()) {
      return;
    }
    it->second.results[index] = r;
    if (--it->second.outstanding == 0) {
      FinishMultiGetRound(txn_id);
    }
  };
  SendGet(req);
}

void ChainReactionClient::FinishMultiGetRound(uint64_t txn_id) {
  PendingMultiGet& txn = multigets_[txn_id];

  if (txn.round == 1) {
    // Collect, per requested key, the dependency versions that co-read
    // results require of it.
    std::unordered_map<size_t, std::vector<Version>> required;
    for (const GetResult& r : txn.results) {
      if (!r.found) {
        continue;
      }
      for (const Dependency& dep : r.deps) {
        for (size_t i = 0; i < txn.keys.size(); ++i) {
          if (txn.keys[i] == dep.key) {
            required[i].push_back(dep.version);
          }
        }
      }
    }

    // A result violates the snapshot iff some *single* co-read dependency
    // strictly causally dominates it. (Testing against a merged vector
    // would over-flag: the componentwise max of concurrent dependencies
    // corresponds to no real write, and concurrent LWW winners are
    // acceptable under causal+ convergence.) The refetch floor merges
    // exactly the dominating dependencies; any replica satisfies it once
    // it has applied them all.
    std::vector<std::pair<size_t, Version>> refetch;
    for (const auto& [i, needs] : required) {
      const GetResult& r = txn.results[i];
      Version floor;
      bool stale = false;
      for (const Version& need : needs) {
        const bool dominates =
            need.vv.Dominates(r.version.vv) && !(need.vv == r.version.vv);
        if (!r.found || dominates) {
          stale = true;
          floor.vv.MergeMax(need.vv);
          if (floor.lamport < need.lamport) {
            floor.lamport = need.lamport;
            floor.origin = need.origin;
          }
        }
      }
      if (stale) {
        refetch.push_back({i, floor});
      }
    }
    if (!refetch.empty()) {
      txn.round = 2;
      multiget_second_rounds_++;
      txn.outstanding = refetch.size();
      for (const auto& [i, need] : refetch) {
        StartTxnGet(txn_id, i, /*has_min=*/true, need);
      }
      return;
    }
  }

  MultiGetResult out;
  out.status = Status::Ok();
  out.rounds = txn.round;
  out.results = std::move(txn.results);
  MultiGetCallback done = std::move(txn.cb);
  multigets_.erase(txn_id);
  if (done) {
    done(out);
  }
}

}  // namespace chainreaction

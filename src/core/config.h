// Configuration shared by ChainReaction nodes and clients.
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/types.h"
#include "src/engine/storage_engine.h"

namespace chainreaction {

// How a client picks the chain position of a read within its allowed
// prefix. kUniformPrefix is the paper's policy and the default; the others
// exist for ablations and for validating the consistency checker.
enum class ReadPolicy {
  kUniformPrefix,  // uniform over [1, chain_index] — the paper's policy
  kHeadOnly,       // always position 1 (trivially causal, no distribution)
  kAnyNodeUnsafe,  // uniform over [1, R] ignoring metadata — VIOLATES
                   // causality; used only to prove the checker catches it
};

struct CrxConfig {
  uint32_t replication = 3;  // chain length R
  uint32_t k_stability = 2;  // ack after the first k nodes applied (1 <= k <= R)
  uint32_t vnodes = 16;      // virtual nodes per server on the ring

  DcId local_dc = 0;
  uint16_t num_dcs = 1;

  // Address of this DC's geo replicator; 0 disables geo shipping.
  Address geo_replicator = 0;

  // Heartbeat target and period for membership failure detection; 0
  // disables heartbeats (oracle membership). NOTE: enabling this keeps a
  // periodic timer alive forever — drive such clusters with RunUntil.
  Address membership = 0;
  Duration heartbeat_interval = 0;

  // Failure-detection tuning. The service sweeps for silent nodes every
  // fd_sweep_interval and declares a node dead after fd_timeout without a
  // heartbeat. 0 picks the defaults derived from heartbeat_interval (sweep
  // every heartbeat_interval, timeout at 4x — the pre-knob behavior).
  Duration fd_sweep_interval = 0;
  Duration fd_timeout = 0;

  // When > 0, the membership service re-broadcasts the current epoch on
  // this period even without topology changes, so listeners that missed an
  // epoch announcement (or joined late) converge without waiting for the
  // next change. 0 (the default) broadcasts only on change.
  Duration membership_rebroadcast_interval = 0;

  // Retry timeout for client requests.
  Duration client_timeout = 500 * kMillisecond;

  // Tails coalesce backward stability notifications per key for this long
  // (hot keys stabilize many versions per notification instead of one
  // message each). 0 sends immediately.
  Duration stable_notify_delay = 100;  // microseconds

  // Nodes at the k-stability position coalesce client acks per client for
  // this long and reply with one cumulative CrxPutAckBatch per window
  // instead of one CrxPutAck per put. 0 (the default) sends each ack
  // immediately — the pre-batching wire behavior.
  Duration ack_batch_window = 0;  // microseconds

  // Geo replicators coalesce outgoing GeoShips per peer DC for this long
  // and send one GeoShipBatch per window. 0 (the default) ships each
  // stable version in its own frame.
  Duration geo_ship_batch_window = 0;  // microseconds

  ReadPolicy read_policy = ReadPolicy::kUniformPrefix;

  // Wire format for hot-path Crx frames. kV2 (the default) varint-encodes
  // bodies and flags the type tag; receivers decode both formats
  // unconditionally, so mixed clusters are safe. kV1 is the legacy
  // fixed-width format, kept as an honest baseline for bytes/op
  // comparisons (bench_e8).
  WireFormat wire_format = WireFormat::kV2;

  // Watermark dependency compression (requires wire_format=kV2 to have any
  // effect: the watermark gossip rides only in v2 frames). Nodes track the
  // oldest non-DC-Write-Stable locally-minted version in their store and
  // gossip per-node stable cuts; the cluster-wide minimum W guarantees
  // every local-origin version with lamport <= W is DC-Write-Stable.
  // Clients drop (single-DC) or pre-mark local_stable (multi-DC) any
  // dependency covered by W, so the common-case put ships one scalar
  // instead of a dep list, and heads skip stability checks for covered
  // deps. Off by default: explicit COPS-style dep lists are the paper's
  // protocol and the bench baseline.
  bool dep_watermark = false;

  // Period of the direct stable-cut broadcast between ring peers while
  // dep_watermark is on. Piggybacked cuts on chain traffic only reach
  // chain-adjacent peers; the broadcast closes the gap. Activity-gated: a
  // node broadcasts for a couple of rounds after protocol traffic and then
  // goes silent, so quiescent clusters stay quiescent.
  Duration wm_gossip_interval = 5 * kMillisecond;

  // Value-storage engine. kMem keeps values inline in the store (the
  // historical behavior). kDisk stores values in an append-only log under
  // the node's data dir (requires durability to be enabled with a data
  // dir); the store keeps at most ~engine_cache_bytes of hot values
  // materialized in memory.
  StorageEngineKind engine = StorageEngineKind::kMem;
  uint64_t engine_cache_bytes = 64u << 20;
  uint64_t engine_segment_bytes = 8u << 20;
  // A sealed value-log segment is compacted once this fraction is garbage.
  double engine_compact_garbage = 0.5;

  // Safety valve for reads deferred at the head waiting for a version that
  // never arrives (should not happen in correct configurations).
  Duration deferred_read_timeout = 1 * kSecond;

  // Heads re-propagate versions that have not become DC-Write-Stable after
  // this long — the anti-entropy that restores chain liveness when chain
  // messages are lost. The timer only runs while unstable head versions
  // exist, so quiescent clusters stay quiescent.
  Duration anti_entropy_interval = 500 * kMillisecond;

  // A node rejoining after a crash-restart buffers client puts (and guards
  // reads of chains it just joined) after the epoch that re-adds it: its
  // recovered store may be behind, and assigning versions from a stale
  // per-key version vector would fork the version order. The primary drain
  // trigger is completion-based — one MemSyncDone marker per established
  // peer, sent after that peer's repair pushes — because under load the
  // repair storm can take hundreds of milliseconds. This duration is the
  // fallback window against lost markers; 0 disables the barrier entirely.
  Duration rejoin_grace = 250 * kMillisecond;

  // TESTING ONLY: disable the dependency-stability gating at the head. With
  // this off, the causal+ checker must detect violations (see tests).
  bool disable_dependency_gating = false;

  // Clients attach a trace header to every Nth put (0 disables tracing).
  // Traced puts accumulate per-hop annotations end-to-end; see src/obs/.
  uint32_t trace_sample_every = 0;

  // Probabilistic head sampling: additionally trace each put with this
  // probability (0 disables). Combines with trace_sample_every.
  double trace_probability = 0.0;

  // Tail-based capture: when > 0, EVERY put carries a trace context, and on
  // ack the client retains the trace iff the observed latency was >= this
  // many microseconds (or the put was head-sampled anyway); other traces
  // are discarded. Slow requests thus always keep their full hop trace.
  int64_t slow_trace_us = 0;

  // Dep-stall watchdog: flag (flight-recorder kDepStall + crx_dep_stalls_total)
  // any gated write whose dep-wait exceeds this multiple of the node's
  // chain-lag EWMA (crx_chain_lag_us, the typical head->tail stabilization
  // time). Such waits mean the blocking chain is stuck, not merely busy.
  // 0 disables the watchdog.
  double stall_depwait_multiple = 8.0;
};

}  // namespace chainreaction

#endif  // SRC_CORE_CONFIG_H_

// ChainReaction client library.
//
// The client library is where half of the paper's protocol lives:
//   * Per-key metadata (version, chain_index): the newest version of the key
//     this session causally depends on, and how many chain-prefix nodes are
//     known to have applied it. Reads are load-balanced uniformly over that
//     prefix; a reply carrying a DC-Write-Stable version widens the prefix
//     to the whole chain.
//   * The accessed-set: COPS-style nearest dependencies — every key
//     read/written since the session's last write. It is attached to the
//     next put and collapses to {written key} once that put is acked
//     (causal transitivity).
//
// The client is an Actor like everything else, so it runs unchanged on the
// simulator and on the TCP transport. Operations are asynchronous with
// completion callbacks; a session must keep operations sequential for
// session guarantees to be meaningful (the YCSB driver does).
#ifndef SRC_CORE_CHAINREACTION_CLIENT_H_
#define SRC_CORE_CHAINREACTION_CLIENT_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/node_cache.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/core/config.h"
#include "src/msg/message.h"
#include "src/obs/alloc_phase.h"
#include "src/obs/metrics.h"
#include "src/obs/sampling.h"
#include "src/obs/trace.h"
#include "src/ring/ring.h"
#include "src/sim/env.h"

namespace chainreaction {

class ChainReactionClient : public Actor {
 public:
  struct PutResult {
    Status status;
    Version version;
    // The dependency set the write carried (for consistency checkers).
    std::vector<Dependency> deps;
  };
  struct GetResult {
    Status status;
    bool found = false;
    Value value;
    Version version;
    ChainIndex answered_by_position = 0;
    // Write-time dependencies of the returned version (multi-get only).
    std::vector<Dependency> deps;
  };
  // A causally consistent multi-key snapshot (COPS-GT-style read
  // transaction, DESIGN.md §3.8): no returned version is causally older
  // than a dependency of another returned version.
  struct MultiGetResult {
    Status status;
    std::vector<GetResult> results;  // parallel to the requested keys
    uint32_t rounds = 1;             // 1 if the first round was consistent
  };
  using PutCallback = std::function<void(const PutResult&)>;
  using GetCallback = std::function<void(const GetResult&)>;
  using MultiGetCallback = std::function<void(const MultiGetResult&)>;

  ChainReactionClient(Address address, CrxConfig config, Ring ring, uint64_t seed);

  void AttachEnv(Env* env) { env_ = env; }

  // Optional observability: op latency histograms, metadata-size gauges, and
  // the sink traced puts report their client-side hops to. The client starts
  // a trace on every config.trace_sample_every-th put (0 = never).
  void AttachObs(MetricsRegistry* metrics, TraceCollector* traces);

  void Put(const Key& key, Value value, PutCallback cb);
  void Get(const Key& key, GetCallback cb);

  // Reads a causally consistent snapshot of `keys` in at most two rounds:
  // round one reads every key (with dependency lists); if some returned
  // version is strictly dominated by a dependency of another, those keys
  // are re-read constrained to the required minimum versions.
  void MultiGet(std::vector<Key> keys, MultiGetCallback cb);

  uint64_t multiget_second_rounds() const { return multiget_second_rounds_; }

  void OnMessage(Address from, std::string_view payload) override;

  // Introspection (E8 metadata experiment, tests) -------------------------
  size_t metadata_entries() const { return metadata_.size(); }
  size_t accessed_set_size() const { return accessed_.size(); }
  // Approximate wire size of the dependency metadata the next put would
  // carry (bytes).
  size_t AccessedSetBytes() const;
  uint64_t retries() const { return retries_; }
  Address address() const { return address_; }
  // Watermark introspection (dep_watermark): the highest cluster watermark
  // W this client has learned from any ack/reply. Every local-origin
  // version with lamport <= W is DC-Write-Stable (stability is monotone, so
  // W from a past epoch stays valid for dependency coverage).
  uint64_t watermark() const { return wm_cover_; }

  // Tests only: exposes the per-key metadata pair (version, chain_index).
  bool LookupMetadata(const Key& key, Version* version, ChainIndex* index) const {
    auto it = metadata_.find(key);
    if (it == metadata_.end()) {
      return false;
    }
    if (version != nullptr) {
      *version = it->second.version;
    }
    if (index != nullptr) {
      *index = it->second.chain_index;
    }
    return true;
  }

  // Tests only: forget all session state.
  void ResetSession() {
    metadata_.clear();
    accessed_.clear();
  }

 private:
  struct KeyMetadata {
    Version version;
    ChainIndex chain_index = 0;
  };

  struct PendingOp {
    bool is_put = false;
    Key key;
    Value value;  // puts only
    std::vector<Dependency> deps;  // puts only; echoed to the caller
    PutCallback put_cb;
    GetCallback get_cb;
    uint64_t timer = 0;
    uint32_t attempts = 0;
    Time started_at = 0;
    TraceContext trace;  // active iff this put carries a trace context
    bool head_sampled = false;  // head decision; tail capture may still retain
    // Gets issued by a read transaction:
    bool with_deps = false;
    bool has_min_override = false;
    Version min_override;
  };

  struct PendingMultiGet {
    std::vector<Key> keys;
    std::vector<GetResult> results;
    size_t outstanding = 0;
    uint32_t round = 1;
    MultiGetCallback cb;
  };

  void SendPut(RequestId req);
  void SendGet(RequestId req);
  void StartTxnGet(uint64_t txn_id, size_t index, bool has_min, const Version& min);
  void FinishMultiGetRound(uint64_t txn_id);
  void ArmTimer(RequestId req);
  // Inserts `req` into pending_ (recycling the node the last completed op
  // freed) and resets every PendingOp field, keeping buffer capacities.
  PendingOp& ClaimPending(RequestId req);
  void HandlePutAck(const CrxPutAck& ack);
  // The view aliases the transport buffer; every field the client keeps
  // (value, deps, metadata) is copied into owned state inside the call.
  void HandleGetReply(const CrxGetReplyView& reply);

  ChainIndex AllowedPrefix(const Key& key) const;
  // Fills `out` (cleared first) so a caller-owned vector's capacity is
  // reused across puts instead of allocating a fresh list per op.
  void BuildDeps(std::vector<Dependency>* out) const;

  // Watermark compression (dep_watermark; DESIGN.md §14) ------------------
  // Records a cluster watermark piggybacked on a v2 ack/reply.
  void LearnWatermark(uint64_t epoch, uint64_t wm);
  // True iff the watermark proves `v` DC-Write-Stable everywhere.
  bool WatermarkCovers(const Version& v) const {
    return config_.dep_watermark && !v.IsNull() && v.origin == config_.local_dc &&
           v.lamport <= wm_cover_;
  }

  template <typename M>
  std::string Enc(const M& m) const {
    AllocPhaseScope phase(AllocPhase::kEncode);
    return EncodeMessage(m, config_.wire_format);
  }

  Address address_;
  CrxConfig config_;
  Env* env_ = nullptr;
  Ring ring_;
  Rng rng_;

  RequestId next_req_ = 1;
  std::unordered_map<RequestId, PendingOp> pending_;
  MapNodeCache<std::unordered_map<RequestId, PendingOp>> pending_cache_;
  // Dependency buffer reclaimed from the last delivered PutResult; the next
  // SendPut fills it in place instead of allocating a fresh vector.
  std::vector<Dependency> spare_result_deps_;
  std::unordered_map<Key, KeyMetadata> metadata_;
  // Nearest dependencies accumulated since the last write. `stable` marks
  // versions the client knows to be DC-Write-Stable (read replies say so);
  // those need no stability gating and, in single-DC deployments, are not
  // sent at all.
  struct AccessedEntry {
    Version version;
    bool stable = false;
  };
  std::unordered_map<Key, AccessedEntry> accessed_;
  uint64_t next_txn_id_ = 1;
  std::unordered_map<uint64_t, PendingMultiGet> multigets_;
  uint64_t multiget_second_rounds_ = 0;
  uint64_t retries_ = 0;

  // Watermark state (dep_watermark): wm_cover_ is the max W ever learned
  // (monotone — used for dependency coverage); (wm_epoch_, wm_hint_) is the
  // newest-epoch W, echoed on puts as a floor for the head's own
  // computation (heads only accept same-epoch hints).
  uint64_t wm_cover_ = 0;
  uint64_t wm_epoch_ = 0;
  uint64_t wm_hint_ = 0;

  // Observability (all null until AttachObs).
  TraceCollector* trace_sink_ = nullptr;
  LatencyMetric* m_put_latency_ = nullptr;
  LatencyMetric* m_get_latency_ = nullptr;
  Gauge* m_deps_bytes_ = nullptr;
  Gauge* m_accessed_keys_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_slow_traces_ = nullptr;  // tail-retained slow puts
  TraceSamplingPolicy sampling_;      // derived from config in the ctor
  uint64_t puts_started_ = 0;  // trace sampling counter
  uint64_t trace_rng_ = 1;     // xorshift state for probabilistic sampling
};

}  // namespace chainreaction

#endif  // SRC_CORE_CHAINREACTION_CLIENT_H_

#include "src/admin/migration.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

void MigrationCoordinator::AttachObs(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  m_started_ = metrics->GetCounter("crx_mig_started", {});
  m_completed_ = metrics->GetCounter("crx_mig_completed", {});
  m_aborted_ = metrics->GetCounter("crx_mig_aborted", {});
  m_active_ = metrics->GetGauge("crx_mig_active", {});
  m_pending_seals_ = metrics->GetGauge("crx_mig_pending_seals", {});
}

void MigrationCoordinator::Seed(uint64_t epoch, std::vector<NodeId> nodes,
                                std::vector<uint32_t> weights) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
  nodes_ = std::move(nodes);
  weights_ = std::move(weights);
  if (weights_.empty()) {
    weights_.assign(nodes_.size(), options_.vnodes);
  }
  CHAINRX_CHECK(weights_.size() == nodes_.size());
  observed_epoch_.store(epoch_, std::memory_order_relaxed);
}

uint64_t MigrationCoordinator::StartJoin(NodeId node, uint32_t weight) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) {
    return 0;  // already a member
  }
  return EnqueueLocked(
      Plan{0, PlanKind::kJoin, node, weight == 0 ? options_.vnodes : weight});
}

uint64_t MigrationCoordinator::StartDrain(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
    return 0;  // not a member
  }
  // Count drains already queued so a burst cannot sink the ring below R.
  size_t pending_drains = 0;
  for (const Plan& p : queue_) {
    pending_drains += p.kind == PlanKind::kDrain ? 1 : 0;
  }
  if (active_plan_ != nullptr && active_plan_->plan.kind == PlanKind::kDrain) {
    pending_drains++;
  }
  if (nodes_.size() - pending_drains <= options_.replication) {
    return 0;  // would break the chain length
  }
  return EnqueueLocked(Plan{0, PlanKind::kDrain, node, 0});
}

uint64_t MigrationCoordinator::StartRebalance(NodeId node, uint32_t weight) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || weight == 0) {
    return 0;
  }
  if (weights_[static_cast<size_t>(it - nodes_.begin())] == weight) {
    return 0;  // no-op
  }
  return EnqueueLocked(Plan{0, PlanKind::kRebalance, node, weight});
}

uint64_t MigrationCoordinator::EnqueueLocked(Plan plan) {
  // Ids embed the epoch so a coordinator restart never reuses a live id.
  plan.id = (epoch_ << 16) | (++next_plan_seq_ & 0xFFFF);
  queue_.push_back(plan);
  if (active_plan_ == nullptr) {
    StartNextLocked();
  }
  return plan.id;
}

void MigrationCoordinator::StartNextLocked() {
  if (active_plan_ != nullptr || queue_.empty()) {
    return;
  }
  active_plan_ = std::make_unique<Active>();
  active_plan_->plan = queue_.front();
  queue_.pop_front();
  active_.store(true, std::memory_order_release);
  if (m_active_ != nullptr) {
    m_active_->Set(1);
  }
  LaunchLocked();
}

bool MigrationCoordinator::PlanTopologyLocked(const Plan& plan, std::vector<NodeId>* nodes,
                                              std::vector<uint32_t>* weights) const {
  *nodes = nodes_;
  *weights = weights_;
  switch (plan.kind) {
    case PlanKind::kJoin:
      if (std::find(nodes->begin(), nodes->end(), plan.node) != nodes->end()) {
        return false;
      }
      nodes->push_back(plan.node);
      weights->push_back(plan.weight);
      return true;
    case PlanKind::kDrain: {
      auto it = std::find(nodes->begin(), nodes->end(), plan.node);
      if (it == nodes->end() || nodes->size() <= options_.replication) {
        return false;
      }
      weights->erase(weights->begin() + (it - nodes->begin()));
      nodes->erase(it);
      return true;
    }
    case PlanKind::kRebalance: {
      auto it = std::find(nodes->begin(), nodes->end(), plan.node);
      if (it == nodes->end()) {
        return false;
      }
      (*weights)[static_cast<size_t>(it - nodes->begin())] = plan.weight;
      return true;
    }
  }
  return false;
}

void MigrationCoordinator::LaunchLocked() {
  CHAINRX_CHECK(env_ != nullptr);
  Active& a = *active_plan_;
  if (!PlanTopologyLocked(a.plan, &a.planned_nodes, &a.planned_weights)) {
    AbortLocked("plan no longer applies");
    return;
  }
  a.from_epoch = epoch_;
  a.planned_epoch = epoch_ + 1;
  a.started_at = env_->Now();
  if (m_started_ != nullptr) {
    m_started_->Inc();
  }
  LOG_INFO("migration %llu: kind=%d node=%u epoch %llu -> %llu",
           static_cast<unsigned long long>(a.plan.id), static_cast<int>(a.plan.kind),
           a.plan.node, static_cast<unsigned long long>(a.from_epoch),
           static_cast<unsigned long long>(a.planned_epoch));

  // Every current member is a potential source (each streams the keys it
  // heads); each reports which targets it actually fed.
  MigSnapshotRequest req;
  req.migration_id = a.plan.id;
  req.epoch = a.from_epoch;
  req.planned_epoch = a.planned_epoch;
  req.planned_nodes = a.planned_nodes;
  req.planned_weights = a.planned_weights;
  req.coordinator = options_.self;
  req.batch_keys = options_.batch_keys;
  req.batch_interval = static_cast<uint64_t>(options_.batch_interval);
  const std::string payload = EncodeMessage(req);
  for (NodeId node : nodes_) {
    a.pending_sources.insert(node);
    env_->Send(node, payload);
  }

  const uint64_t id = a.plan.id;
  a.timeout_timer = env_->Schedule(options_.timeout, [this, id]() {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_plan_ != nullptr && active_plan_->plan.id == id) {
      active_plan_->timeout_timer = 0;
      AbortLocked("timeout");
    }
  });
}

void MigrationCoordinator::AbortAll(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  CHAINRX_CHECK(env_ != nullptr);
  // Wildcard abort: nodes drop ANY active migration state, including
  // sessions a previous coordinator incarnation left behind.
  MigAbort abort_msg;
  abort_msg.migration_id = 0;
  abort_msg.reason = reason;
  const std::string payload = EncodeMessage(abort_msg);
  for (NodeId node : nodes_) {
    env_->Send(node, payload);
  }
  queue_.clear();
  if (active_plan_ != nullptr) {
    AbortLocked(reason);
  }
}

void MigrationCoordinator::AbortLocked(const std::string& reason) {
  Active& a = *active_plan_;
  LOG_WARN("migration %llu: aborted (%s)", static_cast<unsigned long long>(a.plan.id),
           reason.c_str());
  MigAbort abort_msg;
  abort_msg.migration_id = a.plan.id;
  abort_msg.reason = reason;
  const std::string payload = EncodeMessage(abort_msg);
  for (NodeId node : nodes_) {
    env_->Send(node, payload);
  }
  last_outcome_ = "aborted: " + reason;
  aborted_.fetch_add(1, std::memory_order_relaxed);
  if (m_aborted_ != nullptr) {
    m_aborted_->Inc();
  }
  FinishLocked(/*success=*/false);
}

void MigrationCoordinator::FinishLocked(bool success) {
  Active& a = *active_plan_;
  if (a.timeout_timer != 0) {
    env_->CancelTimer(a.timeout_timer);
  }
  if (success) {
    last_outcome_ = "completed";
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (m_completed_ != nullptr) {
      m_completed_->Inc();
    }
  }
  active_plan_.reset();
  if (m_active_ != nullptr) {
    m_active_->Set(0);
  }
  if (m_pending_seals_ != nullptr) {
    m_pending_seals_->Set(0);
  }
  active_.store(false, std::memory_order_release);
  StartNextLocked();
}

void MigrationCoordinator::MaybeCommitLocked() {
  Active& a = *active_plan_;
  if (a.committed || !a.pending_sources.empty()) {
    return;
  }
  size_t missing = 0;
  for (const auto& pair : a.expected_seals) {
    missing += a.seals.count(pair) == 0 ? 1 : 0;
  }
  if (m_pending_seals_ != nullptr) {
    m_pending_seals_->Set(static_cast<int64_t>(missing));
  }
  if (missing > 0) {
    return;
  }
  // Every stream SEALED: flip the epoch. Completion is the observed
  // MemNewMembership broadcast, not the send.
  a.committed = true;
  MigCommit commit;
  commit.migration_id = a.plan.id;
  commit.planned_epoch = a.planned_epoch;
  commit.nodes = a.planned_nodes;
  commit.weights = a.planned_weights;
  commit.pre_synced.assign(a.pre_synced.begin(), a.pre_synced.end());
  if (a.plan.kind == PlanKind::kJoin) {
    // The joining node is always pre-synced even when it received no data
    // (empty ring segment): repair must not wait on pushes to it.
    if (std::find(commit.pre_synced.begin(), commit.pre_synced.end(), a.plan.node) ==
        commit.pre_synced.end()) {
      commit.pre_synced.push_back(a.plan.node);
    }
  }
  env_->Send(options_.membership, EncodeMessage(commit));
}

void MigrationCoordinator::HandleSnapshotDone(const MigSnapshotDone& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_plan_ == nullptr || active_plan_->plan.id != msg.migration_id) {
    return;  // stale report from an earlier migration
  }
  if (msg.aborted) {
    AbortLocked("source " + std::to_string(msg.from) + " refused (stale epoch)");
    return;
  }
  Active& a = *active_plan_;
  a.pending_sources.erase(msg.from);
  for (NodeId target : msg.targets) {
    a.expected_seals.insert({msg.from, target});
    a.pre_synced.insert(target);
  }
  MaybeCommitLocked();
}

void MigrationCoordinator::HandleRangeSealed(const MigRangeSealed& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_plan_ == nullptr || active_plan_->plan.id != msg.migration_id) {
    return;
  }
  active_plan_->seals.insert({msg.source, msg.target});
  MaybeCommitLocked();
}

void MigrationCoordinator::HandleNewMembership(const MemNewMembership& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (msg.epoch <= epoch_) {
    return;
  }
  epoch_ = msg.epoch;
  nodes_ = msg.nodes;
  weights_ = msg.weights;
  if (weights_.empty()) {
    weights_.assign(nodes_.size(), options_.vnodes);
  }
  observed_epoch_.store(epoch_, std::memory_order_relaxed);
  if (active_plan_ == nullptr) {
    return;
  }
  Active& a = *active_plan_;
  if (a.committed && msg.epoch == a.planned_epoch) {
    LOG_INFO("migration %llu: committed at epoch %llu in %lld us",
             static_cast<unsigned long long>(a.plan.id),
             static_cast<unsigned long long>(msg.epoch),
             static_cast<long long>(env_->Now() - a.started_at));
    FinishLocked(/*success=*/true);
    return;
  }
  // An epoch the plan did not predict landed mid-flight (a crash was
  // detected, or another authority reconfigured the ring). The membership
  // service will reject our commit — fold the migration.
  AbortLocked("unexpected epoch " + std::to_string(msg.epoch));
}

void MigrationCoordinator::OnMessage(Address /*from*/, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kMigSnapshotDone: {
      MigSnapshotDone m;
      if (DecodeMessage(payload, &m)) {
        HandleSnapshotDone(m);
      }
      break;
    }
    case MsgType::kMigRangeSealed: {
      MigRangeSealed m;
      if (DecodeMessage(payload, &m)) {
        HandleRangeSealed(m);
      }
      break;
    }
    case MsgType::kMemNewMembership: {
      MemNewMembership m;
      if (DecodeMessage(payload, &m)) {
        HandleNewMembership(m);
      }
      break;
    }
    default:
      break;
  }
}

std::string MigrationCoordinator::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"epoch\":" + std::to_string(epoch_) +
                    ",\"queued\":" + std::to_string(queue_.size()) +
                    ",\"completed\":" + std::to_string(completed_.load()) +
                    ",\"aborted\":" + std::to_string(aborted_.load());
  if (active_plan_ != nullptr) {
    const Active& a = *active_plan_;
    size_t missing = 0;
    for (const auto& pair : a.expected_seals) {
      missing += a.seals.count(pair) == 0 ? 1 : 0;
    }
    const char* state = a.committed          ? "commit"
                        : !a.pending_sources.empty() ? "snapshot"
                        : missing > 0        ? "catchup"
                                             : "sealed";
    out += ",\"active\":{\"id\":" + std::to_string(a.plan.id) +
           ",\"kind\":" + std::to_string(static_cast<int>(a.plan.kind)) +
           ",\"node\":" + std::to_string(a.plan.node) +
           ",\"state\":\"" + state + "\"" +
           ",\"planned_epoch\":" + std::to_string(a.planned_epoch) +
           ",\"pending_sources\":" + std::to_string(a.pending_sources.size()) +
           ",\"pending_seals\":" + std::to_string(missing) + "}";
  } else {
    out += ",\"last\":\"" + last_outcome_ + "\"";
  }
  out += "}";
  return out;
}

}  // namespace chainreaction

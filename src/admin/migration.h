// Planned topology changes: the migration coordinator.
//
// Crash-driven reconfiguration (membership failure detection + RepairChains)
// keeps the ring correct, but a *planned* change — adding capacity, draining
// a node for maintenance, shifting hot ring arcs — should not lean on the
// repair storm: the data can move BEFORE the epoch flips. The coordinator
// drives that per-range state machine:
//
//   PLAN      pick the target node list + weights, planned_epoch = epoch+1
//   SNAPSHOT  every current node bulk-streams the keys it heads whose
//             planned chain gains members (MigSnapshotRequest/MigKeyBatch)
//   CATCHUP   sources mirror live writes + stability marks to the same
//             targets until the epoch flips (WAL-tail shipping equivalent)
//   SEALED    each (source, target) stream is closed with a `last` batch
//             and acknowledged by the target (MigRangeSealed)
//   COMMIT    MigCommit -> membership service flips the epoch and
//             broadcasts the new ring with the pre-synced node set, so
//             chain repair skips re-pushing what migration already moved
//
// One migration runs at a time; later requests queue. A migration aborts —
// cleanly, leaving targets with harmless idempotent versions — when a source
// refuses (stale epoch), when an unplanned epoch lands mid-flight (crash
// detected), or when the stall timeout fires.
#ifndef SRC_ADMIN_MIGRATION_H_
#define SRC_ADMIN_MIGRATION_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/obs/metrics.h"
#include "src/sim/env.h"

namespace chainreaction {

class MigrationCoordinator : public Actor {
 public:
  struct Options {
    uint32_t vnodes = 16;
    uint32_t replication = 3;
    Address self = 0;           // this coordinator's own address (replies)
    Address membership = 0;     // membership service to commit through
    uint32_t batch_keys = 64;   // keys per source streaming tick
    Duration batch_interval = 0;
    // A migration that has not committed after this long is aborted.
    Duration timeout = 5 * kSecond;
  };

  explicit MigrationCoordinator(Options options) : options_(options) {}

  void AttachEnv(Env* env) { env_ = env; }
  void AttachObs(MetricsRegistry* metrics);

  // Seeds the membership view. The coordinator also tracks it live from
  // MemNewMembership broadcasts — register it as a membership listener.
  void Seed(uint64_t epoch, std::vector<NodeId> nodes, std::vector<uint32_t> weights);

  // Planned operations. Return the migration id (0 = rejected outright:
  // unknown/duplicate node, or draining below the replication factor).
  // If another migration is active the plan queues behind it.
  // `weight` 0 means the default vnode count.
  uint64_t StartJoin(NodeId node, uint32_t weight = 0);
  uint64_t StartDrain(NodeId node);
  uint64_t StartRebalance(NodeId node, uint32_t weight);

  // Abort whatever is active AND tell every node to drop any migration
  // state, including sessions from a previous coordinator incarnation
  // (wildcard migration_id 0). Used after a coordinator restart.
  void AbortAll(const std::string& reason);

  // Cross-thread introspection (TCP runtime polls from the driver thread).
  bool idle() const { return !active_.load(std::memory_order_acquire); }
  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t aborted() const { return aborted_.load(std::memory_order_relaxed); }
  uint64_t observed_epoch() const { return observed_epoch_.load(std::memory_order_relaxed); }

  // Current migration (or last outcome) as a JSON object for /status.
  std::string StatusJson() const;

  void OnMessage(Address from, std::string_view payload) override;

 private:
  enum class PlanKind { kJoin, kDrain, kRebalance };
  struct Plan {
    uint64_t id = 0;
    PlanKind kind = PlanKind::kJoin;
    NodeId node = 0;
    uint32_t weight = 0;
  };
  struct Active {
    Plan plan;
    uint64_t from_epoch = 0;
    uint64_t planned_epoch = 0;
    std::vector<NodeId> planned_nodes;
    std::vector<uint32_t> planned_weights;
    std::set<NodeId> pending_sources;           // awaiting MigSnapshotDone
    std::set<std::pair<NodeId, NodeId>> expected_seals;
    std::set<std::pair<NodeId, NodeId>> seals;  // may arrive before the done
    std::set<NodeId> pre_synced;                // union of stream targets
    bool committed = false;                     // MigCommit sent, flip pending
    uint64_t timeout_timer = 0;
    Time started_at = 0;
  };

  // All Locked() helpers assume mu_ is held.
  uint64_t EnqueueLocked(Plan plan);
  void StartNextLocked();
  void LaunchLocked();
  void MaybeCommitLocked();
  void AbortLocked(const std::string& reason);
  void FinishLocked(bool success);
  bool PlanTopologyLocked(const Plan& plan, std::vector<NodeId>* nodes,
                          std::vector<uint32_t>* weights) const;

  void HandleSnapshotDone(const MigSnapshotDone& msg);
  void HandleRangeSealed(const MigRangeSealed& msg);
  void HandleNewMembership(const MemNewMembership& msg);

  Options options_;
  Env* env_ = nullptr;

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  std::vector<NodeId> nodes_;
  std::vector<uint32_t> weights_;
  uint64_t next_plan_seq_ = 0;
  std::deque<Plan> queue_;
  std::unique_ptr<Active> active_plan_;
  std::string last_outcome_ = "none";

  std::atomic<bool> active_{false};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> observed_epoch_{0};

  Counter* m_started_ = nullptr;
  Counter* m_completed_ = nullptr;
  Counter* m_aborted_ = nullptr;
  Gauge* m_active_ = nullptr;
  Gauge* m_pending_seals_ = nullptr;
};

}  // namespace chainreaction

#endif  // SRC_ADMIN_MIGRATION_H_

#include "src/ycsb/workload.h"

#include <cstdio>

namespace chainreaction {

WorkloadSpec WorkloadSpec::A(uint64_t records, size_t value_size) {
  WorkloadSpec s;
  s.name = "A";
  s.read_proportion = 0.5;
  s.update_proportion = 0.5;
  s.distribution = Distribution::kZipfian;
  s.record_count = records;
  s.value_size = value_size;
  return s;
}

WorkloadSpec WorkloadSpec::B(uint64_t records, size_t value_size) {
  WorkloadSpec s;
  s.name = "B";
  s.read_proportion = 0.95;
  s.update_proportion = 0.05;
  s.distribution = Distribution::kZipfian;
  s.record_count = records;
  s.value_size = value_size;
  return s;
}

WorkloadSpec WorkloadSpec::C(uint64_t records, size_t value_size) {
  WorkloadSpec s;
  s.name = "C";
  s.read_proportion = 1.0;
  s.distribution = Distribution::kZipfian;
  s.record_count = records;
  s.value_size = value_size;
  return s;
}

WorkloadSpec WorkloadSpec::D(uint64_t records, size_t value_size) {
  WorkloadSpec s;
  s.name = "D";
  s.read_proportion = 0.95;
  s.insert_proportion = 0.05;
  s.distribution = Distribution::kLatest;
  s.record_count = records;
  s.value_size = value_size;
  return s;
}

Key RecordKey(uint64_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%012llu", static_cast<unsigned long long>(index));
  return buf;
}

Value MakeValue(Address client, uint64_t seq, size_t size) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "c%u-%llu|", client,
                              static_cast<unsigned long long>(seq));
  Value v(buf, static_cast<size_t>(n));
  if (v.size() < size) {
    v.append(size - v.size(), 'x');
  }
  return v;
}

std::unique_ptr<KeyChooser> MakeChooser(const WorkloadSpec& spec, const uint64_t* max_index) {
  switch (spec.distribution) {
    case Distribution::kUniform:
      return std::make_unique<UniformChooser>(spec.record_count);
    case Distribution::kZipfian:
      return std::make_unique<ScrambledZipfianChooser>(spec.record_count);
    case Distribution::kLatest:
      return std::make_unique<LatestChooser>(max_index);
    case Distribution::kZipfianRotating:
      return std::make_unique<RotatingZipfianChooser>(spec.record_count,
                                                      spec.hot_set_rotate_ops);
  }
  return nullptr;
}

}  // namespace chainreaction

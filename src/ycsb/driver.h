// Closed-loop YCSB workload driver.
//
// One driver drives one client session: it issues an operation, waits for
// completion, records the latency, optionally thinks, and issues the next —
// the client model of the paper's evaluation. All randomness is seeded, so
// a (seed, spec) pair replays identically.
#ifndef SRC_YCSB_DRIVER_H_
#define SRC_YCSB_DRIVER_H_

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/env.h"
#include "src/ycsb/kv_client.h"
#include "src/ycsb/stats.h"
#include "src/ycsb/workload.h"

namespace chainreaction {

class WorkloadDriver {
 public:
  // `insert_counter` is shared by all drivers of an experiment (workload D
  // inserts grow the key space globally); it must outlive the driver.
  WorkloadDriver(KvClient* client, Env* env, WorkloadSpec spec, uint64_t seed,
                 uint64_t* insert_counter, StatsCollector* stats);

  // Issues operations until Stop(); optional think time between ops.
  void Start();
  void Stop() { running_ = false; }
  bool running() const { return running_; }

  void set_think_time(Duration d) { think_time_ = d; }

  uint64_t ops_issued() const { return ops_issued_; }

  // Completion hooks for the consistency checkers (called with the driver's
  // session id = client address).
  std::function<void(const Key&, const KvPutResult&)> on_write_complete;
  std::function<void(const Key&, const KvGetResult&)> on_read_complete;

 private:
  void IssueNext();
  void OpDone(bool was_read, Time started, bool found);

  KvClient* client_;
  Env* env_;
  WorkloadSpec spec_;
  Rng rng_;
  uint64_t* insert_counter_;
  StatsCollector* stats_;
  std::unique_ptr<KeyChooser> chooser_;
  bool running_ = false;
  uint64_t ops_issued_ = 0;
  uint64_t value_seq_ = 0;
  Duration think_time_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_YCSB_DRIVER_H_

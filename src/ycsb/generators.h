// YCSB key-choosing distributions (reimplementation of the generators in
// Cooper et al., SoCC'10, which the paper uses for its evaluation).
#ifndef SRC_YCSB_GENERATORS_H_
#define SRC_YCSB_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "src/common/rng.h"

namespace chainreaction {

class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  // Returns an index in [0, item_count()).
  virtual uint64_t Next(Rng* rng) = 0;
  virtual uint64_t item_count() const = 0;
};

class UniformChooser : public KeyChooser {
 public:
  explicit UniformChooser(uint64_t items) : items_(items) {}
  uint64_t Next(Rng* rng) override { return rng->NextBelow(items_); }
  uint64_t item_count() const override { return items_; }

 private:
  uint64_t items_;
};

// Gray et al. zipfian generator ("Quickly generating billion-record
// synthetic databases"), as used by YCSB. Item 0 is the most popular.
class ZipfianChooser : public KeyChooser {
 public:
  explicit ZipfianChooser(uint64_t items, double theta = 0.99);

  uint64_t Next(Rng* rng) override;
  uint64_t item_count() const override { return items_; }

 private:
  static double ComputeZeta(uint64_t n, double theta);

  uint64_t items_;
  double theta_;
  double zeta_n_;
  double alpha_;
  double eta_;
  double zeta2_;
};

// Zipfian popularity spread uniformly over the key space by hashing, so hot
// keys are not clustered on the ring (YCSB's "scrambled zipfian").
class ScrambledZipfianChooser : public KeyChooser {
 public:
  explicit ScrambledZipfianChooser(uint64_t items, double theta = 0.99)
      : items_(items), zipf_(items, theta) {}

  uint64_t Next(Rng* rng) override;
  uint64_t item_count() const override { return items_; }

 private:
  uint64_t items_;
  ZipfianChooser zipf_;
};

// Scrambled zipfian whose rank→key mapping is re-hashed every
// `rotate_every` draws: the hot set is a pseudorandom subset of the key
// space that shifts wholesale each epoch. Models working-set rotation
// (cold-start reads after the application's focus moves), the adversarial
// case for a bounded residency cache — every rotation starts 100% cold.
class RotatingZipfianChooser : public KeyChooser {
 public:
  RotatingZipfianChooser(uint64_t items, uint64_t rotate_every, double theta = 0.99)
      : items_(items), rotate_every_(rotate_every == 0 ? 1 : rotate_every),
        zipf_(items, theta) {}

  uint64_t Next(Rng* rng) override;
  uint64_t item_count() const override { return items_; }
  uint64_t epoch() const { return epoch_; }

 private:
  uint64_t items_;
  uint64_t rotate_every_;
  uint64_t draws_ = 0;
  uint64_t epoch_ = 0;
  ZipfianChooser zipf_;
};

// YCSB's "latest" distribution: popularity is zipfian over recency, so the
// most recently inserted items are the hottest (workload D). The driver
// advances *max_index as it inserts.
class LatestChooser : public KeyChooser {
 public:
  // max_index must outlive the chooser and starts at the preloaded record
  // count; Next() returns indices in [0, *max_index).
  explicit LatestChooser(const uint64_t* max_index, double theta = 0.99)
      : max_index_(max_index), zipf_(1, theta) {}

  uint64_t Next(Rng* rng) override;
  uint64_t item_count() const override { return *max_index_; }

 private:
  const uint64_t* max_index_;
  ZipfianChooser zipf_;
  uint64_t last_max_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_YCSB_GENERATORS_H_

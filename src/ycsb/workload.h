// YCSB core workload definitions (A-D), the workloads of the paper's
// evaluation, plus helpers to build key choosers and format keys/values.
#ifndef SRC_YCSB_WORKLOAD_H_
#define SRC_YCSB_WORKLOAD_H_

#include <memory>
#include <string>

#include "src/common/types.h"
#include "src/ycsb/generators.h"

namespace chainreaction {

enum class Distribution {
  kUniform,
  kZipfian,          // scrambled zipfian, theta = 0.99 (YCSB default)
  kLatest,
  kZipfianRotating,  // scrambled zipfian whose hot set shifts periodically
};

struct WorkloadSpec {
  std::string name;
  double read_proportion = 0;
  double update_proportion = 0;
  double insert_proportion = 0;
  Distribution distribution = Distribution::kZipfian;
  uint64_t record_count = 10000;
  size_t value_size = 128;
  // kZipfianRotating: ops between hot-set rotations (per chooser/client).
  uint64_t hot_set_rotate_ops = 10000;

  static WorkloadSpec A(uint64_t records = 10000, size_t value_size = 128);  // 50r/50u zipf
  static WorkloadSpec B(uint64_t records = 10000, size_t value_size = 128);  // 95r/5u zipf
  static WorkloadSpec C(uint64_t records = 10000, size_t value_size = 128);  // 100r zipf
  static WorkloadSpec D(uint64_t records = 10000, size_t value_size = 128);  // 95r/5i latest
};

// "user000000000042"-style record keys.
Key RecordKey(uint64_t index);

// A value of exactly `size` bytes whose prefix uniquely identifies the
// writing (client, sequence) pair — unique values let the consistency
// checkers map any read back to its originating write.
Value MakeValue(Address client, uint64_t seq, size_t size);

// Builds the chooser for a spec. `max_index` must point at the driver's
// shared insert counter (used only by kLatest).
std::unique_ptr<KeyChooser> MakeChooser(const WorkloadSpec& spec, const uint64_t* max_index);

}  // namespace chainreaction

#endif  // SRC_YCSB_WORKLOAD_H_

// Operation statistics collected by the workload driver.
#ifndef SRC_YCSB_STATS_H_
#define SRC_YCSB_STATS_H_

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace chainreaction {

struct StatsCollector {
  Histogram read_latency;   // microseconds
  Histogram write_latency;  // microseconds
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t not_found = 0;
  Time window_start = 0;

  void Reset(Time now) {
    read_latency.Reset();
    write_latency.Reset();
    reads = 0;
    writes = 0;
    not_found = 0;
    window_start = now;
  }

  uint64_t TotalOps() const { return reads + writes; }

  double ThroughputOpsPerSec(Time now) const {
    const Time elapsed = now - window_start;
    if (elapsed <= 0) {
      return 0;
    }
    return static_cast<double>(TotalOps()) * 1e6 / static_cast<double>(elapsed);
  }
};

}  // namespace chainreaction

#endif  // SRC_YCSB_STATS_H_

#include "src/ycsb/generators.h"

#include <cmath>

#include "src/common/hash.h"
#include "src/common/result.h"

namespace chainreaction {

ZipfianChooser::ZipfianChooser(uint64_t items, double theta) : items_(items), theta_(theta) {
  CHAINRX_CHECK(items_ >= 1);
  zeta_n_ = ComputeZeta(items_, theta_);
  zeta2_ = ComputeZeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_n_);
}

double ZipfianChooser::ComputeZeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianChooser::Next(Rng* rng) {
  // Gray et al. rejection-free inversion.
  const double u = rng->NextDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const uint64_t idx = static_cast<uint64_t>(
      static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= items_ ? items_ - 1 : idx;
}

uint64_t ScrambledZipfianChooser::Next(Rng* rng) {
  return Mix64(zipf_.Next(rng)) % items_;
}

uint64_t RotatingZipfianChooser::Next(Rng* rng) {
  if (++draws_ > rotate_every_) {
    draws_ = 1;
    epoch_++;
  }
  // Folding the epoch into the scramble moves the whole popularity mapping:
  // rank r maps to a different key every epoch, so the post-rotation hot
  // set shares (almost) nothing with the previous one.
  return Mix64(zipf_.Next(rng) + (epoch_ + 1) * 0x9E3779B97F4A7C15ull) % items_;
}

uint64_t LatestChooser::Next(Rng* rng) {
  const uint64_t max = *max_index_ == 0 ? 1 : *max_index_;
  if (max != last_max_) {
    // YCSB grows its zeta incrementally; rebuilding on change is equivalent
    // and cheap at the scales simulated here.
    zipf_ = ZipfianChooser(max, 0.99);
    last_max_ = max;
  }
  const uint64_t offset = zipf_.Next(rng);  // 0 = most popular = most recent
  return max - 1 - offset;
}

}  // namespace chainreaction

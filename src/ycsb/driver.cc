#include "src/ycsb/driver.h"

#include <utility>

#include "src/common/result.h"

namespace chainreaction {

WorkloadDriver::WorkloadDriver(KvClient* client, Env* env, WorkloadSpec spec, uint64_t seed,
                               uint64_t* insert_counter, StatsCollector* stats)
    : client_(client),
      env_(env),
      spec_(std::move(spec)),
      rng_(seed),
      insert_counter_(insert_counter),
      stats_(stats) {
  chooser_ = MakeChooser(spec_, insert_counter_);
  CHAINRX_CHECK(chooser_ != nullptr);
}

void WorkloadDriver::Start() {
  CHAINRX_CHECK(!running_);
  running_ = true;
  IssueNext();
}

void WorkloadDriver::IssueNext() {
  if (!running_) {
    return;
  }
  ops_issued_++;
  const Time started = env_->Now();
  const double dice = rng_.NextDouble();

  if (dice < spec_.read_proportion) {
    const Key key = RecordKey(chooser_->Next(&rng_));
    client_->Get(key, [this, key, started](const KvGetResult& r) {
      if (on_read_complete) {
        on_read_complete(key, r);
      }
      OpDone(/*was_read=*/true, started, r.found);
    });
    return;
  }

  Key key;
  if (dice < spec_.read_proportion + spec_.update_proportion) {
    key = RecordKey(chooser_->Next(&rng_));
  } else {
    // Insert: extend the key space (workload D).
    key = RecordKey((*insert_counter_)++);
  }
  Value value = MakeValue(client_->address(), ++value_seq_, spec_.value_size);
  client_->Put(key, std::move(value), [this, key, started](const KvPutResult& r) {
    if (on_write_complete) {
      on_write_complete(key, r);
    }
    OpDone(/*was_read=*/false, started, true);
  });
}

void WorkloadDriver::OpDone(bool was_read, Time started, bool found) {
  const Time now = env_->Now();
  if (was_read) {
    stats_->reads++;
    stats_->read_latency.Record(now - started);
    if (!found) {
      stats_->not_found++;
    }
  } else {
    stats_->writes++;
    stats_->write_latency.Record(now - started);
  }
  if (!running_) {
    return;
  }
  if (think_time_ > 0) {
    env_->Schedule(think_time_, [this]() { IssueNext(); });
  } else {
    IssueNext();
  }
}

}  // namespace chainreaction

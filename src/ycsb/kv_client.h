// Protocol-agnostic key-value client interface plus adapters.
//
// The YCSB workload driver runs against KvClient; one thin adapter per
// replication protocol maps the protocol-specific client into it, so every
// experiment compares the systems under an identical driver.
#ifndef SRC_YCSB_KV_CLIENT_H_
#define SRC_YCSB_KV_CLIENT_H_

#include <functional>
#include <vector>

#include "src/baselines/eventual.h"
#include "src/chain/cr.h"
#include "src/chain/craq.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/core/chainreaction_client.h"

namespace chainreaction {

struct KvPutResult {
  bool ok = false;
  Version version;                // null when the protocol exposes none
  std::vector<Dependency> deps;   // ChainReaction only
};

struct KvGetResult {
  bool ok = false;
  bool found = false;
  Value value;
  Version version;  // null when the protocol exposes none
};

class KvClient {
 public:
  virtual ~KvClient() = default;
  using PutCb = std::function<void(const KvPutResult&)>;
  using GetCb = std::function<void(const KvGetResult&)>;

  virtual void Put(const Key& key, Value value, PutCb cb) = 0;
  virtual void Get(const Key& key, GetCb cb) = 0;
  virtual Address address() const = 0;
};

class CrxKvClient : public KvClient {
 public:
  explicit CrxKvClient(ChainReactionClient* client) : client_(client) {}

  void Put(const Key& key, Value value, PutCb cb) override {
    client_->Put(key, std::move(value),
                 [cb = std::move(cb)](const ChainReactionClient::PutResult& r) {
                   cb(KvPutResult{r.status.ok(), r.version, r.deps});
                 });
  }

  void Get(const Key& key, GetCb cb) override {
    client_->Get(key, [cb = std::move(cb)](const ChainReactionClient::GetResult& r) {
      cb(KvGetResult{r.status.ok(), r.found, r.value, r.version});
    });
  }

  Address address() const override { return client_->address(); }

 private:
  ChainReactionClient* client_;
};

class CrKvClient : public KvClient {
 public:
  CrKvClient(CrClient* client, Address address) : client_(client), address_(address) {}

  void Put(const Key& key, Value value, PutCb cb) override {
    client_->Put(key, std::move(value), [cb = std::move(cb)](const Status& s, uint64_t seq) {
      Version v;
      v.lamport = seq;
      cb(KvPutResult{s.ok(), v, {}});
    });
  }

  void Get(const Key& key, GetCb cb) override {
    client_->Get(key, [cb = std::move(cb)](const Status& s, bool found, const Value& value,
                                           uint64_t seq) {
      Version v;
      v.lamport = seq;
      cb(KvGetResult{s.ok(), found, value, v});
    });
  }

  Address address() const override { return address_; }

 private:
  CrClient* client_;
  Address address_;
};

class CraqKvClient : public KvClient {
 public:
  CraqKvClient(CraqClient* client, Address address) : client_(client), address_(address) {}

  void Put(const Key& key, Value value, PutCb cb) override {
    client_->Put(key, std::move(value), [cb = std::move(cb)](const Status& s, uint64_t seq) {
      Version v;
      v.lamport = seq;
      cb(KvPutResult{s.ok(), v, {}});
    });
  }

  void Get(const Key& key, GetCb cb) override {
    client_->Get(key, [cb = std::move(cb)](const Status& s, bool found, const Value& value,
                                           uint64_t seq) {
      Version v;
      v.lamport = seq;
      cb(KvGetResult{s.ok(), found, value, v});
    });
  }

  Address address() const override { return address_; }

 private:
  CraqClient* client_;
  Address address_;
};

class EventualKvClient : public KvClient {
 public:
  EventualKvClient(EventualClient* client, Address address) : client_(client), address_(address) {}

  void Put(const Key& key, Value value, PutCb cb) override {
    client_->Put(key, std::move(value),
                 [cb = std::move(cb)](const Status& s) { cb(KvPutResult{s.ok(), {}, {}}); });
  }

  void Get(const Key& key, GetCb cb) override {
    client_->Get(key, [cb = std::move(cb)](const Status& s, bool found, const Value& value) {
      cb(KvGetResult{s.ok(), found, value, {}});
    });
  }

  Address address() const override { return address_; }

 private:
  EventualClient* client_;
  Address address_;
};

}  // namespace chainreaction

#endif  // SRC_YCSB_KV_CLIENT_H_

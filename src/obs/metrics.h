// Metrics registry: the server-side observability layer.
//
// Every subsystem (chain nodes, clients, geo replicators, both transports)
// registers named instruments here, labeled by node id / chain role / DC:
//   * Counter   — monotonically increasing event count (atomic),
//   * Gauge     — instantaneous level, e.g. queue depth (atomic),
//   * LatencyMetric — mergeable log-bucketed histogram (common/histogram)
//     with count/mean/percentiles.
//
// Instruments are created once (GetCounter et al. return stable pointers for
// the registry's lifetime) and updated lock-free on the hot path; Snapshot()
// produces a consistent point-in-time copy with text and JSON renderings.
// The registry is thread-safe: the simulator uses it single-threaded, the
// TCP runtime updates it from its loop threads while a shell or bench
// thread snapshots concurrently.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace chainreaction {

// Ordered label set, rendered canonically as "k1=v1,k2=v2".
using MetricLabels = std::vector<std::pair<std::string, std::string>>;
std::string RenderLabels(const MetricLabels& labels);

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Histogram instrument. Record() takes a short lock; snapshots copy.
class LatencyMetric {
 public:
  void Record(int64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Record(value);
  }
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricPoint {
  std::string name;
  std::string labels;  // canonical "k=v,..." rendering ("" if unlabeled)
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;   // counter / gauge value
  Histogram hist;      // histogram points only
};

// Point-in-time copy of every instrument, sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  const MetricPoint* Find(const std::string& name, const std::string& labels = "") const;
  // Counter/gauge value; 0 when absent.
  int64_t Value(const std::string& name, const std::string& labels = "") const;
  // Sum of a counter over all label sets whose rendering contains `needle`
  // ("" sums every label set of `name`).
  int64_t SumCounters(const std::string& name, const std::string& needle = "") const;

  // One "name{labels} value" line per instrument; histograms render their
  // Summary() string.
  std::string RenderText() const;
  std::string RenderJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Instruments are created on first use; repeated calls with the same
  // (name, labels) return the same pointer, valid for the registry's
  // lifetime. A name must keep one kind (checked).
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  LatencyMetric* GetLatency(const std::string& name, const MetricLabels& labels = {});

  MetricsSnapshot Snapshot() const;
  std::string RenderText() const { return Snapshot().RenderText(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }

 private:
  using InstrumentKey = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mu_;
  std::map<InstrumentKey, std::unique_ptr<Counter>> counters_;
  std::map<InstrumentKey, std::unique_ptr<Gauge>> gauges_;
  std::map<InstrumentKey, std::unique_ptr<LatencyMetric>> latencies_;
};

}  // namespace chainreaction

#endif  // SRC_OBS_METRICS_H_

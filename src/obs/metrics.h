// Metrics registry: the server-side observability layer.
//
// Every subsystem (chain nodes, clients, geo replicators, both transports)
// registers named instruments here, labeled by node id / chain role / DC:
//   * Counter   — monotonically increasing event count (atomic),
//   * Gauge     — instantaneous level, e.g. queue depth (atomic),
//   * LatencyMetric — log-bucketed histogram with count/mean/percentiles and
//     optional per-bucket exemplars linking a latency range to a trace id.
//
// Instruments are created once (GetCounter et al. return stable pointers for
// the registry's lifetime) and updated lock-free on the hot path — including
// LatencyMetric::Record, which bumps atomic bucket counters; Snapshot()
// produces a point-in-time copy with text, JSON, and Prometheus renderings.
// The registry is thread-safe: the simulator uses it single-threaded, the
// TCP runtime updates it from its loop threads while a shell, bench, or
// telemetry-scrape thread snapshots concurrently.
//
// Relaxed snapshot semantics: all instrument updates use relaxed atomics.
// A snapshot taken concurrently with updates sees each bucket/counter at
// *some* recent value, but not necessarily a single globally consistent
// instant — a histogram's count/sum/min/max may be off by the handful of
// samples in flight while the snapshot copies buckets. Every value is exact
// once writers quiesce. This is the standard trade for a zero-lock hot path
// and is documented behavior, not a bug.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace chainreaction {

// Ordered label set, rendered canonically as "k1=v1,k2=v2".
using MetricLabels = std::vector<std::pair<std::string, std::string>>;
std::string RenderLabels(const MetricLabels& labels);

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A per-bucket exemplar: one concrete sample (and the trace that produced
// it) representative of a latency range — the Prometheus "exemplar" notion,
// here used to jump from a histogram bucket to a retained slow trace.
struct LatencyExemplar {
  int64_t bucket_upper = 0;  // upper bound of the power-of-two tier
  int64_t value = 0;
  uint64_t trace_id = 0;
};

// Histogram instrument. Record() is lock-free (atomic bucket counters with
// relaxed ordering); Snapshot() rebuilds a Histogram from the buckets under
// the relaxed semantics documented in the file comment.
class LatencyMetric {
 public:
  void Record(int64_t value) { RecordWithExemplar(value, 0); }

  // Records the sample and, when `trace_id` != 0, publishes it as the
  // exemplar for the sample's power-of-two tier (last writer wins).
  void RecordWithExemplar(int64_t value, uint64_t trace_id);

  Histogram Snapshot() const;
  std::vector<LatencyExemplar> Exemplars() const;

 private:
  // One exemplar slot per power-of-two tier keeps the footprint small while
  // still covering the latency range end to end.
  static constexpr size_t kExemplarTiers = 64;
  static size_t TierFor(int64_t value);

  std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
  std::atomic<uint64_t> count_{0};  // only used to seed min/max on first sample
  std::array<std::atomic<uint64_t>, kExemplarTiers> exemplar_id_{};
  std::array<std::atomic<int64_t>, kExemplarTiers> exemplar_val_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricPoint {
  std::string name;
  std::string labels;  // canonical "k=v,..." rendering ("" if unlabeled)
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;   // counter / gauge value
  Histogram hist;      // histogram points only
  std::vector<LatencyExemplar> exemplars;  // histogram points only
};

// Point-in-time copy of every instrument, sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  const MetricPoint* Find(const std::string& name, const std::string& labels = "") const;
  // Counter/gauge value; 0 when absent.
  int64_t Value(const std::string& name, const std::string& labels = "") const;
  // Sum of a counter over all label sets whose rendering contains `needle`
  // ("" sums every label set of `name`).
  int64_t SumCounters(const std::string& name, const std::string& needle = "") const;

  // One "name{labels} value" line per instrument; histograms render their
  // Summary() string.
  std::string RenderText() const;
  std::string RenderJson() const;
  // Prometheus text exposition format: # TYPE headers, name{k="v"} value
  // lines, histograms as cumulative _bucket{le=...}/_sum/_count series with
  // OpenMetrics-style exemplar annotations on buckets that have one.
  std::string RenderPrometheus() const;
};

// RenderText() restricted to lines containing `filter` ("" keeps all) —
// the one renderer behind `kv_shell stats`, bench PrintMetrics, and the
// /metrics endpoint's ?filter= parameter.
std::string RenderTextFiltered(const MetricsSnapshot& snap, const std::string& filter);

// Minimal JSON string escaping shared by the obs renderers.
void AppendJsonString(std::string* out, const std::string& s);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Instruments are created on first use; repeated calls with the same
  // (name, labels) return the same pointer, valid for the registry's
  // lifetime. A name must keep one kind (checked).
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  LatencyMetric* GetLatency(const std::string& name, const MetricLabels& labels = {});

  MetricsSnapshot Snapshot() const;
  std::string RenderText() const { return Snapshot().RenderText(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }

 private:
  using InstrumentKey = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mu_;
  std::map<InstrumentKey, std::unique_ptr<Counter>> counters_;
  std::map<InstrumentKey, std::unique_ptr<Gauge>> gauges_;
  std::map<InstrumentKey, std::unique_ptr<LatencyMetric>> latencies_;
};

}  // namespace chainreaction

#endif  // SRC_OBS_METRICS_H_

#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"

namespace chainreaction {

const char* HopKindName(HopKind kind) {
  switch (kind) {
    case HopKind::kInvalid:
      return "invalid";
    case HopKind::kClientPut:
      return "client_put";
    case HopKind::kHeadGated:
      return "head_gated";
    case HopKind::kHeadApply:
      return "head_apply";
    case HopKind::kChainApply:
      return "chain_apply";
    case HopKind::kKAck:
      return "k_ack";
    case HopKind::kClientAck:
      return "client_ack";
    case HopKind::kTailStable:
      return "tail_stable";
    case HopKind::kGeoShip:
      return "geo_ship";
    case HopKind::kGeoInject:
      return "geo_inject";
    case HopKind::kRemoteVisible:
      return "remote_visible";
    case HopKind::kHeadRecv:
      return "head_recv";
    case HopKind::kDepUnblocked:
      return "dep_unblocked";
    case HopKind::kChainRecv:
      return "chain_recv";
    case HopKind::kMigPhase:
      return "mig_phase";
  }
  return "?";
}

void TraceContext::Encode(ByteWriter* w) const {
  w->PutVarU64(id);
  if (id == 0) {
    return;  // untraced: one byte on the wire
  }
  w->PutVarU64(hops.size());
  for (const TraceHop& h : hops) {
    w->PutU8(static_cast<uint8_t>(h.kind));
    w->PutU32(h.node);
    w->PutU16(h.dc);
    w->PutU32(h.detail);
    w->PutI64(h.at);
    w->PutVarU64(h.aux);
  }
}

bool TraceContext::Decode(ByteReader* r) {
  hops.clear();
  if (!r->GetVarU64(&id)) {
    return false;
  }
  if (id == 0) {
    return true;
  }
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > 4096) {
    return false;
  }
  hops.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    TraceHop& h = hops[i];
    if (!r->GetU8(&kind) || !r->GetU32(&h.node) || !r->GetU16(&h.dc) ||
        !r->GetU32(&h.detail) || !r->GetI64(&h.at) || !r->GetVarU64(&h.aux)) {
      return false;
    }
    h.kind = static_cast<HopKind>(kind);
  }
  return true;
}

void TraceContext::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(id);
  if (id == 0) {
    return;  // untraced: one byte on the wire
  }
  w->PutVarU64(hops.size());
  for (const TraceHop& h : hops) {
    w->PutU8(static_cast<uint8_t>(h.kind));
    w->PutVarU64(h.node);
    w->PutVarU64(h.dc);
    w->PutVarU64(h.detail);
    w->PutVarI64(h.at);
    w->PutVarU64(h.aux);
  }
}

bool TraceContext::DecodeV2(ByteReader* r) {
  hops.clear();
  if (!r->GetVarU64(&id)) {
    return false;
  }
  if (id == 0) {
    return true;
  }
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > 4096) {
    return false;
  }
  hops.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    uint64_t node = 0, dc = 0, detail = 0;
    TraceHop& h = hops[i];
    if (!r->GetU8(&kind) || !r->GetVarU64(&node) || !r->GetVarU64(&dc) ||
        !r->GetVarU64(&detail) || !r->GetVarI64(&h.at) || !r->GetVarU64(&h.aux) ||
        node > UINT32_MAX || dc > UINT16_MAX || detail > UINT32_MAX) {
      return false;
    }
    h.kind = static_cast<HopKind>(kind);
    h.node = static_cast<uint32_t>(node);
    h.dc = static_cast<uint16_t>(dc);
    h.detail = static_cast<uint32_t>(detail);
  }
  return true;
}

void TraceCollector::Report(const TraceContext& trace) {
  if (!trace.active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = traces_.try_emplace(trace.id);
  if (inserted) {
    order_.push_back(trace.id);
    if (order_.size() > kMaxTraces) {
      EvictOneLocked();
    }
  }
  std::vector<TraceHop>& merged = it->second;
  if (merged.empty()) {
    merged.reserve(TraceContext::kInlineHops);
  }
  // Fast path: a context reported at hop N carries hops 0..N-1 of the same
  // path, so most reports are prefix-extensions of what the collector
  // already merged — skip the already-known prefix and only run the
  // quadratic dedup on hops past it (divergent branches, e.g. the ack path
  // racing the tail-stability path, land there).
  size_t start = 0;
  while (start < merged.size() && start < trace.hops.size() &&
         merged[start] == trace.hops[start]) {
    ++start;
  }
  for (size_t i = start; i < trace.hops.size(); ++i) {
    const TraceHop& hop = trace.hops[i];
    if (merged.size() >= kMaxHopsPerTrace) {
      break;
    }
    if (std::find(merged.begin(), merged.end(), hop) == merged.end()) {
      merged.push_back(hop);
    }
  }
}

void TraceCollector::AnnotateNote(uint64_t id, const std::string& note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!traces_.contains(id)) {
    return;
  }
  std::vector<std::string>& notes = notes_[id];
  if (notes.size() >= kMaxNotesPerTrace ||
      std::find(notes.begin(), notes.end(), note) != notes.end()) {
    return;
  }
  notes.push_back(note);
}

void TraceCollector::EvictOneLocked() {
  // Prefer the oldest unretained trace; fall back to the oldest retained
  // one only when everything is pinned.
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    if (!retained_.contains(*it)) {
      traces_.erase(*it);
      notes_.erase(*it);
      order_.erase(it);
      return;
    }
  }
  if (!order_.empty()) {
    retained_.erase(order_.front());
    traces_.erase(order_.front());
    notes_.erase(order_.front());
    order_.erase(order_.begin());
  }
}

void TraceCollector::Retain(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.contains(id)) {
    retained_.insert(id);
  }
}

void TraceCollector::Discard(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.erase(id) > 0) {
    retained_.erase(id);
    notes_.erase(id);
    order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
  }
}

bool TraceCollector::IsRetained(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_.contains(id);
}

size_t TraceCollector::retained_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_.size();
}

std::vector<uint64_t> TraceCollector::RetainedIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(retained_.size());
  for (uint64_t id : order_) {
    if (retained_.contains(id)) {
      out.push_back(id);
    }
  }
  return out;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::vector<uint64_t> TraceCollector::TraceIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

namespace {
void SortHops(std::vector<TraceHop>* hops) {
  std::sort(hops->begin(), hops->end(), [](const TraceHop& a, const TraceHop& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    if (a.kind != b.kind) {
      return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
    }
    return a.detail < b.detail;
  });
}
}  // namespace

bool TraceCollector::Find(uint64_t id, Trace* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(id);
  if (it == traces_.end()) {
    return false;
  }
  out->id = id;
  out->hops = it->second;
  SortHops(&out->hops);
  auto nit = notes_.find(id);
  out->notes = nit == notes_.end() ? std::vector<std::string>{} : nit->second;
  return true;
}

bool TraceCollector::Latest(Trace* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (order_.empty()) {
    return false;
  }
  const uint64_t id = order_.back();
  out->id = id;
  out->hops = traces_.at(id);
  SortHops(&out->hops);
  auto nit = notes_.find(id);
  out->notes = nit == notes_.end() ? std::vector<std::string>{} : nit->second;
  return true;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  notes_.clear();
  order_.clear();
  retained_.clear();
}

std::string TraceCollector::Render(const Trace& trace) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "trace %016llx (%zu hops)\n",
                static_cast<unsigned long long>(trace.id), trace.hops.size());
  std::string out = buf;
  const Time t0 = trace.hops.empty() ? 0 : trace.hops.front().at;
  for (const TraceHop& h : trace.hops) {
    std::snprintf(buf, sizeof(buf), "  +%-8lld %-14s node=%u dc=%u detail=%u",
                  static_cast<long long>(h.at - t0), HopKindName(h.kind), h.node, h.dc,
                  h.detail);
    out += buf;
    if (h.aux != 0) {
      std::snprintf(buf, sizeof(buf), " aux=%llx", static_cast<unsigned long long>(h.aux));
      out += buf;
    }
    out += "\n";
  }
  for (const std::string& note : trace.notes) {
    out += "  note " + note + "\n";
  }
  return out;
}

std::string TraceCollector::RenderJson(const Trace& trace) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "{\"id\":\"%016llx\",\"hops\":[",
                static_cast<unsigned long long>(trace.id));
  std::string out = buf;
  bool first = true;
  for (const TraceHop& h : trace.hops) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"kind\":\"%s\",\"node\":%u,\"dc\":%u,\"detail\":%u,\"at\":%lld,"
                  "\"aux\":%llu}",
                  first ? "" : ",", HopKindName(h.kind), h.node, h.dc, h.detail,
                  static_cast<long long>(h.at), static_cast<unsigned long long>(h.aux));
    out += buf;
    first = false;
  }
  out += "],\"notes\":[";
  first = true;
  for (const std::string& note : trace.notes) {
    if (!first) {
      out += ",";
    }
    AppendJsonString(&out, note);
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace chainreaction

// Windowed aggregation over the metrics registry.
//
// The registry's instruments are cumulative: counters only grow and
// histograms accumulate forever. For live views ("ops/s over the last
// second", "interval p99") a consumer wants per-interval numbers. The
// WindowedAggregator keeps the previous MetricsSnapshot and diffs each new
// one against it:
//   * counters  -> delta over the interval and a rate (delta / seconds),
//   * gauges    -> current value (levels are already instantaneous),
//   * histograms -> Histogram::Diff interval percentiles.
// Counter resets (a restarted node re-registering an instrument, or the
// shell's `stats reset`) are handled by treating a shrinking cumulative
// value as a fresh start: delta = current value.
//
// Used by the /metrics/window endpoint, `kv_shell stats` (windowed by
// default), and `crx_loadgen --stats-every-ms`.
#ifndef SRC_OBS_WINDOW_H_
#define SRC_OBS_WINDOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace chainreaction {

struct WindowedPoint {
  std::string name;
  std::string labels;
  MetricKind kind = MetricKind::kCounter;
  int64_t delta = 0;       // counter: interval delta; gauge: current value
  double rate = 0.0;       // counter only: delta / interval seconds
  Histogram interval;      // histogram only: interval histogram
};

struct WindowedView {
  int64_t interval_us = 0;
  std::vector<WindowedPoint> points;

  const WindowedPoint* Find(const std::string& name, const std::string& labels = "") const;

  // "name{labels} delta=N rate=R/s" / histogram interval summaries.
  std::string RenderText() const;
  std::string RenderJson() const;
};

class WindowedAggregator {
 public:
  // Diffs `now` (taken at `now_us`) against the previous call's snapshot.
  // The first call reports the whole cumulative history as one interval.
  WindowedView Advance(const MetricsSnapshot& now, int64_t now_us);

  // Forgets the baseline: the next Advance() reports cumulative-since-start
  // again (used by `kv_shell stats reset`).
  void Reset();

 private:
  bool has_prev_ = false;
  int64_t prev_us_ = 0;
  MetricsSnapshot prev_;
};

}  // namespace chainreaction

#endif  // SRC_OBS_WINDOW_H_

#include "src/obs/assembly.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/net/http_client.h"

namespace chainreaction {

namespace {

// First hop of `kind` in sorted order; nullptr when absent.
const TraceHop* FirstHop(const TraceCollector::Trace& trace, HopKind kind) {
  for (const TraceHop& h : trace.hops) {
    if (h.kind == kind) {
      return &h;
    }
  }
  return nullptr;
}

const TraceHop* LastHop(const TraceCollector::Trace& trace, HopKind kind) {
  const TraceHop* found = nullptr;
  for (const TraceHop& h : trace.hops) {
    if (h.kind == kind) {
      found = &h;
    }
  }
  return found;
}

Time NonNeg(Time v) { return v < 0 ? 0 : v; }

void AddSegment(CriticalPath* cp, const std::string& name, Time begin, Time end) {
  if (end < begin) {
    return;
  }
  cp->segments.push_back(CpSegment{name, begin, end});
}

}  // namespace

CriticalPath ComputeCriticalPath(const TraceCollector::Trace& trace) {
  CriticalPath cp;
  cp.id = trace.id;

  const TraceHop* client_put = FirstHop(trace, HopKind::kClientPut);
  const TraceHop* head_recv = FirstHop(trace, HopKind::kHeadRecv);
  const TraceHop* gated = FirstHop(trace, HopKind::kHeadGated);
  const TraceHop* unblocked = LastHop(trace, HopKind::kDepUnblocked);
  const TraceHop* head_apply = FirstHop(trace, HopKind::kHeadApply);
  const TraceHop* k_ack = FirstHop(trace, HopKind::kKAck);
  const TraceHop* client_ack = FirstHop(trace, HopKind::kClientAck);
  const TraceHop* geo_ship = FirstHop(trace, HopKind::kGeoShip);
  const TraceHop* remote_visible = LastHop(trace, HopKind::kRemoteVisible);
  const TraceHop* mig = FirstHop(trace, HopKind::kMigPhase);

  cp.complete = client_put != nullptr && head_apply != nullptr && k_ack != nullptr &&
                client_ack != nullptr;
  if (client_put != nullptr && client_ack != nullptr) {
    cp.e2e_us = NonNeg(client_ack->at - client_put->at);
  }

  // Client -> head transit. Pre-PR-7 traces lack head_recv; the gap then
  // stays unattributed and shows up as coverage < 1 rather than a guess.
  if (client_put != nullptr && head_recv != nullptr) {
    cp.net_us += NonNeg(head_recv->at - client_put->at);
    AddSegment(&cp, "net:client->head", client_put->at, head_recv->at);
  }

  // Head processing, split around the dep-wait park when the write gated.
  if (head_recv != nullptr && gated != nullptr && unblocked != nullptr) {
    cp.encode_us += NonNeg(gated->at - head_recv->at);
    AddSegment(&cp, "head:gate_check", head_recv->at, gated->at);
  } else if (head_recv != nullptr && gated == nullptr && head_apply != nullptr) {
    cp.encode_us += NonNeg(head_apply->at - head_recv->at);
    AddSegment(&cp, "head:encode", head_recv->at, head_apply->at);
  }
  if (gated != nullptr && unblocked != nullptr) {
    cp.depwait_us = NonNeg(unblocked->at - gated->at);
    AddSegment(&cp, "dep_wait", gated->at, unblocked->at);
    if (head_apply != nullptr) {
      cp.encode_us += NonNeg(head_apply->at - unblocked->at);
      AddSegment(&cp, "head:encode", unblocked->at, head_apply->at);
    }
  }

  // Chain links: pair each position's frame arrival with its apply. The
  // head (position 1) anchors position 2's transit, and so on down-chain.
  std::map<uint32_t, Time> apply_at;
  if (head_apply != nullptr) {
    apply_at[1] = head_apply->at;
  }
  for (const TraceHop& h : trace.hops) {
    if (h.kind == HopKind::kChainApply && !apply_at.contains(h.detail)) {
      apply_at[h.detail] = h.at;
    }
  }
  for (const TraceHop& h : trace.hops) {
    if (h.kind != HopKind::kChainRecv || h.detail < 2) {
      continue;
    }
    char name[48];
    auto prev = apply_at.find(h.detail - 1);
    if (prev != apply_at.end()) {
      std::snprintf(name, sizeof(name), "link%u:net", h.detail);
      AddSegment(&cp, name, prev->second, h.at);
    }
    auto self = apply_at.find(h.detail);
    if (self != apply_at.end()) {
      std::snprintf(name, sizeof(name), "link%u:process", h.detail);
      AddSegment(&cp, name, h.at, self->second);
    }
  }

  // Waiting for the position-k ack, then the ack's transit back.
  if (head_apply != nullptr && k_ack != nullptr) {
    cp.kack_us = NonNeg(k_ack->at - head_apply->at);
    AddSegment(&cp, "k_ack_wait", head_apply->at, k_ack->at);
  }
  if (k_ack != nullptr && client_ack != nullptr) {
    cp.net_us += NonNeg(client_ack->at - k_ack->at);
    AddSegment(&cp, "net:ack->client", k_ack->at, client_ack->at);
  }

  // Trailing lag: DC-Write-Stability and geo visibility land after the
  // client ack on this protocol, so they are reported, not summed.
  if (head_apply != nullptr) {
    const TraceHop* tail_stable = nullptr;
    for (const TraceHop& h : trace.hops) {
      if (h.kind == HopKind::kTailStable && h.dc == head_apply->dc) {
        tail_stable = &h;
        break;
      }
    }
    if (tail_stable != nullptr) {
      cp.stability_us = NonNeg(tail_stable->at - head_apply->at);
      AddSegment(&cp, "stability_lag", head_apply->at, tail_stable->at);
    }
  }
  if (geo_ship != nullptr && remote_visible != nullptr) {
    cp.geo_us = NonNeg(remote_visible->at - geo_ship->at);
    AddSegment(&cp, "geo_lag", geo_ship->at, remote_visible->at);
  }

  cp.migration_overlap = mig != nullptr;

  for (const std::string& note : trace.notes) {
    if (note.compare(0, 11, "blocked_by ") == 0) {
      cp.blocked_by = note.substr(11);
      break;
    }
  }

  if (cp.e2e_us > 0) {
    const Time attributed = cp.net_us + cp.encode_us + cp.depwait_us + cp.kack_us;
    cp.coverage = static_cast<double>(attributed) / static_cast<double>(cp.e2e_us);
  }

  std::sort(cp.segments.begin(), cp.segments.end(),
            [](const CpSegment& a, const CpSegment& b) {
              if (a.begin != b.begin) {
                return a.begin < b.begin;
              }
              return a.end < b.end;
            });
  return cp;
}

std::string RenderCriticalPath(const CriticalPath& cp) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "criticalpath %016llx e2e=%lldus coverage=%.1f%%%s\n",
                static_cast<unsigned long long>(cp.id),
                static_cast<long long>(cp.e2e_us), cp.coverage * 100.0,
                cp.complete ? "" : " [incomplete]");
  std::string out = buf;
  const Time t0 = cp.segments.empty() ? 0 : cp.segments.front().begin;
  for (const CpSegment& s : cp.segments) {
    std::snprintf(buf, sizeof(buf), "  %-18s +%-8lld +%-8lld %8lldus\n", s.name.c_str(),
                  static_cast<long long>(s.begin - t0),
                  static_cast<long long>(s.end - t0),
                  static_cast<long long>(s.duration()));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  attribution: encode=%lldus net=%lldus dep_wait=%lldus k_ack=%lldus\n",
                static_cast<long long>(cp.encode_us), static_cast<long long>(cp.net_us),
                static_cast<long long>(cp.depwait_us), static_cast<long long>(cp.kack_us));
  out += buf;
  if (cp.stability_us >= 0 || cp.geo_us >= 0) {
    std::snprintf(buf, sizeof(buf), "  post-ack: stability_lag=%lldus geo_lag=%lldus\n",
                  static_cast<long long>(cp.stability_us),
                  static_cast<long long>(cp.geo_us));
    out += buf;
  }
  if (!cp.blocked_by.empty()) {
    out += "  blocked_by " + cp.blocked_by + "\n";
  }
  if (cp.migration_overlap) {
    out += "  migration_overlap\n";
  }
  return out;
}

std::string RenderCriticalPathJson(const CriticalPath& cp) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"id\":\"%016llx\",\"complete\":%s,\"e2e_us\":%lld,\"net_us\":%lld,"
                "\"encode_us\":%lld,\"depwait_us\":%lld,\"kack_us\":%lld,"
                "\"stability_us\":%lld,\"geo_us\":%lld,\"coverage\":%.4f,"
                "\"migration_overlap\":%s,\"blocked_by\":",
                static_cast<unsigned long long>(cp.id), cp.complete ? "true" : "false",
                static_cast<long long>(cp.e2e_us), static_cast<long long>(cp.net_us),
                static_cast<long long>(cp.encode_us),
                static_cast<long long>(cp.depwait_us),
                static_cast<long long>(cp.kack_us),
                static_cast<long long>(cp.stability_us),
                static_cast<long long>(cp.geo_us), cp.coverage,
                cp.migration_overlap ? "true" : "false");
  std::string out = buf;
  AppendJsonString(&out, cp.blocked_by);
  out += ",\"segments\":[";
  bool first = true;
  for (const CpSegment& s : cp.segments) {
    if (!first) {
      out += ',';
    }
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    std::snprintf(buf, sizeof(buf), ",\"begin\":%lld,\"end\":%lld}",
                  static_cast<long long>(s.begin), static_cast<long long>(s.end));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

namespace {

// Cursor over RenderJson output. The input is machine-generated by our own
// renderer, so the scanner is strict: any shape mismatch fails the parse.
struct JsonCursor {
  const std::string& text;
  size_t pos = 0;

  bool Literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text.compare(pos, n, lit) != 0) {
      return false;
    }
    pos += n;
    return true;
  }

  bool Peek(char c) const { return pos < text.size() && text[pos] == c; }

  bool String(std::string* out) {
    out->clear();
    if (!Literal("\"")) {
      return false;
    }
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) {
        return false;
      }
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos + 4 > text.size()) {
            return false;
          }
          const unsigned long code = std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16);
          pos += 4;
          // Our escaper only emits \u00XX for control bytes.
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool Number(int64_t* out) {
    const size_t start = pos;
    if (Peek('-')) {
      ++pos;
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos == start) {
      return false;
    }
    *out = std::strtoll(text.substr(start, pos - start).c_str(), nullptr, 10);
    return true;
  }

  bool NumberU64(uint64_t* out) {
    const size_t start = pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos == start) {
      return false;
    }
    *out = std::strtoull(text.substr(start, pos - start).c_str(), nullptr, 10);
    return true;
  }
};

bool HopKindFromName(const std::string& name, HopKind* out) {
  for (uint8_t k = 1; k <= static_cast<uint8_t>(HopKind::kMigPhase); ++k) {
    if (name == HopKindName(static_cast<HopKind>(k))) {
      *out = static_cast<HopKind>(k);
      return true;
    }
  }
  return false;
}

}  // namespace

bool ParseTraceJson(const std::string& json, TraceCollector::Trace* out) {
  out->id = 0;
  out->hops.clear();
  out->notes.clear();
  JsonCursor c{json};
  std::string id_text;
  if (!c.Literal("{\"id\":") || !c.String(&id_text) || !c.Literal(",\"hops\":[")) {
    return false;
  }
  char* end = nullptr;
  out->id = std::strtoull(id_text.c_str(), &end, 16);
  if (end == nullptr || *end != '\0' || out->id == 0) {
    return false;
  }
  while (!c.Peek(']')) {
    if (!out->hops.empty() && !c.Literal(",")) {
      return false;
    }
    TraceHop hop;
    std::string kind_name;
    int64_t node = 0, dc = 0, detail = 0, at = 0;
    if (!c.Literal("{\"kind\":") || !c.String(&kind_name) ||
        !c.Literal(",\"node\":") || !c.Number(&node) || !c.Literal(",\"dc\":") ||
        !c.Number(&dc) || !c.Literal(",\"detail\":") || !c.Number(&detail) ||
        !c.Literal(",\"at\":") || !c.Number(&at)) {
      return false;
    }
    if (c.Literal(",\"aux\":")) {  // absent in pre-PR-7 payloads
      if (!c.NumberU64(&hop.aux)) {
        return false;
      }
    }
    if (!c.Literal("}") || !HopKindFromName(kind_name, &hop.kind)) {
      return false;
    }
    hop.node = static_cast<uint32_t>(node);
    hop.dc = static_cast<uint16_t>(dc);
    hop.detail = static_cast<uint32_t>(detail);
    hop.at = at;
    out->hops.push_back(hop);
    if (out->hops.size() > 4096) {
      return false;
    }
  }
  c.pos++;  // ']'
  if (c.Literal(",\"notes\":[")) {
    while (!c.Peek(']')) {
      if (!out->notes.empty() && !c.Literal(",")) {
        return false;
      }
      std::string note;
      if (!c.String(&note)) {
        return false;
      }
      out->notes.push_back(std::move(note));
      if (out->notes.size() > 64) {
        return false;
      }
    }
    c.pos++;
  }
  return c.Literal("}");
}

size_t TraceAssembler::MergeFrom(const TraceCollector& src) {
  size_t merged = 0;
  for (uint64_t id : src.TraceIds()) {
    TraceCollector::Trace trace;
    if (!src.Find(id, &trace)) {
      continue;  // evicted between TraceIds() and Find()
    }
    TraceContext ctx;
    ctx.id = trace.id;
    ctx.hops.assign(trace.hops.begin(), trace.hops.end());
    collector_.Report(ctx);
    for (const std::string& note : trace.notes) {
      collector_.AnnotateNote(trace.id, note);
    }
    ++merged;
  }
  return merged;
}

int TraceAssembler::PullHttp(uint16_t port) {
  HttpClientResponse index = HttpGet(port, "/traces");
  if (!index.ok || index.status != 200) {
    return -1;
  }
  int merged = 0;
  size_t start = 0;
  while (start < index.body.size()) {
    size_t eol = index.body.find('\n', start);
    if (eol == std::string::npos) {
      eol = index.body.size();
    }
    std::string line = index.body.substr(start, eol - start);
    start = eol + 1;
    const size_t space = line.find(' ');  // strip " retained" suffix
    if (space != std::string::npos) {
      line.resize(space);
    }
    if (line.empty()) {
      continue;
    }
    HttpClientResponse resp = HttpGet(port, "/traces/" + line + "?format=json");
    if (!resp.ok || resp.status != 200) {
      continue;
    }
    TraceCollector::Trace trace;
    if (!ParseTraceJson(resp.body, &trace)) {
      continue;
    }
    TraceContext ctx;
    ctx.id = trace.id;
    ctx.hops.assign(trace.hops.begin(), trace.hops.end());
    collector_.Report(ctx);
    for (const std::string& note : trace.notes) {
      collector_.AnnotateNote(trace.id, note);
    }
    ++merged;
  }
  return merged;
}

std::vector<CriticalPath> TraceAssembler::Assemble() const {
  std::vector<CriticalPath> out;
  for (uint64_t id : collector_.TraceIds()) {
    TraceCollector::Trace trace;
    if (collector_.Find(id, &trace)) {
      out.push_back(ComputeCriticalPath(trace));
    }
  }
  return out;
}

bool TraceAssembler::AssembleOne(uint64_t id, CriticalPath* out) const {
  TraceCollector::Trace trace;
  if (!collector_.Find(id, &trace)) {
    return false;
  }
  *out = ComputeCriticalPath(trace);
  return true;
}

std::vector<CriticalPath> TraceAssembler::PublishAggregates(MetricsRegistry* metrics) const {
  std::vector<CriticalPath> paths = Assemble();
  if (metrics == nullptr) {
    return paths;
  }
  LatencyMetric* encode = metrics->GetLatency("crx_cp_encode_us");
  LatencyMetric* net = metrics->GetLatency("crx_cp_net_us");
  LatencyMetric* depwait = metrics->GetLatency("crx_cp_depwait_us");
  LatencyMetric* kack = metrics->GetLatency("crx_cp_kack_us");
  LatencyMetric* stability = metrics->GetLatency("crx_cp_stability_us");
  Counter* assembled = metrics->GetCounter("crx_cp_assembled_total");
  Counter* incomplete = metrics->GetCounter("crx_cp_incomplete_total");
  double coverage_sum = 0.0;
  size_t coverage_n = 0;
  for (const CriticalPath& cp : paths) {
    if (!cp.complete) {
      incomplete->Inc();
      continue;
    }
    assembled->Inc();
    encode->RecordWithExemplar(cp.encode_us, cp.id);
    net->RecordWithExemplar(cp.net_us, cp.id);
    depwait->RecordWithExemplar(cp.depwait_us, cp.id);
    kack->RecordWithExemplar(cp.kack_us, cp.id);
    if (cp.stability_us >= 0) {
      stability->RecordWithExemplar(cp.stability_us, cp.id);
    }
    coverage_sum += cp.coverage;
    ++coverage_n;
  }
  if (coverage_n > 0) {
    metrics->GetGauge("crx_cp_coverage_pct")
        ->Set(static_cast<int64_t>(coverage_sum / coverage_n * 100.0));
  }
  return paths;
}

}  // namespace chainreaction

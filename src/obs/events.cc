#include "src/obs/events.h"

#include <algorithm>
#include <cstdio>

namespace chainreaction {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kNone:
      return "none";
    case EventKind::kEpochChange:
      return "epoch_change";
    case EventKind::kRepairStart:
      return "repair_start";
    case EventKind::kRepairDone:
      return "repair_done";
    case EventKind::kSyncDone:
      return "sync_done";
    case EventKind::kPutParked:
      return "put_parked";
    case EventKind::kGetParked:
      return "get_parked";
    case EventKind::kGuardDrain:
      return "guard_drain";
    case EventKind::kGatedRedispatch:
      return "gated_redispatch";
    case EventKind::kWalRotate:
      return "wal_rotate";
    case EventKind::kWalTruncate:
      return "wal_truncate";
    case EventKind::kWalRecovery:
      return "wal_recovery";
    case EventKind::kMigSnapshot:
      return "mig_snapshot";
    case EventKind::kMigStreamDone:
      return "mig_stream_done";
    case EventKind::kMigSealed:
      return "mig_sealed";
    case EventKind::kMigAborted:
      return "mig_aborted";
    case EventKind::kGeoShip:
      return "geo_ship";
    case EventKind::kGeoInject:
      return "geo_inject";
    case EventKind::kCrashDump:
      return "crash_dump";
    case EventKind::kDepStall:
      return "dep_stall";
    case EventKind::kShutdownDump:
      return "shutdown_dump";
  }
  return "unknown";
}

void FlightRecorder::Emit(EventKind kind, int64_t time_us, int64_t a, int64_t b) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (kSlots - 1)];
  // Invalidate first so a concurrent reader never pairs the new payload with
  // the old sequence number; release on the final store pairs with the
  // reader's acquire re-check.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.time_us.store(time_us, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(kSlots);
  for (const Slot& slot : slots_) {
    const uint64_t tag = slot.seq.load(std::memory_order_acquire);
    if (tag == 0) {
      continue;  // empty or mid-write
    }
    FlightEvent e;
    e.time_us = slot.time_us.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    // Re-check: if the slot was reclaimed while we copied the payload, the
    // fields may mix two events — drop it. The fence keeps the payload
    // loads from sinking past the validation load.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != tag) {
      continue;
    }
    e.seq = tag - 1;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) { return x.seq < y.seq; });
  return out;
}

std::string FlightRecorder::RenderText(const std::vector<FlightEvent>& events) {
  std::string out;
  char buf[160];
  for (const FlightEvent& e : events) {
    std::snprintf(buf, sizeof(buf), "%llu %lld %s a=%lld b=%lld\n",
                  static_cast<unsigned long long>(e.seq), static_cast<long long>(e.time_us),
                  EventKindName(e.kind), static_cast<long long>(e.a),
                  static_cast<long long>(e.b));
    out += buf;
  }
  return out;
}

std::string FlightRecorder::RenderJson(const std::vector<FlightEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& e : events) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"seq\":%llu,\"time_us\":%lld,\"kind\":\"%s\",\"a\":%lld,\"b\":%lld}",
                  first ? "" : ",", static_cast<unsigned long long>(e.seq),
                  static_cast<long long>(e.time_us), EventKindName(e.kind),
                  static_cast<long long>(e.a), static_cast<long long>(e.b));
    out += buf;
    first = false;
  }
  out += ']';
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path, int64_t time_us,
                                EventKind header_kind) const {
  std::vector<FlightEvent> events = Snapshot();
  FlightEvent header;
  header.seq = emitted();
  header.time_us = time_us;
  header.kind = header_kind;
  header.a = static_cast<int64_t>(events.size());
  events.insert(events.begin(), header);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string text = RenderText(events);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace chainreaction

#include "src/obs/window.h"

#include <cstdio>

namespace chainreaction {

const WindowedPoint* WindowedView::Find(const std::string& name,
                                        const std::string& labels) const {
  for (const WindowedPoint& p : points) {
    if (p.name == name && p.labels == labels) {
      return &p;
    }
  }
  return nullptr;
}

std::string WindowedView::RenderText() const {
  std::string out;
  char buf[64];
  if (interval_us > 0) {
    std::snprintf(buf, sizeof(buf), "window %.3fs\n",
                  static_cast<double>(interval_us) / 1e6);
    out += buf;
  } else {
    out += "window cumulative (no baseline yet)\n";
  }
  for (const WindowedPoint& p : points) {
    out += p.name;
    if (!p.labels.empty()) {
      out += '{';
      out += p.labels;
      out += '}';
    }
    out += ' ';
    switch (p.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "delta=%lld rate=%.1f/s",
                      static_cast<long long>(p.delta), p.rate);
        out += buf;
        break;
      case MetricKind::kGauge:
        out += std::to_string(p.delta);
        break;
      case MetricKind::kHistogram:
        out += p.interval.Summary();
        break;
    }
    out += '\n';
  }
  return out;
}

std::string WindowedView::RenderJson() const {
  std::string out = "{\"interval_us\":" + std::to_string(interval_us) + ",\"points\":[";
  bool first = true;
  for (const WindowedPoint& p : points) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, p.name);
    out += ",\"labels\":";
    AppendJsonString(&out, p.labels);
    out += ',';
    char buf[64];
    switch (p.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), ",\"rate\":%.3f", p.rate);
        out += "\"kind\":\"counter\",\"delta\":" + std::to_string(p.delta) + buf;
        break;
      case MetricKind::kGauge:
        out += "\"kind\":\"gauge\",\"value\":" + std::to_string(p.delta);
        break;
      case MetricKind::kHistogram:
        out += "\"kind\":\"histogram\",\"count\":" + std::to_string(p.interval.count()) +
               ",\"mean\":" + std::to_string(p.interval.Mean()) +
               ",\"p50\":" + std::to_string(p.interval.P50()) +
               ",\"p95\":" + std::to_string(p.interval.P95()) +
               ",\"p99\":" + std::to_string(p.interval.P99());
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

WindowedView WindowedAggregator::Advance(const MetricsSnapshot& now, int64_t now_us) {
  WindowedView view;
  // Without a baseline (first call ever / first call after Reset()) the view
  // covers everything since the caller's time origin — callers pass a clock
  // that starts at 0 (sim time, or wall time minus process start).
  view.interval_us = has_prev_ ? now_us - prev_us_ : now_us;
  if (view.interval_us < 0) {
    view.interval_us = 0;
  }
  const double seconds = static_cast<double>(view.interval_us) / 1e6;
  view.points.reserve(now.points.size());
  for (const MetricPoint& cur : now.points) {
    const MetricPoint* prev = has_prev_ ? prev_.Find(cur.name, cur.labels) : nullptr;
    WindowedPoint wp;
    wp.name = cur.name;
    wp.labels = cur.labels;
    wp.kind = cur.kind;
    switch (cur.kind) {
      case MetricKind::kCounter: {
        // A shrinking cumulative counter means a reset; start the interval
        // from zero rather than reporting a negative delta.
        const int64_t base = (prev != nullptr && prev->value <= cur.value) ? prev->value : 0;
        wp.delta = cur.value - base;
        wp.rate = seconds > 0 ? static_cast<double>(wp.delta) / seconds : 0.0;
        break;
      }
      case MetricKind::kGauge:
        wp.delta = cur.value;
        break;
      case MetricKind::kHistogram:
        wp.interval = prev != nullptr ? cur.hist.Diff(prev->hist) : cur.hist;
        break;
    }
    view.points.push_back(std::move(wp));
  }
  prev_ = now;
  prev_us_ = now_us;
  has_prev_ = true;
  return view;
}

void WindowedAggregator::Reset() {
  has_prev_ = false;
  prev_ = MetricsSnapshot{};
  prev_us_ = 0;
}

}  // namespace chainreaction

// TelemetryServer: the HTTP face of the observability layer.
//
// Wraps an HttpServer and routes:
//   /metrics          Prometheus text exposition (?filter= substring,
//                     ?format=text for the plain "name value" rendering)
//   /metrics.json     JSON snapshot of every instrument
//   /metrics/window   per-interval rates and percentiles since the previous
//                     scrape of this endpoint (?format=json)
//   /traces           retained + recent trace ids, one per line
//   /traces/<id>      one trace, hop by hop (?format=json); <id> is the
//                     16-hex-digit form printed everywhere else
//   /events           flight-recorder contents of every attached recorder
//                     (?format=json)
//   /status           node/harness status JSON from the attached provider
//   /criticalpath     critical-path decomposition of one trace (?id=<hex>,
//                     default: the latest; ?format=json) — this node's
//                     partial view unless an assembler merged peers into
//                     the attached collector
//
// One TelemetryServer is attached per node in the TCP runtime (each on its
// own port) and one per harness in sim runs (aggregating the shared
// registry/collector of the whole simulated cluster). MetricsRegistry,
// TraceCollector, and FlightRecorder are all thread-safe to read while the
// system runs, so handlers read them directly; /status goes through a
// provider callback because node state is loop-thread-owned.
#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/net/http_server.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/window.h"

namespace chainreaction {

class TelemetryServer {
 public:
  // `port` 0 picks an ephemeral port (see port() after construction).
  explicit TelemetryServer(uint16_t port);

  bool ok() const { return server_.ok(); }
  uint16_t port() const { return server_.port(); }

  // Attach before Start(). All pointers must outlive the server.
  void AttachMetrics(const MetricsRegistry* metrics) { metrics_ = metrics; }
  void AttachTraces(const TraceCollector* traces) { traces_ = traces; }
  void AddRecorder(const std::string& name, const FlightRecorder* recorder);
  // Returns the /status body (JSON). Runs on the server thread.
  void SetStatusProvider(std::function<std::string()> provider);

  void Start() { server_.Start(); }
  void Stop() { server_.Stop(); }

  static int64_t WallMicros();

 private:
  HttpResponse ServeMetrics(const std::string& query) const;
  HttpResponse ServeMetricsJson() const;
  HttpResponse ServeWindow(const std::string& query);
  HttpResponse ServeTraces(const std::string& path, const std::string& query) const;
  HttpResponse ServeEvents(const std::string& query) const;
  HttpResponse ServeStatus() const;
  HttpResponse ServeCriticalPath(const std::string& query) const;

  HttpServer server_;
  const MetricsRegistry* metrics_ = nullptr;
  const TraceCollector* traces_ = nullptr;
  std::vector<std::pair<std::string, const FlightRecorder*>> recorders_;
  std::function<std::string()> status_provider_;

  // Scrape-to-scrape state for /metrics/window.
  std::mutex window_mu_;
  WindowedAggregator window_;
  const int64_t window_t0_us_ = WallMicros();
};

}  // namespace chainreaction

#endif  // SRC_OBS_TELEMETRY_H_

// Flight recorder: a fixed-size, lock-light ring buffer of structured
// control-plane events per node.
//
// Metrics answer "how much/how fast"; traces answer "where did THIS request
// go"; the flight recorder answers "what did the node DO lately" — the last
// N epoch changes, chain repairs, guard parks/drains, WAL rotations, geo
// ships. It is the first artifact to read after a crash: the harness dumps
// the victim's recorder to its data dir (flight.log) before tearing the
// node down, and live nodes expose it at /events.
//
// Concurrency: writers claim a slot with one fetch_add and then fill the
// slot's fields, each of which is individually atomic (relaxed). A reader
// snapshots slots and validates the per-slot sequence number afterwards; a
// slot being overwritten mid-read is detected (seq changed / ahead of the
// claimed range) and skipped. There are no plain-field data races, so the
// structure is clean under ThreadSanitizer, and writers never take a lock.
// In the simulator everything is single-threaded and these details are
// inert.
#ifndef SRC_OBS_EVENTS_H_
#define SRC_OBS_EVENTS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace chainreaction {

enum class EventKind : uint8_t {
  kNone = 0,
  kEpochChange,      // a=new epoch, b=ring version
  kRepairStart,      // a=epoch, b=segment count
  kRepairDone,       // a=epoch, b=chains touched
  kSyncDone,         // a=epoch, b=entries synced (MemSyncDone applied)
  kPutParked,        // a=key hash, b=parked depth (dependency/rejoin guard)
  kGetParked,        // a=key hash, b=parked depth (rejoin read guard)
  kGuardDrain,       // a=drained count, b=0 (rejoin guard lifted)
  kGatedRedispatch,  // a=key hash, b=re-dispatched ops (DC-Write-Stable)
  kWalRotate,        // a=new segment seq, b=old segment bytes
  kWalTruncate,      // a=checkpoint floor seq, b=segments deleted
  kWalRecovery,      // a=entries replayed, b=last seq
  kGeoShip,          // a=ops shipped, b=destination dc
  kGeoInject,        // a=ops injected, b=source dc
  kCrashDump,        // a=events captured, b=0 (written as the dump header)
  kMigSnapshot,      // a=migration id, b=keys queued for streaming
  kMigStreamDone,    // a=migration id, b=entries streamed (snapshot done)
  kMigSealed,        // a=migration id, b=entries applied (inflow sealed)
  kMigAborted,       // a=migration id, b=0
  kDepStall,         // a=blocking key hash, b=dep-wait us (stall watchdog)
  kShutdownDump,     // a=events captured, b=0 (clean-shutdown dump header)
};

const char* EventKindName(EventKind kind);

// One recorded event. `seq` is a global (per recorder) monotonically
// increasing id; `time_us` is whatever clock the emitter passed (sim time
// in the simulator, wall-clock microseconds in the TCP runtime).
struct FlightEvent {
  uint64_t seq = 0;
  int64_t time_us = 0;
  EventKind kind = EventKind::kNone;
  int64_t a = 0;
  int64_t b = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kSlots = 256;  // power of two

  // Lock-free; safe from any thread. Arguments are numeric by design
  // (key hashes, counts, epochs) — no allocation on the emit path.
  void Emit(EventKind kind, int64_t time_us, int64_t a = 0, int64_t b = 0);

  // Events currently in the ring, oldest first. Slots overwritten while the
  // snapshot is being taken are dropped (see file comment).
  std::vector<FlightEvent> Snapshot() const;

  uint64_t emitted() const { return next_.load(std::memory_order_relaxed); }

  // One "seq time kind a b" line per event.
  static std::string RenderText(const std::vector<FlightEvent>& events);
  static std::string RenderJson(const std::vector<FlightEvent>& events);

  // Writes RenderText(Snapshot()) to `path` with a `header` line prepended
  // (kCrashDump from the harness crash path, kShutdownDump on clean
  // teardown). Returns false on I/O failure.
  bool DumpToFile(const std::string& path, int64_t time_us,
                  EventKind header = EventKind::kCrashDump) const;

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty; else event seq + 1
    std::atomic<int64_t> time_us{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
  };

  std::atomic<uint64_t> next_{0};
  std::array<Slot, kSlots> slots_;
};

}  // namespace chainreaction

#endif  // SRC_OBS_EVENTS_H_

#include "src/obs/telemetry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/obs/assembly.h"

namespace chainreaction {

namespace {

// Pulls "key=value" out of a raw query string ("" when absent).
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t start = 0;
  while (start < query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string pair = query.substr(start, end - start);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.compare(0, eq, key) == 0) {
      return pair.substr(eq + 1);
    }
    start = end + 1;
  }
  return "";
}

HttpResponse TextResponse(std::string body) {
  HttpResponse resp;
  resp.body = std::move(body);
  return resp;
}

HttpResponse JsonResponse(std::string body) {
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

}  // namespace

int64_t TelemetryServer::WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

TelemetryServer::TelemetryServer(uint16_t port) : server_(port) {
  server_.Handle("/metrics.json", [this](const std::string&, const std::string&) {
    return ServeMetricsJson();
  });
  server_.Handle("/metrics/window", [this](const std::string&, const std::string& query) {
    return ServeWindow(query);
  });
  server_.Handle("/metrics", [this](const std::string&, const std::string& query) {
    return ServeMetrics(query);
  });
  server_.Handle("/traces", [this](const std::string& path, const std::string& query) {
    return ServeTraces(path, query);
  });
  server_.Handle("/events", [this](const std::string&, const std::string& query) {
    return ServeEvents(query);
  });
  server_.Handle("/status", [this](const std::string&, const std::string&) {
    return ServeStatus();
  });
  server_.Handle("/criticalpath", [this](const std::string&, const std::string& query) {
    return ServeCriticalPath(query);
  });
}

void TelemetryServer::AddRecorder(const std::string& name, const FlightRecorder* recorder) {
  recorders_.emplace_back(name, recorder);
}

void TelemetryServer::SetStatusProvider(std::function<std::string()> provider) {
  status_provider_ = std::move(provider);
}

HttpResponse TelemetryServer::ServeMetrics(const std::string& query) const {
  if (metrics_ == nullptr) {
    return TextResponse("");
  }
  const MetricsSnapshot snap = metrics_->Snapshot();
  if (QueryParam(query, "format") == "text" || !QueryParam(query, "filter").empty()) {
    return TextResponse(RenderTextFiltered(snap, QueryParam(query, "filter")));
  }
  return TextResponse(snap.RenderPrometheus());
}

HttpResponse TelemetryServer::ServeMetricsJson() const {
  return JsonResponse(metrics_ == nullptr ? "[]" : metrics_->Snapshot().RenderJson());
}

HttpResponse TelemetryServer::ServeWindow(const std::string& query) {
  if (metrics_ == nullptr) {
    return TextResponse("");
  }
  WindowedView view;
  {
    // Times are relative to server construction so the first scrape's
    // interval is "since the server came up", not since the epoch.
    std::lock_guard<std::mutex> lock(window_mu_);
    view = window_.Advance(metrics_->Snapshot(), WallMicros() - window_t0_us_);
  }
  if (QueryParam(query, "format") == "json") {
    return JsonResponse(view.RenderJson());
  }
  return TextResponse(view.RenderText());
}

HttpResponse TelemetryServer::ServeTraces(const std::string& path,
                                          const std::string& query) const {
  if (traces_ == nullptr) {
    return TextResponse("");
  }
  // /traces/<16-hex-id>
  if (path.size() > 8 && path.compare(0, 8, "/traces/") == 0) {
    const std::string id_text = path.substr(8);
    char* end = nullptr;
    const uint64_t id = std::strtoull(id_text.c_str(), &end, 16);
    TraceCollector::Trace trace;
    if (end == nullptr || *end != '\0' || id == 0 || !traces_->Find(id, &trace)) {
      return HttpServer::NotFound();
    }
    if (QueryParam(query, "format") == "json") {
      return JsonResponse(TraceCollector::RenderJson(trace));
    }
    return TextResponse(TraceCollector::Render(trace));
  }
  // /traces: the id index, retained (tail-sampled slow) traces marked.
  std::string out;
  char buf[64];
  for (uint64_t id : traces_->TraceIds()) {
    std::snprintf(buf, sizeof(buf), "%016llx%s\n", static_cast<unsigned long long>(id),
                  traces_->IsRetained(id) ? " retained" : "");
    out += buf;
  }
  return TextResponse(out);
}

HttpResponse TelemetryServer::ServeEvents(const std::string& query) const {
  const bool json = QueryParam(query, "format") == "json";
  std::string out;
  if (json) {
    out += '{';
  }
  bool first = true;
  for (const auto& [name, recorder] : recorders_) {
    const std::vector<FlightEvent> events = recorder->Snapshot();
    if (json) {
      if (!first) {
        out += ',';
      }
      AppendJsonString(&out, name);
      out += ':';
      out += FlightRecorder::RenderJson(events);
    } else {
      out += "# " + name + "\n" + FlightRecorder::RenderText(events);
    }
    first = false;
  }
  if (json) {
    out += '}';
    return JsonResponse(std::move(out));
  }
  return TextResponse(std::move(out));
}

HttpResponse TelemetryServer::ServeStatus() const {
  if (status_provider_) {
    return JsonResponse(status_provider_());
  }
  return JsonResponse("{}");
}

HttpResponse TelemetryServer::ServeCriticalPath(const std::string& query) const {
  if (traces_ == nullptr) {
    return HttpServer::NotFound();
  }
  TraceCollector::Trace trace;
  const std::string id_text = QueryParam(query, "id");
  if (!id_text.empty()) {
    char* end = nullptr;
    const uint64_t id = std::strtoull(id_text.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || id == 0 || !traces_->Find(id, &trace)) {
      return HttpServer::NotFound();
    }
  } else if (!traces_->Latest(&trace)) {
    return HttpServer::NotFound();
  }
  const CriticalPath cp = ComputeCriticalPath(trace);
  if (QueryParam(query, "format") == "json") {
    return JsonResponse(RenderCriticalPathJson(cp));
  }
  return TextResponse(RenderCriticalPath(cp));
}

}  // namespace chainreaction

// Trace sampling policy: which requests carry a TraceContext, and which
// completed traces are worth keeping.
//
// Two cooperating mechanisms:
//   * Head sampling decides AT SEND TIME whether a request is traced at all
//     (stride and/or probabilistic). Cheap, but blind to outcome.
//   * Tail-based capture decides AT COMPLETION whether a trace is retained:
//     when `slow_trace_us` > 0 the client traces every request, and on the
//     ack keeps the trace (TraceCollector::Retain) iff the client-observed
//     latency crossed the threshold or the request was head-sampled anyway;
//     everything else is discarded immediately. Slow requests are therefore
//     never lost to the sampler — the property E15 asserts.
//
// The policy object is a plain value; the client owns one and a tiny xorshift
// state for the probabilistic draw (deterministic per client seed, so sim
// runs stay reproducible).
#ifndef SRC_OBS_SAMPLING_H_
#define SRC_OBS_SAMPLING_H_

#include <cstdint>

namespace chainreaction {

struct TraceSamplingPolicy {
  // Head sampling: trace every Nth request (0 = no stride sampling).
  uint32_t sample_every = 0;
  // Head sampling: additionally trace with this probability (0 = off).
  double probability = 0.0;
  // Tail capture: retain any trace whose client-observed latency is >= this
  // many microseconds (0 = tail capture off).
  int64_t slow_trace_us = 0;

  // True when every request must carry a trace context so the tail decision
  // can be made at ack time.
  bool capture_all() const { return slow_trace_us > 0; }

  // Head-sampling decision for the `index`-th operation (0-based).
  // `rng` is caller-owned xorshift64 state (never 0).
  bool HeadSample(uint64_t index, uint64_t* rng) const {
    if (sample_every > 0 && index % sample_every == 0) {
      return true;
    }
    if (probability > 0.0) {
      uint64_t x = *rng;
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      *rng = x;
      // Top 53 bits -> uniform double in [0, 1).
      const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
      return u < probability;
    }
    return false;
  }

  // Whether any tracing machinery is active at all.
  bool enabled() const { return sample_every > 0 || probability > 0.0 || capture_all(); }
};

}  // namespace chainreaction

#endif  // SRC_OBS_SAMPLING_H_

#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/result.h"

namespace chainreaction {

std::string RenderLabels(const MetricLabels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) {
      out += ',';
    }
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  const InstrumentKey key{name, RenderLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  CHAINRX_CHECK(!gauges_.contains(key) && !latencies_.contains(key));
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  const InstrumentKey key{name, RenderLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  CHAINRX_CHECK(!counters_.contains(key) && !latencies_.contains(key));
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

LatencyMetric* MetricsRegistry::GetLatency(const std::string& name, const MetricLabels& labels) {
  const InstrumentKey key{name, RenderLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  CHAINRX_CHECK(!counters_.contains(key) && !gauges_.contains(key));
  auto& slot = latencies_[key];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyMetric>();
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.points.reserve(counters_.size() + gauges_.size() + latencies_.size());
  for (const auto& [key, c] : counters_) {
    MetricPoint p;
    p.name = key.first;
    p.labels = key.second;
    p.kind = MetricKind::kCounter;
    p.value = static_cast<int64_t>(c->Value());
    snap.points.push_back(std::move(p));
  }
  for (const auto& [key, g] : gauges_) {
    MetricPoint p;
    p.name = key.first;
    p.labels = key.second;
    p.kind = MetricKind::kGauge;
    p.value = g->Value();
    snap.points.push_back(std::move(p));
  }
  for (const auto& [key, h] : latencies_) {
    MetricPoint p;
    p.name = key.first;
    p.labels = key.second;
    p.kind = MetricKind::kHistogram;
    p.hist = h->Snapshot();
    snap.points.push_back(std::move(p));
  }
  std::sort(snap.points.begin(), snap.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return snap;
}

const MetricPoint* MetricsSnapshot::Find(const std::string& name,
                                         const std::string& labels) const {
  for (const MetricPoint& p : points) {
    if (p.name == name && p.labels == labels) {
      return &p;
    }
  }
  return nullptr;
}

int64_t MetricsSnapshot::Value(const std::string& name, const std::string& labels) const {
  const MetricPoint* p = Find(name, labels);
  return p == nullptr ? 0 : p->value;
}

int64_t MetricsSnapshot::SumCounters(const std::string& name, const std::string& needle) const {
  int64_t sum = 0;
  for (const MetricPoint& p : points) {
    if (p.name != name || p.kind == MetricKind::kHistogram) {
      continue;
    }
    if (needle.empty() || p.labels.find(needle) != std::string::npos) {
      sum += p.value;
    }
  }
  return sum;
}

std::string MetricsSnapshot::RenderText() const {
  std::string out;
  for (const MetricPoint& p : points) {
    out += p.name;
    if (!p.labels.empty()) {
      out += '{';
      out += p.labels;
      out += '}';
    }
    out += ' ';
    if (p.kind == MetricKind::kHistogram) {
      out += p.hist.Summary();
    } else {
      out += std::to_string(p.value);
    }
    out += '\n';
  }
  return out;
}

namespace {
// Minimal JSON string escaping; metric names/labels are ASCII identifiers,
// but keys may carry arbitrary bytes via labels.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}
}  // namespace

std::string MetricsSnapshot::RenderJson() const {
  std::string out = "[";
  bool first = true;
  for (const MetricPoint& p : points) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, p.name);
    out += ",\"labels\":";
    AppendJsonString(&out, p.labels);
    switch (p.kind) {
      case MetricKind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" + std::to_string(p.value);
        break;
      case MetricKind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" + std::to_string(p.value);
        break;
      case MetricKind::kHistogram:
        out += ",\"kind\":\"histogram\",\"count\":" + std::to_string(p.hist.count()) +
               ",\"mean\":" + std::to_string(p.hist.Mean()) +
               ",\"p50\":" + std::to_string(p.hist.P50()) +
               ",\"p95\":" + std::to_string(p.hist.P95()) +
               ",\"p99\":" + std::to_string(p.hist.P99()) +
               ",\"min\":" + std::to_string(p.hist.min()) +
               ",\"max\":" + std::to_string(p.hist.max());
        break;
    }
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace chainreaction

#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "src/common/result.h"

namespace chainreaction {

std::string RenderLabels(const MetricLabels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) {
      out += ',';
    }
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

size_t LatencyMetric::TierFor(int64_t value) {
  const uint64_t v = value <= 0 ? 1 : static_cast<uint64_t>(value);
  return static_cast<size_t>(63 - std::countl_zero(v));
}

void LatencyMetric::RecordWithExemplar(int64_t value, uint64_t trace_id) {
  if (value < 0) {
    value = 0;
  }
  const size_t idx = std::min(Histogram::BucketFor(value), Histogram::kNumBuckets - 1);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<uint64_t>(value), std::memory_order_relaxed);
  // First sample seeds min/max (count_ orders nothing; a tie during the
  // first concurrent samples may briefly leave min=0 — relaxed semantics).
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    int64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  if (trace_id != 0) {
    const size_t tier = TierFor(value);
    exemplar_val_[tier].store(value, std::memory_order_relaxed);
    exemplar_id_[tier].store(trace_id, std::memory_order_relaxed);
  }
}

Histogram LatencyMetric::Snapshot() const {
  uint64_t counts[Histogram::kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  // Derive the count from the copied buckets so percentiles are internally
  // consistent; sum/min/max may trail by in-flight samples (relaxed).
  const double sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  const int64_t min = min_.load(std::memory_order_relaxed);
  const int64_t max = max_.load(std::memory_order_relaxed);
  return Histogram::FromBuckets(counts, Histogram::kNumBuckets, total, sum, min, max);
}

std::vector<LatencyExemplar> LatencyMetric::Exemplars() const {
  std::vector<LatencyExemplar> out;
  for (size_t tier = 0; tier < kExemplarTiers; ++tier) {
    const uint64_t id = exemplar_id_[tier].load(std::memory_order_relaxed);
    if (id == 0) {
      continue;
    }
    LatencyExemplar e;
    e.trace_id = id;
    e.value = exemplar_val_[tier].load(std::memory_order_relaxed);
    e.bucket_upper =
        tier >= 62 ? INT64_MAX : static_cast<int64_t>((uint64_t{2} << tier) - 1);
    out.push_back(e);
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  const InstrumentKey key{name, RenderLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  CHAINRX_CHECK(!gauges_.contains(key) && !latencies_.contains(key));
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  const InstrumentKey key{name, RenderLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  CHAINRX_CHECK(!counters_.contains(key) && !latencies_.contains(key));
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

LatencyMetric* MetricsRegistry::GetLatency(const std::string& name, const MetricLabels& labels) {
  const InstrumentKey key{name, RenderLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  CHAINRX_CHECK(!counters_.contains(key) && !gauges_.contains(key));
  auto& slot = latencies_[key];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyMetric>();
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.points.reserve(counters_.size() + gauges_.size() + latencies_.size());
  for (const auto& [key, c] : counters_) {
    MetricPoint p;
    p.name = key.first;
    p.labels = key.second;
    p.kind = MetricKind::kCounter;
    p.value = static_cast<int64_t>(c->Value());
    snap.points.push_back(std::move(p));
  }
  for (const auto& [key, g] : gauges_) {
    MetricPoint p;
    p.name = key.first;
    p.labels = key.second;
    p.kind = MetricKind::kGauge;
    p.value = g->Value();
    snap.points.push_back(std::move(p));
  }
  for (const auto& [key, h] : latencies_) {
    MetricPoint p;
    p.name = key.first;
    p.labels = key.second;
    p.kind = MetricKind::kHistogram;
    p.hist = h->Snapshot();
    p.exemplars = h->Exemplars();
    snap.points.push_back(std::move(p));
  }
  std::sort(snap.points.begin(), snap.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return snap;
}

const MetricPoint* MetricsSnapshot::Find(const std::string& name,
                                         const std::string& labels) const {
  for (const MetricPoint& p : points) {
    if (p.name == name && p.labels == labels) {
      return &p;
    }
  }
  return nullptr;
}

int64_t MetricsSnapshot::Value(const std::string& name, const std::string& labels) const {
  const MetricPoint* p = Find(name, labels);
  return p == nullptr ? 0 : p->value;
}

int64_t MetricsSnapshot::SumCounters(const std::string& name, const std::string& needle) const {
  int64_t sum = 0;
  for (const MetricPoint& p : points) {
    if (p.name != name || p.kind == MetricKind::kHistogram) {
      continue;
    }
    if (needle.empty() || p.labels.find(needle) != std::string::npos) {
      sum += p.value;
    }
  }
  return sum;
}

std::string MetricsSnapshot::RenderText() const {
  std::string out;
  for (const MetricPoint& p : points) {
    out += p.name;
    if (!p.labels.empty()) {
      out += '{';
      out += p.labels;
      out += '}';
    }
    out += ' ';
    if (p.kind == MetricKind::kHistogram) {
      out += p.hist.Summary();
    } else {
      out += std::to_string(p.value);
    }
    out += '\n';
  }
  return out;
}

std::string RenderTextFiltered(const MetricsSnapshot& snap, const std::string& filter) {
  const std::string text = snap.RenderText();
  if (filter.empty()) {
    return text;
  }
  std::string out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (text.substr(start, end - start).find(filter) != std::string::npos) {
      out.append(text, start, end - start);
      out += '\n';
    }
    start = end + 1;
  }
  return out;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string MetricsSnapshot::RenderJson() const {
  std::string out = "[";
  bool first = true;
  for (const MetricPoint& p : points) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, p.name);
    out += ",\"labels\":";
    AppendJsonString(&out, p.labels);
    switch (p.kind) {
      case MetricKind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" + std::to_string(p.value);
        break;
      case MetricKind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" + std::to_string(p.value);
        break;
      case MetricKind::kHistogram:
        out += ",\"kind\":\"histogram\",\"count\":" + std::to_string(p.hist.count()) +
               ",\"mean\":" + std::to_string(p.hist.Mean()) +
               ",\"p50\":" + std::to_string(p.hist.P50()) +
               ",\"p95\":" + std::to_string(p.hist.P95()) +
               ",\"p99\":" + std::to_string(p.hist.P99()) +
               ",\"min\":" + std::to_string(p.hist.min()) +
               ",\"max\":" + std::to_string(p.hist.max());
        break;
    }
    out += '}';
  }
  out += ']';
  return out;
}

namespace {

// "k1=v1,k2=v2" -> {k1="v1",k2="v2"} (Prometheus label syntax). Label
// values in this codebase are ids/roles/ports, so splitting on ,/= is safe.
std::string PrometheusLabels(const std::string& canonical) {
  if (canonical.empty()) {
    return "";
  }
  std::string out = "{";
  size_t start = 0;
  bool first = true;
  while (start < canonical.size()) {
    size_t end = canonical.find(',', start);
    if (end == std::string::npos) {
      end = canonical.size();
    }
    const std::string pair = canonical.substr(start, end - start);
    const size_t eq = pair.find('=');
    if (!first) {
      out += ',';
    }
    first = false;
    if (eq == std::string::npos) {
      out += pair + "=\"\"";
    } else {
      out += pair.substr(0, eq) + "=\"" + pair.substr(eq + 1) + "\"";
    }
    start = end + 1;
  }
  out += '}';
  return out;
}

// Same, but with one extra label appended (for le/quantile series).
std::string PrometheusLabelsPlus(const std::string& canonical, const std::string& extra_key,
                                 const std::string& extra_value) {
  std::string labels = PrometheusLabels(canonical);
  const std::string extra = extra_key + "=\"" + extra_value + "\"";
  if (labels.empty()) {
    return "{" + extra + "}";
  }
  labels.insert(labels.size() - 1, (labels.size() > 2 ? "," : "") + extra);
  return labels;
}

std::string FormatLe(int64_t upper) {
  return upper == INT64_MAX ? "+Inf" : std::to_string(upper);
}

}  // namespace

std::string MetricsSnapshot::RenderPrometheus() const {
  std::string out;
  std::string last_name;
  for (const MetricPoint& p : points) {
    if (p.name != last_name) {
      last_name = p.name;
      out += "# TYPE " + p.name + ' ';
      switch (p.kind) {
        case MetricKind::kCounter:
          out += "counter";
          break;
        case MetricKind::kGauge:
          out += "gauge";
          break;
        case MetricKind::kHistogram:
          out += "histogram";
          break;
      }
      out += '\n';
    }
    switch (p.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += p.name + PrometheusLabels(p.labels) + ' ' + std::to_string(p.value) + '\n';
        break;
      case MetricKind::kHistogram: {
        // Cumulative le-buckets over the non-empty log buckets, with an
        // exemplar annotation on the first bucket covering its value.
        std::vector<LatencyExemplar> exemplars = p.exemplars;
        p.hist.ForEachCumulativeBucket([&](int64_t upper, uint64_t cumulative) {
          out += p.name + "_bucket" + PrometheusLabelsPlus(p.labels, "le", FormatLe(upper)) +
                 ' ' + std::to_string(cumulative);
          for (auto it = exemplars.begin(); it != exemplars.end(); ++it) {
            if (it->value <= upper) {
              char buf[96];
              std::snprintf(buf, sizeof(buf), " # {trace_id=\"%016llx\"} %lld",
                            static_cast<unsigned long long>(it->trace_id),
                            static_cast<long long>(it->value));
              out += buf;
              exemplars.erase(it);
              break;
            }
          }
          out += '\n';
        });
        out += p.name + "_bucket" + PrometheusLabelsPlus(p.labels, "le", "+Inf") + ' ' +
               std::to_string(p.hist.count()) + '\n';
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f", p.hist.sum());
        out += p.name + "_sum" + PrometheusLabels(p.labels) + ' ' + buf + '\n';
        out += p.name + "_count" + PrometheusLabels(p.labels) + ' ' +
               std::to_string(p.hist.count()) + '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace chainreaction

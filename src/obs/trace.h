// Per-request distributed tracing.
//
// A traced put carries a TraceContext in its message header: a nonzero
// trace id plus the hop annotations accumulated so far. Every instrumented
// component appends a timestamped hop (from Env::Now(), so traces are
// deterministic under the simulator) and reports the context to a
// TraceCollector, which union-merges partial reports into one record per
// trace id. A single put is thereby reconstructible end-to-end:
//
//   client put -> head apply -> down-chain applies -> k-stability ack ->
//   client ack, tail DC-Write-Stable -> geo ship -> remote inject ->
//   remote chain applies -> remote tail stable -> remote visibility.
//
// Untraced messages (trace id 0) pay one byte on the wire and no hops.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/small_vector.h"
#include "src/common/types.h"

namespace chainreaction {

enum class HopKind : uint8_t {
  kInvalid = 0,
  kClientPut = 1,      // client sent the put           (node=client addr)
  kHeadGated = 2,      // head parked the write          (detail=unmet deps)
  kHeadApply = 3,      // head applied + started chain   (detail=1)
  kChainApply = 4,     // non-head replica applied       (detail=position)
  kKAck = 5,           // position-k replica acked       (detail=k)
  kClientAck = 6,      // client received the ack        (detail=acked_at)
  kTailStable = 7,     // tail marked DC-Write-Stable    (detail=R)
  kGeoShip = 8,        // origin replicator shipped      (detail=#peers)
  kGeoInject = 9,      // remote replicator injected     (detail=origin dc)
  kRemoteVisible = 10, // applied + stable in remote DC  (detail=origin dc)
  kHeadRecv = 11,      // head received the fresh put    (detail=dep count)
  kDepUnblocked = 12,  // last gating dep confirmed      (detail=waited us,
                       //   aux=FNV-1a of the blocking key; the head also
                       //   files a collector note naming key/version/chain)
  kChainRecv = 13,     // replica received a chain put   (detail=position,
                       //   aux=chain_seq) — splits a link into net+process
  kMigPhase = 14,      // head applied while a planned migration was live
                       //   (detail=keys still queued, aux=migration id)
};

const char* HopKindName(HopKind kind);

struct TraceHop {
  HopKind kind = HopKind::kInvalid;
  uint32_t node = 0;   // NodeId / client address / replicator DC
  uint16_t dc = 0;     // datacenter of the annotating component
  uint32_t detail = 0; // kind-specific (chain position, dep count, ...)
  Time at = 0;         // Env::Now() at annotation
  uint64_t aux = 0;    // kind-specific wide payload (key hash, chain_seq);
                       // varint on the wire, so 0 costs one byte

  bool operator==(const TraceHop& other) const {
    return kind == other.kind && node == other.node && dc == other.dc &&
           detail == other.detail && at == other.at && aux == other.aux;
  }
};

struct TraceContext {
  // Preallocated span slots: a full intra-DC put trace is 9–12 hops
  // (client put → head recv/apply → chain recv/apply per link → k-ack →
  // client ack), so hop capture along the hot path never allocates. Geo
  // traces can exceed the inline capacity and spill — they are rare and
  // already pay WAN latency.
  static constexpr size_t kInlineHops = 12;

  uint64_t id = 0;  // 0 = not traced
  SmallVector<TraceHop, kInlineHops> hops;

  bool active() const { return id != 0; }

  void Annotate(HopKind kind, uint32_t node, uint16_t dc, uint32_t detail, Time at,
                uint64_t aux = 0) {
    hops.push_back(TraceHop{kind, node, dc, detail, at, aux});
  }

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);

  size_t EncodedSize() const {
    if (id == 0) {
      return 1;
    }
    size_t n = VarU64Size(id) + VarU64Size(hops.size());
    for (const TraceHop& hop : hops) {
      n += 19 + VarU64Size(hop.aux);
    }
    return n;
  }

  // Wire format v2: hop fields are varints and the timestamp is a zig-zag
  // signed varint. An untraced context is still one zero byte.
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);

  size_t EncodedSizeV2() const {
    if (id == 0) {
      return 1;
    }
    size_t n = VarU64Size(id) + VarU64Size(hops.size());
    for (const TraceHop& hop : hops) {
      n += 1 + VarU64Size(hop.node) + VarU64Size(hop.dc) + VarU64Size(hop.detail) +
           VarI64Size(hop.at) + VarU64Size(hop.aux);
    }
    return n;
  }
};

// Deterministic trace id for a client operation; nonzero for any real
// (address, req) pair since client addresses start at kClientAddressBase.
inline uint64_t MakeTraceId(Address client, RequestId req) {
  return (static_cast<uint64_t>(client) << 32) | (req & 0xffffffffULL);
}

// Merges partial trace reports into one hop set per trace id. Thread-safe;
// reports are union-merged (exact-duplicate hops collapse, so re-reports
// along the message path are idempotent) and returned sorted by timestamp.
class TraceCollector {
 public:
  struct Trace {
    uint64_t id = 0;
    std::vector<TraceHop> hops;  // sorted by (at, kind, detail)
    std::vector<std::string> notes;  // free-form annotations, insertion order
  };

  void Report(const TraceContext& trace);

  // Attaches a free-form annotation (e.g. the dep-wait blocker's
  // key/version/chain) to an already-reported trace. Notes live only in the
  // collector — they never ride the wire. Duplicate notes collapse; at most
  // kMaxNotesPerTrace are kept. No-op for unknown ids.
  void AnnotateNote(uint64_t id, const std::string& note);

  // Tail-based capture support. Retain(id) pins a trace: eviction under
  // kMaxTraces pressure prefers unretained traces, so retained slow traces
  // survive high-throughput runs. Discard(id) drops a trace immediately
  // (the tail sampler rejecting a fast, unsampled request).
  void Retain(uint64_t id);
  void Discard(uint64_t id);
  bool IsRetained(uint64_t id) const;
  size_t retained_count() const;
  std::vector<uint64_t> RetainedIds() const;  // insertion-ordered

  size_t size() const;
  std::vector<uint64_t> TraceIds() const;  // insertion-ordered
  bool Find(uint64_t id, Trace* out) const;
  bool Latest(Trace* out) const;  // most recently first-reported trace
  void Clear();

  // "hop  +12us  chain_apply node=3 dc=0 pos=2" style multi-line rendering.
  static std::string Render(const Trace& trace);
  static std::string RenderJson(const Trace& trace);

 private:
  static constexpr size_t kMaxTraces = 4096;   // oldest evicted beyond this
  static constexpr size_t kMaxHopsPerTrace = 512;
  static constexpr size_t kMaxNotesPerTrace = 8;

  void EvictOneLocked();

  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<TraceHop>> traces_;
  std::map<uint64_t, std::vector<std::string>> notes_;  // sparse: noted ids only
  std::vector<uint64_t> order_;  // insertion order, for eviction + Latest()
  std::set<uint64_t> retained_;  // ids pinned by the tail sampler
};

// Appends a hop and reports the running context to `sink` (if any), so the
// collector holds a usable partial trace even if a downstream message is
// lost. No-op for untraced contexts.
inline void TraceHopAndReport(TraceContext* trace, TraceCollector* sink, HopKind kind,
                              uint32_t node, uint16_t dc, uint32_t detail, Time at,
                              uint64_t aux = 0) {
  if (trace == nullptr || !trace->active()) {
    return;
  }
  trace->Annotate(kind, node, dc, detail, at, aux);
  if (sink != nullptr) {
    sink->Report(*trace);
  }
}

}  // namespace chainreaction

#endif  // SRC_OBS_TRACE_H_

// Per-phase allocation attribution for the hot put/get path.
//
// Production code only stamps a thread-local byte (which phase of request
// processing this thread is currently in); it never counts anything itself.
// Benchmarks that replace the scalar `operator new` (bench_micro,
// bench_e16_hotpath) read the stamp inside their hook and bucket each
// allocation by phase, which is how "allocs/op" decomposes into
// decode / apply / encode / callback in the emitted JSON.
//
// Usage: enter a phase with an RAII scope; nesting restores the outer phase.
//
//   { AllocPhaseScope s(AllocPhase::kDecode);  DecodeMessage(...); }
//
// Cost when no bench hook is installed: one thread-local store per scope.
#ifndef SRC_OBS_ALLOC_PHASE_H_
#define SRC_OBS_ALLOC_PHASE_H_

#include <cstdint>

namespace chainreaction {

enum class AllocPhase : uint8_t {
  kOther = 0,     // anything outside an explicit scope (timers, setup)
  kDecode = 1,    // wire bytes -> message struct / view
  kApply = 2,     // protocol handler + store mutation
  kEncode = 3,    // message struct -> wire bytes
  kCallback = 4,  // client completion callbacks
};
inline constexpr size_t kAllocPhaseCount = 5;

inline const char* AllocPhaseName(AllocPhase p) {
  switch (p) {
    case AllocPhase::kOther:    return "other";
    case AllocPhase::kDecode:   return "decode";
    case AllocPhase::kApply:    return "apply";
    case AllocPhase::kEncode:   return "encode";
    case AllocPhase::kCallback: return "callback";
  }
  return "?";
}

// The current thread's phase. Read by bench operator-new hooks; written only
// through AllocPhaseScope.
inline thread_local AllocPhase g_alloc_phase = AllocPhase::kOther;

class AllocPhaseScope {
 public:
  explicit AllocPhaseScope(AllocPhase phase) : prev_(g_alloc_phase) {
    g_alloc_phase = phase;
  }
  ~AllocPhaseScope() { g_alloc_phase = prev_; }
  AllocPhaseScope(const AllocPhaseScope&) = delete;
  AllocPhaseScope& operator=(const AllocPhaseScope&) = delete;

 private:
  AllocPhase prev_;
};

}  // namespace chainreaction

#endif  // SRC_OBS_ALLOC_PHASE_H_

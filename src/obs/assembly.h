// Cluster-wide trace assembly and causal critical-path attribution.
//
// Per-node collectors each hold a partial view of a sampled request: the
// client knows enqueue and ack times, the head knows gating and encode, each
// chain replica knows when the link's frame arrived vs. when it applied.
// The TraceAssembler stitches those partials into one causal timeline per
// request — directly (MergeFrom, for the simulator and one-process TCP
// clusters) or by pulling each node's /traces endpoint over HTTP (PullHttp,
// for real deployments) — and decomposes the timeline into a critical path:
//
//   client_put ──net──▶ head_recv ──(dep-wait?)──▶ head_apply
//        ──chain links (net+process per hop)──▶ k_ack ──net──▶ client_ack
//
// The decomposition is exact by construction: when every boundary hop is
// present, encode + net + dep-wait + k-ack segments sum to the measured
// end-to-end latency (coverage == 1.0). Missing hops lower `coverage`, which
// is the assembler's own honesty signal — benches gate on it. DC-Write
// stability and geo visibility land *after* the client ack on this protocol,
// so they are reported as trailing lag, not folded into the e2e sum.
//
// Dep-wait segments carry attribution: the head files a collector note
// naming the blocking dependency's key, version, and chain, surfaced here as
// `blocked_by` (see ChainReactionNode::HandleStabilityConfirm).
#ifndef SRC_OBS_ASSEMBLY_H_
#define SRC_OBS_ASSEMBLY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace chainreaction {

// One span on the assembled timeline, in trace-relative microseconds.
struct CpSegment {
  std::string name;  // "net:client->head", "dep_wait", "link2:process", ...
  Time begin = 0;
  Time end = 0;

  Time duration() const { return end - begin; }
};

// The decomposed critical path of one request.
struct CriticalPath {
  uint64_t id = 0;
  bool complete = false;  // all of client_put/head_apply/k_ack/client_ack seen

  Time e2e_us = 0;        // client_ack - client_put (0 if either is missing)
  Time net_us = 0;        // client->head + k_ack->client transit
  Time encode_us = 0;     // head processing (recv->gate + unblock->apply)
  Time depwait_us = 0;    // parked on unmet causal deps (0 if never gated)
  Time kack_us = 0;       // head apply -> position-k ack
  Time stability_us = -1; // head apply -> tail DC-Write-Stable (post-ack lag)
  Time geo_us = -1;       // geo ship -> last remote visibility (post-ack lag)

  // sum of attributed segments / e2e; 1.0 when every boundary hop arrived.
  double coverage = 0.0;

  std::string blocked_by;  // "key=... version=... chain=..." ("" if not gated)
  bool migration_overlap = false;  // a planned migration was live at the head

  std::vector<CpSegment> segments;  // full timeline, begin-ordered
};

// Decomposes an assembled trace. Always fills what it can; `complete` and
// `coverage` say how much of the path was actually observed.
CriticalPath ComputeCriticalPath(const TraceCollector::Trace& trace);

// Multi-line human rendering ("segment  begin  end  dur  …" plus the
// attribution lines) and a JSON object mirroring the struct.
std::string RenderCriticalPath(const CriticalPath& cp);
std::string RenderCriticalPathJson(const CriticalPath& cp);

// Parses a trace rendered by TraceCollector::RenderJson back into hops and
// notes — the inverse the HTTP pull path relies on. Returns false on any
// structural mismatch.
bool ParseTraceJson(const std::string& json, TraceCollector::Trace* out);

// Stitches per-node partial traces into one collector and derives critical
// paths + aggregate segment histograms. Not thread-safe; drive it from one
// assembly thread (the telemetry scrape loop, a bench, or a test).
class TraceAssembler {
 public:
  // Union-merges every trace (hops + notes) from `src` into the assembly
  // collector. Returns the number of traces visited.
  size_t MergeFrom(const TraceCollector& src);

  // Pulls /traces then /traces/<id>?format=json from a node's telemetry
  // server on 127.0.0.1:`port` and merges the results. Returns the number
  // of traces merged, or -1 if the server was unreachable.
  int PullHttp(uint16_t port);

  TraceCollector* collector() { return &collector_; }
  const TraceCollector& collector() const { return collector_; }

  // Critical paths for every assembled trace, assembly order.
  std::vector<CriticalPath> Assemble() const;
  bool AssembleOne(uint64_t id, CriticalPath* out) const;

  // Records per-segment histograms (crx_cp_encode_us / crx_cp_net_us /
  // crx_cp_depwait_us / crx_cp_kack_us / crx_cp_stability_us), assembled /
  // incomplete counters, and the crx_cp_coverage_pct gauge (mean coverage of
  // complete paths, percent). Returns the paths it aggregated.
  std::vector<CriticalPath> PublishAggregates(MetricsRegistry* metrics) const;

 private:
  TraceCollector collector_;
};

}  // namespace chainreaction

#endif  // SRC_OBS_ASSEMBLY_H_

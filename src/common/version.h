// Version identifiers for key-value updates.
//
// Within one datacenter the updates to a key form a total order decided by
// the key's chain head. Across datacenters updates are only partially
// ordered; each version therefore carries
//   * a per-key version vector (one entry per DC) capturing the causal past
//     of the key at the moment of the write,
//   * a Lamport timestamp and the origin DC, which provide the convergent
//     total order used for last-writer-wins conflict resolution (the "+"
//     in causal+).
#ifndef SRC_COMMON_VERSION_H_
#define SRC_COMMON_VERSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/small_vector.h"
#include "src/common/types.h"

namespace chainreaction {

class VersionVector {
 public:
  VersionVector() = default;
  explicit VersionVector(size_t num_dcs) : counts_(num_dcs, 0) {}

  uint64_t Get(DcId dc) const { return dc < counts_.size() ? counts_[dc] : 0; }

  void Set(DcId dc, uint64_t v) {
    if (dc >= counts_.size()) {
      counts_.resize(dc + 1, 0);
    }
    counts_[dc] = v;
  }

  void Increment(DcId dc) { Set(dc, Get(dc) + 1); }

  // Componentwise maximum; grows to the larger dimension.
  void MergeMax(const VersionVector& other);

  // True if every component of this vector is >= other's.
  bool Dominates(const VersionVector& other) const;

  // Neither dominates the other and they differ.
  bool ConcurrentWith(const VersionVector& other) const {
    return !Dominates(other) && !other.Dominates(*this);
  }

  bool operator==(const VersionVector& other) const;

  size_t size() const { return counts_.size(); }
  uint64_t Sum() const;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);

  // Exact number of bytes Encode() appends (for writer pre-sizing).
  size_t EncodedSize() const;

  std::string ToString() const;

 private:
  // Inline up to 4 DCs: deployments are 1–3 DCs, so version vectors — which
  // ride every message, dependency, and store entry — never touch the heap.
  SmallVector<uint64_t, 4> counts_;
};

struct Version {
  VersionVector vv;
  uint64_t lamport = 0;
  DcId origin = 0;

  // The null version precedes every real version; a key that was never
  // written has the null version.
  bool IsNull() const { return lamport == 0 && vv.Sum() == 0; }

  // Convergent total order used for LWW conflict resolution and for storage
  // ordering: by Lamport timestamp, ties broken by origin DC.
  bool LwwLess(const Version& other) const {
    if (lamport != other.lamport) {
      return lamport < other.lamport;
    }
    return origin < other.origin;
  }

  // Causal dominance between two versions of the *same key*.
  bool CausallyIncludes(const Version& other) const { return vv.Dominates(other.vv); }

  bool operator==(const Version& other) const {
    return lamport == other.lamport && origin == other.origin && vv == other.vv;
  }

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const { return vv.EncodedSize() + VarU64Size(lamport) + 2; }

  // Wire format v2: the origin DC is a varint (1 byte for < 128 DCs)
  // instead of a fixed u16. The vv and lamport were already varints.
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const {
    return vv.EncodedSize() + VarU64Size(lamport) + VarU64Size(origin);
  }

  std::string ToString() const;
};

// A causal dependency carried by writes: "key must have version >= version
// (in the key's per-DC order) before this write may become visible".
//
// `local_stable` is the client-metadata optimization: the client learned
// (from a read reply) that the version is already DC-Write-Stable in its
// DC, so the head can skip the stability check. The dependency must still
// be shipped with geo updates — stability here says nothing about remote
// DCs. In single-DC deployments clients drop such deps entirely.
struct Dependency {
  Key key;
  Version version;
  bool local_stable = false;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const { return 4 + key.size() + version.EncodedSize() + 1; }

  // Wire format v2: varint key-length prefix + v2 version.
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const {
    return VarStringSize(key) + version.EncodedSizeV2() + 1;
  }
};

// Per-request dependency list with inline capacity matching the measured
// post-watermark dep-count p50 (7–8): the common put decodes and gates its
// whole dependency set without touching the allocator. Used by the hot-path
// view structs and transient node/client request state; durable containers
// (store entries, parked puts) keep std::vector to bound their footprint.
using DepList = SmallVector<Dependency, 8>;

}  // namespace chainreaction

#endif  // SRC_COMMON_VERSION_H_

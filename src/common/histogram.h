// Log-bucketed latency histogram (HdrHistogram-style, fixed precision).
//
// Records non-negative integer samples (microseconds in this codebase) into
// buckets with bounded relative error, and reports count/mean/percentiles.
// Used by the YCSB stats collector and the benchmark harness.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chainreaction {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  // p in [0, 100]. Returns an upper bound of the bucket containing the
  // percentile (relative error <= 1/32).
  int64_t Percentile(double p) const;

  int64_t P50() const { return Percentile(50); }
  int64_t P95() const { return Percentile(95); }
  int64_t P99() const { return Percentile(99); }

  // "count=N mean=X p50=... p99=... max=..." for logs and tables.
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static size_t BucketFor(int64_t value);
  static int64_t BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_COMMON_HISTOGRAM_H_

// Log-bucketed latency histogram (HdrHistogram-style, fixed precision).
//
// Records non-negative integer samples (microseconds in this codebase) into
// buckets with bounded relative error, and reports count/mean/percentiles.
// Used by the YCSB stats collector, the benchmark harness, and the metrics
// registry (which keeps the buckets in atomics and rebuilds a Histogram via
// FromBuckets at snapshot time).
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace chainreaction {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // 64 powers of two, kSubBuckets sub-buckets each, is enough for any int64.
  static constexpr size_t kNumBuckets = 64 << kSubBucketBits;

  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  // Rebuilds a histogram from externally maintained bucket counts (the
  // lock-free LatencyMetric snapshot path). `counts` holds `n` buckets laid
  // out as BucketFor; the mean is reconstructed from `sum`.
  static Histogram FromBuckets(const uint64_t* counts, size_t n, uint64_t count, double sum,
                               int64_t min, int64_t max);

  // Interval histogram: this minus `earlier` bucket-wise. If `earlier` is
  // not a prefix of this histogram's history (any bucket shrank — a counter
  // reset), returns *this unchanged, treating the interval as starting from
  // zero.
  Histogram Diff(const Histogram& earlier) const;

  // Calls fn(upper_bound, cumulative_count) for every non-empty bucket in
  // ascending order (Prometheus-style cumulative "le" buckets).
  void ForEachCumulativeBucket(const std::function<void(int64_t, uint64_t)>& fn) const;

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  double sum() const { return sum_; }

  // p in [0, 100]. Returns an upper bound of the bucket containing the
  // percentile (relative error <= 1/32).
  int64_t Percentile(double p) const;

  int64_t P50() const { return Percentile(50); }
  int64_t P95() const { return Percentile(95); }
  int64_t P99() const { return Percentile(99); }

  // "count=N mean=X p50=... p99=... max=..." for logs and tables.
  std::string Summary() const;

  // Bucket layout, shared with the lock-free metric implementation.
  static size_t BucketFor(int64_t value);
  static int64_t BucketUpperBound(size_t index);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_COMMON_HISTOGRAM_H_

// Tiny leveled logger.
//
// Logging is off (kWarn) by default so that simulation-driven benchmarks are
// not dominated by I/O; tests and examples can raise the level.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdio>

namespace chainreaction {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style log statement. Prefer the macros below so that argument
// evaluation is skipped when the level is disabled.
void LogV(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

#define CHAINRX_LOG(level, ...)                                            \
  do {                                                                     \
    if (static_cast<int>(level) >= static_cast<int>(::chainreaction::GetLogLevel())) { \
      ::chainreaction::LogV(level, __FILE__, __LINE__, __VA_ARGS__);       \
    }                                                                      \
  } while (0)

#define LOG_TRACE(...) CHAINRX_LOG(::chainreaction::LogLevel::kTrace, __VA_ARGS__)
#define LOG_DEBUG(...) CHAINRX_LOG(::chainreaction::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) CHAINRX_LOG(::chainreaction::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) CHAINRX_LOG(::chainreaction::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) CHAINRX_LOG(::chainreaction::LogLevel::kError, __VA_ARGS__)

}  // namespace chainreaction

#endif  // SRC_COMMON_LOGGING_H_

// Core scalar types shared across the ChainReaction codebase.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace chainreaction {

// Keys and values are opaque byte strings, as in the paper's key-value API.
using Key = std::string;
using Value = std::string;

// Identifies one server process (chain node). Unique across all datacenters.
using NodeId = uint32_t;

// Identifies one client process. Clients and nodes live in disjoint id spaces
// managed by the harness; a NodeId never equals a ClientId.
using ClientId = uint32_t;

// Identifies a datacenter. DCs are numbered densely from 0.
using DcId = uint16_t;

// Simulated (or wall-clock) time in microseconds.
using Time = int64_t;
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

// Per-request identifier, unique per client.
using RequestId = uint64_t;

// A network address. Nodes and clients live in one flat address space; the
// harness allocates node ids from 0 and client ids from kClientAddressBase.
using Address = uint32_t;
inline constexpr Address kClientAddressBase = 1u << 20;
inline constexpr Address kServiceAddressBase = 1u << 24;  // membership, geo replicators

// Position of a node within a replication chain, 1-based as in the paper
// (position 1 = head, position R = tail).
using ChainIndex = uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

}  // namespace chainreaction

#endif  // SRC_COMMON_TYPES_H_

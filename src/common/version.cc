#include "src/common/version.h"

#include <algorithm>
#include <cstdio>

namespace chainreaction {

void VersionVector::MergeMax(const VersionVector& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] = std::max(counts_[i], other.counts_[i]);
  }
}

bool VersionVector::Dominates(const VersionVector& other) const {
  const size_t n = std::max(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < n; ++i) {
    const uint64_t mine = i < counts_.size() ? counts_[i] : 0;
    const uint64_t theirs = i < other.counts_.size() ? other.counts_[i] : 0;
    if (mine < theirs) {
      return false;
    }
  }
  return true;
}

bool VersionVector::operator==(const VersionVector& other) const {
  const size_t n = std::max(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < n; ++i) {
    const uint64_t mine = i < counts_.size() ? counts_[i] : 0;
    const uint64_t theirs = i < other.counts_.size() ? other.counts_[i] : 0;
    if (mine != theirs) {
      return false;
    }
  }
  return true;
}

uint64_t VersionVector::Sum() const {
  uint64_t s = 0;
  for (uint64_t c : counts_) {
    s += c;
  }
  return s;
}

void VersionVector::Encode(ByteWriter* w) const {
  w->PutVarU64(counts_.size());
  for (uint64_t c : counts_) {
    w->PutVarU64(c);
  }
}

bool VersionVector::Decode(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > 4096) {
    return false;
  }
  counts_.assign(n, 0);
  for (uint64_t i = 0; i < n; ++i) {
    if (!r->GetVarU64(&counts_[i])) {
      return false;
    }
  }
  return true;
}

size_t VersionVector::EncodedSize() const {
  size_t n = VarU64Size(counts_.size());
  for (uint64_t c : counts_) {
    n += VarU64Size(c);
  }
  return n;
}

std::string VersionVector::ToString() const {
  std::string s = "[";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) {
      s += ",";
    }
    s += std::to_string(counts_[i]);
  }
  s += "]";
  return s;
}

void Version::Encode(ByteWriter* w) const {
  vv.Encode(w);
  w->PutVarU64(lamport);
  w->PutU16(origin);
}

bool Version::Decode(ByteReader* r) {
  return vv.Decode(r) && r->GetVarU64(&lamport) && r->GetU16(&origin);
}

std::string Version::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "@%llu/dc%u", static_cast<unsigned long long>(lamport),
                static_cast<unsigned>(origin));
  return vv.ToString() + buf;
}

void Version::EncodeV2(ByteWriter* w) const {
  vv.Encode(w);
  w->PutVarU64(lamport);
  w->PutVarU64(origin);
}

bool Version::DecodeV2(ByteReader* r) {
  uint64_t o = 0;
  if (!(vv.Decode(r) && r->GetVarU64(&lamport) && r->GetVarU64(&o)) ||
      o > UINT16_MAX) {
    return false;
  }
  origin = static_cast<DcId>(o);
  return true;
}

void Dependency::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
  w->PutBool(local_stable);
}

bool Dependency::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r) && r->GetBool(&local_stable);
}

void Dependency::EncodeV2(ByteWriter* w) const {
  w->PutStringVar(key);
  version.EncodeV2(w);
  w->PutBool(local_stable);
}

bool Dependency::DecodeV2(ByteReader* r) {
  return r->GetStringVar(&key) && version.DecodeV2(r) && r->GetBool(&local_stable);
}

}  // namespace chainreaction

// One-slot node recyclers for node-based associative containers on
// churn-per-request paths (parked puts, retry-dedup windows, per-op client
// state): each completed request erases the entry another request just
// inserted, so a node-based map pays one heap allocation per operation just
// for the node itself. Stashing the erased node and handing its allocation
// to the next insert makes the steady state allocation-free while keeping
// the container's semantics (and its debug-mode checks) intact.
//
// Works with std::map / std::unordered_map / std::set / std::unordered_set
// (anything with the C++17 extract()/insert(node_type) API). Single slot on
// purpose: insert/erase on these paths interleave one-for-one, so one spare
// node captures nearly all of the churn without growing a freelist.
#ifndef SRC_COMMON_NODE_CACHE_H_
#define SRC_COMMON_NODE_CACHE_H_

#include <utility>

namespace chainreaction {

template <typename Map>
class MapNodeCache {
 public:
  using iterator = typename Map::iterator;

  // Returns {it, fresh} like try_emplace: `fresh` is true when the entry was
  // just inserted. CAUTION: a fresh entry recycled from the spare node keeps
  // the PREVIOUS occupant's mapped value (deliberately — reusing its string
  // and vector capacities is the point), so the caller must reassign every
  // field it reads later.
  std::pair<iterator, bool> Claim(Map& map, typename Map::key_type key) {
    if (!spare_.empty()) {
      if (auto it = map.find(key); it != map.end()) {
        return {it, false};
      }
      spare_.key() = std::move(key);
      auto res = map.insert(std::move(spare_));
      return {res.position, true};
    }
    return map.try_emplace(std::move(key));
  }

  // erase(it) that keeps the node's allocation for the next Claim.
  void Erase(Map& map, iterator it) {
    if (spare_.empty()) {
      spare_ = map.extract(it);
      return;
    }
    map.erase(it);
  }

  // Erase-by-key convenience; no-op when absent.
  void Erase(Map& map, const typename Map::key_type& key) {
    if (auto it = map.find(key); it != map.end()) {
      Erase(map, it);
    }
  }

 private:
  typename Map::node_type spare_;
};

template <typename Set>
class SetNodeCache {
 public:
  void Insert(Set& set, const typename Set::key_type& key) {
    if (!spare_.empty()) {
      if (set.find(key) != set.end()) {
        return;
      }
      spare_.value() = key;
      auto res = set.insert(std::move(spare_));
      if (!res.inserted) {
        spare_ = std::move(res.node);
      }
      return;
    }
    set.insert(key);
  }

  void Erase(Set& set, typename Set::iterator it) {
    if (spare_.empty()) {
      spare_ = set.extract(it);
      return;
    }
    set.erase(it);
  }

 private:
  typename Set::node_type spare_;
};

}  // namespace chainreaction

#endif  // SRC_COMMON_NODE_CACHE_H_

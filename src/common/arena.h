// Bump-pointer arena for per-iteration scratch state.
//
// An Arena hands out raw bytes from chained blocks with a pointer bump and
// frees nothing until Reset(), which recycles every block in O(blocks).
// Actors that process one message per loop iteration own one arena and
// reset it at a single documented point (the top of OnMessage), so all
// scratch built while handling a message — transient dependency lists,
// flush batches, probe sets — costs zero steady-state allocations: the
// first few messages grow the block list, after which Reset() just rewinds.
//
// Lifetime rule: arena memory is only valid until the owner's next Reset().
// Nothing that survives the current message (parked puts, pending client
// ops, store entries) may live in an arena — those copy into owned
// containers at the park/apply boundary (DESIGN.md §15).
//
// ArenaVector<T> is std::vector with an ArenaAllocator: deallocate is a
// no-op, so growth is cheap and abandonment is free.
#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace chainreaction {

class Arena {
 public:
  explicit Arena(size_t block_bytes = 16 * 1024) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (Block& b : blocks_) {
      ::operator delete(b.base);
    }
  }

  void* Allocate(size_t n, size_t align = alignof(std::max_align_t)) {
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      const size_t used = Align(b.used, align);
      if (used + n <= b.size) {
        b.used = used + n;
        return b.base + used;
      }
    }
    return AllocateSlow(n, align);
  }

  // Rewinds every block; all previously returned pointers become invalid.
  void Reset() {
    for (Block& b : blocks_) {
      b.used = 0;
    }
    current_ = 0;
  }

  size_t BlockCount() const { return blocks_.size(); }

 private:
  struct Block {
    char* base = nullptr;
    size_t size = 0;
    size_t used = 0;
  };

  static size_t Align(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

  void* AllocateSlow(size_t n, size_t align) {
    // Advance to the next block that fits, appending a fresh one if needed.
    while (++current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      if (Align(0, align) + n <= b.size) {
        b.used = n;
        return b.base;
      }
    }
    const size_t size = n > block_bytes_ ? n : block_bytes_;
    Block b;
    b.base = static_cast<char*>(::operator new(size));
    b.size = size;
    b.used = n;
    blocks_.push_back(b);
    current_ = blocks_.size() - 1;
    return b.base;
  }

  const size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;
};

// std-compatible allocator over an Arena. deallocate() is a no-op; memory
// is reclaimed by the arena's Reset(). Containers using it must not outlive
// the owning arena's next Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}  // NOLINT

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const { return arena_ == other.arena_; }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace chainreaction

#endif  // SRC_COMMON_ARENA_H_

// Byte-oriented serialization primitives.
//
// Every wire message in the system (simulated network and real TCP transport
// alike) is encoded through ByteWriter and decoded through ByteReader, so the
// exact same code path is exercised in deterministic simulation and on real
// sockets. Integers are little-endian fixed width; strings and blobs are
// length-prefixed with a u32.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace chainreaction {

// Exact wire size of PutVarU64(v); used by EncodedSize() precomputes so a
// message can be encoded into a single exact-sized allocation.
inline size_t VarU64Size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Zig-zag mapping for signed varints: small-magnitude values of either sign
// encode in few bytes (-1 -> 1, 1 -> 2, ...).
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline size_t VarI64Size(int64_t v) { return VarU64Size(ZigZagEncode(v)); }

// Exact wire size of a varint-length-prefixed string (wire format v2).
inline size_t VarStringSize(std::string_view s) { return VarU64Size(s.size()) + s.size(); }

// Wire framing generation. v1 is the seed format: fixed-width integers and
// u32 string length prefixes. v2 varint-encodes the hot-path Crx messages
// (and zig-zags signed fields) and is flagged on the frame's type tag, so a
// decoder always knows which body layout follows. Defined here (not in
// src/msg/) so CrxConfig can carry the knob without a layering cycle.
enum class WireFormat : uint8_t {
  kV1 = 0,
  kV2 = 1,
};

class ByteWriter {
 public:
  ByteWriter() = default;

  // Pre-sizes the buffer (hot encode paths reserve the exact message size
  // up front so appending never reallocates).
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  // Drops the contents but keeps the capacity, so one writer can be reused
  // across messages without churning the allocator.
  void Clear() { buf_.clear(); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU16(uint16_t v) { PutFixed(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  void PutStringView(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  // Varint (LEB128) used where values are usually small (version vectors).
  void PutVarU64(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }

  // Zig-zag signed varint (wire format v2: trace hop timestamps).
  void PutVarI64(int64_t v) { PutVarU64(ZigZagEncode(v)); }

  // Varint-length-prefixed string (wire format v2: short keys pay 1 prefix
  // byte instead of 4).
  void PutStringVar(const std::string& s) {
    PutVarU64(s.size());
    buf_.append(s);
  }

  void PutStringViewVar(std::string_view s) {
    PutVarU64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.append(c, n);  // Little-endian hosts only (x86-64 / aarch64).
  }

  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data.data()), size_(data.size()) {}
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool GetU8(uint8_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetU16(uint16_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetFixed(v, sizeof(*v)); }

  bool GetBool(bool* v) {
    uint8_t b = 0;
    if (!GetU8(&b)) {
      return false;
    }
    *v = (b != 0);
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t n = 0;
    if (!GetU32(&n) || n > remaining()) {
      return false;
    }
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  // Zero-copy variant: the view aliases the reader's underlying buffer and
  // is only valid while that buffer is alive and unmodified. Callers copy
  // on apply (e.g. when a value is actually installed in a store).
  bool GetStringView(std::string_view* s) {
    uint32_t n = 0;
    if (!GetU32(&n) || n > remaining()) {
      return false;
    }
    *s = std::string_view(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool GetVarI64(int64_t* v) {
    uint64_t raw = 0;
    if (!GetVarU64(&raw)) {
      return false;
    }
    *v = ZigZagDecode(raw);
    return true;
  }

  bool GetStringVar(std::string* s) {
    uint64_t n = 0;
    if (!GetVarU64(&n) || n > remaining()) {
      return false;
    }
    s->assign(data_ + pos_, n);
    pos_ += static_cast<size_t>(n);
    return true;
  }

  bool GetStringViewVar(std::string_view* s) {
    uint64_t n = 0;
    if (!GetVarU64(&n) || n > remaining()) {
      return false;
    }
    *s = std::string_view(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return true;
  }

  bool GetVarU64(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    while (shift < 64) {
      uint8_t b = 0;
      if (!GetU8(&b)) {
        return false;
      }
      result |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        *v = result;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool GetFixed(void* p, size_t n) {
    if (remaining() < n) {
      return false;
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_COMMON_BYTES_H_

// Immutable wire-frame payload with optional reference-counted sharing.
//
// Every Env::Send ships a Payload. The common case — one frame, one
// destination — wraps a moved-in std::string with zero extra allocation,
// exactly like the historical `Send(dst, std::string)` signature (string
// literals and encoded buffers convert implicitly). Fan-out call sites that
// send one encoded frame to many destinations (watermark broadcast, geo
// ship, migration mirroring, chain re-propagation) build the frame once via
// Payload::Shared() and copy the Payload per destination: each copy bumps a
// refcount instead of duplicating the bytes.
//
// A Payload's bytes are immutable for its whole lifetime, which is what
// makes cross-thread sharing on the TCP runtime safe: shards reading a
// shared frame for writev never race with a mutation, because there are
// none. (shared_ptr's control block handles the cross-thread refcounting.)
#ifndef SRC_COMMON_PAYLOAD_H_
#define SRC_COMMON_PAYLOAD_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace chainreaction {

class Payload {
 public:
  Payload() = default;

  // Implicit on purpose: every pre-existing `Send(dst, EncodeMessage(...))`
  // call site keeps compiling, with identical cost (one move).
  Payload(std::string bytes) : owned_(std::move(bytes)) {}  // NOLINT
  Payload(const char* bytes) : owned_(bytes) {}             // NOLINT

  // Ref-counted variant for fan-out: the frame is encoded once and every
  // Payload copy shares the same immutable buffer.
  static Payload Shared(std::string bytes) {
    Payload p;
    p.shared_ = std::make_shared<const std::string>(std::move(bytes));
    return p;
  }

  // Converts this payload to the shared representation in place (no byte
  // copy if currently owned) and returns a handle sharing the same buffer.
  Payload Share() {
    if (shared_ == nullptr) {
      shared_ = std::make_shared<const std::string>(std::move(owned_));
      owned_.clear();
    }
    Payload p;
    p.shared_ = shared_;
    return p;
  }

  std::string_view view() const {
    return shared_ != nullptr ? std::string_view(*shared_) : std::string_view(owned_);
  }

  size_t size() const { return shared_ != nullptr ? shared_->size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  bool is_shared() const { return shared_ != nullptr; }

  // Materializes an owned string (moves when uniquely owned, copies when
  // the buffer is shared). For cold paths that need ownership transfer.
  std::string ToString() && {
    if (shared_ != nullptr) {
      return *shared_;
    }
    return std::move(owned_);
  }

 private:
  std::string owned_;
  std::shared_ptr<const std::string> shared_;  // when set, owned_ is unused
};

}  // namespace chainreaction

#endif  // SRC_COMMON_PAYLOAD_H_

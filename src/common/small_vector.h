// Small-buffer vector for hot-path request state.
//
// SmallVector<T, N> stores up to N elements inline (no heap allocation) and
// spills to the heap only beyond that. The inline capacity is sized by the
// call site to the measured common case — e.g. dependency lists use N = 8
// because the post-watermark dep-count p50 is 7–8, and trace hop buffers use
// N = 12 because a full intra-DC put trace is 9–12 hops — so the steady
// state never touches the allocator.
//
// Deliberately minimal: contiguous storage, random-access T* iterators, and
// the handful of std::vector operations the codebase actually uses. Not
// exception-safe beyond basic cleanup (the repo builds without exceptions in
// hot paths), and iterators invalidate on growth exactly like std::vector.
#ifndef SRC_COMMON_SMALL_VECTOR_H_
#define SRC_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace chainreaction {

template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = size_t;

  SmallVector() = default;

  explicit SmallVector(size_t n, const T& value = T()) { assign(n, value); }

  template <typename It,
            typename = typename std::iterator_traits<It>::iterator_category>
  SmallVector(It first, It last) {
    assign(first, last);
  }

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      assign(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear();
      ReleaseHeap();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() {
    clear();
    ReleaseHeap();
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() {
    std::destroy_n(data_, size_);
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    std::destroy_at(data_ + size_);
  }

  void resize(size_t n) { ResizeImpl(n, nullptr); }
  void resize(size_t n, const T& value) { ResizeImpl(n, &value); }

  void assign(size_t n, const T& value) {
    clear();
    reserve(n);
    std::uninitialized_fill_n(data_, n, value);
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    reserve(static_cast<size_t>(std::distance(first, last)));
    for (; first != last; ++first) {
      emplace_back(*first);
    }
  }

  iterator erase(iterator pos) {
    std::move(pos + 1, end(), pos);
    pop_back();
    return pos;
  }

  bool operator==(const SmallVector& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  bool IsInline() const { return data_ == reinterpret_cast<const T*>(inline_); }

  // Plain (unaligned) operator new keeps spill allocations visible to the
  // benches' replaceable scalar operator-new hook.
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                "over-aligned element types are not supported");

  void Grow(size_t want) {
    const size_t new_cap = std::max(want, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::uninitialized_move_n(data_, size_, fresh);
    std::destroy_n(data_, size_);
    ReleaseHeap();
    data_ = fresh;
    capacity_ = new_cap;
  }

  void ReleaseHeap() {
    if (!IsInline()) {
      ::operator delete(data_);
      data_ = InlineData();
      capacity_ = N;
    }
  }

  void ResizeImpl(size_t n, const T* value) {
    if (n < size_) {
      std::destroy_n(data_ + n, size_ - n);
      size_ = n;
      return;
    }
    reserve(n);
    while (size_ < n) {
      T* slot = data_ + size_;
      if (value != nullptr) {
        ::new (static_cast<void*>(slot)) T(*value);
      } else {
        ::new (static_cast<void*>(slot)) T();
      }
      ++size_;
    }
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (other.IsInline()) {
      std::uninitialized_move_n(other.data_, other.size_, data_);
      size_ = other.size_;
      other.clear();
    } else {
      // Steal the heap block; the donor reverts to its (empty) inline buffer.
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace chainreaction

#endif  // SRC_COMMON_SMALL_VECTOR_H_

// Minimal Status / Result<T> error-handling vocabulary.
//
// The codebase does not use exceptions for recoverable errors (network
// failures, missing keys, decode errors); functions that can fail return a
// Status or a Result<T>. Programming errors abort via CHECK.
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace chainreaction {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kTimeout,
  kUnavailable,
  kCorruption,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

// A Status is a code plus an optional human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Timeout(std::string m = "") { return Status(StatusCode::kTimeout, std::move(m)); }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m = "") { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(rep_);
  }

  T& value() {
    Check();
    return std::get<T>(rep_);
  }
  const T& value() const {
    Check();
    return std::get<T>(rep_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void Check() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

// CHECK aborts on violated invariants; used for programming errors only.
#define CHAINRX_CHECK(cond)                                                            \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      std::abort();                                                                    \
    }                                                                                  \
  } while (0)

#define CHAINRX_CHECK_OK(status_expr)                                                 \
  do {                                                                                \
    const ::chainreaction::Status _s = (status_expr);                                 \
    if (!_s.ok()) {                                                                   \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__, __LINE__,      \
                   _s.ToString().c_str());                                            \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)

}  // namespace chainreaction

#endif  // SRC_COMMON_RESULT_H_

#include "src/common/logging.h"

#include <atomic>
#include <cstring>

namespace chainreaction {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "-";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogV(LogLevel level, const char* file, int line, const char* fmt, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line, buffer);
}

}  // namespace chainreaction

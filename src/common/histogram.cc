#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace chainreaction {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<size_t>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;
  const uint64_t sub = (v >> shift) - kSubBuckets;  // in [0, kSubBuckets)
  return static_cast<size_t>((msb - kSubBucketBits + 1) * kSubBuckets + sub);
}

int64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) {
    return static_cast<int64_t>(index);
  }
  const size_t tier = index / kSubBuckets;    // >= 1
  const size_t sub = index % kSubBuckets;     // [0, kSubBuckets)
  const int shift = static_cast<int>(tier) - 1;
  return static_cast<int64_t>(((static_cast<uint64_t>(kSubBuckets) + sub + 1) << shift) - 1);
}

void Histogram::Record(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const size_t idx = BucketFor(value);
  buckets_[std::min(idx, buckets_.size() - 1)]++;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  sum_ += static_cast<double>(value);
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (count_ == 0 || other.max_ > max_) {
      max_ = other.max_;
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Histogram Histogram::FromBuckets(const uint64_t* counts, size_t n, uint64_t count, double sum,
                                 int64_t min, int64_t max) {
  Histogram h;
  const size_t limit = std::min(n, h.buckets_.size());
  for (size_t i = 0; i < limit; ++i) {
    h.buckets_[i] = counts[i];
  }
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

Histogram Histogram::Diff(const Histogram& earlier) const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] < earlier.buckets_[i]) {
      return *this;  // reset detected: the earlier snapshot is not a prefix
    }
  }
  Histogram d;
  uint64_t count = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    d.buckets_[i] = buckets_[i] - earlier.buckets_[i];
    count += d.buckets_[i];
  }
  d.count_ = count;
  d.sum_ = std::max(0.0, sum_ - earlier.sum_);
  // Exact interval min/max are not recoverable from cumulative snapshots;
  // bound them by the non-empty interval buckets.
  if (count > 0) {
    for (size_t i = 0; i < d.buckets_.size(); ++i) {
      if (d.buckets_[i] != 0) {
        d.min_ = BucketUpperBound(i);
        break;
      }
    }
    for (size_t i = d.buckets_.size(); i-- > 0;) {
      if (d.buckets_[i] != 0) {
        d.max_ = BucketUpperBound(i);
        break;
      }
    }
  }
  return d;
}

void Histogram::ForEachCumulativeBucket(
    const std::function<void(int64_t, uint64_t)>& fn) const {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    cumulative += buckets_[i];
    fn(BucketUpperBound(i), cumulative);
  }
}

double Histogram::Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
                static_cast<unsigned long long>(count_), Mean(), static_cast<long long>(P50()),
                static_cast<long long>(P95()), static_cast<long long>(P99()),
                static_cast<long long>(max()));
  return buf;
}

}  // namespace chainreaction

// Hash functions used for ring placement and YCSB key scrambling.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace chainreaction {

// FNV-1a 64-bit. Stable across platforms; used to place keys and virtual
// nodes on the consistent-hashing ring.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// 64-bit integer finalizer (Murmur3 fmix64). Used by the scrambled-zipfian
// generator to spread hot keys over the key space, as YCSB does.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace chainreaction

#endif  // SRC_COMMON_HASH_H_

// Minimal command-line flag parsing for the tools and benchmarks.
//
// Supports `--name value` and `--name=value`; unknown flags are reported.
// Deliberately tiny — no registration globals, no help generation magic.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace chainreaction {

class Flags {
 public:
  // Parses argv. Returns false (after printing the offender) on malformed
  // input; flags not in `known` are rejected so typos fail loudly.
  bool Parse(int argc, char** argv, const std::vector<std::string>& known) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected positional argument '%s'\n", arg.c_str());
        return false;
      }
      arg.erase(0, 2);
      std::string value;
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg.erase(eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag
      }
      bool ok = false;
      for (const std::string& k : known) {
        if (k == arg) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        std::fprintf(stderr, "unknown flag --%s\n", arg.c_str());
        return false;
      }
      values_[arg] = value;
    }
    return true;
  }

  std::string GetString(const std::string& name, const std::string& def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& name, bool def) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      return def;
    }
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace chainreaction

#endif  // SRC_COMMON_FLAGS_H_

#include "src/common/result.h"

namespace chainreaction {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace chainreaction

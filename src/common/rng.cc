#include "src/common/rng.h"

#include <cmath>

namespace chainreaction {

double Rng::NextExponential(double mean) {
  // Inverse-CDF sampling; clamp the uniform away from 0 to avoid log(0).
  double u = NextDouble();
  if (u < 1e-12) {
    u = 1e-12;
  }
  return -mean * std::log(u);
}

}  // namespace chainreaction

// Deterministic pseudo-random number generation.
//
// All randomness in the simulator, the workload generators, and the client
// read-balancing policy flows through Rng so that a (seed, configuration)
// pair fully determines an experiment — a requirement for the reproducible
// figures in EXPERIMENTS.md.
//
// The generator is xoshiro256**, seeded via SplitMix64.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace chainreaction {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the scalar seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the bounds used here (all << 2^32).
    return Next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Fork an independent stream; used to give each simulated component its
  // own generator while staying deterministic.
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace chainreaction

#endif  // SRC_COMMON_RNG_H_

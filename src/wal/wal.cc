#include "src/wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/msg/message.h"

namespace chainreaction {

namespace {

constexpr uint32_t kSegmentMagic = 0x4C575843;  // "CXWL"
constexpr uint32_t kSegmentFormat = 1;
constexpr size_t kSegmentHeaderBytes = 16;      // magic + format + seq
constexpr size_t kRecordHeaderBytes = 12;       // u32 length + u64 checksum

// Monotonic wall clock for fsync timing and the batch window (real I/O cost,
// independent of any simulated clock).
int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Parses "wal-<seq>.log"; returns false for other directory entries.
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  if (name.rfind("wal-", 0) != 0 || name.size() <= 8 ||
      name.substr(name.size() - 4) != ".log") {
    return false;
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

std::vector<std::pair<uint64_t, std::string>> ListSegments(const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    if (ParseSegmentName(entry.path().filename().string(), &seq)) {
      segments.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "?";
}

bool ParseFsyncPolicy(const std::string& s, FsyncPolicy* out) {
  if (s == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (s == "batch") {
    *out = FsyncPolicy::kBatch;
  } else if (s == "none") {
    *out = FsyncPolicy::kNone;
  } else {
    return false;
  }
  return true;
}

WalRecord WalRecord::Apply(Key key, Value value, const Version& version,
                           std::vector<Dependency> deps) {
  WalRecord r;
  r.type = WalRecordType::kApply;
  r.key = std::move(key);
  r.value = std::move(value);
  r.version = version;
  r.deps = std::move(deps);
  return r;
}

WalRecord WalRecord::Stable(Key key, const Version& version) {
  WalRecord r;
  r.type = WalRecordType::kStable;
  r.key = std::move(key);
  r.version = version;
  return r;
}

void WalRecord::EncodePayload(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type));
  w->PutString(key);
  version.Encode(w);
  if (type == WalRecordType::kApply) {
    w->PutString(value);
    EncodeDeps(deps, w);
  }
}

bool WalRecord::DecodePayload(ByteReader* r) {
  uint8_t t = 0;
  if (!r->GetU8(&t) || !r->GetString(&key) || !version.Decode(r)) {
    return false;
  }
  type = static_cast<WalRecordType>(t);
  switch (type) {
    case WalRecordType::kApply:
      return r->GetString(&value) && DecodeDeps(r, &deps);
    case WalRecordType::kStable:
      return true;
  }
  return false;
}

std::string Wal::SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log", static_cast<unsigned long long>(seq));
  return buf;
}

uint64_t Wal::NewestSegmentSeq(const std::string& dir) {
  uint64_t newest = 0;
  for (const auto& [seq, path] : ListSegments(dir)) {
    newest = std::max(newest, seq);
  }
  return newest;
}

Wal::Wal(std::string dir, WalOptions options) : dir_(std::move(dir)), options_(options) {}

Status Wal::Open(const std::string& dir, const WalOptions& options,
                 std::unique_ptr<Wal>* out) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create wal dir " + dir + ": " + ec.message());
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options));
  {
    std::lock_guard<std::mutex> lock(wal->mu_);
    const Status s = wal->OpenSegmentLocked(NewestSegmentSeq(dir) + 1);
    if (!s.ok()) {
      return s;
    }
  }
  if (options.policy == FsyncPolicy::kBatch && options.start_flusher_thread) {
    wal->flusher_ = std::thread([w = wal.get()]() { w->FlusherLoop(); });
  }
  *out = std::move(wal);
  return Status::Ok();
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) {
    flusher_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!abandoned_ && fd_ >= 0) {
    FlushLocked();
    if (options_.policy != FsyncPolicy::kNone) {
      ::fsync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Status Wal::OpenSegmentLocked(uint64_t seq) {
  const std::string path = dir_ + "/" + SegmentFileName(seq);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::Internal("cannot open wal segment " + path);
  }
  ByteWriter header;
  header.PutU32(kSegmentMagic);
  header.PutU32(kSegmentFormat);
  header.PutU64(seq);
  const std::string& bytes = header.data();
  if (::write(fd_, bytes.data(), bytes.size()) != static_cast<ssize_t>(bytes.size())) {
    ::close(fd_);
    fd_ = -1;
    return Status::Internal("short write of wal segment header " + path);
  }
  active_seq_ = seq;
  active_bytes_ = kSegmentHeaderBytes;
  return Status::Ok();
}

Status Wal::Append(const WalRecord& record) {
  ByteWriter payload;
  record.EncodePayload(&payload);
  ByteWriter framed;
  framed.PutU32(static_cast<uint32_t>(payload.size()));
  framed.PutU64(Fnv1a64(payload.data()));
  const std::string encoded = framed.Take() + payload.data();

  std::lock_guard<std::mutex> lock(mu_);
  if (abandoned_) {
    return Status::FailedPrecondition("wal abandoned");
  }
  appends_++;
  if (m_appends_ != nullptr) {
    m_appends_->Inc();
  }
  switch (options_.policy) {
    case FsyncPolicy::kAlways:
      return WriteLocked(encoded, /*sync=*/true);
    case FsyncPolicy::kNone:
      return WriteLocked(encoded, /*sync=*/false);
    case FsyncPolicy::kBatch:
      pending_ += encoded;
      pending_records_++;
      if (pending_records_ >= options_.batch_max_records) {
        return FlushLocked();
      }
      return Status::Ok();
  }
  return Status::Ok();
}

Status Wal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status Wal::FlushLocked() {
  if (pending_records_ == 0 || abandoned_) {
    return Status::Ok();
  }
  std::string batch = std::move(pending_);
  const size_t records = pending_records_;
  pending_.clear();
  pending_records_ = 0;
  if (m_batch_records_ != nullptr) {
    m_batch_records_->Record(static_cast<int64_t>(records));
  }
  return WriteLocked(batch, options_.policy != FsyncPolicy::kNone);
}

Status Wal::WriteLocked(const std::string& bytes, bool sync) {
  if (fd_ < 0) {
    return Status::Internal("wal segment not open");
  }
  if (::write(fd_, bytes.data(), bytes.size()) != static_cast<ssize_t>(bytes.size())) {
    return Status::Internal("short write to wal segment in " + dir_);
  }
  active_bytes_ += bytes.size();
  bytes_written_ += bytes.size();
  if (m_bytes_ != nullptr) {
    m_bytes_->Inc(bytes.size());
  }
  if (sync) {
    const int64_t start = MonotonicMicros();
    if (::fsync(fd_) != 0) {
      return Status::Internal("fsync failed in " + dir_);
    }
    fsyncs_++;
    if (m_fsyncs_ != nullptr) {
      m_fsyncs_->Inc();
    }
    if (m_fsync_us_ != nullptr) {
      m_fsync_us_->Record(MonotonicMicros() - start);
    }
  }
  if (active_bytes_ >= options_.segment_bytes) {
    if (options_.policy != FsyncPolicy::kNone) {
      ::fsync(fd_);
    }
    ::close(fd_);
    const uint64_t full_bytes = active_bytes_;
    const Status opened = OpenSegmentLocked(active_seq_ + 1);
    if (recorder_ != nullptr) {
      recorder_->Emit(EventKind::kWalRotate, MonotonicMicros(),
                      static_cast<int64_t>(active_seq_), static_cast<int64_t>(full_bytes));
    }
    return opened;
  }
  return Status::Ok();
}

uint64_t Wal::Rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (abandoned_ || fd_ < 0) {
    return active_seq_;
  }
  FlushLocked();
  if (options_.policy != FsyncPolicy::kNone) {
    ::fsync(fd_);
  }
  ::close(fd_);
  const uint64_t old_bytes = active_bytes_;
  OpenSegmentLocked(active_seq_ + 1);
  if (recorder_ != nullptr) {
    recorder_->Emit(EventKind::kWalRotate, MonotonicMicros(),
                    static_cast<int64_t>(active_seq_), static_cast<int64_t>(old_bytes));
  }
  return active_seq_;
}

void Wal::DeleteSegmentsBelow(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t deleted = 0;
  for (const auto& [s, path] : ListSegments(dir_)) {
    if (s < seq && s != active_seq_) {
      std::error_code ec;
      if (std::filesystem::remove(path, ec)) {
        deleted++;
      }
    }
  }
  if (recorder_ != nullptr) {
    recorder_->Emit(EventKind::kWalTruncate, MonotonicMicros(), static_cast<int64_t>(seq),
                    static_cast<int64_t>(deleted));
  }
}

void Wal::AbandonPending() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
    pending_records_ = 0;
    abandoned_ = true;
    stop_ = true;
    if (fd_ >= 0) {
      ::close(fd_);  // no flush, no fsync: whatever reached the OS survives
      fd_ = -1;
    }
  }
  cv_.notify_all();
}

void Wal::AttachObs(MetricsRegistry* metrics, const std::string& node) {
  if (metrics == nullptr) {
    return;
  }
  const MetricLabels labels = {{"node", node}};
  m_appends_ = metrics->GetCounter("crx_wal_appends", labels);
  m_fsyncs_ = metrics->GetCounter("crx_wal_fsyncs", labels);
  m_bytes_ = metrics->GetCounter("crx_wal_bytes", labels);
  m_fsync_us_ = metrics->GetLatency("crx_wal_fsync_us", labels);
  m_batch_records_ = metrics->GetLatency("crx_wal_batch_records", labels);
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::microseconds(options_.batch_window_us));
    if (stop_) {
      break;
    }
    if (pending_records_ > 0) {
      FlushLocked();
    }
  }
}

Status Wal::Replay(const std::string& dir, uint64_t min_seq,
                   const std::function<void(const WalRecord&)>& fn, WalReplayStats* stats) {
  WalReplayStats local;
  WalReplayStats* st = stats != nullptr ? stats : &local;
  *st = WalReplayStats{};

  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("no wal dir at " + dir);
  }
  const auto segments = ListSegments(dir);
  for (size_t seg = 0; seg < segments.size(); ++seg) {
    const auto& [seq, path] = segments[seg];
    if (seq < min_seq) {
      st->segments_skipped++;
      continue;
    }
    const bool last_segment = seg + 1 == segments.size();

    std::string contents;
    {
      FILE* f = std::fopen(path.c_str(), "rb");
      if (f == nullptr) {
        return Status::Internal("cannot open wal segment " + path);
      }
      char buf[64 * 1024];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        contents.append(buf, n);
      }
      std::fclose(f);
    }

    if (contents.size() < kSegmentHeaderBytes) {
      if (last_segment) {
        // A crash can leave a segment with a partial header; cut it away.
        ::truncate(path.c_str(), 0);
        st->tail_truncated = true;
        break;
      }
      return Status::Corruption("wal segment header truncated: " + path);
    }
    ByteReader header(contents.data(), kSegmentHeaderBytes);
    uint32_t magic = 0, format = 0;
    uint64_t header_seq = 0;
    header.GetU32(&magic);
    header.GetU32(&format);
    header.GetU64(&header_seq);
    if (magic != kSegmentMagic || format != kSegmentFormat || header_seq != seq) {
      return Status::Corruption("bad wal segment header: " + path);
    }

    size_t pos = kSegmentHeaderBytes;
    while (pos < contents.size()) {
      const size_t remaining = contents.size() - pos;
      uint32_t length = 0;
      uint64_t checksum = 0;
      if (remaining >= kRecordHeaderBytes) {
        ByteReader rh(contents.data() + pos, kRecordHeaderBytes);
        rh.GetU32(&length);
        rh.GetU64(&checksum);
      }
      if (remaining < kRecordHeaderBytes ||
          remaining - kRecordHeaderBytes < static_cast<size_t>(length)) {
        // Record cut short on disk. At the very end of the log this is a
        // torn write from a crash mid-append: truncate it away and recover.
        // Anywhere else the log lost bytes in the middle — corruption.
        if (last_segment) {
          ::truncate(path.c_str(), static_cast<off_t>(pos));
          st->tail_truncated = true;
          break;
        }
        return Status::Corruption("wal record truncated mid-log: " + path);
      }
      const std::string_view payload(contents.data() + pos + kRecordHeaderBytes, length);
      if (Fnv1a64(payload) != checksum) {
        return Status::Corruption("wal record checksum mismatch at offset " +
                                  std::to_string(pos) + " in " + path);
      }
      WalRecord record;
      ByteReader pr(payload.data(), payload.size());
      if (!record.DecodePayload(&pr) || !pr.AtEnd()) {
        return Status::Corruption("wal record undecodable at offset " + std::to_string(pos) +
                                  " in " + path);
      }
      fn(record);
      st->records++;
      st->bytes += kRecordHeaderBytes + length;
      pos += kRecordHeaderBytes + length;
    }
    st->segments_replayed++;
  }
  return Status::Ok();
}

}  // namespace chainreaction

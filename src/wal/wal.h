// Segmented write-ahead log with group commit — the durability layer under
// each chain node.
//
// The log is a directory of segment files `wal-<seq>.log`, each a fixed
// header (magic, format version, segment sequence number) followed by
// length-prefixed records carrying a per-record FNV-1a checksum. Appends go
// to the newest (active) segment; when it exceeds `segment_bytes` the log
// rotates to a fresh segment. Checkpoint-coordinated truncation
// (`DeleteSegmentsBelow`) drops segments fully covered by a durable
// checkpoint, bounding recovery replay work.
//
// Durability cost is governed by the fsync policy:
//   * kAlways — every append is written and fsynced before returning
//     (one syscall pair per record; the slow, maximally durable mode);
//   * kBatch  — appends are buffered and a background flusher writes and
//     fsyncs the whole batch once per window (or earlier when
//     `batch_max_records` accumulate): group commit, one fsync per batch;
//   * kNone   — appends are written to the OS immediately but never
//     fsynced (survives process crash, not power loss).
//
// Replay walks segments in sequence order, verifies each record's checksum,
// and hands decoded records to a callback. A final record cut short by a
// crash (fewer bytes on disk than its length prefix claims, at the tail of
// the last segment) is truncated away and replay succeeds; a checksum
// mismatch on a fully present record is kCorruption.
//
// Thread safety: Append/Flush/Rotate may be called concurrently with the
// internal flusher thread; all file state is mutex-guarded. The recovery
// path (Replay) is static and touches no live Wal state.
#ifndef SRC_WAL_WAL_H_
#define SRC_WAL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"

namespace chainreaction {

enum class FsyncPolicy {
  kAlways,  // fsync per append
  kBatch,   // group commit: one fsync per batch window
  kNone,    // write-through to the OS, never fsync
};

const char* FsyncPolicyName(FsyncPolicy policy);
// Parses "always" | "batch" | "none" (as used by --fsync-mode flags).
bool ParseFsyncPolicy(const std::string& s, FsyncPolicy* out);

struct WalOptions {
  FsyncPolicy policy = FsyncPolicy::kBatch;
  // Group-commit batch bounds (kBatch only): a batch is flushed when it
  // holds this many records, or when the window elapses, whichever first.
  uint32_t batch_max_records = 64;
  Duration batch_window_us = 2000;  // real time, not simulated
  // Start a background flusher thread for kBatch. Tests that want
  // deterministic batch boundaries disable it and call Flush() directly.
  bool start_flusher_thread = true;
  uint64_t segment_bytes = 8u << 20;
};

enum class WalRecordType : uint8_t {
  kApply = 1,   // a version applied to the store (key, value, version, deps)
  kStable = 2,  // a version marked DC-Write-Stable (key, version)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kApply;
  Key key;
  Value value;                    // kApply only
  Version version;
  std::vector<Dependency> deps;   // kApply only

  static WalRecord Apply(Key key, Value value, const Version& version,
                         std::vector<Dependency> deps);
  static WalRecord Stable(Key key, const Version& version);

  void EncodePayload(ByteWriter* w) const;
  bool DecodePayload(ByteReader* r);
};

struct WalReplayStats {
  uint64_t segments_replayed = 0;
  uint64_t segments_skipped = 0;  // below the checkpoint's sequence floor
  uint64_t records = 0;
  uint64_t bytes = 0;
  bool tail_truncated = false;    // a torn final record was cut away
};

class Wal {
 public:
  // Opens (creating if needed) the log in `dir` and starts a fresh active
  // segment numbered one past the newest on disk. Returns kInternal if the
  // directory or segment cannot be created.
  static Status Open(const std::string& dir, const WalOptions& options,
                     std::unique_ptr<Wal>* out);

  ~Wal();  // clean shutdown: flushes pending records, stops the flusher
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one record. Durability on return depends on the policy (see
  // file comment); the record is always in the in-process batch, so a clean
  // shutdown never loses it — only a crash can.
  Status Append(const WalRecord& record);

  // Writes and (policy != kNone) fsyncs everything pending.
  Status Flush();

  // Closes the active segment (flushing it) and opens the next one.
  // Returns the new active sequence number — the truncation floor a
  // checkpoint taken *after* this call may safely use.
  uint64_t Rotate();

  // Deletes segments with sequence < `seq` (those fully covered by a
  // durable checkpoint taken after Rotate() returned `seq`).
  void DeleteSegmentsBelow(uint64_t seq);

  // Crash simulation: discards records still in the group-commit buffer,
  // as a real process crash would, and closes the file without flushing.
  // The Wal is unusable afterwards except for destruction.
  void AbandonPending();

  // Registers this log's instruments, labeled {node=<node>}.
  void AttachObs(MetricsRegistry* metrics, const std::string& node);

  // Flight-recorder sink for rotation/truncation events (may be null).
  // Internal rotations happen on WAL threads, so timestamps are wall-clock.
  void SetRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  const std::string& dir() const { return dir_; }
  uint64_t active_seq() const { return active_seq_; }
  uint64_t appends() const { return appends_; }
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t bytes_written() const { return bytes_written_; }

  // Replays every segment in `dir` with sequence >= `min_seq` through `fn`,
  // in append order. Returns kNotFound if the directory does not exist,
  // kCorruption on a bad header or a checksum mismatch; a torn final record
  // in the last segment is truncated off the file and reported via `stats`,
  // not an error. `stats` may be null.
  static Status Replay(const std::string& dir, uint64_t min_seq,
                       const std::function<void(const WalRecord&)>& fn, WalReplayStats* stats);

  // Newest segment sequence present in `dir`, 0 if none.
  static uint64_t NewestSegmentSeq(const std::string& dir);

  static std::string SegmentFileName(uint64_t seq);

 private:
  Wal(std::string dir, WalOptions options);

  Status OpenSegmentLocked(uint64_t seq);
  Status WriteLocked(const std::string& bytes, bool sync);
  Status FlushLocked();
  void FlusherLoop();

  const std::string dir_;
  const WalOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  int fd_ = -1;
  uint64_t active_seq_ = 0;
  uint64_t active_bytes_ = 0;
  std::string pending_;        // encoded records awaiting group commit
  size_t pending_records_ = 0;
  bool stop_ = false;
  bool abandoned_ = false;
  std::thread flusher_;

  // Stats (mu_-guarded writes; readers are test/bench introspection).
  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t bytes_written_ = 0;

  // Observability (null until AttachObs/SetRecorder).
  FlightRecorder* recorder_ = nullptr;
  Counter* m_appends_ = nullptr;
  Counter* m_fsyncs_ = nullptr;
  Counter* m_bytes_ = nullptr;
  LatencyMetric* m_fsync_us_ = nullptr;
  LatencyMetric* m_batch_records_ = nullptr;
};

}  // namespace chainreaction

#endif  // SRC_WAL_WAL_H_

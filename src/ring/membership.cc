#include "src/ring/membership.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

MembershipService::MembershipService(std::vector<NodeId> initial_nodes, uint32_t vnodes,
                                     uint32_t replication)
    : nodes_(std::move(initial_nodes)), vnodes_(vnodes), replication_(replication) {
  prev_broadcast_nodes_ = nodes_;
  RebuildRing();
}

std::vector<uint32_t> MembershipService::Weights() const {
  std::vector<uint32_t> weights;
  weights.reserve(nodes_.size());
  for (NodeId node : nodes_) {
    auto it = weight_overrides_.find(node);
    weights.push_back(it != weight_overrides_.end() ? it->second : vnodes_);
  }
  return weights;
}

void MembershipService::RebuildRing() {
  ring_ = Ring(nodes_, vnodes_, replication_, epoch_, Weights());
}

void MembershipService::RemoveNode(NodeId node) {
  auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) {
    return;
  }
  nodes_.erase(it);
  weight_overrides_.erase(node);
  CHAINRX_CHECK(nodes_.size() >= replication_);
  epoch_++;
  RebuildRing();
  LOG_INFO("membership: removed node %u, epoch %llu", node,
           static_cast<unsigned long long>(epoch_));
  Broadcast();
}

void MembershipService::AddNode(NodeId node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) {
    return;
  }
  nodes_.push_back(node);
  // The new node has never heartbeated; without this the next sweep would
  // immediately declare it dead.
  if (env_ != nullptr && heartbeat_timeout_ > 0) {
    last_seen_[node] = env_->Now();
  }
  epoch_++;
  RebuildRing();
  LOG_INFO("membership: added node %u, epoch %llu", node,
           static_cast<unsigned long long>(epoch_));
  Broadcast();
}

void MembershipService::Broadcast(const std::vector<NodeId>& pre_synced) {
  CHAINRX_CHECK(env_ != nullptr);
  MemNewMembership msg;
  msg.epoch = epoch_;
  msg.nodes = nodes_;
  msg.weights = Weights();
  msg.pre_synced = pre_synced;
  const std::string payload = EncodeMessage(msg);
  for (NodeId node : nodes_) {
    env_->Send(node, payload);
  }
  // Farewell copy for nodes the newest epoch dropped (no-op if crashed).
  for (NodeId node : prev_broadcast_nodes_) {
    if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
      env_->Send(node, payload);
    }
  }
  prev_broadcast_nodes_ = nodes_;
  for (Address listener : listeners_) {
    env_->Send(listener, payload);
  }
}

void MembershipService::EnableFailureDetection(Duration sweep_interval, Duration timeout) {
  CHAINRX_CHECK(env_ != nullptr);
  CHAINRX_CHECK(sweep_interval > 0 && timeout > 0);
  sweep_interval_ = sweep_interval;
  heartbeat_timeout_ = timeout;
  const Time now = env_->Now();
  for (NodeId node : nodes_) {
    last_seen_[node] = now;  // grace period: everyone starts alive
  }
  env_->Schedule(sweep_interval_, [this]() { Sweep(); });
}

void MembershipService::EnableRebroadcast(Duration interval) {
  CHAINRX_CHECK(env_ != nullptr);
  CHAINRX_CHECK(interval > 0);
  rebroadcast_interval_ = interval;
  env_->Schedule(rebroadcast_interval_, [this]() {
    rebroadcasts_++;
    Broadcast();
    EnableRebroadcast(rebroadcast_interval_);
  });
}

void MembershipService::Sweep() {
  const Time now = env_->Now();
  std::vector<NodeId> dead;
  for (NodeId node : nodes_) {
    auto it = last_seen_.find(node);
    if (it == last_seen_.end() || now - it->second > heartbeat_timeout_) {
      dead.push_back(node);
    }
  }
  for (NodeId node : dead) {
    if (nodes_.size() <= replication_) {
      LOG_WARN("membership: node %u silent but removal would break R=%u", node, replication_);
      break;
    }
    failures_detected_++;
    LOG_INFO("membership: node %u missed heartbeats, removing", node);
    RemoveNode(node);
  }
  env_->Schedule(sweep_interval_, [this]() { Sweep(); });
}

void MembershipService::HandleMigCommit(const MigCommit& msg) {
  // The coordinator proposed this epoch before streaming; if a failure was
  // detected meanwhile the epoch advanced past the proposal and committing
  // the stale layout would resurrect a dead node. Reject; the coordinator
  // observes the unexpected epoch and aborts the migration.
  if (msg.planned_epoch != epoch_ + 1) {
    LOG_WARN("membership: rejecting MigCommit for epoch %llu (current %llu)",
             static_cast<unsigned long long>(msg.planned_epoch),
             static_cast<unsigned long long>(epoch_));
    return;
  }
  CHAINRX_CHECK(msg.nodes.size() >= replication_);
  CHAINRX_CHECK(msg.weights.empty() || msg.weights.size() == msg.nodes.size());
  nodes_ = msg.nodes;
  weight_overrides_.clear();
  for (size_t i = 0; i < msg.weights.size(); ++i) {
    if (msg.weights[i] != vnodes_) {
      weight_overrides_[msg.nodes[i]] = msg.weights[i];
    }
  }
  if (env_ != nullptr && heartbeat_timeout_ > 0) {
    const Time now = env_->Now();
    for (NodeId node : nodes_) {
      // Freshly joined nodes have never heartbeated; give everyone a fresh
      // grace period across the flip.
      last_seen_[node] = now;
    }
  }
  epoch_ = msg.planned_epoch;
  RebuildRing();
  LOG_INFO("membership: committed migration %llu, epoch %llu (%zu nodes)",
           static_cast<unsigned long long>(msg.migration_id),
           static_cast<unsigned long long>(epoch_), nodes_.size());
  Broadcast(msg.pre_synced);
}

void MembershipService::OnMessage(Address /*from*/, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kMemHeartbeat: {
      MemHeartbeat hb;
      if (DecodeMessage(payload, &hb)) {
        last_seen_[hb.node] = env_->Now();
      }
      break;
    }
    case MsgType::kMigCommit: {
      MigCommit msg;
      if (DecodeMessage(payload, &msg)) {
        HandleMigCommit(msg);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace chainreaction

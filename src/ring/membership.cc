#include "src/ring/membership.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

MembershipService::MembershipService(std::vector<NodeId> initial_nodes, uint32_t vnodes,
                                     uint32_t replication)
    : nodes_(std::move(initial_nodes)),
      vnodes_(vnodes),
      replication_(replication),
      ring_(nodes_, vnodes_, replication_, epoch_) {}

void MembershipService::RemoveNode(NodeId node) {
  auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) {
    return;
  }
  nodes_.erase(it);
  CHAINRX_CHECK(nodes_.size() >= replication_);
  epoch_++;
  ring_ = Ring(nodes_, vnodes_, replication_, epoch_);
  LOG_INFO("membership: removed node %u, epoch %llu", node,
           static_cast<unsigned long long>(epoch_));
  Broadcast();
}

void MembershipService::AddNode(NodeId node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) {
    return;
  }
  nodes_.push_back(node);
  epoch_++;
  ring_ = Ring(nodes_, vnodes_, replication_, epoch_);
  LOG_INFO("membership: added node %u, epoch %llu", node,
           static_cast<unsigned long long>(epoch_));
  Broadcast();
}

void MembershipService::Broadcast() {
  CHAINRX_CHECK(env_ != nullptr);
  MemNewMembership msg;
  msg.epoch = epoch_;
  msg.nodes = nodes_;
  const std::string payload = EncodeMessage(msg);
  for (NodeId node : nodes_) {
    env_->Send(node, payload);
  }
  for (Address listener : listeners_) {
    env_->Send(listener, payload);
  }
}

void MembershipService::EnableFailureDetection(Duration sweep_interval, Duration timeout) {
  CHAINRX_CHECK(env_ != nullptr);
  CHAINRX_CHECK(sweep_interval > 0 && timeout > 0);
  sweep_interval_ = sweep_interval;
  heartbeat_timeout_ = timeout;
  const Time now = env_->Now();
  for (NodeId node : nodes_) {
    last_seen_[node] = now;  // grace period: everyone starts alive
  }
  env_->Schedule(sweep_interval_, [this]() { Sweep(); });
}

void MembershipService::Sweep() {
  const Time now = env_->Now();
  std::vector<NodeId> dead;
  for (NodeId node : nodes_) {
    auto it = last_seen_.find(node);
    if (it == last_seen_.end() || now - it->second > heartbeat_timeout_) {
      dead.push_back(node);
    }
  }
  for (NodeId node : dead) {
    if (nodes_.size() <= replication_) {
      LOG_WARN("membership: node %u silent but removal would break R=%u", node, replication_);
      break;
    }
    failures_detected_++;
    LOG_INFO("membership: node %u missed heartbeats, removing", node);
    RemoveNode(node);
  }
  env_->Schedule(sweep_interval_, [this]() { Sweep(); });
}

void MembershipService::OnMessage(Address /*from*/, const std::string& payload) {
  MemHeartbeat hb;
  if (DecodeMessage(payload, &hb)) {
    last_seen_[hb.node] = env_->Now();
  }
}

}  // namespace chainreaction

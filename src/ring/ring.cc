#include "src/ring/ring.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/result.h"

namespace chainreaction {

Ring::Ring(std::vector<NodeId> nodes, uint32_t vnodes_per_node, uint32_t replication,
           uint64_t epoch, std::vector<uint32_t> weights)
    : nodes_(std::move(nodes)), weights_(std::move(weights)), replication_(replication),
      epoch_(epoch) {
  CHAINRX_CHECK(replication_ >= 1);
  CHAINRX_CHECK(nodes_.size() >= replication_);
  CHAINRX_CHECK(vnodes_per_node >= 1);
  if (weights_.empty()) {
    weights_.assign(nodes_.size(), vnodes_per_node);
  }
  CHAINRX_CHECK(weights_.size() == nodes_.size());
  size_t total_points = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    CHAINRX_CHECK(weights_[i] >= 1);
    total_points += weights_[i];
  }
  points_.reserve(total_points);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (uint32_t v = 0; v < weights_[i]; ++v) {
      // Vnode placement must be a pure function of (node, v) so that all
      // parties, and all epochs containing the node, agree on it. Raising a
      // node's weight only adds points; lowering it only removes them.
      const uint64_t h = Mix64((static_cast<uint64_t>(nodes_[i]) << 20) | v);
      points_.push_back(Point{h, nodes_[i]});
    }
  }
  std::sort(points_.begin(), points_.end());
}

uint32_t Ring::WeightOf(NodeId node) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node) {
      return weights_[i];
    }
  }
  return 0;
}

std::vector<NodeId> Ring::ComputeChain(const Key& key) const {
  std::vector<NodeId> chain;
  chain.reserve(replication_);
  // FNV-1a alone under-avalanches its high bits for keys that differ only
  // in trailing characters (e.g. sequential YCSB record keys), which would
  // collapse consecutive keys onto one chain; the 64-bit finalizer fixes
  // the spread.
  const uint64_t h = Mix64(Fnv1a64(key));
  // First vnode with hash >= h, wrapping.
  auto it = std::lower_bound(points_.begin(), points_.end(), Point{h, 0});
  size_t idx = static_cast<size_t>(it - points_.begin());
  for (size_t steps = 0; steps < points_.size() && chain.size() < replication_; ++steps) {
    const NodeId candidate = points_[(idx + steps) % points_.size()].node;
    if (std::find(chain.begin(), chain.end(), candidate) == chain.end()) {
      chain.push_back(candidate);
    }
  }
  CHAINRX_CHECK(chain.size() == replication_);
  return chain;
}

const std::vector<NodeId>& Ring::ChainFor(const Key& key) const {
  auto it = chain_cache_.find(key);
  if (it != chain_cache_.end()) {
    return it->second;
  }
  auto [inserted, _] = chain_cache_.emplace(key, ComputeChain(key));
  return inserted->second;
}

ChainIndex Ring::PositionOf(const Key& key, NodeId node) const {
  const std::vector<NodeId>& chain = ChainFor(key);
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i] == node) {
      return static_cast<ChainIndex>(i + 1);
    }
  }
  return 0;
}

NodeId Ring::SuccessorFor(const Key& key, NodeId node) const {
  const std::vector<NodeId>& chain = ChainFor(key);
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    if (chain[i] == node) {
      return chain[i + 1];
    }
  }
  return kInvalidNode;
}

NodeId Ring::PredecessorFor(const Key& key, NodeId node) const {
  const std::vector<NodeId>& chain = ChainFor(key);
  for (size_t i = 1; i < chain.size(); ++i) {
    if (chain[i] == node) {
      return chain[i - 1];
    }
  }
  return kInvalidNode;
}

bool Ring::Contains(NodeId node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

std::vector<std::vector<NodeId>> Ring::SegmentChains() const {
  std::vector<std::vector<NodeId>> out;
  out.reserve(points_.size());
  for (size_t idx = 0; idx < points_.size(); ++idx) {
    std::vector<NodeId> chain;
    chain.reserve(replication_);
    for (size_t steps = 0; steps < points_.size() && chain.size() < replication_; ++steps) {
      const NodeId candidate = points_[(idx + steps) % points_.size()].node;
      if (std::find(chain.begin(), chain.end(), candidate) == chain.end()) {
        chain.push_back(candidate);
      }
    }
    out.push_back(std::move(chain));
  }
  return out;
}

}  // namespace chainreaction

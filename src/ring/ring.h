// Consistent-hashing ring and chain composition (FAWN-KV style).
//
// Every node owns `vnodes` positions on a 64-bit hash ring. The replication
// chain of a key is the sequence of R *distinct physical* nodes found
// clockwise from the key's hash; the first is the chain head, the last the
// tail. All sides (clients, nodes, membership service) compute chains
// locally from the same membership list, so no directory service is needed.
#ifndef SRC_RING_RING_H_
#define SRC_RING_RING_H_

#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace chainreaction {

class Ring {
 public:
  Ring() = default;

  // `nodes` lists live node ids; `replication` is the chain length R.
  // Requires nodes.size() >= replication >= 1. `weights` (when non-empty,
  // parallel to `nodes`) overrides the per-node vnode count: a node with a
  // larger weight owns proportionally more ring segments. Rebalancing moves
  // arcs between nodes by changing weights — placement of each (node, v)
  // point stays a pure function, so all parties agree on every epoch.
  Ring(std::vector<NodeId> nodes, uint32_t vnodes_per_node, uint32_t replication,
       uint64_t epoch = 0, std::vector<uint32_t> weights = {});

  // The chain (head first) for `key`. Stable for a given membership.
  const std::vector<NodeId>& ChainFor(const Key& key) const;

  NodeId HeadFor(const Key& key) const { return ChainFor(key).front(); }
  NodeId TailFor(const Key& key) const { return ChainFor(key).back(); }

  // 1-based position of `node` in key's chain; 0 if not a replica.
  ChainIndex PositionOf(const Key& key, NodeId node) const;

  // Successor of `node` in key's chain, kInvalidNode for the tail.
  NodeId SuccessorFor(const Key& key, NodeId node) const;
  // Predecessor of `node` in key's chain, kInvalidNode for the head.
  NodeId PredecessorFor(const Key& key, NodeId node) const;

  bool Contains(NodeId node) const;

  // One replication chain per ring segment (the arc owned by each vnode
  // point), head first, in ring order. Telemetry/status only — O(points*R),
  // not for the request path.
  std::vector<std::vector<NodeId>> SegmentChains() const;

  const std::vector<NodeId>& nodes() const { return nodes_; }
  // Per-node vnode counts, parallel to nodes() (filled with the default
  // when the ring was built without explicit weights).
  const std::vector<uint32_t>& weights() const { return weights_; }
  // Number of ring points owned by `node` (0 if absent).
  uint32_t WeightOf(NodeId node) const;
  uint32_t replication() const { return replication_; }
  uint64_t epoch() const { return epoch_; }
  bool empty() const { return points_.empty(); }

 private:
  struct Point {
    uint64_t hash;
    NodeId node;
    bool operator<(const Point& other) const {
      return hash != other.hash ? hash < other.hash : node < other.node;
    }
  };

  std::vector<NodeId> ComputeChain(const Key& key) const;

  std::vector<NodeId> nodes_;
  std::vector<uint32_t> weights_;  // parallel to nodes_
  std::vector<Point> points_;  // sorted
  uint32_t replication_ = 1;
  uint64_t epoch_ = 0;

  // Chain lookups are on the hot path of every simulated op; memoize per
  // key. The Ring is immutable after construction, so entries never go
  // stale. Not thread-safe: each actor owns its Ring copy.
  mutable std::unordered_map<Key, std::vector<NodeId>> chain_cache_;
};

}  // namespace chainreaction

#endif  // SRC_RING_RING_H_

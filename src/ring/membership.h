// Membership service.
//
// The ChainReaction paper (like FAWN-KV) assumes an external coordination
// service that detects failures and disseminates the new chain layout. Here
// the membership service is a simulated actor holding the authoritative node
// list. Two modes:
//   * oracle (default): the failure injector calls RemoveNode/AddNode;
//   * heartbeat failure detection (EnableFailureDetection): nodes send
//     periodic MemHeartbeat messages and the service removes nodes that
//     miss the timeout, then broadcasts the new epoch to every live node
//     and registered listener (clients, geo replicators).
//
// Planned topology changes (join/drain/rebalance, src/admin/) commit through
// MigCommit messages: the coordinator streams key ranges first, then asks the
// membership service to flip the epoch with the new node list and per-node
// weights. The resulting MemNewMembership carries the pre-synced node set so
// chain repair can skip re-pushing data the migration already moved.
#ifndef SRC_RING_MEMBERSHIP_H_
#define SRC_RING_MEMBERSHIP_H_

#include <map>
#include <vector>

#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/ring/ring.h"
#include "src/sim/env.h"

namespace chainreaction {

class MembershipService : public Actor {
 public:
  MembershipService(std::vector<NodeId> initial_nodes, uint32_t vnodes, uint32_t replication);

  void AttachEnv(Env* env) { env_ = env; }

  // Extra addresses (clients, geo replicators) that want membership updates.
  void AddListener(Address addr) { listeners_.push_back(addr); }

  // Fault-injection entry points. Each broadcasts a new epoch.
  void RemoveNode(NodeId node);
  void AddNode(NodeId node);

  // Turns on heartbeat-based failure detection: nodes missing heartbeats
  // for `timeout` are removed at the next sweep (every `sweep_interval`).
  // NOTE: the sweep timer keeps the simulator's event queue non-empty
  // forever; tests must use RunUntil, not Run-to-drain.
  void EnableFailureDetection(Duration sweep_interval, Duration timeout);

  // Re-broadcasts the current epoch every `interval` even without topology
  // changes, so listeners that missed an announcement converge. Same
  // event-queue caveat as EnableFailureDetection.
  void EnableRebroadcast(Duration interval);

  uint64_t failures_detected() const { return failures_detected_; }
  uint64_t rebroadcasts() const { return rebroadcasts_; }

  const Ring& ring() const { return ring_; }
  uint64_t epoch() const { return epoch_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }
  // Per-node vnode counts, parallel to nodes().
  std::vector<uint32_t> Weights() const;

  void OnMessage(Address from, std::string_view payload) override;

 private:
  void RebuildRing();
  void Broadcast(const std::vector<NodeId>& pre_synced = {});
  void Sweep();
  void HandleMigCommit(const MigCommit& msg);

  Env* env_ = nullptr;
  std::vector<NodeId> nodes_;
  // Membership as of the previous broadcast. A node removed by the newest
  // epoch still gets that one announcement — a live-drained node must learn
  // the flip to stop mirroring and hand off its unstable head keys.
  std::vector<NodeId> prev_broadcast_nodes_;
  std::vector<Address> listeners_;
  uint32_t vnodes_;
  uint32_t replication_;
  uint64_t epoch_ = 1;
  Ring ring_;

  // Per-node weight overrides set by rebalance commits; a node absent here
  // uses the default vnodes_ count.
  std::map<NodeId, uint32_t> weight_overrides_;

  // Failure detection state (inactive unless enabled).
  Duration sweep_interval_ = 0;
  Duration heartbeat_timeout_ = 0;
  std::map<NodeId, Time> last_seen_;
  uint64_t failures_detected_ = 0;

  Duration rebroadcast_interval_ = 0;
  uint64_t rebroadcasts_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_RING_MEMBERSHIP_H_

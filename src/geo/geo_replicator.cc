#include "src/geo/geo_replicator.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

GeoReplicator::GeoReplicator(DcId dc, CrxConfig config, Ring local_ring)
    : dc_(dc), config_(config), local_ring_(std::move(local_ring)) {}

void GeoReplicator::SetPeers(std::vector<Address> peer_by_dc) {
  peer_by_dc_ = std::move(peer_by_dc);
}

void GeoReplicator::AttachObs(MetricsRegistry* metrics, TraceCollector* traces) {
  trace_sink_ = traces;
  if (metrics == nullptr) {
    return;
  }
  const MetricLabels labels = {{"dc", std::to_string(dc_)}};
  m_shipped_ = metrics->GetCounter("crx_geo_updates_shipped", labels);
  m_ship_batched_ = metrics->GetCounter("crx_geo_ship_batched", labels);
  m_received_ = metrics->GetCounter("crx_geo_updates_received", labels);
  m_applied_ = metrics->GetCounter("crx_geo_updates_applied", labels);
  m_retransmissions_ = metrics->GetCounter("crx_geo_retransmissions", labels);
  m_parked_depth_ = metrics->GetGauge("crx_geo_parked_updates", labels);
  m_replication_lag_ = metrics->GetLatency("crx_geo_replication_lag_us", labels);
  m_visibility_delay_ = metrics->GetLatency("crx_geo_visibility_delay_us", labels);
}

std::string GeoReplicator::VersionKey(const Key& key, const Version& v) {
  ByteWriter w;
  w.PutString(key);
  w.PutVarU64(v.lamport);
  w.PutU16(v.origin);
  return w.Take();
}

void GeoReplicator::OnMessage(Address from, std::string_view payload) {
  (void)from;
  switch (PeekType(payload)) {
    case MsgType::kGeoLocalStable: {
      GeoLocalStable m;
      if (DecodeMessage(payload, &m)) {
        notify_from_ = from;
        HandleLocalStable(m);
      }
      break;
    }
    case MsgType::kGeoShip: {
      GeoShip m;
      if (DecodeMessage(payload, &m)) {
        HandleShip(std::move(m));
      }
      break;
    }
    case MsgType::kGeoShipBatch: {
      // Entries are in channel order; processing them sequentially is
      // identical to receiving the individual GeoShip frames.
      GeoShipBatch m;
      if (DecodeMessage(payload, &m)) {
        for (GeoShip& s : m.ships) {
          HandleShip(std::move(s));
        }
      }
      break;
    }
    case MsgType::kGeoApplied: {
      GeoApplied m;
      if (DecodeMessage(payload, &m)) {
        HandleApplied(m);
      }
      break;
    }
    case MsgType::kCrxStabilityConfirm: {
      CrxStabilityConfirm m;
      if (DecodeMessage(payload, &m)) {
        HandleStabilityConfirm(m);
      }
      break;
    }
    case MsgType::kMemNewMembership: {
      MemNewMembership m;
      if (DecodeMessage(payload, &m)) {
        HandleNewMembership(m);
      }
      break;
    }
    default:
      LOG_WARN("geo replicator dc%u: unexpected message", dc_);
  }
}

void GeoReplicator::HandleLocalStable(const GeoLocalStable& msg) {
  // Ack to the tail so it stops retrying this notification.
  {
    GeoLocalStableAck ack;
    ack.key = msg.key;
    ack.version = msg.version;
    env_->Send(notify_from_, EncodeMessage(ack));
  }
  applied_vv_[msg.key].MergeMax(msg.version.vv);

  // Ack a remote update we injected, now that it is stable here.
  const std::string vk = VersionKey(msg.key, msg.version);
  auto ack_it = pending_acks_.find(vk);
  if (ack_it != pending_acks_.end()) {
    const DcId origin = ack_it->second.origin;
    const uint64_t seq = ack_it->second.channel_seq;
    if (m_visibility_delay_ != nullptr && ack_it->second.received_at != 0) {
      m_visibility_delay_->Record(env_->Now() - ack_it->second.received_at);
    }
    if (msg.trace.active()) {
      TraceContext visible = msg.trace;
      TraceHopAndReport(&visible, trace_sink_, HopKind::kRemoteVisible, dc_, dc_, origin,
                        env_->Now());
    }
    pending_acks_.erase(ack_it);
    updates_applied_++;
    if (m_applied_ != nullptr) {
      m_applied_->Inc();
    }
    GeoApplied applied;
    applied.dest_dc = dc_;
    applied.channel_seq = seq;
    if (origin < peer_by_dc_.size() && peer_by_dc_[origin] != 0) {
      env_->Send(peer_by_dc_[origin], EncodeMessage(applied));
    }
    if (on_remote_visible) {
      on_remote_visible(msg.key, msg.version, env_->Now());
    }
  }

  // Ship locally-originated writes to every peer, exactly once (plus
  // retransmissions until acknowledged).
  if (msg.has_payload && msg.version.origin == dc_ && !shipped_.contains(vk)) {
    shipped_.insert(vk);
    GeoShip ship;
    ship.origin_dc = dc_;
    ship.channel_seq = next_channel_seq_++;
    ship.key = msg.key;
    ship.value = msg.value;
    ship.version = msg.version;
    ship.deps = msg.deps;
    ship.trace = msg.trace;
    uint32_t peer_count = 0;
    for (DcId d = 0; d < peer_by_dc_.size(); ++d) {
      if (d != dc_ && peer_by_dc_[d] != 0) {
        peer_count++;
      }
    }
    TraceHopAndReport(&ship.trace, trace_sink_, HopKind::kGeoShip, dc_, dc_, peer_count,
                      env_->Now());
    std::vector<DcId> peers;
    for (DcId d = 0; d < peer_by_dc_.size(); ++d) {
      if (d != dc_ && peer_by_dc_[d] != 0) {
        SendShip(d, ship);
        peers.push_back(d);
      }
    }
    if (!peers.empty()) {
      updates_shipped_++;
      if (m_shipped_ != nullptr) {
        m_shipped_->Inc();
      }
      events_.Emit(EventKind::kGeoShip, env_->Now(), static_cast<int64_t>(peers.size()),
                   static_cast<int64_t>(dc_));
      PendingGlobal& pg = pending_global_[ship.channel_seq];
      pg.ship = std::move(ship);
      pg.unacked = std::move(peers);
      pg.shipped_at = env_->Now();
      ArmRetransmitTimer();
    } else if (on_global_stable) {
      on_global_stable(msg.key, msg.version, env_->Now(), env_->Now());
    }
  }

  RecheckWaiters(msg.key);
}

void GeoReplicator::SendShip(DcId peer, const GeoShip& ship) {
  if (config_.geo_ship_batch_window <= 0) {
    env_->Send(peer_by_dc_[peer], EncodeMessage(ship));
    return;
  }
  auto [it, first] = pending_ship_batch_.try_emplace(peer);
  it->second.ships.push_back(ship);
  if (m_ship_batched_ != nullptr) {
    m_ship_batched_->Inc();
  }
  if (first) {
    env_->Schedule(config_.geo_ship_batch_window, [this, peer]() { FlushShipBatch(peer); });
  }
}

void GeoReplicator::FlushShipBatch(DcId peer) {
  auto it = pending_ship_batch_.find(peer);
  if (it == pending_ship_batch_.end() || it->second.ships.empty()) {
    pending_ship_batch_.erase(peer);
    return;
  }
  GeoShipBatch batch = std::move(it->second);
  pending_ship_batch_.erase(it);
  if (peer < peer_by_dc_.size() && peer_by_dc_[peer] != 0) {
    env_->Send(peer_by_dc_[peer], EncodeMessage(batch));
  }
}

bool GeoReplicator::DepSatisfied(const Dependency& dep) const {
  if (dep.version.IsNull()) {
    return true;
  }
  auto it = applied_vv_.find(dep.key);
  return it != applied_vv_.end() && it->second.Dominates(dep.version.vv);
}

void GeoReplicator::HandleShip(GeoShip msg) {
  updates_received_++;
  if (m_received_ != nullptr) {
    m_received_->Inc();
  }
  const std::string vk = VersionKey(msg.key, msg.version);

  // Duplicate or already-applied update: ack immediately.
  auto avit = applied_vv_.find(msg.key);
  if (avit != applied_vv_.end() && avit->second.Dominates(msg.version.vv)) {
    pending_acks_.erase(vk);  // the ack below supersedes any pending one
    GeoApplied applied;
    applied.dest_dc = dc_;
    applied.channel_seq = msg.channel_seq;
    if (msg.origin_dc < peer_by_dc_.size() && peer_by_dc_[msg.origin_dc] != 0) {
      env_->Send(peer_by_dc_[msg.origin_dc], EncodeMessage(applied));
    }
    return;
  }

  // Retransmitted duplicate still in flight locally: if it was already
  // injected (e.g. the injection raced a chain reconfiguration), re-inject
  // — the chain deduplicates; if it is dependency-parked, the parked copy
  // will be injected when its dependencies land.
  if (auto dup = pending_acks_.find(vk); dup != pending_acks_.end()) {
    if (!dup->second.parked) {
      Inject(msg);
    }
    return;
  }
  pending_acks_[vk] = PendingAck{msg.origin_dc, msg.channel_seq, false, env_->Now()};

  // A dependency on an older version of the same key is carried by the
  // update itself (its version vector causally includes it); drop such
  // deps so they can never deadlock the update against itself.
  std::erase_if(msg.deps, [&msg](const Dependency& dep) {
    return dep.key == msg.key && msg.version.vv.Dominates(dep.version.vv);
  });

  uint32_t unmet = 0;
  for (const Dependency& dep : msg.deps) {
    if (!DepSatisfied(dep)) {
      unmet++;
    }
  }
  if (unmet == 0) {
    Inject(msg);
    return;
  }

  updates_parked_++;
  pending_acks_[vk].parked = true;
  if (m_parked_depth_ != nullptr) {
    m_parked_depth_->Add(1);
  }
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = waiting_.size();
    waiting_.emplace_back();
  }
  PendingRemote& pr = waiting_[slot];
  pr.unmet_deps = unmet;
  pr.live = true;
  for (const Dependency& dep : msg.deps) {
    if (!DepSatisfied(dep)) {
      waiters_by_dep_[dep.key].push_back(slot);
      ProbeDependency(dep);
    }
  }
  pr.ship = std::move(msg);
}

void GeoReplicator::ProbeDependency(const Dependency& dep) {
  LOG_DEBUG("geo dc%u probing dep %s %s to tail %u", dc_, dep.key.c_str(),
            dep.version.ToString().c_str(), local_ring_.TailFor(dep.key));
  const uint64_t token = next_check_token_++;
  pending_checks_[token] = dep;
  CrxStabilityCheck check;
  check.key = dep.key;
  check.version = dep.version;
  check.token = token;
  env_->Send(local_ring_.TailFor(dep.key), EncodeMessage(check));
  ArmCheckTimer();
}

void GeoReplicator::HandleStabilityConfirm(const CrxStabilityConfirm& msg) {
  LOG_DEBUG("geo dc%u got confirm token=%llu key=%s", dc_,
            (unsigned long long)msg.token, msg.key.c_str());
  auto it = pending_checks_.find(msg.token);
  if (it == pending_checks_.end()) {
    return;
  }
  const Dependency dep = it->second;
  pending_checks_.erase(it);
  applied_vv_[dep.key].MergeMax(dep.version.vv);
  RecheckWaiters(dep.key);
}

void GeoReplicator::ArmCheckTimer() {
  if (check_timer_armed_ || retransmit_interval_ <= 0) {
    return;
  }
  check_timer_armed_ = true;
  env_->Schedule(retransmit_interval_, [this]() {
    check_timer_armed_ = false;
    // Drop probes whose waiters already resolved through the fast path.
    std::erase_if(pending_checks_, [this](const auto& entry) {
      return DepSatisfied(entry.second);
    });
    for (const auto& [token, dep] : pending_checks_) {
      CrxStabilityCheck check;
      check.key = dep.key;
      check.version = dep.version;
      check.token = token;
      env_->Send(local_ring_.TailFor(dep.key), EncodeMessage(check));
    }
    if (!pending_checks_.empty()) {
      ArmCheckTimer();
    }
  });
}

void GeoReplicator::Inject(const GeoShip& ship) {
  auto it = pending_acks_.find(VersionKey(ship.key, ship.version));
  if (it != pending_acks_.end()) {
    it->second.parked = false;
  }
  GeoRemotePut put;
  put.key = ship.key;
  put.value = ship.value;
  put.version = ship.version;
  put.deps = ship.deps;
  put.trace = ship.trace;
  TraceHopAndReport(&put.trace, trace_sink_, HopKind::kGeoInject, dc_, dc_, ship.origin_dc,
                    env_->Now());
  events_.Emit(EventKind::kGeoInject, env_->Now(), 1, static_cast<int64_t>(ship.origin_dc));
  env_->Send(local_ring_.HeadFor(ship.key), EncodeMessage(put));
}

void GeoReplicator::RecheckWaiters(const Key& key) {
  auto it = waiters_by_dep_.find(key);
  if (it == waiters_by_dep_.end()) {
    return;
  }
  std::vector<size_t> slots = std::move(it->second);
  waiters_by_dep_.erase(it);
  std::vector<size_t> still_waiting;
  for (size_t slot : slots) {
    PendingRemote& pr = waiting_[slot];
    if (!pr.live) {
      continue;
    }
    // Conservative recheck: this waiter had >= 1 unmet dep on `key`.
    bool dep_on_key_met = true;
    for (const Dependency& dep : pr.ship.deps) {
      if (dep.key == key && !DepSatisfied(dep)) {
        dep_on_key_met = false;
        break;
      }
    }
    if (!dep_on_key_met) {
      still_waiting.push_back(slot);
      continue;
    }
    if (--pr.unmet_deps == 0) {
      pr.live = false;
      free_slots_.push_back(slot);
      if (m_parked_depth_ != nullptr) {
        m_parked_depth_->Add(-1);
      }
      Inject(pr.ship);
      pr.ship = GeoShip{};  // release memory
    }
  }
  if (!still_waiting.empty()) {
    auto& list = waiters_by_dep_[key];
    list.insert(list.end(), still_waiting.begin(), still_waiting.end());
  }
}

void GeoReplicator::HandleApplied(const GeoApplied& msg) {
  auto it = pending_global_.find(msg.channel_seq);
  if (it == pending_global_.end()) {
    return;
  }
  auto& unacked = it->second.unacked;
  std::erase(unacked, msg.dest_dc);
  if (!unacked.empty()) {
    return;
  }
  const Time now = env_->Now();
  global_stable_delay_.Record(now - it->second.shipped_at);
  if (m_replication_lag_ != nullptr) {
    m_replication_lag_->Record(now - it->second.shipped_at);
  }
  if (on_global_stable) {
    on_global_stable(it->second.ship.key, it->second.ship.version, it->second.shipped_at, now);
  }
  pending_global_.erase(it);
}

void GeoReplicator::ArmRetransmitTimer() {
  if (retransmit_armed_ || retransmit_interval_ <= 0) {
    return;
  }
  retransmit_armed_ = true;
  env_->Schedule(retransmit_interval_, [this]() {
    retransmit_armed_ = false;
    RetransmitUnacked();
    if (!pending_global_.empty()) {
      ArmRetransmitTimer();
    }
  });
}

void GeoReplicator::RetransmitUnacked() {
  for (const auto& [seq, pg] : pending_global_) {
    for (DcId d : pg.unacked) {
      if (d < peer_by_dc_.size() && peer_by_dc_[d] != 0) {
        retransmissions_++;
        if (m_retransmissions_ != nullptr) {
          m_retransmissions_->Inc();
        }
        env_->Send(peer_by_dc_[d], EncodeMessage(pg.ship));
      }
    }
  }
}

void GeoReplicator::HandleNewMembership(const MemNewMembership& msg) {
  if (msg.epoch > local_ring_.epoch()) {
    local_ring_ = Ring(msg.nodes, config_.vnodes, config_.replication, msg.epoch, msg.weights);
  }
}

}  // namespace chainreaction

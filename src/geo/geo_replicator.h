// Per-datacenter geo replicator.
//
// One replicator runs in each DC. Chain tails notify it whenever a version
// becomes DC-Write-Stable locally (GeoLocalStable). The replicator then:
//   * ships locally-originated updates (value + causal dependency list) to
//     every peer DC over a FIFO channel, exactly once per version;
//   * holds incoming remote updates until all of their dependencies are
//     applied in this DC, then injects them at the local chain head
//     (GeoRemotePut) — COPS-style dependency checking;
//   * acknowledges a remote update back to its origin once it is applied
//     and locally stable here; the origin declares the write
//     Global-Write-Stable when every peer has acknowledged.
//
// Convergent conflict handling (the "+" of causal+) happens in the nodes'
// versioned stores via last-writer-wins ordering; the replicator never
// reorders or suppresses conflicting versions.
#ifndef SRC_GEO_GEO_REPLICATOR_H_
#define SRC_GEO_GEO_REPLICATOR_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/core/config.h"
#include "src/msg/message.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ring/ring.h"
#include "src/sim/env.h"

namespace chainreaction {

class GeoReplicator : public Actor {
 public:
  GeoReplicator(DcId dc, CrxConfig config, Ring local_ring);

  void AttachEnv(Env* env) { env_ = env; }

  // Optional observability: replication-lag / visibility-delay histograms
  // and ship/receive counters, labeled by DC; traced updates report their
  // geo hops (ship, inject, remote visibility) to `traces`.
  void AttachObs(MetricsRegistry* metrics, TraceCollector* traces);

  // peer_by_dc[d] = address of DC d's replicator; the local slot is ignored.
  void SetPeers(std::vector<Address> peer_by_dc);

  void OnMessage(Address from, std::string_view payload) override;

  // Hooks for experiments/tests ------------------------------------------
  // A remote-origin update became visible (applied & stable) in this DC.
  std::function<void(const Key&, const Version&, Time now)> on_remote_visible;
  // A locally-originated update became Global-Write-Stable.
  std::function<void(const Key&, const Version&, Time shipped_at, Time now)> on_global_stable;

  // Stats -----------------------------------------------------------------
  uint64_t updates_shipped() const { return updates_shipped_; }
  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t updates_received() const { return updates_received_; }
  uint64_t updates_applied() const { return updates_applied_; }
  uint64_t updates_parked() const { return updates_parked_; }
  size_t waiting_now() const { return waiting_.size() - free_slots_.size(); }
  size_t unacked_shipments() const { return pending_global_.size(); }
  size_t pending_acks() const { return pending_acks_.size(); }
  const Histogram& global_stable_delay() const { return global_stable_delay_; }

  // Flight recorder of this replicator's ship/inject activity.
  FlightRecorder* events() { return &events_; }
  const FlightRecorder* events() const { return &events_; }

 private:
  struct PendingRemote {
    GeoShip ship;
    uint32_t unmet_deps = 0;
    bool live = false;
  };
  struct PendingGlobal {
    GeoShip ship;                    // kept for retransmission
    std::vector<DcId> unacked;       // peers that have not confirmed apply
    Time shipped_at = 0;
  };

  static std::string VersionKey(const Key& key, const Version& v);

  void HandleLocalStable(const GeoLocalStable& msg);
  void HandleShip(GeoShip msg);
  void HandleApplied(const GeoApplied& msg);
  void HandleNewMembership(const MemNewMembership& msg);

  bool DepSatisfied(const Dependency& dep) const;
  void Inject(const GeoShip& ship);
  void RecheckWaiters(const Key& key);

  // Inter-DC channels are made reliable over a lossy network by resending
  // unacknowledged shipments; receivers deduplicate.
  void ArmRetransmitTimer();
  void RetransmitUnacked();

  // Outbound ship path: with geo_ship_batch_window > 0 first shipments are
  // coalesced per peer into one GeoShipBatch per window (channel FIFO order
  // is preserved; retransmissions stay per-entry). 0 sends immediately.
  void SendShip(DcId peer, const GeoShip& ship);
  void FlushShipBatch(DcId peer);

  // Reliable dependency resolution: GeoLocalStable notifications are the
  // fast path, but they can be lost; for every unmet dependency of a parked
  // update the replicator also registers a stability check at the local
  // tail (re-sent periodically until confirmed).
  void ProbeDependency(const Dependency& dep);
  void HandleStabilityConfirm(const CrxStabilityConfirm& msg);
  void ArmCheckTimer();

  DcId dc_;
  CrxConfig config_;
  Env* env_ = nullptr;
  Ring local_ring_;
  std::vector<Address> peer_by_dc_;

  // Causal knowledge: merged vv of every version known applied-and-stable
  // in this DC, per key.
  std::unordered_map<Key, VersionVector> applied_vv_;

  // Outbound.
  uint64_t next_channel_seq_ = 1;
  std::unordered_set<std::string> shipped_;  // dedup by (key, version)
  std::unordered_map<uint64_t, PendingGlobal> pending_global_;
  // Ships awaiting their per-peer batch flush timer (only populated when
  // config_.geo_ship_batch_window > 0).
  std::unordered_map<DcId, GeoShipBatch> pending_ship_batch_;

  // Inbound.
  std::vector<PendingRemote> waiting_;
  std::vector<size_t> free_slots_;
  std::unordered_map<Key, std::vector<size_t>> waiters_by_dep_;
  // Remote updates accepted but not yet locally stable, keyed by
  // (key, version). `parked` distinguishes dependency-parked updates from
  // injected ones (a retransmitted duplicate of an injected update is
  // re-injected; the chain deduplicates).
  struct PendingAck {
    DcId origin = 0;
    uint64_t channel_seq = 0;
    bool parked = false;
    // When the shipment arrived here; visibility delay = stable time - this.
    Time received_at = 0;
  };
  std::unordered_map<std::string, PendingAck> pending_acks_;

  Duration retransmit_interval_ = 250 * kMillisecond;
  bool retransmit_armed_ = false;
  Address notify_from_ = 0;  // tail that sent the notification being handled

  // Outstanding dependency stability probes: token -> dependency.
  std::unordered_map<uint64_t, Dependency> pending_checks_;
  uint64_t next_check_token_ = 1;
  bool check_timer_armed_ = false;

  uint64_t updates_shipped_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t updates_received_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t updates_parked_ = 0;
  Histogram global_stable_delay_;

  // Observability (all null until AttachObs).
  TraceCollector* trace_sink_ = nullptr;
  Counter* m_shipped_ = nullptr;
  Counter* m_ship_batched_ = nullptr;
  Counter* m_received_ = nullptr;
  Counter* m_applied_ = nullptr;
  Counter* m_retransmissions_ = nullptr;
  Gauge* m_parked_depth_ = nullptr;
  LatencyMetric* m_replication_lag_ = nullptr;
  LatencyMetric* m_visibility_delay_ = nullptr;
  FlightRecorder events_;
};

}  // namespace chainreaction

#endif  // SRC_GEO_GEO_REPLICATOR_H_

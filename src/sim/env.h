// Runtime environment seen by protocol actors.
//
// All protocol logic (chain nodes, clients, geo replicators) is written
// against this narrow interface so the exact same code runs on
//   * the deterministic discrete-event simulator (src/sim), and
//   * the real TCP transport (src/net).
#ifndef SRC_SIM_ENV_H_
#define SRC_SIM_ENV_H_

#include <functional>
#include <string>
#include <string_view>

#include "src/common/payload.h"
#include "src/common/types.h"

namespace chainreaction {

class Env {
 public:
  virtual ~Env() = default;

  // Current time in microseconds (simulated or wall clock).
  virtual Time Now() = 0;

  // Asynchronously delivers `payload` to `dst`. Links are reliable and FIFO
  // per (src, dst) pair unless the simulation injects faults. A std::string
  // converts implicitly (owned, one move); fan-out senders pass a shared
  // Payload so one encoded frame serves every destination (DESIGN.md §15).
  virtual void Send(Address dst, Payload payload) = 0;

  // Runs `fn` after `delay`. Returns a timer id usable with CancelTimer.
  virtual uint64_t Schedule(Duration delay, std::function<void()> fn) = 0;
  virtual void CancelTimer(uint64_t timer_id) = 0;
};

// An actor receives messages addressed to it. Implementations must not block.
class Actor {
 public:
  virtual ~Actor() = default;
  // `payload` aliases the transport's receive buffer and is valid ONLY for
  // the duration of the call: decode what you need, copy what you keep.
  // This is what lets both transports deliver frames without a per-message
  // heap copy (DESIGN.md §15).
  virtual void OnMessage(Address from, std::string_view payload) = 0;
};

}  // namespace chainreaction

#endif  // SRC_SIM_ENV_H_

// Deterministic discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in insertion order, which (together with Rng-driven
// randomness) makes every run a pure function of its seed.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace chainreaction {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time Now() const { return now_; }

  // Schedules `fn` at now + delay (delay >= 0). Returns a cancellable id.
  uint64_t Schedule(Duration delay, std::function<void()> fn);
  uint64_t ScheduleAt(Time at, std::function<void()> fn);
  void Cancel(uint64_t event_id);

  // Runs a single event. Returns false when the queue is empty.
  bool Step();

  // Runs until the queue drains or `max_events` fire.
  void Run(uint64_t max_events = UINT64_MAX);

  // Runs events with timestamp <= deadline (inclusive); the clock ends at
  // exactly `deadline` even if the queue drained earlier.
  void RunUntil(Time deadline);

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time at;
    uint64_t seq;
    uint64_t id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;  // min-heap on time
      }
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace chainreaction

#endif  // SRC_SIM_SIMULATOR_H_

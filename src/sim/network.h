// Simulated message-passing network with latency, queueing, and faults.
//
// The model:
//  * Every actor (server node, client, membership service, geo replicator)
//    registers under a unique Address and belongs to a site (datacenter).
//  * A message from src to dst experiences a one-way network latency drawn
//    from the link's (base, jitter) pair: intra-site links use one config,
//    inter-site links use a per-pair matrix (WAN).
//  * Links are FIFO per (src, dst) — the standard assumption of chain
//    replication — enforced even under jitter.
//  * Each actor is a single-threaded server with an exponential(ish) service
//    time per message: an arriving message waits until the actor is free,
//    occupies it for `base + per_byte * size` (+ optional exponential
//    jitter), and its effects (sends) happen at completion. This queueing is
//    what makes simulated throughput saturate and lets the read
//    load-balancing of ChainReaction show up as real throughput gains.
//  * Faults: message drop probability, site or pairwise partitions, and
//    actor crashes.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/payload.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/sim/env.h"
#include "src/sim/simulator.h"

namespace chainreaction {

using SiteId = uint16_t;

struct LinkModel {
  Duration base = 100;    // one-way latency, microseconds
  Duration jitter = 20;   // uniform extra in [0, jitter]
};

struct ServiceModel {
  Duration base = 0;          // fixed cost per inbound message, microseconds
  double per_byte = 0.0;      // additional microseconds per inbound payload byte
  Duration jitter_mean = 0;   // exponential extra with this mean (0 = none)
  // Egress serialization cost: sending a message occupies the sender for
  // base_out + per_byte_out * size before it departs. This is what makes a
  // read-serving replica pay for the value bytes it returns.
  Duration base_out = 0;
  double per_byte_out = 0.0;
};

struct NetworkConfig {
  LinkModel intra_site{100, 20};
  LinkModel default_inter_site{80 * kMillisecond, 2 * kMillisecond};
  double drop_probability = 0.0;
};

class SimNetwork {
 public:
  SimNetwork(Simulator* sim, NetworkConfig config, uint64_t seed);
  ~SimNetwork();

  // Registers `actor` at `addr` in `site`. The returned Env remains owned by
  // the network and is valid for its lifetime.
  Env* Register(Address addr, Actor* actor, SiteId site, ServiceModel service = {});
  void Unregister(Address addr);

  // Overrides the latency of the (a, b) site pair in both directions.
  void SetInterSiteLatency(SiteId a, SiteId b, LinkModel link);

  void Send(Address src, Address dst, Payload payload);

  // Fault injection --------------------------------------------------------
  void Crash(Address addr);       // silently drops all traffic to/from addr
  void Restore(Address addr);
  bool IsCrashed(Address addr) const { return crashed_.contains(addr); }

  void PartitionSites(SiteId a, SiteId b);   // drop all a<->b traffic
  void HealSites(SiteId a, SiteId b);

  // Optional observability: mirrors delivered/dropped/bytes into transport
  // counters so network totals appear alongside protocol metrics.
  void AttachMetrics(MetricsRegistry* metrics);

  // Introspection ----------------------------------------------------------
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Bytes sent per leading u16 frame tag (the message-type word, including
  // any format flag bits — mask at the consumer). Lets benchmarks break a
  // byte total down by message kind without the network layer knowing the
  // message schema.
  const std::unordered_map<uint16_t, uint64_t>& bytes_by_tag() const { return bytes_by_tag_; }
  uint64_t MessagesProcessedBy(Address addr) const;
  Simulator* simulator() { return sim_; }

 private:
  friend class SimEnv;

  struct Endpoint;

  Duration SampleLatency(SiteId from, SiteId to);
  void Deliver(Address src, Address dst, Payload payload);
  void CountDrop() {
    messages_dropped_++;
    if (m_dropped_ != nullptr) {
      m_dropped_->Inc();
    }
  }

  Simulator* sim_;
  NetworkConfig config_;
  Rng rng_;
  std::unordered_map<Address, std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::pair<SiteId, SiteId>, LinkModel> inter_site_;
  std::unordered_set<Address> crashed_;
  std::unordered_set<uint64_t> partitioned_site_pairs_;  // encoded (min<<16)|max
  std::map<std::pair<Address, Address>, Time> last_arrival_;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  std::unordered_map<uint16_t, uint64_t> bytes_by_tag_;

  // Observability (null until AttachMetrics).
  Counter* m_delivered_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Counter* m_bytes_ = nullptr;
};

}  // namespace chainreaction

#endif  // SRC_SIM_NETWORK_H_

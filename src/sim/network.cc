#include "src/sim/network.h"

#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

namespace {
uint64_t SitePairKey(SiteId a, SiteId b) {
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<uint64_t>(a) << 16) | b;
}
}  // namespace

// Env implementation bound to one registered actor.
class SimEnv : public Env {
 public:
  SimEnv(SimNetwork* net, Address self) : net_(net), self_(self) {}

  Time Now() override { return net_->sim_->Now(); }

  void Send(Address dst, Payload payload) override {
    net_->Send(self_, dst, std::move(payload));
  }

  uint64_t Schedule(Duration delay, std::function<void()> fn) override {
    // Timers die with the actor: a crashed node must not wake up.
    const Address self = self_;
    SimNetwork* net = net_;
    return net_->sim_->Schedule(delay, [net, self, fn = std::move(fn)]() {
      if (!net->IsCrashed(self)) {
        fn();
      }
    });
  }

  void CancelTimer(uint64_t timer_id) override { net_->sim_->Cancel(timer_id); }

 private:
  SimNetwork* net_;
  Address self_;
};

struct SimNetwork::Endpoint {
  Actor* actor = nullptr;
  SiteId site = 0;
  ServiceModel service;
  Time busy_until = 0;
  uint64_t processed = 0;
  std::unique_ptr<SimEnv> env;
};

SimNetwork::SimNetwork(Simulator* sim, NetworkConfig config, uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {}

SimNetwork::~SimNetwork() = default;

void SimNetwork::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  const MetricLabels labels = {{"transport", "sim"}};
  m_delivered_ = metrics->GetCounter("crx_net_messages_delivered", labels);
  m_dropped_ = metrics->GetCounter("crx_net_messages_dropped", labels);
  m_bytes_ = metrics->GetCounter("crx_net_bytes_sent", labels);
}

Env* SimNetwork::Register(Address addr, Actor* actor, SiteId site, ServiceModel service) {
  CHAINRX_CHECK(!endpoints_.contains(addr));
  auto ep = std::make_unique<Endpoint>();
  ep->actor = actor;
  ep->site = site;
  ep->service = service;
  ep->env = std::make_unique<SimEnv>(this, addr);
  Env* env = ep->env.get();
  endpoints_.emplace(addr, std::move(ep));
  return env;
}

void SimNetwork::Unregister(Address addr) { endpoints_.erase(addr); }

void SimNetwork::SetInterSiteLatency(SiteId a, SiteId b, LinkModel link) {
  inter_site_[{std::min(a, b), std::max(a, b)}] = link;
}

Duration SimNetwork::SampleLatency(SiteId from, SiteId to) {
  LinkModel link;
  if (from == to) {
    link = config_.intra_site;
  } else {
    auto it = inter_site_.find({std::min(from, to), std::max(from, to)});
    link = it != inter_site_.end() ? it->second : config_.default_inter_site;
  }
  Duration jitter = link.jitter > 0 ? static_cast<Duration>(rng_.NextBelow(
                                          static_cast<uint64_t>(link.jitter) + 1))
                                    : 0;
  return link.base + jitter;
}

void SimNetwork::Send(Address src, Address dst, Payload payload) {
  auto src_it = endpoints_.find(src);
  auto dst_it = endpoints_.find(dst);
  if (src_it == endpoints_.end() || dst_it == endpoints_.end()) {
    CountDrop();
    return;
  }
  if (crashed_.contains(src) || crashed_.contains(dst)) {
    CountDrop();
    return;
  }
  const SiteId s_from = src_it->second->site;
  const SiteId s_to = dst_it->second->site;
  if (s_from != s_to && partitioned_site_pairs_.contains(SitePairKey(s_from, s_to))) {
    CountDrop();
    return;
  }
  if (config_.drop_probability > 0 && rng_.NextBool(config_.drop_probability)) {
    CountDrop();
    return;
  }

  bytes_sent_ += payload.size();
  if (payload.size() >= 2) {
    const std::string_view bytes = payload.view();
    const uint16_t tag = static_cast<uint16_t>(static_cast<uint8_t>(bytes[0]) |
                                               (static_cast<uint8_t>(bytes[1]) << 8));
    bytes_by_tag_[tag] += payload.size();
  }
  if (m_bytes_ != nullptr) {
    m_bytes_->Inc(payload.size());
  }

  // Egress cost: the message departs once the sender finished serializing
  // it (serially with its other work).
  Endpoint* src_ep = src_it->second.get();
  Time depart = sim_->Now();
  const Duration out_cost =
      src_ep->service.base_out +
      static_cast<Duration>(src_ep->service.per_byte_out * static_cast<double>(payload.size()));
  if (out_cost > 0) {
    depart = std::max(depart, src_ep->busy_until) + out_cost;
    src_ep->busy_until = depart;
  }
  Time arrive = depart + SampleLatency(s_from, s_to);

  // Enforce per-link FIFO delivery (chain replication's channel assumption).
  Time& last = last_arrival_[{src, dst}];
  if (arrive < last) {
    arrive = last;
  }
  last = arrive;

  sim_->ScheduleAt(arrive, [this, src, dst, payload = std::move(payload)]() mutable {
    Deliver(src, dst, std::move(payload));
  });
}

void SimNetwork::Deliver(Address src, Address dst, Payload payload) {
  auto it = endpoints_.find(dst);
  if (it == endpoints_.end() || crashed_.contains(dst)) {
    CountDrop();
    return;
  }
  Endpoint* ep = it->second.get();

  // Single-server queueing: the message waits for the actor to become free,
  // occupies it for the service time, and takes effect at completion.
  const Time now = sim_->Now();
  const Time start = std::max(now, ep->busy_until);
  Duration service = ep->service.base +
                     static_cast<Duration>(ep->service.per_byte * static_cast<double>(payload.size()));
  if (ep->service.jitter_mean > 0) {
    service += static_cast<Duration>(rng_.NextExponential(
        static_cast<double>(ep->service.jitter_mean)));
  }
  const Time done = start + service;
  ep->busy_until = done;

  sim_->ScheduleAt(done, [this, src, dst, payload = std::move(payload)]() {
    auto it2 = endpoints_.find(dst);
    if (it2 == endpoints_.end() || crashed_.contains(dst)) {
      CountDrop();
      return;
    }
    messages_delivered_++;
    if (m_delivered_ != nullptr) {
      m_delivered_->Inc();
    }
    it2->second->processed++;
    it2->second->actor->OnMessage(src, payload.view());
  });
}

void SimNetwork::Crash(Address addr) { crashed_.insert(addr); }

void SimNetwork::Restore(Address addr) { crashed_.erase(addr); }

void SimNetwork::PartitionSites(SiteId a, SiteId b) {
  partitioned_site_pairs_.insert(SitePairKey(a, b));
}

void SimNetwork::HealSites(SiteId a, SiteId b) {
  partitioned_site_pairs_.erase(SitePairKey(a, b));
}

uint64_t SimNetwork::MessagesProcessedBy(Address addr) const {
  auto it = endpoints_.find(addr);
  return it == endpoints_.end() ? 0 : it->second->processed;
}

}  // namespace chainreaction

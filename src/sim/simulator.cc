#include "src/sim/simulator.h"

#include <utility>

#include "src/common/result.h"

namespace chainreaction {

uint64_t Simulator::Schedule(Duration delay, std::function<void()> fn) {
  CHAINRX_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

uint64_t Simulator::ScheduleAt(Time at, std::function<void()> fn) {
  CHAINRX_CHECK(at >= now_);
  const uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::Cancel(uint64_t event_id) { cancelled_.insert(event_id); }

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    events_executed_++;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!Step()) {
      return;
    }
  }
}

void Simulator::RunUntil(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace chainreaction

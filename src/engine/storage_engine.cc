#include "src/engine/storage_engine.h"

namespace chainreaction {

const char* StorageEngineKindName(StorageEngineKind kind) {
  switch (kind) {
    case StorageEngineKind::kMem:
      return "mem";
    case StorageEngineKind::kDisk:
      return "disk";
  }
  return "?";
}

bool ParseStorageEngineKind(const std::string& s, StorageEngineKind* out) {
  if (s == "mem") {
    *out = StorageEngineKind::kMem;
    return true;
  }
  if (s == "disk") {
    *out = StorageEngineKind::kDisk;
    return true;
  }
  return false;
}

namespace {

// Values stay inline in the store; every engine operation is a no-op. The
// append counter still ticks so stats stay comparable across engines.
class MemEngine final : public StorageEngine {
 public:
  StorageEngineKind kind() const override { return StorageEngineKind::kMem; }
  bool inline_values() const override { return true; }

  ValueHandle Append(const Key&, const Version&, std::string_view) override {
    appends_++;
    return ValueHandle{};
  }

  Status Read(const ValueHandle&, Value*) override {
    return Status::Internal("mem engine holds no values");
  }

  void Release(const ValueHandle&) override {}
  bool AdoptLive(const ValueHandle& handle) override { return !handle.valid(); }
  Status Flush() override { return Status::Ok(); }
  bool MaybeCompact(const RemapFn&) override { return false; }
  void PurgeDeadSegments() override {}

  void GetManifest(uint64_t* active_segment, uint64_t* active_size) const override {
    *active_segment = 0;
    *active_size = 0;
  }
  Status TruncateTo(uint64_t, uint64_t) override { return Status::Ok(); }

  StorageEngineStats Stats() const override {
    StorageEngineStats s;
    s.appends = appends_;
    return s;
  }

 private:
  uint64_t appends_ = 0;
};

}  // namespace

std::unique_ptr<StorageEngine> MakeMemEngine() {
  return std::make_unique<MemEngine>();
}

}  // namespace chainreaction

// Pluggable value-storage engines under VersionedStore.
//
// A StorageEngine owns the *bytes* of values; VersionedStore keeps the
// versioned index (key → ordered versions, causal bookkeeping) and asks the
// engine to store and fetch value payloads. Two implementations:
//
//   * MemEngine  — values live inline in the store's index entries, exactly
//     the pre-engine behavior (the engine itself holds nothing). This is the
//     default; attaching it is a zero-cost no-op path.
//   * DiskEngine — a FAWN-DS-style append-only value log: a directory of
//     length-prefixed, CRC'd record segments. The store's index maps
//     (key, version) → ValueHandle (segment, offset, length); reads are one
//     pread + checksum verify. Sealed segments whose dead fraction crosses a
//     threshold are compacted by copying live records forward; fully dead
//     segments are deleted only after the next successful checkpoint, so an
//     older on-disk checkpoint never references a missing segment (the same
//     deferred-truncation protocol the WAL uses).
//
// Threading: engines are single-threaded like the store that owns them —
// every call happens on the owning node's actor thread.
#ifndef SRC_ENGINE_STORAGE_ENGINE_H_
#define SRC_ENGINE_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/common/version.h"

namespace chainreaction {

enum class StorageEngineKind : uint8_t {
  kMem = 0,
  kDisk = 1,
};

const char* StorageEngineKindName(StorageEngineKind kind);
// Parses "mem" | "disk" (as used by --engine flags).
bool ParseStorageEngineKind(const std::string& s, StorageEngineKind* out);

// Locates one value record in the engine's log. segment == 0 means "no
// handle" (segments are numbered from 1): the value lives inline in the
// store and the engine was never involved.
struct ValueHandle {
  uint64_t segment = 0;
  uint64_t offset = 0;
  uint32_t length = 0;  // full framed record length, including prefix + crc

  bool valid() const { return segment != 0; }
};

struct StorageEngineStats {
  uint64_t log_bytes = 0;        // total bytes across all segments
  uint64_t live_bytes = 0;       // bytes still referenced by the index
  uint64_t segments = 0;
  uint64_t appends = 0;
  uint64_t reads = 0;            // engine reads (store cache misses)
  uint64_t compactions = 0;      // segments compacted
  uint64_t compacted_bytes = 0;  // live bytes carried forward by compaction
  uint64_t purged_segments = 0;  // dead segments deleted after checkpoints
};

class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  virtual StorageEngineKind kind() const = 0;

  // True if values stay inline in the store's index entries and the engine
  // is a pass-through (MemEngine). The store skips handle/cache bookkeeping
  // entirely for such engines.
  virtual bool inline_values() const = 0;

  // Appends one value record to the log and returns its handle. For inline
  // engines this is a no-op returning an invalid handle. `value` may alias a
  // transport receive buffer (the zero-copy put path) and is only guaranteed
  // valid for the duration of the call.
  virtual ValueHandle Append(const Key& key, const Version& version,
                             std::string_view value) = 0;

  // Reads the value a handle points at, verifying the record checksum.
  virtual Status Read(const ValueHandle& handle, Value* out) = 0;

  // Marks a record dead (its index entry was GC'd). Space is reclaimed by
  // compaction, not immediately.
  virtual void Release(const ValueHandle& handle) = 0;

  // Re-registers a handle as live during checkpoint recovery. Returns false
  // if the handle does not fall inside an existing segment.
  virtual bool AdoptLive(const ValueHandle& handle) = 0;

  // fsyncs the active segment so every handle returned so far is durable.
  // Called before a checkpoint captures the manifest.
  virtual Status Flush() = 0;

  // Invoked once for every live record compaction moves, so the owner can
  // repoint its index at the new handle.
  using RemapFn = std::function<void(const Key& key, const Version& version,
                                     const ValueHandle& old_handle,
                                     const ValueHandle& new_handle)>;

  // Compacts at most one sealed segment whose dead fraction exceeds the
  // configured threshold, copying live records to the active segment.
  // Returns true if a segment was compacted.
  virtual bool MaybeCompact(const RemapFn& remap) = 0;

  // Deletes sealed segments with no live records. Callers must invoke this
  // only after a checkpoint that no longer references those segments has
  // been durably written (see file comment).
  virtual void PurgeDeadSegments() = 0;

  // Checkpoint manifest: the active segment and its current size. Replaying
  // recovery truncates back to exactly this point (TruncateTo) before
  // re-adopting handles, discarding post-checkpoint appends that the WAL
  // tail will re-create.
  virtual void GetManifest(uint64_t* active_segment, uint64_t* active_size) const = 0;
  virtual Status TruncateTo(uint64_t segment, uint64_t size) = 0;

  virtual StorageEngineStats Stats() const = 0;
};

// The inline (historical) engine. Never fails, stores nothing.
std::unique_ptr<StorageEngine> MakeMemEngine();

struct DiskEngineOptions {
  uint64_t segment_bytes = 8u << 20;
  // A sealed segment is compacted when dead_bytes / total_bytes >= this.
  double compact_garbage_ratio = 0.5;
};

// Opens (creating if needed) a value log in `dir`. Existing segments are
// scanned and reopened read-only-live; appends go to a fresh segment
// numbered one past the newest on disk.
Status OpenDiskEngine(const std::string& dir, const DiskEngineOptions& options,
                      std::unique_ptr<StorageEngine>* out);

}  // namespace chainreaction

#endif  // SRC_ENGINE_STORAGE_ENGINE_H_

#include "src/engine/log_record.h"

#include "src/common/hash.h"

namespace chainreaction {

uint32_t EncodeVlogRecord(const Key& key, const Version& version,
                          std::string_view value, std::string* out) {
  ByteWriter payload;
  payload.PutU8(kVlogRecordTag);
  payload.PutString(key);
  version.Encode(&payload);
  payload.PutStringView(value);

  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(8 + payload.size()));
  frame.PutU64(Fnv1a64(payload.data()));
  out->append(frame.data());
  out->append(payload.data());
  return static_cast<uint32_t>(frame.size() + payload.size());
}

bool DecodeVlogRecord(std::string_view bytes, VlogRecord* out) {
  ByteReader r(bytes.data(), bytes.size());
  uint32_t frame_len = 0;
  uint64_t crc = 0;
  if (!r.GetU32(&frame_len) || !r.GetU64(&crc)) {
    return false;
  }
  if (frame_len < 8 || static_cast<uint64_t>(frame_len) + 4 != bytes.size()) {
    return false;
  }
  const std::string_view payload = bytes.substr(12);
  if (Fnv1a64(payload) != crc) {
    return false;
  }
  ByteReader p(payload.data(), payload.size());
  uint8_t tag = 0;
  if (!p.GetU8(&tag) || tag != kVlogRecordTag) {
    return false;
  }
  VlogRecord rec;
  if (!p.GetString(&rec.key) || !rec.version.Decode(&p) || !p.GetString(&rec.value)) {
    return false;
  }
  if (!p.AtEnd()) {
    return false;
  }
  *out = std::move(rec);
  return true;
}

}  // namespace chainreaction

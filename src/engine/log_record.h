// Value-log record framing — the disk engine's on-disk unit.
//
// A record is [u32 frame_len][u64 crc][payload] where frame_len counts the
// crc field plus the payload, crc is FNV-1a over the payload bytes, and the
// payload is:
//
//   u8  tag (kVlogRecordTag)
//   key       (u32 length-prefixed string)
//   version   (Version::Encode)
//   value     (u32 length-prefixed string)
//
// The key and version ride along so a compactor (or offline scavenger) can
// identify a record without consulting the index, mirroring FAWN-DS log
// entries. Exposed as free functions so tests can fuzz the decoder in the
// msg_test idiom.
#ifndef SRC_ENGINE_LOG_RECORD_H_
#define SRC_ENGINE_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/types.h"
#include "src/common/version.h"

namespace chainreaction {

constexpr uint8_t kVlogRecordTag = 1;

struct VlogRecord {
  Key key;
  Version version;
  Value value;
};

// Appends the full framed record (prefix + crc + payload) to `out` and
// returns the framed length.
uint32_t EncodeVlogRecord(const Key& key, const Version& version,
                          std::string_view value, std::string* out);

// Decodes one framed record from `bytes` (which must be exactly one frame,
// as read back via a handle's offset/length). Verifies the length prefix,
// checksum, and payload shape. Returns false on any mismatch; never crashes
// on arbitrary bytes.
bool DecodeVlogRecord(std::string_view bytes, VlogRecord* out);

}  // namespace chainreaction

#endif  // SRC_ENGINE_LOG_RECORD_H_

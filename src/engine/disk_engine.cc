#include "src/engine/disk_engine.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/common/logging.h"
#include "src/engine/log_record.h"

namespace chainreaction {

DiskEngine::DiskEngine(std::string dir, DiskEngineOptions options)
    : dir_(std::move(dir)), options_(options) {}

DiskEngine::~DiskEngine() {
  for (auto& [seq, seg] : segments_) {
    if (seg.fd >= 0) {
      ::close(seg.fd);
    }
  }
}

std::string DiskEngine::SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "vlog-%06" PRIu64 ".dat", seq);
  return buf;
}

std::string DiskEngine::SegmentPath(uint64_t seq) const {
  return dir_ + "/" + SegmentFileName(seq);
}

Status DiskEngine::OpenActive(uint64_t seq) {
  const std::string path = SegmentPath(seq);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create vlog segment: " + path);
  }
  Segment seg;
  seg.fd = fd;
  segments_[seq] = std::move(seg);
  active_seq_ = seq;
  return Status::Ok();
}

ValueHandle DiskEngine::Append(const Key& key, const Version& version,
                               std::string_view value) {
  std::string bytes;
  EncodeVlogRecord(key, version, value, &bytes);
  ValueHandle h;
  const Status st = AppendRaw(bytes, &h);
  if (!st.ok()) {
    // Out of disk / fd trouble is not survivable for a storage node.
    LOG_ERROR("vlog append failed: %s", st.ToString().c_str());
    std::abort();
  }
  appends_++;
  return h;
}

Status DiskEngine::AppendRaw(const std::string& bytes, ValueHandle* out) {
  Segment& active = segments_[active_seq_];
  const uint64_t offset = active.bytes;
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::pwrite(active.fd, bytes.data() + done, bytes.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::Internal("vlog pwrite failed on segment " +
                              std::to_string(active_seq_));
    }
    done += static_cast<size_t>(n);
  }
  active.bytes += bytes.size();
  active.live[offset] = static_cast<uint32_t>(bytes.size());
  active.live_bytes += bytes.size();
  *out = ValueHandle{active_seq_, offset, static_cast<uint32_t>(bytes.size())};
  if (active.bytes >= options_.segment_bytes) {
    SealActiveLocked();
  }
  return Status::Ok();
}

void DiskEngine::SealActiveLocked() {
  Segment& active = segments_[active_seq_];
  ::fsync(active.fd);
  active.sealed = true;
  const Status st = OpenActive(active_seq_ + 1);
  if (!st.ok()) {
    LOG_ERROR("vlog seal/rotate failed: %s", st.ToString().c_str());
    std::abort();
  }
}

Status DiskEngine::Read(const ValueHandle& handle, Value* out) {
  auto it = segments_.find(handle.segment);
  if (it == segments_.end()) {
    return Status::Corruption("vlog read from missing segment " +
                              std::to_string(handle.segment));
  }
  std::string bytes(handle.length, '\0');
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::pread(it->second.fd, bytes.data() + done, bytes.size() - done,
                              static_cast<off_t>(handle.offset + done));
    if (n < 0) {
      return Status::Internal("vlog pread failed on segment " +
                              std::to_string(handle.segment));
    }
    if (n == 0) {
      return Status::Corruption("vlog read past end of segment " +
                                std::to_string(handle.segment));
    }
    done += static_cast<size_t>(n);
  }
  VlogRecord rec;
  if (!DecodeVlogRecord(bytes, &rec)) {
    return Status::Corruption("vlog record checksum mismatch in segment " +
                              std::to_string(handle.segment));
  }
  reads_++;
  *out = std::move(rec.value);
  return Status::Ok();
}

void DiskEngine::Release(const ValueHandle& handle) {
  auto it = segments_.find(handle.segment);
  if (it == segments_.end()) {
    return;
  }
  auto live_it = it->second.live.find(handle.offset);
  if (live_it != it->second.live.end()) {
    it->second.live_bytes -= live_it->second;
    it->second.live.erase(live_it);
  }
}

bool DiskEngine::AdoptLive(const ValueHandle& handle) {
  auto it = segments_.find(handle.segment);
  if (it == segments_.end()) {
    return false;
  }
  Segment& seg = it->second;
  if (handle.offset + handle.length > seg.bytes) {
    return false;
  }
  auto [live_it, inserted] = seg.live.emplace(handle.offset, handle.length);
  if (inserted) {
    seg.live_bytes += handle.length;
  }
  return true;
}

Status DiskEngine::Flush() {
  auto it = segments_.find(active_seq_);
  if (it != segments_.end() && ::fsync(it->second.fd) != 0) {
    return Status::Internal("vlog fsync failed on active segment");
  }
  return Status::Ok();
}

bool DiskEngine::MaybeCompact(const RemapFn& remap) {
  // Pick the oldest sealed segment whose dead fraction crosses the
  // threshold. Fully dead segments are skipped — they cost nothing to keep
  // until PurgeDeadSegments unlinks them after the next checkpoint.
  uint64_t victim_seq = 0;
  for (const auto& [seq, seg] : segments_) {
    if (!seg.sealed || seg.bytes == 0 || seg.live.empty()) {
      continue;
    }
    const double dead = static_cast<double>(seg.bytes - seg.live_bytes) /
                        static_cast<double>(seg.bytes);
    if (dead >= options_.compact_garbage_ratio) {
      victim_seq = seq;
      break;
    }
  }
  if (victim_seq == 0) {
    return false;
  }

  Segment& victim = segments_[victim_seq];
  std::vector<std::pair<uint64_t, uint32_t>> live(victim.live.begin(), victim.live.end());
  uint64_t moved = 0;
  for (const auto& [offset, length] : live) {
    const ValueHandle old_handle{victim_seq, offset, length};
    std::string bytes(length, '\0');
    size_t done = 0;
    bool ok = true;
    while (done < bytes.size()) {
      const ssize_t n = ::pread(victim.fd, bytes.data() + done, bytes.size() - done,
                                static_cast<off_t>(offset + done));
      if (n <= 0) {
        ok = false;
        break;
      }
      done += static_cast<size_t>(n);
    }
    VlogRecord rec;
    if (!ok || !DecodeVlogRecord(bytes, &rec)) {
      LOG_ERROR("vlog compaction hit a corrupt record in segment %" PRIu64
                " at offset %" PRIu64,
                victim_seq, offset);
      std::abort();
    }
    ValueHandle new_handle;
    const Status st = AppendRaw(bytes, &new_handle);
    if (!st.ok()) {
      LOG_ERROR("vlog compaction append failed: %s", st.ToString().c_str());
      std::abort();
    }
    remap(rec.key, rec.version, old_handle, new_handle);
    moved += length;
  }
  // Everything live was carried forward; the victim is now fully dead and
  // will be unlinked after the next checkpoint.
  victim.live.clear();
  victim.live_bytes = 0;
  compactions_++;
  compacted_bytes_ += moved;
  return true;
}

void DiskEngine::PurgeDeadSegments() {
  for (auto it = segments_.begin(); it != segments_.end();) {
    Segment& seg = it->second;
    if (it->first != active_seq_ && seg.sealed && seg.live.empty()) {
      ::close(seg.fd);
      std::remove(SegmentPath(it->first).c_str());
      purged_segments_++;
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
}

void DiskEngine::GetManifest(uint64_t* active_segment, uint64_t* active_size) const {
  *active_segment = active_seq_;
  auto it = segments_.find(active_seq_);
  *active_size = it == segments_.end() ? 0 : it->second.bytes;
}

Status DiskEngine::TruncateTo(uint64_t segment, uint64_t size) {
  auto it = segments_.find(segment);
  if (it == segments_.end()) {
    return Status::Corruption("vlog manifest names missing segment " +
                              std::to_string(segment));
  }
  if (size > it->second.bytes) {
    return Status::Corruption("vlog manifest size past end of segment " +
                              std::to_string(segment));
  }
  // Segments newer than the manifest hold only post-checkpoint appends the
  // WAL tail will re-create; drop them entirely.
  for (auto newer = std::next(it); newer != segments_.end();) {
    ::close(newer->second.fd);
    std::remove(SegmentPath(newer->first).c_str());
    newer = segments_.erase(newer);
  }
  Segment& seg = it->second;
  if (::ftruncate(seg.fd, static_cast<off_t>(size)) != 0) {
    return Status::Internal("vlog ftruncate failed on segment " +
                            std::to_string(segment));
  }
  seg.bytes = size;
  seg.sealed = false;
  seg.live.clear();
  seg.live_bytes = 0;
  active_seq_ = segment;
  return Status::Ok();
}

StorageEngineStats DiskEngine::Stats() const {
  StorageEngineStats s;
  for (const auto& [seq, seg] : segments_) {
    s.log_bytes += seg.bytes;
    s.live_bytes += seg.live_bytes;
    s.segments++;
  }
  s.appends = appends_;
  s.reads = reads_;
  s.compactions = compactions_;
  s.compacted_bytes = compacted_bytes_;
  s.purged_segments = purged_segments_;
  return s;
}

Status OpenDiskEngine(const std::string& dir, const DiskEngineOptions& options,
                      std::unique_ptr<StorageEngine>* out) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create vlog dir: " + dir);
  }
  auto engine = std::unique_ptr<DiskEngine>(new DiskEngine(dir, options));

  // Reopen existing segments as sealed; recovery (checkpoint manifest →
  // TruncateTo → AdoptLive) decides which bytes in them are live.
  uint64_t newest = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (std::sscanf(name.c_str(), "vlog-%" SCNu64 ".dat", &seq) != 1 || seq == 0) {
      continue;
    }
    const int fd = ::open(entry.path().c_str(), O_RDWR);
    if (fd < 0) {
      return Status::Internal("cannot open vlog segment: " + name);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::Internal("cannot stat vlog segment: " + name);
    }
    DiskEngine::Segment seg;
    seg.fd = fd;
    seg.bytes = static_cast<uint64_t>(st.st_size);
    seg.sealed = true;
    engine->segments_[seq] = std::move(seg);
    newest = std::max(newest, seq);
  }
  const Status st = engine->OpenActive(newest + 1);
  if (!st.ok()) {
    return st;
  }
  *out = std::move(engine);
  return Status::Ok();
}

}  // namespace chainreaction

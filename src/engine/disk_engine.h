// Append-only value-log engine (see storage_engine.h for the contract).
//
// Layout: `dir/vlog-<seq>.dat`, segments numbered from 1. A segment is a
// bare concatenation of framed records (src/engine/log_record.h) — no
// header; the filename carries the sequence number. The active segment
// takes appends until it exceeds options.segment_bytes, then it is fsynced,
// sealed, and a fresh segment opened.
//
// Liveness is tracked per segment as offset → framed length; Release drops
// an entry, compaction copies the survivors of the garbage-heaviest sealed
// segment into the active one (re-framing verbatim, checksums preserved),
// and PurgeDeadSegments unlinks sealed segments whose live map is empty.
//
// Durability: appends are write()n through to the OS immediately but only
// fsynced at Flush() (checkpoint time) and on seal. The WAL owns durability
// of the recent tail — after a crash, recovery truncates the log back to
// the checkpoint manifest and the WAL tail re-appends everything newer.
#ifndef SRC_ENGINE_DISK_ENGINE_H_
#define SRC_ENGINE_DISK_ENGINE_H_

#include <map>
#include <string>
#include <unordered_map>

#include "src/engine/storage_engine.h"

namespace chainreaction {

class DiskEngine final : public StorageEngine {
 public:
  ~DiskEngine() override;

  StorageEngineKind kind() const override { return StorageEngineKind::kDisk; }
  bool inline_values() const override { return false; }

  ValueHandle Append(const Key& key, const Version& version, std::string_view value) override;
  Status Read(const ValueHandle& handle, Value* out) override;
  void Release(const ValueHandle& handle) override;
  bool AdoptLive(const ValueHandle& handle) override;
  Status Flush() override;
  bool MaybeCompact(const RemapFn& remap) override;
  void PurgeDeadSegments() override;
  void GetManifest(uint64_t* active_segment, uint64_t* active_size) const override;
  Status TruncateTo(uint64_t segment, uint64_t size) override;
  StorageEngineStats Stats() const override;

  static std::string SegmentFileName(uint64_t seq);

 private:
  friend Status OpenDiskEngine(const std::string& dir, const DiskEngineOptions& options,
                               std::unique_ptr<StorageEngine>* out);

  struct Segment {
    int fd = -1;
    uint64_t bytes = 0;       // file size (append offset for the active one)
    uint64_t live_bytes = 0;
    bool sealed = false;
    // offset → framed record length for records the index still references.
    std::unordered_map<uint64_t, uint32_t> live;
  };

  DiskEngine(std::string dir, DiskEngineOptions options);

  Status OpenActive(uint64_t seq);
  Status AppendRaw(const std::string& bytes, ValueHandle* out);
  void SealActiveLocked();

  std::string SegmentPath(uint64_t seq) const;

  const std::string dir_;
  const DiskEngineOptions options_;

  // Ordered so compaction scans oldest-first and the manifest is stable.
  std::map<uint64_t, Segment> segments_;
  uint64_t active_seq_ = 0;

  uint64_t appends_ = 0;
  uint64_t reads_ = 0;
  uint64_t compactions_ = 0;
  uint64_t compacted_bytes_ = 0;
  uint64_t purged_segments_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_ENGINE_DISK_ENGINE_H_

#include "src/msg/message.h"

namespace chainreaction {

MsgType PeekType(const std::string& payload) {
  ByteReader r(payload);
  uint16_t type = 0;
  if (!r.GetU16(&type)) {
    return MsgType::kInvalid;
  }
  return static_cast<MsgType>(type);
}

void EncodeDeps(const std::vector<Dependency>& deps, ByteWriter* w) {
  w->PutVarU64(deps.size());
  for (const Dependency& d : deps) {
    d.Encode(w);
  }
}

bool DecodeDeps(ByteReader* r, std::vector<Dependency>* deps) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  deps->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!(*deps)[i].Decode(r)) {
      return false;
    }
  }
  return true;
}

size_t EncodedDepsSize(const std::vector<Dependency>& deps) {
  size_t n = VarU64Size(deps.size());
  for (const Dependency& d : deps) {
    n += d.EncodedSize();
  }
  return n;
}

// --------------------------- ChainReaction ---------------------------------

void CrxPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool CrxPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value) &&
         DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t CrxPut::EncodedSize() const {
  return 8 + 4 + 4 + key.size() + 4 + value.size() + EncodedDepsSize(deps) + trace.EncodedSize();
}

void CrxPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  version.Encode(w);
  w->PutU32(acked_at);
  trace.Encode(w);
}
bool CrxPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && version.Decode(r) && r->GetU32(&acked_at) &&
         trace.Decode(r);
}
size_t CrxPutAck::EncodedSize() const {
  return 8 + 4 + key.size() + version.EncodedSize() + 4 + trace.EncodedSize();
}

void CrxPutAckBatch::Encode(ByteWriter* w) const {
  w->PutVarU64(up_to_seq);
  w->PutVarU64(acks.size());
  for (const CrxPutAck& a : acks) {
    a.Encode(w);
  }
}
bool CrxPutAckBatch::Decode(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetVarU64(&up_to_seq) || !r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  acks.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!acks[i].Decode(r)) {
      return false;
    }
  }
  return true;
}
size_t CrxPutAckBatch::EncodedSize() const {
  size_t n = VarU64Size(up_to_seq) + VarU64Size(acks.size());
  for (const CrxPutAck& a : acks) {
    n += a.EncodedSize();
  }
  return n;
}

void CrxGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  min_version.Encode(w);
  w->PutBool(with_deps);
}
bool CrxGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && min_version.Decode(r) &&
         r->GetBool(&with_deps);
}

void CrxGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  version.Encode(w);
  w->PutU32(position);
  w->PutBool(stable);
  EncodeDeps(deps, w);
}
bool CrxGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         version.Decode(r) && r->GetU32(&position) && r->GetBool(&stable) && DecodeDeps(r, &deps);
}
size_t CrxGetReply::EncodedSize() const {
  return 8 + 4 + key.size() + 1 + 4 + value.size() + version.EncodedSize() + 4 + 1 +
         EncodedDepsSize(deps);
}

void CrxChainPut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  w->PutU32(client);
  w->PutU64(req);
  w->PutU32(ack_at);
  w->PutU64(epoch);
  w->PutVarU64(chain_seq);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool CrxChainPut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && version.Decode(r) && r->GetU32(&client) &&
         r->GetU64(&req) && r->GetU32(&ack_at) && r->GetU64(&epoch) && r->GetVarU64(&chain_seq) &&
         DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t CrxChainPut::EncodedSize() const {
  return 4 + key.size() + 4 + value.size() + version.EncodedSize() + 4 + 8 + 4 + 8 +
         VarU64Size(chain_seq) + EncodedDepsSize(deps) + trace.EncodedSize();
}

void CrxStableNotify::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
  w->PutU64(epoch);
}
bool CrxStableNotify::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r) && r->GetU64(&epoch);
}

void CrxStabilityCheck::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
  w->PutU64(token);
}
bool CrxStabilityCheck::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r) && r->GetU64(&token);
}

void CrxStabilityConfirm::Encode(ByteWriter* w) const {
  w->PutU64(token);
  w->PutString(key);
}
bool CrxStabilityConfirm::Decode(ByteReader* r) {
  return r->GetU64(&token) && r->GetString(&key);
}

// ------------------------ classic chain replication ------------------------

void CrPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
}
bool CrPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value);
}

void CrChainPut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  w->PutU64(seq);
  w->PutU32(client);
  w->PutU64(req);
}
bool CrChainPut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && r->GetU64(&seq) && r->GetU32(&client) &&
         r->GetU64(&req);
}

void CrPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutU64(seq);
}
bool CrPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetU64(&seq);
}

void CrChainAck::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(seq);
  w->PutU32(client);
  w->PutU64(req);
}
bool CrChainAck::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetU64(&seq) && r->GetU32(&client) && r->GetU64(&req);
}

void CrGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
}
bool CrGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key);
}

void CrGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  w->PutU64(seq);
}
bool CrGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         r->GetU64(&seq);
}

// --------------------------------- CRAQ ------------------------------------

void CraqPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
}
bool CraqPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value);
}

void CraqChainPut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  w->PutU64(seq);
  w->PutU32(client);
  w->PutU64(req);
}
bool CraqChainPut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && r->GetU64(&seq) && r->GetU32(&client) &&
         r->GetU64(&req);
}

void CraqCommit::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(seq);
}
bool CraqCommit::Decode(ByteReader* r) { return r->GetString(&key) && r->GetU64(&seq); }

void CraqPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutU64(seq);
}
bool CraqPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetU64(&seq);
}

void CraqGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
}
bool CraqGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key);
}

void CraqGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  w->PutU64(seq);
}
bool CraqGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         r->GetU64(&seq);
}

void CraqVersionQuery::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(req);
  w->PutU32(client);
}
bool CraqVersionQuery::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetU64(&req) && r->GetU32(&client);
}

void CraqVersionReply::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(committed_seq);
  w->PutU64(req);
  w->PutU32(client);
}
bool CraqVersionReply::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetU64(&committed_seq) && r->GetU64(&req) && r->GetU32(&client);
}

// ------------------------- eventual / quorum --------------------------------

void EvPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
}
bool EvPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value);
}

void EvReplicate::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  w->PutU64(token);
}
bool EvReplicate::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && version.Decode(r) && r->GetU64(&token);
}

void EvReplicateAck::Encode(ByteWriter* w) const { w->PutU64(token); }
bool EvReplicateAck::Decode(ByteReader* r) { return r->GetU64(&token); }

void EvPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  version.Encode(w);
}
bool EvPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && version.Decode(r);
}

void EvGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
}
bool EvGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key);
}

void EvGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  version.Encode(w);
}
bool EvGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         version.Decode(r);
}

void EvReadQuery::Encode(ByteWriter* w) const {
  w->PutU64(token);
  w->PutString(key);
}
bool EvReadQuery::Decode(ByteReader* r) { return r->GetU64(&token) && r->GetString(&key); }

void EvReadReply::Encode(ByteWriter* w) const {
  w->PutU64(token);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  version.Encode(w);
}
bool EvReadReply::Decode(ByteReader* r) {
  return r->GetU64(&token) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         version.Decode(r);
}

// ------------------------------ geo ----------------------------------------

void GeoLocalStable::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
  w->PutBool(has_payload);
  w->PutString(value);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool GeoLocalStable::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r) && r->GetBool(&has_payload) &&
         r->GetString(&value) && DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t GeoLocalStable::EncodedSize() const {
  return 4 + key.size() + version.EncodedSize() + 1 + 4 + value.size() + EncodedDepsSize(deps) +
         trace.EncodedSize();
}

void GeoLocalStableAck::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
}
bool GeoLocalStableAck::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r);
}

void GeoShip::Encode(ByteWriter* w) const {
  w->PutU16(origin_dc);
  w->PutU64(channel_seq);
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool GeoShip::Decode(ByteReader* r) {
  return r->GetU16(&origin_dc) && r->GetU64(&channel_seq) && r->GetString(&key) &&
         r->GetString(&value) && version.Decode(r) && DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t GeoShip::EncodedSize() const {
  return 2 + 8 + 4 + key.size() + 4 + value.size() + version.EncodedSize() +
         EncodedDepsSize(deps) + trace.EncodedSize();
}

void GeoShipBatch::Encode(ByteWriter* w) const {
  w->PutVarU64(ships.size());
  for (const GeoShip& s : ships) {
    s.Encode(w);
  }
}
bool GeoShipBatch::Decode(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  ships.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!ships[i].Decode(r)) {
      return false;
    }
  }
  return true;
}
size_t GeoShipBatch::EncodedSize() const {
  size_t n = VarU64Size(ships.size());
  for (const GeoShip& s : ships) {
    n += s.EncodedSize();
  }
  return n;
}

void GeoApplied::Encode(ByteWriter* w) const {
  w->PutU16(dest_dc);
  w->PutU64(channel_seq);
}
bool GeoApplied::Decode(ByteReader* r) {
  return r->GetU16(&dest_dc) && r->GetU64(&channel_seq);
}

void GeoRemotePut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool GeoRemotePut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && version.Decode(r) &&
         DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t GeoRemotePut::EncodedSize() const {
  return 4 + key.size() + 4 + value.size() + version.EncodedSize() + EncodedDepsSize(deps) +
         trace.EncodedSize();
}

// --------------------------- membership -------------------------------------

namespace {

void EncodeU32Vec(const std::vector<uint32_t>& v, ByteWriter* w) {
  w->PutVarU64(v.size());
  for (uint32_t x : v) {
    w->PutU32(x);
  }
}

bool DecodeU32Vec(ByteReader* r, std::vector<uint32_t>* v) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  v->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!r->GetU32(&(*v)[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

void MemNewMembership::Encode(ByteWriter* w) const {
  w->PutU64(epoch);
  EncodeU32Vec(nodes, w);
  EncodeU32Vec(weights, w);
  EncodeU32Vec(pre_synced, w);
}
bool MemNewMembership::Decode(ByteReader* r) {
  return r->GetU64(&epoch) && DecodeU32Vec(r, &nodes) && DecodeU32Vec(r, &weights) &&
         DecodeU32Vec(r, &pre_synced);
}

void MemHeartbeat::Encode(ByteWriter* w) const { w->PutU32(node); }
bool MemHeartbeat::Decode(ByteReader* r) { return r->GetU32(&node); }

void MemSyncKey::Encode(ByteWriter* w) const {
  w->PutU64(epoch);
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  w->PutBool(stable);
}
bool MemSyncKey::Decode(ByteReader* r) {
  return r->GetU64(&epoch) && r->GetString(&key) && r->GetString(&value) && version.Decode(r) &&
         r->GetBool(&stable);
}

void MemSyncDone::Encode(ByteWriter* w) const {
  w->PutU64(epoch);
  w->PutU32(from);
}
bool MemSyncDone::Decode(ByteReader* r) { return r->GetU64(&epoch) && r->GetU32(&from); }

// --------------------------- key-range migration ---------------------------

void MigSnapshotRequest::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU64(epoch);
  w->PutU64(planned_epoch);
  EncodeU32Vec(planned_nodes, w);
  EncodeU32Vec(planned_weights, w);
  w->PutU32(coordinator);
  w->PutU32(batch_keys);
  w->PutU64(batch_interval);
}
bool MigSnapshotRequest::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU64(&epoch) && r->GetU64(&planned_epoch) &&
         DecodeU32Vec(r, &planned_nodes) && DecodeU32Vec(r, &planned_weights) &&
         r->GetU32(&coordinator) && r->GetU32(&batch_keys) && r->GetU64(&batch_interval);
}

void MigEntry::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutBool(has_value);
  w->PutString(value);
  version.Encode(w);
  w->PutBool(stable);
  EncodeDeps(deps, w);
}
bool MigEntry::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetBool(&has_value) && r->GetString(&value) &&
         version.Decode(r) && r->GetBool(&stable) && DecodeDeps(r, &deps);
}

void MigKeyBatch::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU64(epoch);
  w->PutU32(source);
  w->PutU32(target);
  w->PutU32(coordinator);
  w->PutU64(seq);
  w->PutBool(last);
  w->PutVarU64(entries.size());
  for (const MigEntry& e : entries) {
    e.Encode(w);
  }
}
bool MigKeyBatch::Decode(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetU64(&migration_id) || !r->GetU64(&epoch) || !r->GetU32(&source) ||
      !r->GetU32(&target) || !r->GetU32(&coordinator) || !r->GetU64(&seq) || !r->GetBool(&last) ||
      !r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  entries.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!entries[i].Decode(r)) {
      return false;
    }
  }
  return true;
}

void MigSnapshotDone::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU32(from);
  w->PutU64(keys_streamed);
  EncodeU32Vec(targets, w);
  w->PutBool(aborted);
}
bool MigSnapshotDone::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU32(&from) && r->GetU64(&keys_streamed) &&
         DecodeU32Vec(r, &targets) && r->GetBool(&aborted);
}

void MigRangeSealed::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU32(source);
  w->PutU32(target);
  w->PutU64(entries_applied);
}
bool MigRangeSealed::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU32(&source) && r->GetU32(&target) &&
         r->GetU64(&entries_applied);
}

void MigCommit::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU64(planned_epoch);
  EncodeU32Vec(nodes, w);
  EncodeU32Vec(weights, w);
  EncodeU32Vec(pre_synced, w);
}
bool MigCommit::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU64(&planned_epoch) && DecodeU32Vec(r, &nodes) &&
         DecodeU32Vec(r, &weights) && DecodeU32Vec(r, &pre_synced);
}

void MigAbort::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutString(reason);
}
bool MigAbort::Decode(ByteReader* r) { return r->GetU64(&migration_id) && r->GetString(&reason); }

}  // namespace chainreaction

#include "src/msg/message.h"

namespace chainreaction {

MsgType PeekType(std::string_view payload) {
  ByteReader r(payload.data(), payload.size());
  uint16_t type = 0;
  if (!r.GetU16(&type)) {
    return MsgType::kInvalid;
  }
  return static_cast<MsgType>(type & ~kWireV2Flag);
}

WireFormat PeekWireFormat(std::string_view payload) {
  ByteReader r(payload.data(), payload.size());
  uint16_t type = 0;
  if (!r.GetU16(&type)) {
    return WireFormat::kV1;
  }
  return (type & kWireV2Flag) != 0 ? WireFormat::kV2 : WireFormat::kV1;
}

// --------------------------- ChainReaction ---------------------------------

void CrxPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool CrxPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value) &&
         DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t CrxPut::EncodedSize() const {
  return 8 + 4 + 4 + key.size() + 4 + value.size() + EncodedDepsSize(deps) + trace.EncodedSize();
}
void CrxPut::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(req);
  w->PutVarU64(client);
  w->PutStringVar(key);
  w->PutStringVar(value);
  EncodeDepsV2(deps, w);
  trace.EncodeV2(w);
  w->PutVarU64(wm_epoch);
  w->PutVarU64(dep_wm);
}
bool CrxPut::DecodeV2(ByteReader* r) {
  uint64_t c = 0;
  if (!(r->GetVarU64(&req) && r->GetVarU64(&c) && c <= UINT32_MAX && r->GetStringVar(&key) &&
        r->GetStringVar(&value) && DecodeDepsV2(r, &deps) && trace.DecodeV2(r) &&
        r->GetVarU64(&wm_epoch) && r->GetVarU64(&dep_wm))) {
    return false;
  }
  client = static_cast<Address>(c);
  return true;
}
size_t CrxPut::EncodedSizeV2() const {
  return VarU64Size(req) + VarU64Size(client) + VarStringSize(key) + VarStringSize(value) +
         EncodedDepsSizeV2(deps) + trace.EncodedSizeV2() + VarU64Size(wm_epoch) +
         VarU64Size(dep_wm);
}

void CrxPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  version.Encode(w);
  w->PutU32(acked_at);
  trace.Encode(w);
}
bool CrxPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && version.Decode(r) && r->GetU32(&acked_at) &&
         trace.Decode(r);
}
size_t CrxPutAck::EncodedSize() const {
  return 8 + 4 + key.size() + version.EncodedSize() + 4 + trace.EncodedSize();
}
void CrxPutAck::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(req);
  w->PutStringVar(key);
  version.EncodeV2(w);
  w->PutVarU64(acked_at);
  trace.EncodeV2(w);
  w->PutVarU64(wm_epoch);
  w->PutVarU64(stable_wm);
}
bool CrxPutAck::DecodeV2(ByteReader* r) {
  uint64_t at = 0;
  if (!(r->GetVarU64(&req) && r->GetStringVar(&key) && version.DecodeV2(r) && r->GetVarU64(&at) &&
        at <= UINT32_MAX && trace.DecodeV2(r) && r->GetVarU64(&wm_epoch) &&
        r->GetVarU64(&stable_wm))) {
    return false;
  }
  acked_at = static_cast<ChainIndex>(at);
  return true;
}
size_t CrxPutAck::EncodedSizeV2() const {
  return VarU64Size(req) + VarStringSize(key) + version.EncodedSizeV2() + VarU64Size(acked_at) +
         trace.EncodedSizeV2() + VarU64Size(wm_epoch) + VarU64Size(stable_wm);
}

void CrxPutAckBatch::Encode(ByteWriter* w) const {
  w->PutVarU64(up_to_seq);
  w->PutVarU64(acks.size());
  for (const CrxPutAck& a : acks) {
    a.Encode(w);
  }
}
bool CrxPutAckBatch::Decode(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetVarU64(&up_to_seq) || !r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  acks.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!acks[i].Decode(r)) {
      return false;
    }
  }
  return true;
}
size_t CrxPutAckBatch::EncodedSize() const {
  size_t n = VarU64Size(up_to_seq) + VarU64Size(acks.size());
  for (const CrxPutAck& a : acks) {
    n += a.EncodedSize();
  }
  return n;
}
void CrxPutAckBatch::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(up_to_seq);
  w->PutVarU64(acks.size());
  for (const CrxPutAck& a : acks) {
    a.EncodeV2(w);
  }
}
bool CrxPutAckBatch::DecodeV2(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetVarU64(&up_to_seq) || !r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  acks.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!acks[i].DecodeV2(r)) {
      return false;
    }
  }
  return true;
}
size_t CrxPutAckBatch::EncodedSizeV2() const {
  size_t n = VarU64Size(up_to_seq) + VarU64Size(acks.size());
  for (const CrxPutAck& a : acks) {
    n += a.EncodedSizeV2();
  }
  return n;
}

void CrxGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  min_version.Encode(w);
  w->PutBool(with_deps);
}
bool CrxGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && min_version.Decode(r) &&
         r->GetBool(&with_deps);
}
void CrxGet::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(req);
  w->PutVarU64(client);
  w->PutStringVar(key);
  min_version.EncodeV2(w);
  w->PutBool(with_deps);
}
bool CrxGet::DecodeV2(ByteReader* r) {
  uint64_t c = 0;
  if (!(r->GetVarU64(&req) && r->GetVarU64(&c) && c <= UINT32_MAX && r->GetStringVar(&key) &&
        min_version.DecodeV2(r) && r->GetBool(&with_deps))) {
    return false;
  }
  client = static_cast<Address>(c);
  return true;
}
size_t CrxGet::EncodedSizeV2() const {
  return VarU64Size(req) + VarU64Size(client) + VarStringSize(key) +
         min_version.EncodedSizeV2() + 1;
}

void CrxGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  version.Encode(w);
  w->PutU32(position);
  w->PutBool(stable);
  EncodeDeps(deps, w);
}
bool CrxGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         version.Decode(r) && r->GetU32(&position) && r->GetBool(&stable) && DecodeDeps(r, &deps);
}
size_t CrxGetReply::EncodedSize() const {
  return 8 + 4 + key.size() + 1 + 4 + value.size() + version.EncodedSize() + 4 + 1 +
         EncodedDepsSize(deps);
}
void CrxGetReply::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(req);
  w->PutStringVar(key);
  w->PutBool(found);
  w->PutStringVar(value);
  version.EncodeV2(w);
  w->PutVarU64(position);
  w->PutBool(stable);
  EncodeDepsV2(deps, w);
  w->PutVarU64(wm_epoch);
  w->PutVarU64(stable_wm);
}
bool CrxGetReply::DecodeV2(ByteReader* r) {
  uint64_t pos = 0;
  if (!(r->GetVarU64(&req) && r->GetStringVar(&key) && r->GetBool(&found) &&
        r->GetStringVar(&value) && version.DecodeV2(r) && r->GetVarU64(&pos) &&
        pos <= UINT32_MAX && r->GetBool(&stable) && DecodeDepsV2(r, &deps) &&
        r->GetVarU64(&wm_epoch) && r->GetVarU64(&stable_wm))) {
    return false;
  }
  position = static_cast<ChainIndex>(pos);
  return true;
}
size_t CrxGetReply::EncodedSizeV2() const {
  return VarU64Size(req) + VarStringSize(key) + 1 + VarStringSize(value) +
         version.EncodedSizeV2() + VarU64Size(position) + 1 + EncodedDepsSizeV2(deps) +
         VarU64Size(wm_epoch) + VarU64Size(stable_wm);
}

void CrxChainPut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  w->PutU32(client);
  w->PutU64(req);
  w->PutU32(ack_at);
  w->PutU64(epoch);
  w->PutVarU64(chain_seq);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool CrxChainPut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && version.Decode(r) && r->GetU32(&client) &&
         r->GetU64(&req) && r->GetU32(&ack_at) && r->GetU64(&epoch) && r->GetVarU64(&chain_seq) &&
         DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t CrxChainPut::EncodedSize() const {
  return 4 + key.size() + 4 + value.size() + version.EncodedSize() + 4 + 8 + 4 + 8 +
         VarU64Size(chain_seq) + EncodedDepsSize(deps) + trace.EncodedSize();
}
void CrxChainPut::EncodeV2(ByteWriter* w) const {
  w->PutStringVar(key);
  w->PutStringVar(value);
  version.EncodeV2(w);
  w->PutVarU64(client);
  w->PutVarU64(req);
  w->PutVarU64(ack_at);
  w->PutVarU64(epoch);
  w->PutVarU64(chain_seq);
  EncodeDepsV2(deps, w);
  trace.EncodeV2(w);
  w->PutVarU64(stable_cut);
}
bool CrxChainPut::DecodeV2(ByteReader* r) {
  uint64_t c = 0, at = 0;
  if (!(r->GetStringVar(&key) && r->GetStringVar(&value) && version.DecodeV2(r) &&
        r->GetVarU64(&c) && c <= UINT32_MAX && r->GetVarU64(&req) && r->GetVarU64(&at) &&
        at <= UINT32_MAX && r->GetVarU64(&epoch) && r->GetVarU64(&chain_seq) &&
        DecodeDepsV2(r, &deps) && trace.DecodeV2(r) && r->GetVarU64(&stable_cut))) {
    return false;
  }
  client = static_cast<Address>(c);
  ack_at = static_cast<ChainIndex>(at);
  return true;
}
size_t CrxChainPut::EncodedSizeV2() const {
  return VarStringSize(key) + VarStringSize(value) + version.EncodedSizeV2() +
         VarU64Size(client) + VarU64Size(req) + VarU64Size(ack_at) + VarU64Size(epoch) +
         VarU64Size(chain_seq) + EncodedDepsSizeV2(deps) + trace.EncodedSizeV2() +
         VarU64Size(stable_cut);
}

void CrxStableNotify::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
  w->PutU64(epoch);
}
bool CrxStableNotify::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r) && r->GetU64(&epoch);
}
void CrxStableNotify::EncodeV2(ByteWriter* w) const {
  w->PutStringVar(key);
  version.EncodeV2(w);
  w->PutVarU64(epoch);
  w->PutVarU64(stable_cut);
}
bool CrxStableNotify::DecodeV2(ByteReader* r) {
  return r->GetStringVar(&key) && version.DecodeV2(r) && r->GetVarU64(&epoch) &&
         r->GetVarU64(&stable_cut);
}
size_t CrxStableNotify::EncodedSizeV2() const {
  return VarStringSize(key) + version.EncodedSizeV2() + VarU64Size(epoch) +
         VarU64Size(stable_cut);
}

void CrxStabilityCheck::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
  w->PutU64(token);
}
bool CrxStabilityCheck::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r) && r->GetU64(&token);
}
void CrxStabilityCheck::EncodeV2(ByteWriter* w) const {
  w->PutStringVar(key);
  version.EncodeV2(w);
  w->PutVarU64(token);
}
bool CrxStabilityCheck::DecodeV2(ByteReader* r) {
  return r->GetStringVar(&key) && version.DecodeV2(r) && r->GetVarU64(&token);
}
size_t CrxStabilityCheck::EncodedSizeV2() const {
  return VarStringSize(key) + version.EncodedSizeV2() + VarU64Size(token);
}

void CrxStabilityConfirm::Encode(ByteWriter* w) const {
  w->PutU64(token);
  w->PutString(key);
}
bool CrxStabilityConfirm::Decode(ByteReader* r) {
  return r->GetU64(&token) && r->GetString(&key);
}
void CrxStabilityConfirm::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(token);
  w->PutStringVar(key);
}
bool CrxStabilityConfirm::DecodeV2(ByteReader* r) {
  return r->GetVarU64(&token) && r->GetStringVar(&key);
}
size_t CrxStabilityConfirm::EncodedSizeV2() const {
  return VarU64Size(token) + VarStringSize(key);
}

void CrxWatermark::Encode(ByteWriter* w) const {
  w->PutU32(node);
  w->PutU64(epoch);
  w->PutU64(cut);
}
bool CrxWatermark::Decode(ByteReader* r) {
  return r->GetU32(&node) && r->GetU64(&epoch) && r->GetU64(&cut);
}
void CrxWatermark::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(node);
  w->PutVarU64(epoch);
  w->PutVarU64(cut);
}
bool CrxWatermark::DecodeV2(ByteReader* r) {
  uint64_t n = 0;
  if (!(r->GetVarU64(&n) && n <= UINT32_MAX && r->GetVarU64(&epoch) && r->GetVarU64(&cut))) {
    return false;
  }
  node = static_cast<NodeId>(n);
  return true;
}
size_t CrxWatermark::EncodedSizeV2() const {
  return VarU64Size(node) + VarU64Size(epoch) + VarU64Size(cut);
}

// ------------------------- zero-copy view structs --------------------------
// Each body mirrors its owned counterpart exactly (byte-for-byte parity is
// asserted by msg_test): strings decode as aliasing views and encode from
// views, everything else is identical.

void CrxPutView::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutStringView(key);
  w->PutStringView(value);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool CrxPutView::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetStringView(&key) &&
         r->GetStringView(&value) && DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t CrxPutView::EncodedSize() const {
  return 8 + 4 + 4 + key.size() + 4 + value.size() + EncodedDepsSize(deps) + trace.EncodedSize();
}
void CrxPutView::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(req);
  w->PutVarU64(client);
  w->PutStringViewVar(key);
  w->PutStringViewVar(value);
  EncodeDepsV2(deps, w);
  trace.EncodeV2(w);
  w->PutVarU64(wm_epoch);
  w->PutVarU64(dep_wm);
}
bool CrxPutView::DecodeV2(ByteReader* r) {
  uint64_t c = 0;
  if (!(r->GetVarU64(&req) && r->GetVarU64(&c) && c <= UINT32_MAX && r->GetStringViewVar(&key) &&
        r->GetStringViewVar(&value) && DecodeDepsV2(r, &deps) && trace.DecodeV2(r) &&
        r->GetVarU64(&wm_epoch) && r->GetVarU64(&dep_wm))) {
    return false;
  }
  client = static_cast<Address>(c);
  return true;
}
size_t CrxPutView::EncodedSizeV2() const {
  return VarU64Size(req) + VarU64Size(client) + VarStringSize(key) + VarStringSize(value) +
         EncodedDepsSizeV2(deps) + trace.EncodedSizeV2() + VarU64Size(wm_epoch) +
         VarU64Size(dep_wm);
}
CrxPut CrxPutView::ToOwned() const {
  CrxPut m;
  m.req = req;
  m.client = client;
  m.key = Key(key);
  m.value = Value(value);
  m.deps.assign(deps.begin(), deps.end());
  m.trace = trace;
  m.wm_epoch = wm_epoch;
  m.dep_wm = dep_wm;
  return m;
}
CrxPutView CrxPutView::From(const CrxPut& m) {
  CrxPutView v;
  v.req = m.req;
  v.client = m.client;
  v.key = m.key;
  v.value = m.value;
  v.deps.assign(m.deps.begin(), m.deps.end());
  v.trace = m.trace;
  v.wm_epoch = m.wm_epoch;
  v.dep_wm = m.dep_wm;
  return v;
}

void CrxChainPutView::Encode(ByteWriter* w) const {
  w->PutStringView(key);
  w->PutStringView(value);
  version.Encode(w);
  w->PutU32(client);
  w->PutU64(req);
  w->PutU32(ack_at);
  w->PutU64(epoch);
  w->PutVarU64(chain_seq);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool CrxChainPutView::Decode(ByteReader* r) {
  return r->GetStringView(&key) && r->GetStringView(&value) && version.Decode(r) &&
         r->GetU32(&client) && r->GetU64(&req) && r->GetU32(&ack_at) && r->GetU64(&epoch) &&
         r->GetVarU64(&chain_seq) && DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t CrxChainPutView::EncodedSize() const {
  return 4 + key.size() + 4 + value.size() + version.EncodedSize() + 4 + 8 + 4 + 8 +
         VarU64Size(chain_seq) + EncodedDepsSize(deps) + trace.EncodedSize();
}
void CrxChainPutView::EncodeV2(ByteWriter* w) const {
  w->PutStringViewVar(key);
  w->PutStringViewVar(value);
  version.EncodeV2(w);
  w->PutVarU64(client);
  w->PutVarU64(req);
  w->PutVarU64(ack_at);
  w->PutVarU64(epoch);
  w->PutVarU64(chain_seq);
  EncodeDepsV2(deps, w);
  trace.EncodeV2(w);
  w->PutVarU64(stable_cut);
}
bool CrxChainPutView::DecodeV2(ByteReader* r) {
  uint64_t c = 0, at = 0;
  if (!(r->GetStringViewVar(&key) && r->GetStringViewVar(&value) && version.DecodeV2(r) &&
        r->GetVarU64(&c) && c <= UINT32_MAX && r->GetVarU64(&req) && r->GetVarU64(&at) &&
        at <= UINT32_MAX && r->GetVarU64(&epoch) && r->GetVarU64(&chain_seq) &&
        DecodeDepsV2(r, &deps) && trace.DecodeV2(r) && r->GetVarU64(&stable_cut))) {
    return false;
  }
  client = static_cast<Address>(c);
  ack_at = static_cast<ChainIndex>(at);
  return true;
}
size_t CrxChainPutView::EncodedSizeV2() const {
  return VarStringSize(key) + VarStringSize(value) + version.EncodedSizeV2() +
         VarU64Size(client) + VarU64Size(req) + VarU64Size(ack_at) + VarU64Size(epoch) +
         VarU64Size(chain_seq) + EncodedDepsSizeV2(deps) + trace.EncodedSizeV2() +
         VarU64Size(stable_cut);
}
CrxChainPut CrxChainPutView::ToOwned() const {
  CrxChainPut m;
  m.key = Key(key);
  m.value = Value(value);
  m.version = version;
  m.client = client;
  m.req = req;
  m.ack_at = ack_at;
  m.epoch = epoch;
  m.chain_seq = chain_seq;
  m.deps.assign(deps.begin(), deps.end());
  m.trace = trace;
  m.stable_cut = stable_cut;
  return m;
}
CrxChainPutView CrxChainPutView::From(const CrxChainPut& m) {
  CrxChainPutView v;
  v.key = m.key;
  v.value = m.value;
  v.version = m.version;
  v.client = m.client;
  v.req = m.req;
  v.ack_at = m.ack_at;
  v.epoch = m.epoch;
  v.chain_seq = m.chain_seq;
  v.deps.assign(m.deps.begin(), m.deps.end());
  v.trace = m.trace;
  v.stable_cut = m.stable_cut;
  return v;
}

void CrxGetView::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutStringView(key);
  min_version.Encode(w);
  w->PutBool(with_deps);
}
bool CrxGetView::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetStringView(&key) &&
         min_version.Decode(r) && r->GetBool(&with_deps);
}
void CrxGetView::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(req);
  w->PutVarU64(client);
  w->PutStringViewVar(key);
  min_version.EncodeV2(w);
  w->PutBool(with_deps);
}
bool CrxGetView::DecodeV2(ByteReader* r) {
  uint64_t c = 0;
  if (!(r->GetVarU64(&req) && r->GetVarU64(&c) && c <= UINT32_MAX && r->GetStringViewVar(&key) &&
        min_version.DecodeV2(r) && r->GetBool(&with_deps))) {
    return false;
  }
  client = static_cast<Address>(c);
  return true;
}
size_t CrxGetView::EncodedSizeV2() const {
  return VarU64Size(req) + VarU64Size(client) + VarStringSize(key) +
         min_version.EncodedSizeV2() + 1;
}
size_t CrxGetView::EncodedSize() const {
  return 8 + 4 + 4 + key.size() + min_version.EncodedSize() + 1;
}
CrxGet CrxGetView::ToOwned() const {
  CrxGet m;
  m.req = req;
  m.client = client;
  m.key = Key(key);
  m.min_version = min_version;
  m.with_deps = with_deps;
  return m;
}
CrxGetView CrxGetView::From(const CrxGet& m) {
  CrxGetView v;
  v.req = m.req;
  v.client = m.client;
  v.key = m.key;
  v.min_version = m.min_version;
  v.with_deps = m.with_deps;
  return v;
}

void CrxGetReplyView::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutStringView(key);
  w->PutBool(found);
  w->PutStringView(value);
  version.Encode(w);
  w->PutU32(position);
  w->PutBool(stable);
  EncodeDeps(deps, w);
}
bool CrxGetReplyView::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetStringView(&key) && r->GetBool(&found) &&
         r->GetStringView(&value) && version.Decode(r) && r->GetU32(&position) &&
         r->GetBool(&stable) && DecodeDeps(r, &deps);
}
size_t CrxGetReplyView::EncodedSize() const {
  return 8 + 4 + key.size() + 1 + 4 + value.size() + version.EncodedSize() + 4 + 1 +
         EncodedDepsSize(deps);
}
void CrxGetReplyView::EncodeV2(ByteWriter* w) const {
  w->PutVarU64(req);
  w->PutStringViewVar(key);
  w->PutBool(found);
  w->PutStringViewVar(value);
  version.EncodeV2(w);
  w->PutVarU64(position);
  w->PutBool(stable);
  EncodeDepsV2(deps, w);
  w->PutVarU64(wm_epoch);
  w->PutVarU64(stable_wm);
}
bool CrxGetReplyView::DecodeV2(ByteReader* r) {
  uint64_t pos = 0;
  if (!(r->GetVarU64(&req) && r->GetStringViewVar(&key) && r->GetBool(&found) &&
        r->GetStringViewVar(&value) && version.DecodeV2(r) && r->GetVarU64(&pos) &&
        pos <= UINT32_MAX && r->GetBool(&stable) && DecodeDepsV2(r, &deps) &&
        r->GetVarU64(&wm_epoch) && r->GetVarU64(&stable_wm))) {
    return false;
  }
  position = static_cast<ChainIndex>(pos);
  return true;
}
size_t CrxGetReplyView::EncodedSizeV2() const {
  return VarU64Size(req) + VarStringSize(key) + 1 + VarStringSize(value) +
         version.EncodedSizeV2() + VarU64Size(position) + 1 + EncodedDepsSizeV2(deps) +
         VarU64Size(wm_epoch) + VarU64Size(stable_wm);
}

// ------------------------ classic chain replication ------------------------

void CrPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
}
bool CrPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value);
}

void CrChainPut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  w->PutU64(seq);
  w->PutU32(client);
  w->PutU64(req);
}
bool CrChainPut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && r->GetU64(&seq) && r->GetU32(&client) &&
         r->GetU64(&req);
}

void CrPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutU64(seq);
}
bool CrPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetU64(&seq);
}

void CrChainAck::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(seq);
  w->PutU32(client);
  w->PutU64(req);
}
bool CrChainAck::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetU64(&seq) && r->GetU32(&client) && r->GetU64(&req);
}

void CrGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
}
bool CrGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key);
}

void CrGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  w->PutU64(seq);
}
bool CrGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         r->GetU64(&seq);
}

// --------------------------------- CRAQ ------------------------------------

void CraqPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
}
bool CraqPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value);
}

void CraqChainPut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  w->PutU64(seq);
  w->PutU32(client);
  w->PutU64(req);
}
bool CraqChainPut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && r->GetU64(&seq) && r->GetU32(&client) &&
         r->GetU64(&req);
}

void CraqCommit::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(seq);
}
bool CraqCommit::Decode(ByteReader* r) { return r->GetString(&key) && r->GetU64(&seq); }

void CraqPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutU64(seq);
}
bool CraqPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetU64(&seq);
}

void CraqGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
}
bool CraqGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key);
}

void CraqGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  w->PutU64(seq);
}
bool CraqGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         r->GetU64(&seq);
}

void CraqVersionQuery::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(req);
  w->PutU32(client);
}
bool CraqVersionQuery::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetU64(&req) && r->GetU32(&client);
}

void CraqVersionReply::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutU64(committed_seq);
  w->PutU64(req);
  w->PutU32(client);
}
bool CraqVersionReply::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetU64(&committed_seq) && r->GetU64(&req) && r->GetU32(&client);
}

// ------------------------- eventual / quorum --------------------------------

void EvPut::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
  w->PutString(value);
}
bool EvPut::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key) && r->GetString(&value);
}

void EvReplicate::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  w->PutU64(token);
}
bool EvReplicate::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && version.Decode(r) && r->GetU64(&token);
}

void EvReplicateAck::Encode(ByteWriter* w) const { w->PutU64(token); }
bool EvReplicateAck::Decode(ByteReader* r) { return r->GetU64(&token); }

void EvPutAck::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  version.Encode(w);
}
bool EvPutAck::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && version.Decode(r);
}

void EvGet::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutU32(client);
  w->PutString(key);
}
bool EvGet::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetU32(&client) && r->GetString(&key);
}

void EvGetReply::Encode(ByteWriter* w) const {
  w->PutU64(req);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  version.Encode(w);
}
bool EvGetReply::Decode(ByteReader* r) {
  return r->GetU64(&req) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         version.Decode(r);
}

void EvReadQuery::Encode(ByteWriter* w) const {
  w->PutU64(token);
  w->PutString(key);
}
bool EvReadQuery::Decode(ByteReader* r) { return r->GetU64(&token) && r->GetString(&key); }

void EvReadReply::Encode(ByteWriter* w) const {
  w->PutU64(token);
  w->PutString(key);
  w->PutBool(found);
  w->PutString(value);
  version.Encode(w);
}
bool EvReadReply::Decode(ByteReader* r) {
  return r->GetU64(&token) && r->GetString(&key) && r->GetBool(&found) && r->GetString(&value) &&
         version.Decode(r);
}

// ------------------------------ geo ----------------------------------------

void GeoLocalStable::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
  w->PutBool(has_payload);
  w->PutString(value);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool GeoLocalStable::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r) && r->GetBool(&has_payload) &&
         r->GetString(&value) && DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t GeoLocalStable::EncodedSize() const {
  return 4 + key.size() + version.EncodedSize() + 1 + 4 + value.size() + EncodedDepsSize(deps) +
         trace.EncodedSize();
}

void GeoLocalStableAck::Encode(ByteWriter* w) const {
  w->PutString(key);
  version.Encode(w);
}
bool GeoLocalStableAck::Decode(ByteReader* r) {
  return r->GetString(&key) && version.Decode(r);
}

void GeoShip::Encode(ByteWriter* w) const {
  w->PutU16(origin_dc);
  w->PutU64(channel_seq);
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool GeoShip::Decode(ByteReader* r) {
  return r->GetU16(&origin_dc) && r->GetU64(&channel_seq) && r->GetString(&key) &&
         r->GetString(&value) && version.Decode(r) && DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t GeoShip::EncodedSize() const {
  return 2 + 8 + 4 + key.size() + 4 + value.size() + version.EncodedSize() +
         EncodedDepsSize(deps) + trace.EncodedSize();
}

void GeoShipBatch::Encode(ByteWriter* w) const {
  w->PutVarU64(ships.size());
  for (const GeoShip& s : ships) {
    s.Encode(w);
  }
}
bool GeoShipBatch::Decode(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  ships.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!ships[i].Decode(r)) {
      return false;
    }
  }
  return true;
}
size_t GeoShipBatch::EncodedSize() const {
  size_t n = VarU64Size(ships.size());
  for (const GeoShip& s : ships) {
    n += s.EncodedSize();
  }
  return n;
}

void GeoApplied::Encode(ByteWriter* w) const {
  w->PutU16(dest_dc);
  w->PutU64(channel_seq);
}
bool GeoApplied::Decode(ByteReader* r) {
  return r->GetU16(&dest_dc) && r->GetU64(&channel_seq);
}

void GeoRemotePut::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  EncodeDeps(deps, w);
  trace.Encode(w);
}
bool GeoRemotePut::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetString(&value) && version.Decode(r) &&
         DecodeDeps(r, &deps) && trace.Decode(r);
}
size_t GeoRemotePut::EncodedSize() const {
  return 4 + key.size() + 4 + value.size() + version.EncodedSize() + EncodedDepsSize(deps) +
         trace.EncodedSize();
}

// --------------------------- membership -------------------------------------

namespace {

void EncodeU32Vec(const std::vector<uint32_t>& v, ByteWriter* w) {
  w->PutVarU64(v.size());
  for (uint32_t x : v) {
    w->PutU32(x);
  }
}

bool DecodeU32Vec(ByteReader* r, std::vector<uint32_t>* v) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  v->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!r->GetU32(&(*v)[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

void MemNewMembership::Encode(ByteWriter* w) const {
  w->PutU64(epoch);
  EncodeU32Vec(nodes, w);
  EncodeU32Vec(weights, w);
  EncodeU32Vec(pre_synced, w);
}
bool MemNewMembership::Decode(ByteReader* r) {
  return r->GetU64(&epoch) && DecodeU32Vec(r, &nodes) && DecodeU32Vec(r, &weights) &&
         DecodeU32Vec(r, &pre_synced);
}

void MemHeartbeat::Encode(ByteWriter* w) const { w->PutU32(node); }
bool MemHeartbeat::Decode(ByteReader* r) { return r->GetU32(&node); }

void MemSyncKey::Encode(ByteWriter* w) const {
  w->PutU64(epoch);
  w->PutString(key);
  w->PutString(value);
  version.Encode(w);
  w->PutBool(stable);
}
bool MemSyncKey::Decode(ByteReader* r) {
  return r->GetU64(&epoch) && r->GetString(&key) && r->GetString(&value) && version.Decode(r) &&
         r->GetBool(&stable);
}

void MemSyncDone::Encode(ByteWriter* w) const {
  w->PutU64(epoch);
  w->PutU32(from);
}
bool MemSyncDone::Decode(ByteReader* r) { return r->GetU64(&epoch) && r->GetU32(&from); }

// --------------------------- key-range migration ---------------------------

void MigSnapshotRequest::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU64(epoch);
  w->PutU64(planned_epoch);
  EncodeU32Vec(planned_nodes, w);
  EncodeU32Vec(planned_weights, w);
  w->PutU32(coordinator);
  w->PutU32(batch_keys);
  w->PutU64(batch_interval);
}
bool MigSnapshotRequest::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU64(&epoch) && r->GetU64(&planned_epoch) &&
         DecodeU32Vec(r, &planned_nodes) && DecodeU32Vec(r, &planned_weights) &&
         r->GetU32(&coordinator) && r->GetU32(&batch_keys) && r->GetU64(&batch_interval);
}

void MigEntry::Encode(ByteWriter* w) const {
  w->PutString(key);
  w->PutBool(has_value);
  w->PutString(value);
  version.Encode(w);
  w->PutBool(stable);
  EncodeDeps(deps, w);
}
bool MigEntry::Decode(ByteReader* r) {
  return r->GetString(&key) && r->GetBool(&has_value) && r->GetString(&value) &&
         version.Decode(r) && r->GetBool(&stable) && DecodeDeps(r, &deps);
}

void MigKeyBatch::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU64(epoch);
  w->PutU32(source);
  w->PutU32(target);
  w->PutU32(coordinator);
  w->PutU64(seq);
  w->PutBool(last);
  w->PutVarU64(entries.size());
  for (const MigEntry& e : entries) {
    e.Encode(w);
  }
}
bool MigKeyBatch::Decode(ByteReader* r) {
  uint64_t n = 0;
  if (!r->GetU64(&migration_id) || !r->GetU64(&epoch) || !r->GetU32(&source) ||
      !r->GetU32(&target) || !r->GetU32(&coordinator) || !r->GetU64(&seq) || !r->GetBool(&last) ||
      !r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  entries.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!entries[i].Decode(r)) {
      return false;
    }
  }
  return true;
}

void MigSnapshotDone::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU32(from);
  w->PutU64(keys_streamed);
  EncodeU32Vec(targets, w);
  w->PutBool(aborted);
}
bool MigSnapshotDone::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU32(&from) && r->GetU64(&keys_streamed) &&
         DecodeU32Vec(r, &targets) && r->GetBool(&aborted);
}

void MigRangeSealed::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU32(source);
  w->PutU32(target);
  w->PutU64(entries_applied);
}
bool MigRangeSealed::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU32(&source) && r->GetU32(&target) &&
         r->GetU64(&entries_applied);
}

void MigCommit::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutU64(planned_epoch);
  EncodeU32Vec(nodes, w);
  EncodeU32Vec(weights, w);
  EncodeU32Vec(pre_synced, w);
}
bool MigCommit::Decode(ByteReader* r) {
  return r->GetU64(&migration_id) && r->GetU64(&planned_epoch) && DecodeU32Vec(r, &nodes) &&
         DecodeU32Vec(r, &weights) && DecodeU32Vec(r, &pre_synced);
}

void MigAbort::Encode(ByteWriter* w) const {
  w->PutU64(migration_id);
  w->PutString(reason);
}
bool MigAbort::Decode(ByteReader* r) { return r->GetU64(&migration_id) && r->GetString(&reason); }

}  // namespace chainreaction

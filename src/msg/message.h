// Wire messages for every protocol in the repository.
//
// Each message is a plain struct with Encode/Decode methods and a static
// kType tag. A serialized message is `u16 type` followed by the body; the
// same bytes flow through the simulated network and the TCP transport.
//
// Wire format v2 (hot-path Crx messages only): the frame is
// `u16 (type | kWireV2Flag)` followed by a varint-encoded body produced by
// EncodeV2(). The flag bit makes every frame self-describing — a decoder
// never needs out-of-band knowledge of the sender's configuration, v1
// frames keep decoding after an upgrade, and v2 frames fail cleanly (type
// mismatch) on a v1-only decoder. See DESIGN.md §14.
//
// Naming convention by protocol:
//   Crx*   — ChainReaction (the paper's system)
//   Cr*    — classic Chain Replication baseline (FAWN-KV-style)
//   Craq*  — CRAQ baseline
//   Ev*    — eventual/quorum baseline (Cassandra stand-in)
//   Geo*   — inter-datacenter replication
//   Mem*   — membership / chain repair
#ifndef SRC_MSG_MESSAGE_H_
#define SRC_MSG_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/obs/trace.h"

namespace chainreaction {

enum class MsgType : uint16_t {
  kInvalid = 0,

  // ChainReaction client <-> node.
  kCrxPut = 10,
  kCrxPutAck = 11,
  kCrxGet = 12,
  kCrxGetReply = 13,
  kCrxPutAckBatch = 14,

  // ChainReaction intra-chain.
  kCrxChainPut = 20,
  kCrxStableNotify = 21,
  kCrxStabilityCheck = 22,
  kCrxStabilityConfirm = 23,
  kCrxWatermark = 24,

  // Classic chain replication baseline.
  kCrPut = 30,
  kCrChainPut = 31,
  kCrPutAck = 32,
  kCrGet = 33,
  kCrGetReply = 34,
  kCrChainAck = 35,

  // CRAQ baseline.
  kCraqPut = 40,
  kCraqChainPut = 41,
  kCraqCommit = 42,
  kCraqPutAck = 43,
  kCraqGet = 44,
  kCraqGetReply = 45,
  kCraqVersionQuery = 46,
  kCraqVersionReply = 47,

  // Eventual / quorum baseline.
  kEvPut = 50,
  kEvReplicate = 51,
  kEvReplicateAck = 52,
  kEvPutAck = 53,
  kEvGet = 54,
  kEvGetReply = 55,
  kEvReadQuery = 56,
  kEvReadReply = 57,

  // Geo-replication.
  kGeoLocalStable = 60,
  kGeoShip = 61,
  kGeoApplied = 62,
  kGeoRemotePut = 63,
  kGeoLocalStableAck = 64,
  kGeoShipBatch = 65,

  // Membership / chain repair.
  kMemNewMembership = 70,
  kMemSyncKey = 71,
  kMemHeartbeat = 72,
  kMemSyncDone = 73,

  // Key-range migration (planned topology changes; src/admin/).
  kMigSnapshotRequest = 80,
  kMigKeyBatch = 81,
  kMigSnapshotDone = 82,
  kMigRangeSealed = 83,
  kMigCommit = 84,
  kMigAbort = 85,
};

// High bit of the u16 type tag marks a wire-format-v2 body. Real type tags
// stay far below it, so a flagged tag can never collide with a plain one.
inline constexpr uint16_t kWireV2Flag = 0x8000;

// Returns the type tag of a serialized message (kInvalid if too short).
// The v2 flag bit is masked off, so dispatch switches see the same MsgType
// regardless of the body's wire format.
MsgType PeekType(std::string_view payload);

// Wire format of a serialized message (kV1 if too short — decode will fail
// with a honest error downstream anyway).
WireFormat PeekWireFormat(std::string_view payload);

// Hot-path messages implement EncodedSize() so the writer can allocate the
// final buffer in one shot (no growth reallocations mid-encode). Messages
// with an EncodeV2()/EncodedSizeV2() pair can be asked for a v2 frame;
// types without one (control plane, baselines) always encode v1.
template <typename M>
std::string EncodeMessage(const M& m, WireFormat wf = WireFormat::kV1) {
  ByteWriter w;
  if constexpr (requires(ByteWriter* pw) {
                  m.EncodeV2(pw);
                  m.EncodedSizeV2();
                }) {
    if (wf == WireFormat::kV2) {
      w.Reserve(2 + m.EncodedSizeV2());
      w.PutU16(static_cast<uint16_t>(M::kType) | kWireV2Flag);
      m.EncodeV2(&w);
      return w.Take();
    }
  }
  if constexpr (requires { m.EncodedSize(); }) {
    w.Reserve(2 + m.EncodedSize());
  }
  w.PutU16(static_cast<uint16_t>(M::kType));
  m.Encode(&w);
  return w.Take();
}

// Decodes `payload` into `out`; fails on type mismatch or truncation. A
// frame whose tag carries kWireV2Flag is decoded with DecodeV2() — the
// receiver accepts both formats unconditionally, which is what makes the
// `wire_format` knob safe to flip per deployment (mixed traffic decodes).
//
// Also accepts the *View structs below: their string fields then alias
// `payload`, so the decoded message is valid only while the frame buffer
// is — i.e. within the current OnMessage call.
template <typename M>
bool DecodeMessage(std::string_view payload, M* out) {
  ByteReader r(payload.data(), payload.size());
  uint16_t type = 0;
  if (!r.GetU16(&type)) {
    return false;
  }
  if (type == static_cast<uint16_t>(M::kType)) {
    return out->Decode(&r);
  }
  if constexpr (requires(ByteReader* pr) { out->DecodeV2(pr); }) {
    if (type == (static_cast<uint16_t>(M::kType) | kWireV2Flag)) {
      return out->DecodeV2(&r);
    }
  }
  return false;
}

// Dependency-list codecs, generic over the container (std::vector in the
// owned structs, the inline-capacity DepList in the hot-path view structs).
template <typename List>
void EncodeDeps(const List& deps, ByteWriter* w) {
  w->PutVarU64(deps.size());
  for (const Dependency& d : deps) {
    d.Encode(w);
  }
}

template <typename List>
bool DecodeDeps(ByteReader* r, List* deps) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  deps->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!(*deps)[i].Decode(r)) {
      return false;
    }
  }
  return true;
}

template <typename List>
size_t EncodedDepsSize(const List& deps) {
  size_t n = VarU64Size(deps.size());
  for (const Dependency& d : deps) {
    n += d.EncodedSize();
  }
  return n;
}

// v2 variants: varint count, v2-encoded entries.
template <typename List>
void EncodeDepsV2(const List& deps, ByteWriter* w) {
  w->PutVarU64(deps.size());
  for (const Dependency& d : deps) {
    d.EncodeV2(w);
  }
}

template <typename List>
bool DecodeDepsV2(ByteReader* r, List* deps) {
  uint64_t n = 0;
  if (!r->GetVarU64(&n) || n > (1u << 20)) {
    return false;
  }
  deps->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!(*deps)[i].DecodeV2(r)) {
      return false;
    }
  }
  return true;
}

template <typename List>
size_t EncodedDepsSizeV2(const List& deps) {
  size_t n = VarU64Size(deps.size());
  for (const Dependency& d : deps) {
    n += d.EncodedSizeV2();
  }
  return n;
}

// ---------------------------------------------------------------------------
// ChainReaction
// ---------------------------------------------------------------------------

// Client -> head: write request with the client's causal dependencies
// (COPS-style nearest dependencies: everything accessed since its last
// write). The head defers the write until all deps are DC-Write-Stable.
struct CrxPut {
  static constexpr MsgType kType = MsgType::kCrxPut;
  RequestId req = 0;
  Address client = 0;
  Key key;
  Value value;
  std::vector<Dependency> deps;
  // Observability header: nonzero id marks a sampled request; hops
  // accumulate along the write path (src/obs/trace.h).
  TraceContext trace;
  // Watermark dep compression (v2 frames only): the cluster stable
  // watermark the client compressed `deps` against, and the membership
  // epoch it is valid for. Deps covered by the watermark were dropped
  // (single-DC) or pre-marked local_stable (multi-DC) before sending.
  uint64_t wm_epoch = 0;
  uint64_t dep_wm = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// Node at position k -> client: the write is k-stable.
struct CrxPutAck {
  static constexpr MsgType kType = MsgType::kCrxPutAck;
  RequestId req = 0;
  Key key;
  Version version;
  ChainIndex acked_at = 0;  // chain position that acknowledged (== k)
  TraceContext trace;       // hops up to (and including) the acking node
  // v2 frames piggyback the acking node's cluster stable-watermark estimate
  // (and the epoch it is valid for) so the client can compress future deps.
  uint64_t wm_epoch = 0;
  uint64_t stable_wm = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// Node at position k -> client: cumulative acknowledgement. With ack
// batching on (CrxConfig::ack_batch_window > 0), the acking node coalesces
// the per-put acks destined for one client over a short window into a
// single frame, collapsing the k-stability ack storm. `up_to_seq` is the
// highest chain-pipeline sequence number (CrxChainPut::chain_seq) among the
// batched puts on the incoming link; every put with a lower sequence on
// that link is covered by an entry in `acks`. Entries are in ack order, so
// processing them sequentially is identical to receiving individual acks.
struct CrxPutAckBatch {
  static constexpr MsgType kType = MsgType::kCrxPutAckBatch;
  uint64_t up_to_seq = 0;
  std::vector<CrxPutAck> acks;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// Client -> any node in its allowed chain prefix.
struct CrxGet {
  static constexpr MsgType kType = MsgType::kCrxGet;
  RequestId req = 0;
  Address client = 0;
  Key key;
  // The newest version of `key` the client causally depends on (null if
  // none). Nodes that are behind it forward the request toward the head.
  Version min_version;
  // Multi-get read transactions ask for the returned version's write-time
  // dependency list (to compute the causal snapshot; DESIGN.md §3.8).
  bool with_deps = false;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

struct CrxGetReply {
  static constexpr MsgType kType = MsgType::kCrxGetReply;
  RequestId req = 0;
  Key key;
  bool found = false;
  Value value;
  Version version;
  ChainIndex position = 0;  // chain position of the answering node
  bool stable = false;      // version is DC-Write-Stable
  std::vector<Dependency> deps;  // filled iff the get asked with_deps
  // v2 frames piggyback the answering node's cluster watermark estimate.
  uint64_t wm_epoch = 0;
  uint64_t stable_wm = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// Head -> successor -> ...: down-chain propagation of one write. The node at
// position == ack_at replies to the client; the tail marks the version
// DC-Write-Stable and starts the backward stability notification.
struct CrxChainPut {
  static constexpr MsgType kType = MsgType::kCrxChainPut;
  Key key;
  Value value;
  Version version;
  Address client = 0;     // 0 for remote (geo) updates: no client ack needed
  RequestId req = 0;
  ChainIndex ack_at = 0;  // k; 0 = never ack (remote update)
  uint64_t epoch = 0;     // membership epoch the sender believed in
  // Pipelining sequence number, monotone per (sender, successor) link; 0
  // for out-of-band re-propagation (anti-entropy, chain repair). Receivers
  // use it for cumulative acking (CrxPutAckBatch::up_to_seq).
  uint64_t chain_seq = 0;
  std::vector<Dependency> deps;  // shipped to the geo replicator at the tail
  TraceContext trace;     // per-hop annotations of the traced write
  // v2 frames piggyback the sender's own stable cut (valid for `epoch`) so
  // chain neighbors learn each other's watermark from hot-path traffic.
  uint64_t stable_cut = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// Tail -> predecessor -> ... -> head: version became DC-Write-Stable.
struct CrxStableNotify {
  static constexpr MsgType kType = MsgType::kCrxStableNotify;
  Key key;
  Version version;
  uint64_t epoch = 0;
  // v2 frames piggyback the sender's own stable cut (valid for `epoch`).
  uint64_t stable_cut = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// Head of a writing chain -> tail of a dependency's chain: "tell me when
// `key` reaches `version` (DC-Write-Stable)".
struct CrxStabilityCheck {
  static constexpr MsgType kType = MsgType::kCrxStabilityCheck;
  Key key;
  Version version;
  uint64_t token = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

struct CrxStabilityConfirm {
  static constexpr MsgType kType = MsgType::kCrxStabilityConfirm;
  uint64_t token = 0;
  Key key;  // which dependency this confirms (idempotent per-dep tracking)

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// Node -> every ring peer: low-rate direct gossip of the sender's stable
// cut. Piggybacked cuts on chain traffic only reach ring neighbors that
// happen to share a chain link; this broadcast closes the gap so the
// cluster minimum converges on every node. Sent only while dep_watermark is
// enabled and the node has recently processed protocol traffic (quiescent
// clusters stay quiescent).
struct CrxWatermark {
  static constexpr MsgType kType = MsgType::kCrxWatermark;
  NodeId node = 0;      // sender
  uint64_t epoch = 0;   // membership epoch the cut is valid for
  uint64_t cut = 0;     // all local-origin versions with lamport <= cut are
                        // DC-Write-Stable at the sender

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// ---------------------------------------------------------------------------
// Zero-copy view decoding for the hot-path Crx structs
// ---------------------------------------------------------------------------
//
// The *View structs mirror their owned counterparts field for field, but
// key/value are std::string_view aliases into the frame buffer and the
// dependency list is an inline-capacity DepList — decoding a common put
// touches the allocator zero times. They decode BOTH wire formats (the
// DecodeMessage dispatch is format-blind) and encode byte-identically to
// the owned structs, which is what lets a chain node re-encode its forward
// frame straight from the inbound views without materializing the value.
//
// LIFETIME RULES (DESIGN.md §15):
//   * A decoded view is valid only while the source buffer is alive and
//     unmodified — in practice, only within the OnMessage call that decoded
//     it. Both transports guarantee the receive buffer outlives the call.
//   * Anything that must survive the call (parked puts, rejoin buffers,
//     deferred retries) materializes via ToOwned() at the park boundary.
//   * Encoding a view (chain forward, get reply) copies the viewed bytes
//     into the new frame, so the encoded frame never aliases the source.

struct CrxPutView {
  static constexpr MsgType kType = MsgType::kCrxPut;
  RequestId req = 0;
  Address client = 0;
  std::string_view key;
  std::string_view value;
  DepList deps;
  TraceContext trace;
  uint64_t wm_epoch = 0;
  uint64_t dep_wm = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;

  // Materializes an owned copy (for parking past the view's lifetime).
  CrxPut ToOwned() const;
  // Views into an owned message (single code path for park-and-replay).
  static CrxPutView From(const CrxPut& m);
};

struct CrxChainPutView {
  static constexpr MsgType kType = MsgType::kCrxChainPut;
  std::string_view key;
  std::string_view value;
  Version version;
  Address client = 0;
  RequestId req = 0;
  ChainIndex ack_at = 0;
  uint64_t epoch = 0;
  uint64_t chain_seq = 0;
  DepList deps;
  TraceContext trace;
  uint64_t stable_cut = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;

  CrxChainPut ToOwned() const;
  static CrxChainPutView From(const CrxChainPut& m);
};

struct CrxGetView {
  static constexpr MsgType kType = MsgType::kCrxGet;
  RequestId req = 0;
  Address client = 0;
  std::string_view key;
  Version min_version;
  bool with_deps = false;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;

  // Materializes an owned copy (for parking past the view's lifetime).
  CrxGet ToOwned() const;
  // Views into an owned message (single code path for park-and-replay).
  static CrxGetView From(const CrxGet& m);
};

struct CrxGetReplyView {
  static constexpr MsgType kType = MsgType::kCrxGetReply;
  RequestId req = 0;
  std::string_view key;
  bool found = false;
  std::string_view value;  // may alias the answering node's store
  Version version;
  ChainIndex position = 0;
  bool stable = false;
  DepList deps;
  uint64_t wm_epoch = 0;
  uint64_t stable_wm = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
  void EncodeV2(ByteWriter* w) const;
  bool DecodeV2(ByteReader* r);
  size_t EncodedSizeV2() const;
};

// ---------------------------------------------------------------------------
// Classic chain replication (linearizable; FAWN-KV baseline)
// ---------------------------------------------------------------------------

struct CrPut {
  static constexpr MsgType kType = MsgType::kCrPut;
  RequestId req = 0;
  Address client = 0;
  Key key;
  Value value;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CrChainPut {
  static constexpr MsgType kType = MsgType::kCrChainPut;
  Key key;
  Value value;
  uint64_t seq = 0;
  Address client = 0;
  RequestId req = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CrPutAck {
  static constexpr MsgType kType = MsgType::kCrPutAck;
  RequestId req = 0;
  Key key;
  uint64_t seq = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Tail -> ... -> head: FAWN-KV propagates write acks back up the chain (the
// head answers the client), which is the extra write latency the paper's
// baseline pays.
struct CrChainAck {
  static constexpr MsgType kType = MsgType::kCrChainAck;
  Key key;
  uint64_t seq = 0;
  Address client = 0;
  RequestId req = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CrGet {
  static constexpr MsgType kType = MsgType::kCrGet;
  RequestId req = 0;
  Address client = 0;
  Key key;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CrGetReply {
  static constexpr MsgType kType = MsgType::kCrGetReply;
  RequestId req = 0;
  Key key;
  bool found = false;
  Value value;
  uint64_t seq = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// CRAQ
// ---------------------------------------------------------------------------

struct CraqPut {
  static constexpr MsgType kType = MsgType::kCraqPut;
  RequestId req = 0;
  Address client = 0;
  Key key;
  Value value;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CraqChainPut {
  static constexpr MsgType kType = MsgType::kCraqChainPut;
  Key key;
  Value value;
  uint64_t seq = 0;
  Address client = 0;
  RequestId req = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Tail -> ... -> head after commit so nodes can mark the version clean.
struct CraqCommit {
  static constexpr MsgType kType = MsgType::kCraqCommit;
  Key key;
  uint64_t seq = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CraqPutAck {
  static constexpr MsgType kType = MsgType::kCraqPutAck;
  RequestId req = 0;
  Key key;
  uint64_t seq = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CraqGet {
  static constexpr MsgType kType = MsgType::kCraqGet;
  RequestId req = 0;
  Address client = 0;
  Key key;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CraqGetReply {
  static constexpr MsgType kType = MsgType::kCraqGetReply;
  RequestId req = 0;
  Key key;
  bool found = false;
  Value value;
  uint64_t seq = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Non-tail node with a dirty version -> tail: which seq is committed?
struct CraqVersionQuery {
  static constexpr MsgType kType = MsgType::kCraqVersionQuery;
  Key key;
  RequestId req = 0;    // original client request, echoed in the reply
  Address client = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct CraqVersionReply {
  static constexpr MsgType kType = MsgType::kCraqVersionReply;
  Key key;
  uint64_t committed_seq = 0;
  RequestId req = 0;
  Address client = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// Eventual / quorum baseline (Cassandra stand-in)
// ---------------------------------------------------------------------------

struct EvPut {
  static constexpr MsgType kType = MsgType::kEvPut;
  RequestId req = 0;
  Address client = 0;
  Key key;
  Value value;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct EvReplicate {
  static constexpr MsgType kType = MsgType::kEvReplicate;
  Key key;
  Value value;
  Version version;
  uint64_t token = 0;  // nonzero when the coordinator counts acks (quorum)

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct EvReplicateAck {
  static constexpr MsgType kType = MsgType::kEvReplicateAck;
  uint64_t token = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct EvPutAck {
  static constexpr MsgType kType = MsgType::kEvPutAck;
  RequestId req = 0;
  Key key;
  Version version;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct EvGet {
  static constexpr MsgType kType = MsgType::kEvGet;
  RequestId req = 0;
  Address client = 0;
  Key key;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct EvGetReply {
  static constexpr MsgType kType = MsgType::kEvGetReply;
  RequestId req = 0;
  Key key;
  bool found = false;
  Value value;
  Version version;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct EvReadQuery {
  static constexpr MsgType kType = MsgType::kEvReadQuery;
  uint64_t token = 0;
  Key key;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

struct EvReadReply {
  static constexpr MsgType kType = MsgType::kEvReadReply;
  uint64_t token = 0;
  Key key;
  bool found = false;
  Value value;
  Version version;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// Geo-replication
// ---------------------------------------------------------------------------

// Tail -> local geo replicator: a version became DC-Write-Stable here.
// Carries the value and deps only for locally-originated writes (those must
// be shipped to peers); remote-origin notifications resolve dependency waits
// and produce GeoApplied acks.
struct GeoLocalStable {
  static constexpr MsgType kType = MsgType::kGeoLocalStable;
  Key key;
  Version version;
  bool has_payload = false;
  Value value;
  std::vector<Dependency> deps;
  TraceContext trace;  // carried so geo shipping extends the put's trace

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
};

// Replicator -> tail: the GeoLocalStable notification for (key, version)
// was processed; the tail stops resending it.
struct GeoLocalStableAck {
  static constexpr MsgType kType = MsgType::kGeoLocalStableAck;
  Key key;
  Version version;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Origin replicator -> peer replicator, FIFO per channel.
struct GeoShip {
  static constexpr MsgType kType = MsgType::kGeoShip;
  DcId origin_dc = 0;
  uint64_t channel_seq = 0;
  Key key;
  Value value;
  Version version;
  std::vector<Dependency> deps;
  TraceContext trace;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
};

// Origin replicator -> peer replicator: several stable versions shipped in
// one frame. With CrxConfig::geo_ship_batch_window > 0, outgoing GeoShips
// for one peer are coalesced over a short window; the receiver processes
// the entries in order, exactly as if they had arrived as individual
// GeoShip frames (channel FIFO order is preserved, retransmission remains
// per-entry).
struct GeoShipBatch {
  static constexpr MsgType kType = MsgType::kGeoShipBatch;
  std::vector<GeoShip> ships;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
};

// Peer replicator -> origin replicator: the update is applied (and locally
// stable) at dest_dc. Origin marks Global-Write-Stable when all peers acked.
struct GeoApplied {
  static constexpr MsgType kType = MsgType::kGeoApplied;
  DcId dest_dc = 0;
  uint64_t channel_seq = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Remote replicator -> local chain head: inject a dependency-cleared remote
// update into the local chain.
struct GeoRemotePut {
  static constexpr MsgType kType = MsgType::kGeoRemotePut;
  Key key;
  Value value;
  Version version;
  std::vector<Dependency> deps;  // preserved for multi-get snapshots
  TraceContext trace;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
  size_t EncodedSize() const;
};

// ---------------------------------------------------------------------------
// Membership / chain repair
// ---------------------------------------------------------------------------

// Membership service -> every node: the ring changed.
struct MemNewMembership {
  static constexpr MsgType kType = MsgType::kMemNewMembership;
  uint64_t epoch = 0;
  std::vector<NodeId> nodes;  // live nodes, ring placement derived from ids
  // Per-node vnode counts, parallel to `nodes`. Empty means every node uses
  // the configured default — the pre-rebalance wire behavior.
  std::vector<uint32_t> weights;
  // Nodes whose new key ranges were pre-streamed by a planned migration
  // before this epoch was committed: chain repair skips the per-key
  // MemSyncKey pushes to them (the migration already transferred the data).
  std::vector<NodeId> pre_synced;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Node -> membership service: liveness heartbeat (when failure detection
// is enabled; by default the membership service is an oracle).
struct MemHeartbeat {
  static constexpr MsgType kType = MsgType::kMemHeartbeat;
  NodeId node = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Chain predecessor -> newly added chain member: state transfer of one key.
struct MemSyncKey {
  static constexpr MsgType kType = MsgType::kMemSyncKey;
  uint64_t epoch = 0;
  Key key;
  Value value;
  Version version;
  bool stable = false;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Established node -> node added in `epoch`: all repair pushes for that
// epoch have been sent (links are FIFO, so this arrives after them). A
// rejoining node holds client traffic until every established peer's marker
// arrives — completion-based, because under load the repair sync storm can
// far outlast any fixed grace window.
struct MemSyncDone {
  static constexpr MsgType kType = MsgType::kMemSyncDone;
  uint64_t epoch = 0;
  NodeId from = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// Key-range migration (src/admin/ — planned join / drain / rebalance)
// ---------------------------------------------------------------------------

// Coordinator -> source node: start streaming the key ranges that change
// hands under the planned ring. The source computes the planned ring locally
// from (planned_nodes, planned_weights) and, for every key it currently
// heads, streams the key's versions to each node that is in the planned
// chain but not the current one. Until the planned epoch commits (or the
// migration aborts) the source also mirrors new writes to those targets —
// the CATCHUP window that ships the WAL tail.
struct MigSnapshotRequest {
  static constexpr MsgType kType = MsgType::kMigSnapshotRequest;
  uint64_t migration_id = 0;
  uint64_t epoch = 0;          // ring epoch the plan was made against
  uint64_t planned_epoch = 0;  // epoch the coordinator will commit
  std::vector<NodeId> planned_nodes;
  std::vector<uint32_t> planned_weights;  // parallel to planned_nodes; may be empty
  Address coordinator = 0;
  uint32_t batch_keys = 64;      // keys streamed per self-scheduled tick
  uint64_t batch_interval = 0;   // microseconds between ticks (0 = back-to-back)

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// One migrated version: full causal metadata (version, stability, write-time
// dependency list) so the target can serve reads and geo shipping exactly as
// the source would. has_value=false carries a pure stability mark for a
// version the target already holds.
struct MigEntry {
  Key key;
  bool has_value = true;
  Value value;
  Version version;
  bool stable = false;
  std::vector<Dependency> deps;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Source -> target: a batch of migrated versions. `last` marks the end of
// the bulk snapshot for this (source, target) stream; the target then acks
// the seal to the coordinator. Catchup mirror entries keep flowing after
// `last` until the epoch flips (links are FIFO, so everything mirrored
// before the source observes the flip lands before the source's
// MemSyncDone marker).
struct MigKeyBatch {
  static constexpr MsgType kType = MsgType::kMigKeyBatch;
  uint64_t migration_id = 0;
  uint64_t epoch = 0;  // source's ring epoch at send time
  NodeId source = 0;
  NodeId target = 0;
  Address coordinator = 0;
  uint64_t seq = 0;  // per-(source,target) batch sequence
  bool last = false;
  std::vector<MigEntry> entries;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Source -> coordinator: the bulk snapshot scan finished (`targets` lists
// the nodes this source streamed to), or the request was refused
// (aborted=true, e.g. stale epoch).
struct MigSnapshotDone {
  static constexpr MsgType kType = MsgType::kMigSnapshotDone;
  uint64_t migration_id = 0;
  NodeId from = 0;
  uint64_t keys_streamed = 0;
  std::vector<NodeId> targets;
  bool aborted = false;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Target -> coordinator: every batch of one (source, target) stream up to
// and including the `last` one has been applied; the stream is SEALED.
struct MigRangeSealed {
  static constexpr MsgType kType = MsgType::kMigRangeSealed;
  uint64_t migration_id = 0;
  NodeId source = 0;
  NodeId target = 0;
  uint64_t entries_applied = 0;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Coordinator -> membership service: every stream is sealed; commit the
// planned topology as `planned_epoch` and broadcast it (with `pre_synced`
// so chain repair skips re-pushing what the migration already moved).
struct MigCommit {
  static constexpr MsgType kType = MsgType::kMigCommit;
  uint64_t migration_id = 0;
  uint64_t planned_epoch = 0;
  std::vector<NodeId> nodes;
  std::vector<uint32_t> weights;
  std::vector<NodeId> pre_synced;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

// Coordinator -> sources: stop streaming/mirroring for this migration (a
// node died mid-transfer, the epoch moved underneath the plan, or the
// migration timed out). Targets keep whatever they already applied — the
// entries are real versions, idempotent and harmless outside the chain.
struct MigAbort {
  static constexpr MsgType kType = MsgType::kMigAbort;
  uint64_t migration_id = 0;
  std::string reason;

  void Encode(ByteWriter* w) const;
  bool Decode(ByteReader* r);
};

}  // namespace chainreaction

#endif  // SRC_MSG_MESSAGE_H_

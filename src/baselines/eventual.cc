#include "src/baselines/eventual.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace chainreaction {

void EventualNode::OnMessage(Address from, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kEvPut: {
      EvPut m;
      if (DecodeMessage(payload, &m)) {
        HandlePut(m);
      }
      break;
    }
    case MsgType::kEvReplicate: {
      EvReplicate m;
      if (DecodeMessage(payload, &m)) {
        HandleReplicate(m, from);
      }
      break;
    }
    case MsgType::kEvReplicateAck: {
      EvReplicateAck m;
      if (DecodeMessage(payload, &m)) {
        HandleReplicateAck(m);
      }
      break;
    }
    case MsgType::kEvGet: {
      EvGet m;
      if (DecodeMessage(payload, &m)) {
        HandleGet(m);
      }
      break;
    }
    case MsgType::kEvReadQuery: {
      EvReadQuery m;
      if (DecodeMessage(payload, &m)) {
        HandleReadQuery(m, from);
      }
      break;
    }
    case MsgType::kEvReadReply: {
      EvReadReply m;
      if (DecodeMessage(payload, &m)) {
        HandleReadReply(m, from);
      }
      break;
    }
    default:
      LOG_WARN("eventual node %u: unexpected message", id_);
  }
}

bool EventualNode::ApplyLocal(const Key& key, const Value& value, const Version& version) {
  Entry& e = store_[key];
  if (e.version.IsNull() || e.version.LwwLess(version)) {
    e.value = value;
    e.version = version;
    return true;
  }
  return false;
}

void EventualNode::HandlePut(const EvPut& put) {
  lamport_ = std::max(lamport_ + 1, static_cast<uint64_t>(env_->Now()));
  Version version;
  version.lamport = lamport_;
  version.origin = static_cast<DcId>(id_ & 0xffff);

  const std::vector<NodeId>& replicas = ring_.ChainFor(put.key);
  const bool self_replica = std::find(replicas.begin(), replicas.end(), id_) != replicas.end();

  uint32_t acks_needed = consistency_ == EvConsistency::kQuorum ? QuorumSize() : 1;
  if (self_replica) {
    ApplyLocal(put.key, put.value, version);
    acks_needed = acks_needed > 0 ? acks_needed - 1 : 0;
  }

  uint64_t token = 0;
  if (acks_needed > 0) {
    token = next_token_++;
    PendingWrite& pw = pending_writes_[token];
    pw.req = put.req;
    pw.client = put.client;
    pw.key = put.key;
    pw.version = version;
    pw.acks_needed = acks_needed;
  }

  EvReplicate repl;
  repl.key = put.key;
  repl.value = put.value;
  repl.version = version;
  repl.token = token;
  for (NodeId replica : replicas) {
    if (replica != id_) {
      env_->Send(replica, EncodeMessage(repl));
    }
  }

  if (acks_needed == 0) {
    EvPutAck ack;
    ack.req = put.req;
    ack.key = put.key;
    ack.version = version;
    env_->Send(put.client, EncodeMessage(ack));
  }
}

void EventualNode::HandleReplicate(const EvReplicate& msg, Address from) {
  ApplyLocal(msg.key, msg.value, msg.version);
  lamport_ = std::max(lamport_, msg.version.lamport);
  if (msg.token != 0) {
    EvReplicateAck ack{msg.token};
    env_->Send(from, EncodeMessage(ack));
  }
}

void EventualNode::HandleReplicateAck(const EvReplicateAck& msg) {
  auto it = pending_writes_.find(msg.token);
  if (it == pending_writes_.end()) {
    return;
  }
  if (--it->second.acks_needed > 0) {
    return;
  }
  EvPutAck ack;
  ack.req = it->second.req;
  ack.key = it->second.key;
  ack.version = it->second.version;
  env_->Send(it->second.client, EncodeMessage(ack));
  pending_writes_.erase(it);
}

void EventualNode::HandleGet(const EvGet& get) {
  const std::vector<NodeId>& replicas = ring_.ChainFor(get.key);
  const bool self_replica = std::find(replicas.begin(), replicas.end(), id_) != replicas.end();

  if (consistency_ == EvConsistency::kOne) {
    // Query a single random replica (ourselves if possible: Cassandra's
    // coordinator answers locally when it owns the key).
    if (self_replica) {
      EvGetReply reply;
      reply.req = get.req;
      reply.key = get.key;
      auto it = store_.find(get.key);
      if (it != store_.end()) {
        reply.found = true;
        reply.value = it->second.value;
        reply.version = it->second.version;
      }
      reads_served_++;
      env_->Send(get.client, EncodeMessage(reply));
      return;
    }
    const uint64_t token = next_token_++;
    PendingRead& pr = pending_reads_[token];
    pr.req = get.req;
    pr.client = get.client;
    pr.key = get.key;
    pr.replies_needed = 1;
    EvReadQuery q;
    q.token = token;
    q.key = get.key;
    env_->Send(replicas[rng_.NextBelow(replicas.size())], EncodeMessage(q));
    return;
  }

  // Quorum read: ask every replica, respond after a majority.
  const uint64_t token = next_token_++;
  PendingRead& pr = pending_reads_[token];
  pr.req = get.req;
  pr.client = get.client;
  pr.key = get.key;
  pr.replies_needed = QuorumSize();
  if (self_replica) {
    pr.replies_seen = 1;
    auto it = store_.find(get.key);
    if (it != store_.end()) {
      pr.found = true;
      pr.best_value = it->second.value;
      pr.best_version = it->second.version;
    }
  }
  EvReadQuery q;
  q.token = token;
  q.key = get.key;
  for (NodeId replica : replicas) {
    if (replica != id_) {
      env_->Send(replica, EncodeMessage(q));
    }
  }
}

void EventualNode::HandleReadQuery(const EvReadQuery& q, Address from) {
  EvReadReply reply;
  reply.token = q.token;
  reply.key = q.key;
  auto it = store_.find(q.key);
  if (it != store_.end()) {
    reply.found = true;
    reply.value = it->second.value;
    reply.version = it->second.version;
  }
  reads_served_++;
  env_->Send(from, EncodeMessage(reply));
}

void EventualNode::HandleReadReply(const EvReadReply& r, Address from) {
  auto it = pending_reads_.find(r.token);
  if (it == pending_reads_.end()) {
    return;
  }
  PendingRead& pr = it->second;
  pr.replies_seen++;
  if (r.found) {
    if (!pr.found || pr.best_version.LwwLess(r.version)) {
      pr.found = true;
      pr.best_value = r.value;
      pr.best_version = r.version;
    } else if (r.version.LwwLess(pr.best_version)) {
      pr.stale_replicas.push_back(from);
    }
  } else if (pr.found) {
    pr.stale_replicas.push_back(from);
  }

  if (!pr.responded && pr.replies_seen >= pr.replies_needed) {
    pr.responded = true;
    EvGetReply reply;
    reply.req = pr.req;
    reply.key = pr.key;
    reply.found = pr.found;
    reply.value = pr.best_value;
    reply.version = pr.best_version;
    env_->Send(pr.client, EncodeMessage(reply));
  }

  const uint32_t total_replicas = ring_.replication();
  const bool all_in = pr.replies_seen >= total_replicas;
  if (pr.responded && (consistency_ == EvConsistency::kOne || all_in)) {
    // Read repair for replicas that returned stale data.
    if (pr.found) {
      EvReplicate repl;
      repl.key = pr.key;
      repl.value = pr.best_value;
      repl.version = pr.best_version;
      repl.token = 0;
      for (Address stale : pr.stale_replicas) {
        read_repairs_++;
        env_->Send(stale, EncodeMessage(repl));
      }
    }
    pending_reads_.erase(it);
  }
}

void EventualClient::Put(const Key& key, Value value, PutCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = pending_[req];
  op.is_put = true;
  op.key = key;
  op.value = std::move(value);
  op.put_cb = std::move(cb);
  SendOp(req);
}

void EventualClient::Get(const Key& key, GetCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = pending_[req];
  op.is_put = false;
  op.key = key;
  op.get_cb = std::move(cb);
  SendOp(req);
}

void EventualClient::SendOp(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  PendingOp& op = it->second;
  if (op.is_put) {
    EvPut msg;
    msg.req = req;
    msg.client = address_;
    msg.key = op.key;
    msg.value = op.value;
    env_->Send(RandomReplica(op.key), EncodeMessage(msg));
  } else {
    EvGet msg;
    msg.req = req;
    msg.client = address_;
    msg.key = op.key;
    env_->Send(RandomReplica(op.key), EncodeMessage(msg));
  }
  ArmTimer(req);
}

void EventualClient::ArmTimer(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  it->second.timer = env_->Schedule(timeout_, [this, req]() {
    if (pending_.contains(req)) {
      retries_++;
      SendOp(req);
    }
  });
}

void EventualClient::OnMessage(Address /*from*/, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kEvPutAck: {
      EvPutAck m;
      if (!DecodeMessage(payload, &m)) {
        return;
      }
      auto it = pending_.find(m.req);
      if (it == pending_.end() || !it->second.is_put) {
        return;
      }
      env_->CancelTimer(it->second.timer);
      PutCallback cb = std::move(it->second.put_cb);
      pending_.erase(it);
      if (cb) {
        cb(Status::Ok());
      }
      break;
    }
    case MsgType::kEvGetReply: {
      EvGetReply m;
      if (!DecodeMessage(payload, &m)) {
        return;
      }
      auto it = pending_.find(m.req);
      if (it == pending_.end() || it->second.is_put) {
        return;
      }
      env_->CancelTimer(it->second.timer);
      GetCallback cb = std::move(it->second.get_cb);
      pending_.erase(it);
      if (cb) {
        cb(Status::Ok(), m.found, m.value);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace chainreaction

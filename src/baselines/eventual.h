// Dynamo/Cassandra-style replication baseline.
//
// Stands in for the Apache Cassandra configurations of the paper's
// evaluation. The client sends each operation to a uniformly random node,
// which acts as coordinator:
//   * kOne    (R=1/W=1, "eventual"): a write is acknowledged as soon as one
//     replica has it (the coordinator if it is a replica); a read queries a
//     single random replica. Fast, no consistency guarantees.
//   * kQuorum: writes wait for ceil((R+1)/2) replica acks; reads query all
//     replicas, return the newest among the first ceil((R+1)/2) replies and
//     repair stale replicas in the background.
// Versions are LWW-ordered by (coordinator lamport clock, coordinator id).
#ifndef SRC_BASELINES_EVENTUAL_H_
#define SRC_BASELINES_EVENTUAL_H_

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/msg/message.h"
#include "src/ring/ring.h"
#include "src/sim/env.h"

namespace chainreaction {

enum class EvConsistency {
  kOne,     // R=1 / W=1
  kQuorum,  // majority reads and writes
};

class EventualNode : public Actor {
 public:
  EventualNode(NodeId id, Ring ring, EvConsistency consistency, uint64_t seed)
      : id_(id), ring_(std::move(ring)), consistency_(consistency), rng_(seed) {}

  void AttachEnv(Env* env) { env_ = env; }
  void OnMessage(Address from, std::string_view payload) override;

  uint64_t reads_served() const { return reads_served_; }
  uint64_t read_repairs() const { return read_repairs_; }

  // Test introspection: the node's current value/version for `key`, or
  // nullptr if absent.
  const Value* Lookup(const Key& key, Version* version) const {
    auto it = store_.find(key);
    if (it == store_.end()) {
      return nullptr;
    }
    if (version != nullptr) {
      *version = it->second.version;
    }
    return &it->second.value;
  }

  // True if this node replicates `key`.
  bool IsReplicaOf(const Key& key) const {
    const auto& chain = ring_.ChainFor(key);
    return std::find(chain.begin(), chain.end(), id_) != chain.end();
  }

 private:
  struct Entry {
    Value value;
    Version version;
  };

  struct PendingWrite {
    RequestId req = 0;
    Address client = 0;
    Key key;
    Version version;
    uint32_t acks_needed = 0;
  };

  struct PendingRead {
    RequestId req = 0;
    Address client = 0;
    Key key;
    uint32_t replies_needed = 0;
    uint32_t replies_seen = 0;
    bool responded = false;
    bool found = false;
    Value best_value;
    Version best_version;
    std::vector<Address> stale_replicas;
  };

  uint32_t QuorumSize() const { return ring_.replication() / 2 + 1; }

  void HandlePut(const EvPut& put);
  void HandleReplicate(const EvReplicate& msg, Address from);
  void HandleReplicateAck(const EvReplicateAck& msg);
  void HandleGet(const EvGet& get);
  void HandleReadQuery(const EvReadQuery& q, Address from);
  void HandleReadReply(const EvReadReply& r, Address from);

  bool ApplyLocal(const Key& key, const Value& value, const Version& version);

  NodeId id_;
  Ring ring_;
  EvConsistency consistency_;
  Rng rng_;
  Env* env_ = nullptr;
  std::unordered_map<Key, Entry> store_;
  uint64_t lamport_ = 0;
  uint64_t next_token_ = 1;
  std::unordered_map<uint64_t, PendingWrite> pending_writes_;
  std::unordered_map<uint64_t, PendingRead> pending_reads_;
  uint64_t reads_served_ = 0;
  uint64_t read_repairs_ = 0;
};

class EventualClient : public Actor {
 public:
  using PutCallback = std::function<void(const Status&)>;
  using GetCallback = std::function<void(const Status&, bool found, const Value&)>;

  EventualClient(Address address, Ring ring, Duration timeout, uint64_t seed)
      : address_(address), ring_(std::move(ring)), timeout_(timeout), rng_(seed) {}

  void AttachEnv(Env* env) { env_ = env; }

  void Put(const Key& key, Value value, PutCallback cb);
  void Get(const Key& key, GetCallback cb);

  void OnMessage(Address from, std::string_view payload) override;

  uint64_t retries() const { return retries_; }

 private:
  struct PendingOp {
    bool is_put = false;
    Key key;
    Value value;
    PutCallback put_cb;
    GetCallback get_cb;
    uint64_t timer = 0;
  };

  void SendOp(RequestId req);
  void ArmTimer(RequestId req);
  // Token-aware routing (as Cassandra drivers do): pick a random *replica*
  // of the key as coordinator, so R1W1 reads are served in one hop.
  Address RandomReplica(const Key& key) {
    const std::vector<NodeId>& chain = ring_.ChainFor(key);
    return chain[rng_.NextBelow(chain.size())];
  }

  Address address_;
  Ring ring_;
  Duration timeout_;
  Rng rng_;
  Env* env_ = nullptr;
  RequestId next_req_ = 1;
  std::unordered_map<RequestId, PendingOp> pending_;
  uint64_t retries_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_BASELINES_EVENTUAL_H_

#include "src/chain/craq.h"

#include <utility>

#include "src/common/logging.h"

namespace chainreaction {

void CraqNode::OnMessage(Address from, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kCraqPut: {
      CraqPut m;
      if (DecodeMessage(payload, &m)) {
        HandlePut(m);
      }
      break;
    }
    case MsgType::kCraqChainPut: {
      CraqChainPut m;
      if (DecodeMessage(payload, &m)) {
        HandleChainPut(m);
      }
      break;
    }
    case MsgType::kCraqCommit: {
      CraqCommit m;
      if (DecodeMessage(payload, &m)) {
        HandleCommit(m);
      }
      break;
    }
    case MsgType::kCraqGet: {
      CraqGet m;
      if (DecodeMessage(payload, &m)) {
        HandleGet(m);
      }
      break;
    }
    case MsgType::kCraqVersionQuery: {
      CraqVersionQuery m;
      if (DecodeMessage(payload, &m)) {
        HandleVersionQuery(m, from);
      }
      break;
    }
    case MsgType::kCraqVersionReply: {
      CraqVersionReply m;
      if (DecodeMessage(payload, &m)) {
        HandleVersionReply(m);
      }
      break;
    }
    default:
      LOG_WARN("craq node %u: unexpected message", id_);
  }
}

void CraqNode::HandlePut(const CraqPut& put) {
  if (ring_.PositionOf(put.key, id_) != 1) {
    env_->Send(ring_.HeadFor(put.key), EncodeMessage(put));
    return;
  }
  const uint64_t seq = ++next_seq_[put.key];
  KeyState& ks = store_[put.key];
  if (ring_.replication() == 1) {
    ks.committed_seq = seq;
    ks.committed_value = put.value;
    CraqPutAck ack{put.req, put.key, seq};
    env_->Send(put.client, EncodeMessage(ack));
    return;
  }
  ks.dirty[seq] = put.value;
  CraqChainPut fwd;
  fwd.key = put.key;
  fwd.value = put.value;
  fwd.seq = seq;
  fwd.client = put.client;
  fwd.req = put.req;
  env_->Send(ring_.SuccessorFor(put.key, id_), EncodeMessage(fwd));
}

void CraqNode::HandleChainPut(const CraqChainPut& msg) {
  const ChainIndex pos = ring_.PositionOf(msg.key, id_);
  if (pos == 0) {
    return;
  }
  KeyState& ks = store_[msg.key];
  if (pos == ring_.replication()) {
    // Tail: the version commits here.
    if (msg.seq > ks.committed_seq) {
      ks.committed_seq = msg.seq;
      ks.committed_value = msg.value;
    }
    CraqPutAck ack{msg.req, msg.key, msg.seq};
    env_->Send(msg.client, EncodeMessage(ack));
    CraqCommit commit{msg.key, msg.seq};
    env_->Send(ring_.PredecessorFor(msg.key, id_), EncodeMessage(commit));
  } else {
    ks.dirty[msg.seq] = msg.value;
    env_->Send(ring_.SuccessorFor(msg.key, id_), EncodeMessage(msg));
  }
}

void CraqNode::HandleCommit(const CraqCommit& msg) {
  const ChainIndex pos = ring_.PositionOf(msg.key, id_);
  if (pos == 0) {
    return;
  }
  KeyState& ks = store_[msg.key];
  // Promote the committed version and drop obsolete dirty entries.
  auto it = ks.dirty.find(msg.seq);
  if (it != ks.dirty.end() && msg.seq > ks.committed_seq) {
    ks.committed_seq = msg.seq;
    ks.committed_value = it->second;
  }
  ks.dirty.erase(ks.dirty.begin(), ks.dirty.upper_bound(msg.seq));
  if (pos > 1) {
    env_->Send(ring_.PredecessorFor(msg.key, id_), EncodeMessage(msg));
  }
}

void CraqNode::HandleGet(const CraqGet& get) {
  const ChainIndex pos = ring_.PositionOf(get.key, id_);
  if (pos == 0) {
    env_->Send(ring_.TailFor(get.key), EncodeMessage(get));
    return;
  }
  auto it = store_.find(get.key);
  const bool dirty = it != store_.end() && !it->second.dirty.empty();
  if (!dirty || pos == ring_.replication()) {
    // Clean (or we are the tail, whose committed state is authoritative).
    CraqGetReply reply;
    reply.req = get.req;
    reply.key = get.key;
    if (it != store_.end() && it->second.committed_seq > 0) {
      reply.found = true;
      reply.value = it->second.committed_value;
      reply.seq = it->second.committed_seq;
    }
    reads_served_++;
    if (pos >= 1 && pos <= reads_by_position_.size()) {
      reads_by_position_[pos - 1]++;
    }
    env_->Send(get.client, EncodeMessage(reply));
    return;
  }
  // Dirty: apportioned query — ask the tail which seq is committed.
  version_queries_++;
  CraqVersionQuery q;
  q.key = get.key;
  q.req = get.req;
  q.client = get.client;
  env_->Send(ring_.TailFor(get.key), EncodeMessage(q));
}

void CraqNode::HandleVersionQuery(const CraqVersionQuery& q, Address from) {
  CraqVersionReply reply;
  reply.key = q.key;
  reply.req = q.req;
  reply.client = q.client;
  auto it = store_.find(q.key);
  reply.committed_seq = it == store_.end() ? 0 : it->second.committed_seq;
  env_->Send(from, EncodeMessage(reply));
}

void CraqNode::ReplyWithCommitted(const Key& key, uint64_t committed_seq, RequestId req,
                                  Address client) {
  CraqGetReply reply;
  reply.req = req;
  reply.key = key;
  auto it = store_.find(key);
  if (it != store_.end() && committed_seq > 0) {
    KeyState& ks = it->second;
    if (committed_seq <= ks.committed_seq) {
      reply.found = true;
      reply.value = ks.committed_value;
      reply.seq = ks.committed_seq;
    } else if (auto dit = ks.dirty.find(committed_seq); dit != ks.dirty.end()) {
      // The tail committed a version we still hold as dirty.
      reply.found = true;
      reply.value = dit->second;
      reply.seq = committed_seq;
    }
  }
  reads_served_++;
  const ChainIndex pos = ring_.PositionOf(key, id_);
  if (pos >= 1 && pos <= reads_by_position_.size()) {
    reads_by_position_[pos - 1]++;
  }
  env_->Send(client, EncodeMessage(reply));
}

void CraqNode::HandleVersionReply(const CraqVersionReply& r) {
  ReplyWithCommitted(r.key, r.committed_seq, r.req, r.client);
}

void CraqClient::Put(const Key& key, Value value, PutCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = pending_[req];
  op.is_put = true;
  op.key = key;
  op.value = std::move(value);
  op.put_cb = std::move(cb);
  SendOp(req);
}

void CraqClient::Get(const Key& key, GetCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = pending_[req];
  op.is_put = false;
  op.key = key;
  op.get_cb = std::move(cb);
  SendOp(req);
}

void CraqClient::SendOp(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  PendingOp& op = it->second;
  if (op.is_put) {
    CraqPut msg;
    msg.req = req;
    msg.client = address_;
    msg.key = op.key;
    msg.value = op.value;
    env_->Send(ring_.HeadFor(op.key), EncodeMessage(msg));
  } else {
    CraqGet msg;
    msg.req = req;
    msg.client = address_;
    msg.key = op.key;
    // CRAQ reads go to a uniformly random chain member.
    const std::vector<NodeId>& chain = ring_.ChainFor(op.key);
    const NodeId target = chain[rng_.NextBelow(chain.size())];
    env_->Send(target, EncodeMessage(msg));
  }
  ArmTimer(req);
}

void CraqClient::ArmTimer(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  it->second.timer = env_->Schedule(timeout_, [this, req]() {
    if (pending_.contains(req)) {
      retries_++;
      SendOp(req);
    }
  });
}

void CraqClient::OnMessage(Address /*from*/, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kCraqPutAck: {
      CraqPutAck m;
      if (!DecodeMessage(payload, &m)) {
        return;
      }
      auto it = pending_.find(m.req);
      if (it == pending_.end() || !it->second.is_put) {
        return;
      }
      env_->CancelTimer(it->second.timer);
      PutCallback cb = std::move(it->second.put_cb);
      pending_.erase(it);
      if (cb) {
        cb(Status::Ok(), m.seq);
      }
      break;
    }
    case MsgType::kCraqGetReply: {
      CraqGetReply m;
      if (!DecodeMessage(payload, &m)) {
        return;
      }
      auto it = pending_.find(m.req);
      if (it == pending_.end() || it->second.is_put) {
        return;
      }
      env_->CancelTimer(it->second.timer);
      GetCallback cb = std::move(it->second.get_cb);
      pending_.erase(it);
      if (cb) {
        cb(Status::Ok(), m.found, m.value, m.seq);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace chainreaction

// Classic Chain Replication baseline (van Renesse & Schneider, OSDI'04), as
// used by FAWN-KV — the linearizable comparison system of the paper.
//
// Writes enter at the head, propagate down the chain, and are acknowledged
// by the tail; reads are served only by the tail. Per-key linearizability
// follows from the single serialization point at the tail.
//
// This baseline runs with static membership: it exists for performance
// comparisons (E2-E5), not for fault-tolerance experiments, which target
// the ChainReaction implementation.
#ifndef SRC_CHAIN_CR_H_
#define SRC_CHAIN_CR_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/ring/ring.h"
#include "src/sim/env.h"

namespace chainreaction {

class CrNode : public Actor {
 public:
  CrNode(NodeId id, Ring ring) : id_(id), ring_(std::move(ring)) {}

  void AttachEnv(Env* env) { env_ = env; }
  void OnMessage(Address from, std::string_view payload) override;

  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_applied() const { return writes_applied_; }

 private:
  struct Entry {
    Value value;
    uint64_t seq = 0;
  };

  void HandlePut(const CrPut& put);
  void HandleChainPut(const CrChainPut& msg);
  void HandleChainAck(const CrChainAck& msg);
  void HandleGet(const CrGet& get);
  void Apply(const Key& key, const Value& value, uint64_t seq);

  NodeId id_;
  Ring ring_;
  Env* env_ = nullptr;
  std::unordered_map<Key, Entry> store_;
  std::unordered_map<Key, uint64_t> next_seq_;  // head only
  uint64_t reads_served_ = 0;
  uint64_t writes_applied_ = 0;
};

class CrClient : public Actor {
 public:
  using PutCallback = std::function<void(const Status&, uint64_t seq)>;
  using GetCallback = std::function<void(const Status&, bool found, const Value&, uint64_t seq)>;

  CrClient(Address address, Ring ring, Duration timeout)
      : address_(address), ring_(std::move(ring)), timeout_(timeout) {}

  void AttachEnv(Env* env) { env_ = env; }

  void Put(const Key& key, Value value, PutCallback cb);
  void Get(const Key& key, GetCallback cb);

  void OnMessage(Address from, std::string_view payload) override;

  uint64_t retries() const { return retries_; }

 private:
  struct PendingOp {
    bool is_put = false;
    Key key;
    Value value;
    PutCallback put_cb;
    GetCallback get_cb;
    uint64_t timer = 0;
  };

  void SendOp(RequestId req);
  void ArmTimer(RequestId req);

  Address address_;
  Ring ring_;
  Duration timeout_;
  Env* env_ = nullptr;
  RequestId next_req_ = 1;
  std::unordered_map<RequestId, PendingOp> pending_;
  uint64_t retries_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_CHAIN_CR_H_

#include "src/chain/cr.h"

#include <utility>

#include "src/common/logging.h"

namespace chainreaction {

void CrNode::OnMessage(Address /*from*/, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kCrPut: {
      CrPut m;
      if (DecodeMessage(payload, &m)) {
        HandlePut(m);
      }
      break;
    }
    case MsgType::kCrChainPut: {
      CrChainPut m;
      if (DecodeMessage(payload, &m)) {
        HandleChainPut(m);
      }
      break;
    }
    case MsgType::kCrChainAck: {
      CrChainAck m;
      if (DecodeMessage(payload, &m)) {
        HandleChainAck(m);
      }
      break;
    }
    case MsgType::kCrGet: {
      CrGet m;
      if (DecodeMessage(payload, &m)) {
        HandleGet(m);
      }
      break;
    }
    default:
      LOG_WARN("cr node %u: unexpected message", id_);
  }
}

void CrNode::Apply(const Key& key, const Value& value, uint64_t seq) {
  Entry& e = store_[key];
  if (seq > e.seq) {
    e.value = value;
    e.seq = seq;
    writes_applied_++;
  }
}

void CrNode::HandlePut(const CrPut& put) {
  if (ring_.PositionOf(put.key, id_) != 1) {
    env_->Send(ring_.HeadFor(put.key), EncodeMessage(put));
    return;
  }
  const uint64_t seq = ++next_seq_[put.key];
  Apply(put.key, put.value, seq);
  if (ring_.replication() == 1) {
    CrPutAck ack{put.req, put.key, seq};
    env_->Send(put.client, EncodeMessage(ack));
    return;
  }
  CrChainPut fwd;
  fwd.key = put.key;
  fwd.value = put.value;
  fwd.seq = seq;
  fwd.client = put.client;
  fwd.req = put.req;
  env_->Send(ring_.SuccessorFor(put.key, id_), EncodeMessage(fwd));
}

void CrNode::HandleChainPut(const CrChainPut& msg) {
  const ChainIndex pos = ring_.PositionOf(msg.key, id_);
  if (pos == 0) {
    return;
  }
  Apply(msg.key, msg.value, msg.seq);
  if (pos == ring_.replication()) {
    // FAWN-KV style: the ack travels back up the chain; the head replies.
    CrChainAck ack{msg.key, msg.seq, msg.client, msg.req};
    env_->Send(ring_.PredecessorFor(msg.key, id_), EncodeMessage(ack));
  } else {
    env_->Send(ring_.SuccessorFor(msg.key, id_), EncodeMessage(msg));
  }
}

void CrNode::HandleChainAck(const CrChainAck& msg) {
  const ChainIndex pos = ring_.PositionOf(msg.key, id_);
  if (pos == 0) {
    return;
  }
  if (pos == 1) {
    CrPutAck ack{msg.req, msg.key, msg.seq};
    env_->Send(msg.client, EncodeMessage(ack));
  } else {
    env_->Send(ring_.PredecessorFor(msg.key, id_), EncodeMessage(msg));
  }
}

void CrNode::HandleGet(const CrGet& get) {
  // Only the tail answers reads; anything else forwards (a client normally
  // addresses the tail directly, so this is just stale-ring insurance).
  if (ring_.PositionOf(get.key, id_) != ring_.replication()) {
    env_->Send(ring_.TailFor(get.key), EncodeMessage(get));
    return;
  }
  CrGetReply reply;
  reply.req = get.req;
  reply.key = get.key;
  auto it = store_.find(get.key);
  if (it != store_.end()) {
    reply.found = true;
    reply.value = it->second.value;
    reply.seq = it->second.seq;
  }
  reads_served_++;
  env_->Send(get.client, EncodeMessage(reply));
}

void CrClient::Put(const Key& key, Value value, PutCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = pending_[req];
  op.is_put = true;
  op.key = key;
  op.value = std::move(value);
  op.put_cb = std::move(cb);
  SendOp(req);
}

void CrClient::Get(const Key& key, GetCallback cb) {
  const RequestId req = next_req_++;
  PendingOp& op = pending_[req];
  op.is_put = false;
  op.key = key;
  op.get_cb = std::move(cb);
  SendOp(req);
}

void CrClient::SendOp(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  PendingOp& op = it->second;
  if (op.is_put) {
    CrPut msg;
    msg.req = req;
    msg.client = address_;
    msg.key = op.key;
    msg.value = op.value;
    env_->Send(ring_.HeadFor(op.key), EncodeMessage(msg));
  } else {
    CrGet msg;
    msg.req = req;
    msg.client = address_;
    msg.key = op.key;
    env_->Send(ring_.TailFor(op.key), EncodeMessage(msg));
  }
  ArmTimer(req);
}

void CrClient::ArmTimer(RequestId req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  it->second.timer = env_->Schedule(timeout_, [this, req]() {
    if (pending_.contains(req)) {
      retries_++;
      SendOp(req);
    }
  });
}

void CrClient::OnMessage(Address /*from*/, std::string_view payload) {
  switch (PeekType(payload)) {
    case MsgType::kCrPutAck: {
      CrPutAck m;
      if (!DecodeMessage(payload, &m)) {
        return;
      }
      auto it = pending_.find(m.req);
      if (it == pending_.end() || !it->second.is_put) {
        return;
      }
      env_->CancelTimer(it->second.timer);
      PutCallback cb = std::move(it->second.put_cb);
      pending_.erase(it);
      if (cb) {
        cb(Status::Ok(), m.seq);
      }
      break;
    }
    case MsgType::kCrGetReply: {
      CrGetReply m;
      if (!DecodeMessage(payload, &m)) {
        return;
      }
      auto it = pending_.find(m.req);
      if (it == pending_.end() || it->second.is_put) {
        return;
      }
      env_->CancelTimer(it->second.timer);
      GetCallback cb = std::move(it->second.get_cb);
      pending_.erase(it);
      if (cb) {
        cb(Status::Ok(), m.found, m.value, m.seq);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace chainreaction

// CRAQ baseline (Terrace & Freedman, USENIX ATC'09): Chain Replication with
// Apportioned Queries.
//
// Writes behave like classic CR (head -> tail, ack at tail) with an extra
// backward commit wave so that every node learns when a version is clean.
// Reads may be served by ANY chain node: a node whose newest version for the
// key is clean answers immediately; a node holding a dirty (uncommitted)
// version first asks the tail for the committed sequence number and then
// answers with that committed version. This gives linearizable reads with
// chain-wide read spreading — but pays one round trip to the tail whenever
// the object is dirty, which is the gap ChainReaction exploits on
// write-containing workloads.
#ifndef SRC_CHAIN_CRAQ_H_
#define SRC_CHAIN_CRAQ_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/ring/ring.h"
#include "src/sim/env.h"

namespace chainreaction {

class CraqNode : public Actor {
 public:
  CraqNode(NodeId id, Ring ring) : id_(id), ring_(std::move(ring)) {}

  void AttachEnv(Env* env) { env_ = env; }
  void OnMessage(Address from, std::string_view payload) override;

  uint64_t reads_served() const { return reads_served_; }
  uint64_t version_queries() const { return version_queries_; }
  const std::vector<uint64_t>& reads_by_position() const { return reads_by_position_; }

 private:
  struct KeyState {
    uint64_t committed_seq = 0;
    Value committed_value;
    // Dirty versions in ascending seq order (usually zero or one entry).
    std::map<uint64_t, Value> dirty;
  };

  void HandlePut(const CraqPut& put);
  void HandleChainPut(const CraqChainPut& msg);
  void HandleCommit(const CraqCommit& msg);
  void HandleGet(const CraqGet& get);
  void HandleVersionQuery(const CraqVersionQuery& q, Address from);
  void HandleVersionReply(const CraqVersionReply& r);

  void ReplyWithCommitted(const Key& key, uint64_t committed_seq, RequestId req, Address client);

  NodeId id_;
  Ring ring_;
  Env* env_ = nullptr;
  std::unordered_map<Key, KeyState> store_;
  std::unordered_map<Key, uint64_t> next_seq_;  // head only
  uint64_t reads_served_ = 0;
  uint64_t version_queries_ = 0;
  std::vector<uint64_t> reads_by_position_ = std::vector<uint64_t>(16, 0);
};

class CraqClient : public Actor {
 public:
  using PutCallback = std::function<void(const Status&, uint64_t seq)>;
  using GetCallback = std::function<void(const Status&, bool found, const Value&, uint64_t seq)>;

  CraqClient(Address address, Ring ring, Duration timeout, uint64_t seed)
      : address_(address), ring_(std::move(ring)), timeout_(timeout), rng_(seed) {}

  void AttachEnv(Env* env) { env_ = env; }

  void Put(const Key& key, Value value, PutCallback cb);
  void Get(const Key& key, GetCallback cb);

  void OnMessage(Address from, std::string_view payload) override;

  uint64_t retries() const { return retries_; }

 private:
  struct PendingOp {
    bool is_put = false;
    Key key;
    Value value;
    PutCallback put_cb;
    GetCallback get_cb;
    uint64_t timer = 0;
  };

  void SendOp(RequestId req);
  void ArmTimer(RequestId req);

  Address address_;
  Ring ring_;
  Duration timeout_;
  Rng rng_;
  Env* env_ = nullptr;
  RequestId next_req_ = 1;
  std::unordered_map<RequestId, PendingOp> pending_;
  uint64_t retries_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_CHAIN_CRAQ_H_

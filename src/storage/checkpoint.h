// Durable checkpoints of a node's versioned store.
//
// A checkpoint is a single file: a magic/format header, every retained
// version (key, value, version, stability, dependency list), and a trailing
// FNV-1a checksum over the payload. Loading verifies the checksum and
// replays versions through the normal Apply/MarkStable path, so a restored
// store is behaviourally identical (including causal bookkeeping) to the
// one that was saved.
//
// Saving is atomic: the checkpoint is written to `<path>.tmp`, fsynced, and
// renamed over `path`, so a crash mid-save leaves the previous checkpoint
// intact — the invariant the WAL's truncation protocol depends on (segments
// are deleted only once a checkpoint covering them is durably in place).
//
// Format versions: v1 files carry no WAL coordination; v2 adds the sequence
// number of the WAL segment that was active when the checkpoint was taken,
// letting recovery skip segments the checkpoint fully covers. v3 adds the
// storage-engine kind: under the mem engine entries carry values inline
// (v2 shape, O(data)); under a disk engine the file is an *index* snapshot
// — a value-log manifest (active segment + high-water mark) plus per-entry
// ValueHandles instead of values, so checkpoint size scales with the index,
// not the data. Loading accepts v1-v3; unknown future versions are rejected
// with kCorruption. Loading a disk-kind checkpoint requires a disk engine
// (opened over the same value-log directory) attached to `store`; loading a
// mem/v1/v2 checkpoint works under either engine — values are re-appended.
//
// Together with the WAL (src/wal/) this is the recovery path for restarting
// a crashed node from local state instead of a full chain resync; the
// chain-repair machinery then only re-propagates what the node missed while
// it was down.
#ifndef SRC_STORAGE_CHECKPOINT_H_
#define SRC_STORAGE_CHECKPOINT_H_

#include <string>

#include "src/common/result.h"
#include "src/storage/versioned_store.h"

namespace chainreaction {

// Writes `store` to `path` atomically (tmp + fsync + rename). `wal_seq` is
// the WAL truncation floor recorded in the header: replaying segments with
// sequence >= wal_seq over this checkpoint reconstructs the saved node's
// state (0 = no WAL coordination). Returns kInternal on I/O failure.
Status SaveCheckpoint(const VersionedStore& store, const std::string& path,
                      uint64_t wal_seq = 0);

// Replays the checkpoint at `path` into `store` (which should be empty).
// `wal_seq` (may be null) receives the header's WAL truncation floor, 0 for
// v1 files. Returns kNotFound if the file does not exist, kCorruption on
// checksum mismatch or an unknown format version.
Status LoadCheckpoint(const std::string& path, VersionedStore* store,
                      uint64_t* wal_seq = nullptr);

}  // namespace chainreaction

#endif  // SRC_STORAGE_CHECKPOINT_H_

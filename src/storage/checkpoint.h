// Durable checkpoints of a node's versioned store.
//
// A checkpoint is a single file: a magic/format header, every retained
// version (key, value, version, stability, dependency list), and a trailing
// FNV-1a checksum over the payload. Loading verifies the checksum and
// replays versions through the normal Apply/MarkStable path, so a restored
// store is behaviourally identical (including causal bookkeeping) to the
// one that was saved.
//
// This is the recovery building block for restarting a crashed node from
// local state instead of a full chain resync; the chain-repair machinery
// then only re-propagates what the node missed while it was down.
#ifndef SRC_STORAGE_CHECKPOINT_H_
#define SRC_STORAGE_CHECKPOINT_H_

#include <string>

#include "src/common/result.h"
#include "src/storage/versioned_store.h"

namespace chainreaction {

// Writes `store` to `path` (overwriting). Returns kInternal on I/O failure.
Status SaveCheckpoint(const VersionedStore& store, const std::string& path);

// Replays the checkpoint at `path` into `store` (which should be empty).
// Returns kNotFound if the file does not exist, kCorruption on checksum or
// format mismatch.
Status LoadCheckpoint(const std::string& path, VersionedStore* store);

}  // namespace chainreaction

#endif  // SRC_STORAGE_CHECKPOINT_H_

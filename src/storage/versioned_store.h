// Per-node multi-version key-value store over a pluggable value engine.
//
// Each key holds a small list of versions ordered by the convergent LWW
// order (lamport, origin). Nodes apply versions idempotently (duplicates
// from chain-repair re-propagation are absorbed), track which versions are
// DC-Write-Stable, and keep the componentwise-max version vector of all
// applied versions per key — the predicate used for causal dependency
// checks ("has this node applied at least version v of key k?").
//
// Version garbage collection keeps the newest stable version and anything
// newer, bounding per-key memory.
//
// Value storage is delegated to a StorageEngine (src/engine/). The default
// mem engine keeps values inline in the index entries — the historical
// behavior, byte for byte. With a disk engine attached, values live in an
// append-only log and index entries carry a ValueHandle; a bounded LRU
// residency cache keeps hot values materialized in memory, so Latest/Find/
// LatestStable still hand out `const StoredVersion*` with a filled `value`.
//
// Pointer lifetime with a disk engine: a materialized value stays resident
// at least until eight further values are materialized (the most recent
// materializations are pinned against eviction), so the usual pattern —
// look up, read fields, drop the pointer before the next store call — is
// safe. Callers that only need version metadata should use the *Meta
// accessors, which never touch the engine or the cache.
#ifndef SRC_STORAGE_VERSIONED_STORE_H_
#define SRC_STORAGE_VERSIONED_STORE_H_

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/node_cache.h"
#include "src/common/small_vector.h"
#include "src/common/types.h"
#include "src/common/version.h"
#include "src/engine/storage_engine.h"

namespace chainreaction {

struct StoredVersion {
  Value value;  // empty when a disk engine holds the bytes and !resident
  Version version;
  bool stable = false;
  // Write-time dependency list (served to multi-get read transactions).
  // Inline capacity 2: the client's accessed-set collapses to one entry per
  // acked write, so nearly every stored list fits without a heap block —
  // the apply path stays at one allocation (the value copy) per replica.
  SmallVector<Dependency, 2> deps;

  // Engine bookkeeping (disk engine only; dormant under the mem engine).
  ValueHandle handle;
  bool resident = true;  // `value` holds the bytes
  bool cached = false;   // on the store's LRU list
  std::list<std::pair<Key, Version>>::iterator lru_it{};
};

class VersionedStore {
 public:
  VersionedStore();
  ~VersionedStore();
  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  // Replaces the default mem engine. Must be called before any data is
  // applied; calling with data present aborts.
  void AttachEngine(std::unique_ptr<StorageEngine> engine);
  StorageEngine* engine() const { return engine_.get(); }

  // Residency-cache budget (disk engine only): total bytes of materialized
  // values kept in memory. The most recently materialized entries are
  // pinned regardless of budget (see file comment).
  void SetCacheBudget(uint64_t bytes) { cache_budget_ = bytes; }
  uint64_t cache_budget() const { return cache_budget_; }

  // Inserts (value, version) for key. Returns true if newly applied, false
  // if this exact version was already present. `value` may alias a transport
  // receive buffer (the zero-copy put path): the store makes its own copy —
  // the only one on the apply path — before returning. `deps` is borrowed
  // for the call (any contiguous Dependency range: vector or DepList).
  bool Apply(const Key& key, std::string_view value, const Version& version,
             std::span<const Dependency> deps = {});

  // Re-registers an already-logged version during checkpoint recovery: the
  // engine holds the bytes at `handle`; nothing is written. Returns false
  // if the handle cannot be adopted (log/checkpoint mismatch).
  bool Adopt(const Key& key, const Version& version, std::vector<Dependency> deps,
             const ValueHandle& handle);

  // Marks `version` (and every older version of the key) stable. Returns
  // true if the key/version exists.
  bool MarkStable(const Key& key, const Version& version);

  // Newest version in LWW order, or nullptr if the key is absent. The
  // returned entry has `value` materialized (engine read on cache miss).
  const StoredVersion* Latest(const Key& key) const;

  // Exact version lookup, or nullptr. Value materialized.
  const StoredVersion* Find(const Key& key, const Version& version) const;

  // Newest stable version, or nullptr. Value materialized.
  const StoredVersion* LatestStable(const Key& key) const;

  // Metadata-only variants: same lookups, but `value` may be empty (never
  // materialized, never an engine read). For callers that only need the
  // version / stable bit / deps.
  const StoredVersion* LatestMeta(const Key& key) const;
  const StoredVersion* FindMeta(const Key& key, const Version& version) const;
  const StoredVersion* LatestStableMeta(const Key& key) const;

  // True iff the key has at least one not-yet-stable version.
  bool HasUnstable(const Key& key) const;

  // True iff this node has applied versions of `key` whose merged version
  // vector dominates `min.vv` — i.e. it has the causal past `min` denotes.
  bool HasAtLeast(const Key& key, const Version& min) const;

  // Merged version vector of all versions of `key` ever applied here.
  const VersionVector* AppliedVv(const Key& key) const;

  size_t KeyCount() const { return table_.size(); }
  size_t VersionCount(const Key& key) const;
  uint64_t total_versions() const { return total_versions_; }

  // Iterates all keys. Metadata only: `latest.value` may be empty under a
  // disk engine (used for chain-repair key discovery and recovery scans).
  void ForEachKey(const std::function<void(const Key&, const StoredVersion& latest)>& fn) const;

  // Iterates every retained version of every key with values materialized
  // (mem-engine checkpointing; O(data) under a disk engine).
  void ForEachVersion(const std::function<void(const Key&, const StoredVersion&)>& fn) const;

  // Same iteration, metadata + handles only — no engine reads. This is what
  // an incremental (index-only) checkpoint walks.
  void ForEachVersionRaw(
      const std::function<void(const Key&, const StoredVersion&)>& fn) const;

  // Versions of `key` that are not yet stable (oldest first), values
  // materialized; used by chain heads to re-propagate after a
  // reconfiguration.
  std::vector<StoredVersion> UnstableVersions(const Key& key) const;

  // Runs one engine compaction round if the garbage threshold is met,
  // repointing index handles at moved records. Returns true if a segment
  // was compacted.
  bool CompactEngine();

  // Deletes fully-dead log segments. Call only after a checkpoint that no
  // longer references them has been durably written.
  void PurgeEngineGarbage() { engine_->PurgeDeadSegments(); }

  // Stable-watermark tracking (dep_watermark; DESIGN.md §14) --------------
  // Tracks the multiset of lamport timestamps of not-yet-stable versions
  // whose origin DC is `origin`, across ALL keys. A node's stable cut is
  // bounded by MinTrackedUnstableLamport() - 1: every replica holding an
  // unstable copy of a locally-minted version caps the cluster watermark,
  // so the minimum over the ring never admits an unstable dependency even
  // if the version's head died. Enable before applying data.
  void TrackStabilityFor(DcId origin) {
    wm_tracking_ = true;
    wm_origin_ = origin;
  }
  bool HasTrackedUnstable() const { return !unstable_lamports_.empty(); }
  // Smallest tracked unstable lamport; only meaningful if HasTrackedUnstable().
  uint64_t MinTrackedUnstableLamport() const {
    return unstable_lamports_.begin()->first;
  }

  // Residency stats. Under the mem engine, resident == everything.
  uint64_t resident_versions() const;
  uint64_t resident_bytes() const { return inline_bytes_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  struct KeyState {
    std::vector<StoredVersion> versions;  // ascending LWW order
    VersionVector applied_vv;
  };

  void Trim(KeyState* ks);
  void DropEntry(StoredVersion* sv);  // cache + engine accounting on erase
  void TrackUnstable(const Version& v);
  void UntrackUnstable(const Version& v);
  StoredVersion* Materialize(const Key& key, StoredVersion* sv);
  void TouchLru(const Key& key, StoredVersion* sv);
  void EvictOverBudget();
  StoredVersion* FindEntry(const Key& key, const Version& version);

  std::unordered_map<Key, KeyState> table_;
  uint64_t total_versions_ = 0;

  // Watermark tracking: lamport -> count of unstable versions carrying it
  // (distinct keys may collide on a lamport).
  bool wm_tracking_ = false;
  DcId wm_origin_ = 0;
  std::map<uint64_t, uint32_t> unstable_lamports_;
  // Every apply inserts a lamport here and every stabilization erases one;
  // recycling the map node keeps watermark tracking off the allocator.
  MapNodeCache<std::map<uint64_t, uint32_t>> unstable_lamports_cache_;

  std::unique_ptr<StorageEngine> engine_;
  uint64_t cache_budget_ = 64u << 20;
  uint64_t ops_since_compact_ = 0;

  // Residency cache (disk engine): MRU-first list of materialized entries.
  // Mutable because materialization happens inside const accessors.
  mutable std::list<std::pair<Key, Version>> lru_;
  mutable uint64_t inline_bytes_ = 0;  // bytes held in resident `value`s
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_STORAGE_VERSIONED_STORE_H_

// Per-node in-memory multi-version key-value store.
//
// Each key holds a small list of versions ordered by the convergent LWW
// order (lamport, origin). Nodes apply versions idempotently (duplicates
// from chain-repair re-propagation are absorbed), track which versions are
// DC-Write-Stable, and keep the componentwise-max version vector of all
// applied versions per key — the predicate used for causal dependency
// checks ("has this node applied at least version v of key k?").
//
// Version garbage collection keeps the newest stable version and anything
// newer, bounding per-key memory.
#ifndef SRC_STORAGE_VERSIONED_STORE_H_
#define SRC_STORAGE_VERSIONED_STORE_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/common/version.h"

namespace chainreaction {

struct StoredVersion {
  Value value;
  Version version;
  bool stable = false;
  // Write-time dependency list (served to multi-get read transactions).
  std::vector<Dependency> deps;
};

class VersionedStore {
 public:
  // Inserts (value, version) for key. Returns true if newly applied, false
  // if this exact version was already present.
  bool Apply(const Key& key, Value value, const Version& version,
             std::vector<Dependency> deps = {});

  // Marks `version` (and every older version of the key) stable. Returns
  // true if the key/version exists.
  bool MarkStable(const Key& key, const Version& version);

  // Newest version in LWW order, or nullptr if the key is absent.
  const StoredVersion* Latest(const Key& key) const;

  // Exact version lookup, or nullptr.
  const StoredVersion* Find(const Key& key, const Version& version) const;

  // Newest stable version, or nullptr.
  const StoredVersion* LatestStable(const Key& key) const;

  // True iff this node has applied versions of `key` whose merged version
  // vector dominates `min.vv` — i.e. it has the causal past `min` denotes.
  bool HasAtLeast(const Key& key, const Version& min) const;

  // Merged version vector of all versions of `key` ever applied here.
  const VersionVector* AppliedVv(const Key& key) const;

  size_t KeyCount() const { return table_.size(); }
  size_t VersionCount(const Key& key) const;
  uint64_t total_versions() const { return total_versions_; }

  // Iterates all keys (used for chain-repair state transfer).
  void ForEachKey(const std::function<void(const Key&, const StoredVersion& latest)>& fn) const;

  // Iterates every retained version of every key (checkpointing).
  void ForEachVersion(const std::function<void(const Key&, const StoredVersion&)>& fn) const;

  // Versions of `key` that are not yet stable (oldest first); used by chain
  // heads to re-propagate after a reconfiguration.
  std::vector<StoredVersion> UnstableVersions(const Key& key) const;

 private:
  struct KeyState {
    std::vector<StoredVersion> versions;  // ascending LWW order
    VersionVector applied_vv;
  };

  void Trim(KeyState* ks);

  std::unordered_map<Key, KeyState> table_;
  uint64_t total_versions_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_STORAGE_VERSIONED_STORE_H_

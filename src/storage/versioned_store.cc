#include "src/storage/versioned_store.h"

#include <algorithm>

namespace chainreaction {

bool VersionedStore::Apply(const Key& key, Value value, const Version& version,
                           std::vector<Dependency> deps) {
  KeyState& ks = table_[key];
  // Insertion point in ascending LWW order.
  auto it = std::lower_bound(
      ks.versions.begin(), ks.versions.end(), version,
      [](const StoredVersion& sv, const Version& v) { return sv.version.LwwLess(v); });
  if (it != ks.versions.end() && it->version == version) {
    return false;  // duplicate (e.g. repair re-propagation)
  }
  ks.versions.insert(it, StoredVersion{std::move(value), version, false, std::move(deps)});
  ks.applied_vv.MergeMax(version.vv);
  total_versions_++;
  Trim(&ks);
  return true;
}

bool VersionedStore::MarkStable(const Key& key, const Version& version) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return false;
  }
  bool found = false;
  for (StoredVersion& sv : it->second.versions) {
    if (sv.version == version || version.CausallyIncludes(sv.version)) {
      // Stability is prefix-closed along the chain: everything the stable
      // version causally includes is stable too.
      sv.stable = true;
      found = found || sv.version == version;
    }
  }
  if (found) {
    Trim(&it->second);
  }
  return found;
}

const StoredVersion* VersionedStore::Latest(const Key& key) const {
  auto it = table_.find(key);
  if (it == table_.end() || it->second.versions.empty()) {
    return nullptr;
  }
  return &it->second.versions.back();
}

const StoredVersion* VersionedStore::Find(const Key& key, const Version& version) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return nullptr;
  }
  for (const StoredVersion& sv : it->second.versions) {
    if (sv.version == version) {
      return &sv;
    }
  }
  return nullptr;
}

const StoredVersion* VersionedStore::LatestStable(const Key& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return nullptr;
  }
  const auto& versions = it->second.versions;
  for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
    if (rit->stable) {
      return &*rit;
    }
  }
  return nullptr;
}

bool VersionedStore::HasAtLeast(const Key& key, const Version& min) const {
  if (min.IsNull()) {
    return true;
  }
  auto it = table_.find(key);
  if (it == table_.end()) {
    return false;
  }
  return it->second.applied_vv.Dominates(min.vv);
}

const VersionVector* VersionedStore::AppliedVv(const Key& key) const {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second.applied_vv;
}

size_t VersionedStore::VersionCount(const Key& key) const {
  auto it = table_.find(key);
  return it == table_.end() ? 0 : it->second.versions.size();
}

void VersionedStore::ForEachKey(
    const std::function<void(const Key&, const StoredVersion&)>& fn) const {
  for (const auto& [key, ks] : table_) {
    if (!ks.versions.empty()) {
      fn(key, ks.versions.back());
    }
  }
}

void VersionedStore::ForEachVersion(
    const std::function<void(const Key&, const StoredVersion&)>& fn) const {
  for (const auto& [key, ks] : table_) {
    for (const StoredVersion& sv : ks.versions) {
      fn(key, sv);
    }
  }
}

std::vector<StoredVersion> VersionedStore::UnstableVersions(const Key& key) const {
  std::vector<StoredVersion> out;
  auto it = table_.find(key);
  if (it == table_.end()) {
    return out;
  }
  for (const StoredVersion& sv : it->second.versions) {
    if (!sv.stable) {
      out.push_back(sv);
    }
  }
  return out;
}

void VersionedStore::Trim(KeyState* ks) {
  // Drop everything older than the newest stable version.
  auto& versions = ks->versions;
  size_t newest_stable = versions.size();
  for (size_t i = versions.size(); i-- > 0;) {
    if (versions[i].stable) {
      newest_stable = i;
      break;
    }
  }
  if (newest_stable != versions.size() && newest_stable > 0) {
    total_versions_ -= newest_stable;
    versions.erase(versions.begin(), versions.begin() + static_cast<long>(newest_stable));
  }
}

}  // namespace chainreaction

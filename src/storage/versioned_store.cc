#include "src/storage/versioned_store.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/logging.h"

namespace chainreaction {

namespace {
// Materialized entries newer than this many materializations are never
// evicted, so a caller-held `const StoredVersion*` stays valid across the
// handful of store calls a single message handler makes.
constexpr size_t kPinnedRecent = 8;
// Apply()s between opportunistic compaction checks.
constexpr uint64_t kCompactCheckInterval = 512;
}  // namespace

VersionedStore::VersionedStore() : engine_(MakeMemEngine()) {}

VersionedStore::~VersionedStore() = default;

void VersionedStore::AttachEngine(std::unique_ptr<StorageEngine> engine) {
  if (!table_.empty()) {
    LOG_ERROR("AttachEngine on a non-empty store");
    std::abort();
  }
  engine_ = std::move(engine);
}

bool VersionedStore::Apply(const Key& key, std::string_view value, const Version& version,
                           std::span<const Dependency> deps) {
  KeyState& ks = table_[key];
  // Insertion point in ascending LWW order.
  auto it = std::lower_bound(
      ks.versions.begin(), ks.versions.end(), version,
      [](const StoredVersion& sv, const Version& v) { return sv.version.LwwLess(v); });
  if (it != ks.versions.end() && it->version == version) {
    return false;  // duplicate (e.g. repair re-propagation)
  }
  StoredVersion sv;
  sv.version = version;
  sv.deps.assign(deps.begin(), deps.end());
  TrackUnstable(version);
  if (!engine_->inline_values()) {
    sv.handle = engine_->Append(key, version, value);
  }
  const size_t value_bytes = value.size();
  sv.value.assign(value.data(), value.size());  // the single owned copy
  sv.resident = true;
  auto inserted = ks.versions.insert(it, std::move(sv));
  inline_bytes_ += value_bytes;
  if (!engine_->inline_values()) {
    TouchLru(key, &*inserted);
  }
  ks.applied_vv.MergeMax(version.vv);
  total_versions_++;
  Trim(&ks);
  if (!engine_->inline_values()) {
    EvictOverBudget();
    if (++ops_since_compact_ >= kCompactCheckInterval) {
      ops_since_compact_ = 0;
      CompactEngine();
    }
  }
  return true;
}

bool VersionedStore::Adopt(const Key& key, const Version& version,
                           std::vector<Dependency> deps, const ValueHandle& handle) {
  KeyState& ks = table_[key];
  auto it = std::lower_bound(
      ks.versions.begin(), ks.versions.end(), version,
      [](const StoredVersion& sv, const Version& v) { return sv.version.LwwLess(v); });
  if (it != ks.versions.end() && it->version == version) {
    return true;  // idempotent
  }
  if (!engine_->AdoptLive(handle)) {
    return false;
  }
  StoredVersion sv;
  sv.version = version;
  sv.deps.assign(deps.begin(), deps.end());  // recovery path; copy is cold
  TrackUnstable(version);
  sv.handle = handle;
  sv.resident = false;
  ks.versions.insert(it, std::move(sv));
  ks.applied_vv.MergeMax(version.vv);
  total_versions_++;
  return true;
}

bool VersionedStore::MarkStable(const Key& key, const Version& version) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return false;
  }
  bool found = false;
  for (StoredVersion& sv : it->second.versions) {
    if (sv.version == version || version.CausallyIncludes(sv.version)) {
      // Stability is prefix-closed along the chain: everything the stable
      // version causally includes is stable too.
      if (!sv.stable) {
        sv.stable = true;
        UntrackUnstable(sv.version);
      }
      found = found || sv.version == version;
    }
  }
  if (found) {
    Trim(&it->second);
  }
  return found;
}

StoredVersion* VersionedStore::FindEntry(const Key& key, const Version& version) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return nullptr;
  }
  for (StoredVersion& sv : it->second.versions) {
    if (sv.version == version) {
      return &sv;
    }
  }
  return nullptr;
}

StoredVersion* VersionedStore::Materialize(const Key& key, StoredVersion* sv) {
  if (engine_->inline_values()) {
    return sv;
  }
  if (sv->resident) {
    cache_hits_++;
    TouchLru(key, sv);
    return sv;
  }
  cache_misses_++;
  const Status st = engine_->Read(sv->handle, &sv->value);
  if (!st.ok()) {
    // The index says this version exists but its log record is unreadable:
    // the value log is corrupt, which is not survivable.
    LOG_ERROR("value log read failed for key '%s': %s", key.c_str(),
              st.ToString().c_str());
    std::abort();
  }
  sv->resident = true;
  inline_bytes_ += sv->value.size();
  TouchLru(key, sv);
  EvictOverBudget();
  return sv;
}

void VersionedStore::TouchLru(const Key& key, StoredVersion* sv) {
  if (sv->cached) {
    lru_.splice(lru_.begin(), lru_, sv->lru_it);
  } else {
    lru_.emplace_front(key, sv->version);
    sv->lru_it = lru_.begin();
    sv->cached = true;
  }
}

void VersionedStore::EvictOverBudget() {
  while (inline_bytes_ > cache_budget_ && lru_.size() > kPinnedRecent) {
    const auto& [key, version] = lru_.back();
    StoredVersion* sv = FindEntry(key, version);
    if (sv != nullptr && sv->resident) {
      inline_bytes_ -= sv->value.size();
      sv->value.clear();
      sv->value.shrink_to_fit();
      sv->resident = false;
      sv->cached = false;
    }
    lru_.pop_back();
  }
}

const StoredVersion* VersionedStore::Latest(const Key& key) const {
  auto* self = const_cast<VersionedStore*>(this);
  auto it = self->table_.find(key);
  if (it == self->table_.end() || it->second.versions.empty()) {
    return nullptr;
  }
  return self->Materialize(key, &it->second.versions.back());
}

const StoredVersion* VersionedStore::Find(const Key& key, const Version& version) const {
  auto* self = const_cast<VersionedStore*>(this);
  StoredVersion* sv = self->FindEntry(key, version);
  return sv == nullptr ? nullptr : self->Materialize(key, sv);
}

const StoredVersion* VersionedStore::LatestStable(const Key& key) const {
  auto* self = const_cast<VersionedStore*>(this);
  auto it = self->table_.find(key);
  if (it == self->table_.end()) {
    return nullptr;
  }
  auto& versions = it->second.versions;
  for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
    if (rit->stable) {
      return self->Materialize(key, &*rit);
    }
  }
  return nullptr;
}

const StoredVersion* VersionedStore::LatestMeta(const Key& key) const {
  auto it = table_.find(key);
  if (it == table_.end() || it->second.versions.empty()) {
    return nullptr;
  }
  return &it->second.versions.back();
}

const StoredVersion* VersionedStore::FindMeta(const Key& key, const Version& version) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return nullptr;
  }
  for (const StoredVersion& sv : it->second.versions) {
    if (sv.version == version) {
      return &sv;
    }
  }
  return nullptr;
}

const StoredVersion* VersionedStore::LatestStableMeta(const Key& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return nullptr;
  }
  const auto& versions = it->second.versions;
  for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
    if (rit->stable) {
      return &*rit;
    }
  }
  return nullptr;
}

bool VersionedStore::HasUnstable(const Key& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return false;
  }
  for (const StoredVersion& sv : it->second.versions) {
    if (!sv.stable) {
      return true;
    }
  }
  return false;
}

bool VersionedStore::HasAtLeast(const Key& key, const Version& min) const {
  if (min.IsNull()) {
    return true;
  }
  auto it = table_.find(key);
  if (it == table_.end()) {
    return false;
  }
  return it->second.applied_vv.Dominates(min.vv);
}

const VersionVector* VersionedStore::AppliedVv(const Key& key) const {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second.applied_vv;
}

size_t VersionedStore::VersionCount(const Key& key) const {
  auto it = table_.find(key);
  return it == table_.end() ? 0 : it->second.versions.size();
}

void VersionedStore::ForEachKey(
    const std::function<void(const Key&, const StoredVersion&)>& fn) const {
  for (const auto& [key, ks] : table_) {
    if (!ks.versions.empty()) {
      fn(key, ks.versions.back());
    }
  }
}

void VersionedStore::ForEachVersion(
    const std::function<void(const Key&, const StoredVersion&)>& fn) const {
  auto* self = const_cast<VersionedStore*>(this);
  for (auto& [key, ks] : self->table_) {
    for (StoredVersion& sv : ks.versions) {
      fn(key, *self->Materialize(key, &sv));
    }
  }
}

void VersionedStore::ForEachVersionRaw(
    const std::function<void(const Key&, const StoredVersion&)>& fn) const {
  for (const auto& [key, ks] : table_) {
    for (const StoredVersion& sv : ks.versions) {
      fn(key, sv);
    }
  }
}

std::vector<StoredVersion> VersionedStore::UnstableVersions(const Key& key) const {
  auto* self = const_cast<VersionedStore*>(this);
  std::vector<StoredVersion> out;
  auto it = self->table_.find(key);
  if (it == self->table_.end()) {
    return out;
  }
  for (StoredVersion& sv : it->second.versions) {
    if (!sv.stable) {
      out.push_back(*self->Materialize(key, &sv));
    }
  }
  return out;
}

bool VersionedStore::CompactEngine() {
  return engine_->MaybeCompact(
      [this](const Key& key, const Version& version, const ValueHandle& old_handle,
             const ValueHandle& new_handle) {
        StoredVersion* sv = FindEntry(key, version);
        if (sv != nullptr && sv->handle.segment == old_handle.segment &&
            sv->handle.offset == old_handle.offset) {
          sv->handle = new_handle;
        }
      });
}

uint64_t VersionedStore::resident_versions() const {
  return engine_->inline_values() ? total_versions_ : lru_.size();
}

void VersionedStore::TrackUnstable(const Version& v) {
  if (wm_tracking_ && v.origin == wm_origin_) {
    auto [it, fresh] = unstable_lamports_cache_.Claim(unstable_lamports_, v.lamport);
    if (fresh) {
      it->second = 1;  // recycled nodes keep the old count; reset it
    } else {
      it->second++;
    }
  }
}

void VersionedStore::UntrackUnstable(const Version& v) {
  if (!wm_tracking_ || v.origin != wm_origin_) {
    return;
  }
  auto it = unstable_lamports_.find(v.lamport);
  if (it != unstable_lamports_.end() && --it->second == 0) {
    unstable_lamports_cache_.Erase(unstable_lamports_, it);
  }
}

void VersionedStore::DropEntry(StoredVersion* sv) {
  // An unstable version dropped by GC is LWW-superseded by a stable newer
  // one — the same condition under which dependency checks treat it as
  // satisfied — so it stops capping the watermark.
  if (!sv->stable) {
    UntrackUnstable(sv->version);
  }
  if (sv->resident) {
    inline_bytes_ -= sv->value.size();
  }
  if (sv->cached) {
    lru_.erase(sv->lru_it);
    sv->cached = false;
  }
  if (sv->handle.valid()) {
    engine_->Release(sv->handle);
  }
}

void VersionedStore::Trim(KeyState* ks) {
  // Drop everything older than the newest stable version.
  auto& versions = ks->versions;
  size_t newest_stable = versions.size();
  for (size_t i = versions.size(); i-- > 0;) {
    if (versions[i].stable) {
      newest_stable = i;
      break;
    }
  }
  if (newest_stable != versions.size() && newest_stable > 0) {
    for (size_t i = 0; i < newest_stable; ++i) {
      DropEntry(&versions[i]);
    }
    total_versions_ -= newest_stable;
    versions.erase(versions.begin(), versions.begin() + static_cast<long>(newest_stable));
  }
}

}  // namespace chainreaction

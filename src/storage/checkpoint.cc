#include "src/storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/msg/message.h"

namespace chainreaction {

namespace {
constexpr uint32_t kMagic = 0x43525843;  // "CXRC"
// v1: magic, format, entries, checksum, payload.
// v2: magic, format, wal_seq, entries, checksum, payload — wal_seq is the
// WAL segment active when the checkpoint was taken (truncation floor).
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kOldestSupportedFormat = 1;

// fsyncs the directory containing `path` so a rename into it is durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
}  // namespace

Status SaveCheckpoint(const VersionedStore& store, const std::string& path,
                      uint64_t wal_seq) {
  ByteWriter payload;
  uint64_t entries = 0;
  store.ForEachVersion([&payload, &entries](const Key& key, const StoredVersion& sv) {
    payload.PutString(key);
    payload.PutString(sv.value);
    sv.version.Encode(&payload);
    payload.PutBool(sv.stable);
    EncodeDeps(sv.deps, &payload);
    entries++;
  });

  ByteWriter file;
  file.PutU32(kMagic);
  file.PutU32(kFormatVersion);
  file.PutU64(wal_seq);
  file.PutU64(entries);
  file.PutU64(Fnv1a64(payload.data()));
  const std::string& body = payload.data();

  // Atomic save: a crash anywhere before the rename leaves the previous
  // checkpoint file untouched.
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open checkpoint for writing: " + tmp);
  }
  bool ok = std::fwrite(file.data().data(), 1, file.size(), f) == file.size();
  ok = ok && std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to checkpoint: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename checkpoint into place: " + path);
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status LoadCheckpoint(const std::string& path, VersionedStore* store, uint64_t* wal_seq) {
  if (wal_seq != nullptr) {
    *wal_seq = 0;
  }
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string contents;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);

  ByteReader header(contents);
  uint32_t magic = 0, format = 0;
  uint64_t seq = 0, entries = 0, checksum = 0;
  if (!header.GetU32(&magic) || !header.GetU32(&format)) {
    return Status::Corruption("checkpoint header truncated");
  }
  if (magic != kMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (format < kOldestSupportedFormat || format > kFormatVersion) {
    return Status::Corruption("unsupported checkpoint format " + std::to_string(format));
  }
  if (format >= 2 && !header.GetU64(&seq)) {
    return Status::Corruption("checkpoint header truncated");
  }
  if (!header.GetU64(&entries) || !header.GetU64(&checksum)) {
    return Status::Corruption("checkpoint header truncated");
  }
  const size_t header_bytes = format >= 2 ? 32 : 24;
  const std::string payload = contents.substr(header_bytes);
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("checkpoint checksum mismatch");
  }
  if (wal_seq != nullptr) {
    *wal_seq = seq;
  }

  ByteReader r(payload);
  for (uint64_t i = 0; i < entries; ++i) {
    Key key;
    Value value;
    Version version;
    bool stable = false;
    std::vector<Dependency> deps;
    if (!r.GetString(&key) || !r.GetString(&value) || !version.Decode(&r) ||
        !r.GetBool(&stable) || !DecodeDeps(&r, &deps)) {
      return Status::Corruption("checkpoint entry " + std::to_string(i) + " truncated");
    }
    store->Apply(key, std::move(value), version, std::move(deps));
    if (stable) {
      store->MarkStable(key, version);
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after last checkpoint entry");
  }
  return Status::Ok();
}

}  // namespace chainreaction

#include "src/storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/msg/message.h"

namespace chainreaction {

namespace {
constexpr uint32_t kMagic = 0x43525843;  // "CXRC"
// v1: magic, format, entries, checksum, payload.
// v2: magic, format, wal_seq, entries, checksum, payload — wal_seq is the
// WAL segment active when the checkpoint was taken (truncation floor).
// v3: magic, format, wal_seq, engine, entries, checksum, payload — engine
// selects the payload shape (see checkpoint.h).
constexpr uint32_t kFormatVersion = 3;
constexpr uint32_t kOldestSupportedFormat = 1;

// fsyncs the directory containing `path` so a rename into it is durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
}  // namespace

Status SaveCheckpoint(const VersionedStore& store, const std::string& path,
                      uint64_t wal_seq) {
  StorageEngine* engine = store.engine();
  const bool disk = !engine->inline_values();

  ByteWriter payload;
  uint64_t entries = 0;
  if (disk) {
    // Flush first so every handle the payload references is durable, then
    // capture the manifest the bytes below are consistent with.
    const Status st = engine->Flush();
    if (!st.ok()) {
      return st;
    }
    uint64_t active_seg = 0, active_size = 0;
    engine->GetManifest(&active_seg, &active_size);
    payload.PutU64(active_seg);
    payload.PutU64(active_size);
    store.ForEachVersionRaw([&payload, &entries](const Key& key, const StoredVersion& sv) {
      payload.PutString(key);
      sv.version.Encode(&payload);
      payload.PutBool(sv.stable);
      EncodeDeps(sv.deps, &payload);
      payload.PutU64(sv.handle.segment);
      payload.PutU64(sv.handle.offset);
      payload.PutU32(sv.handle.length);
      entries++;
    });
  } else {
    store.ForEachVersion([&payload, &entries](const Key& key, const StoredVersion& sv) {
      payload.PutString(key);
      payload.PutString(sv.value);
      sv.version.Encode(&payload);
      payload.PutBool(sv.stable);
      EncodeDeps(sv.deps, &payload);
      entries++;
    });
  }

  ByteWriter file;
  file.PutU32(kMagic);
  file.PutU32(kFormatVersion);
  file.PutU64(wal_seq);
  file.PutU8(static_cast<uint8_t>(engine->kind()));
  file.PutU64(entries);
  file.PutU64(Fnv1a64(payload.data()));
  const std::string& body = payload.data();

  // Atomic save: a crash anywhere before the rename leaves the previous
  // checkpoint file untouched.
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open checkpoint for writing: " + tmp);
  }
  bool ok = std::fwrite(file.data().data(), 1, file.size(), f) == file.size();
  ok = ok && std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to checkpoint: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename checkpoint into place: " + path);
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status LoadCheckpoint(const std::string& path, VersionedStore* store, uint64_t* wal_seq) {
  if (wal_seq != nullptr) {
    *wal_seq = 0;
  }
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string contents;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);

  ByteReader header(contents);
  uint32_t magic = 0, format = 0;
  uint64_t seq = 0, entries = 0, checksum = 0;
  uint8_t engine_byte = static_cast<uint8_t>(StorageEngineKind::kMem);
  if (!header.GetU32(&magic) || !header.GetU32(&format)) {
    return Status::Corruption("checkpoint header truncated");
  }
  if (magic != kMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (format < kOldestSupportedFormat || format > kFormatVersion) {
    return Status::Corruption("unsupported checkpoint format " + std::to_string(format));
  }
  if (format >= 2 && !header.GetU64(&seq)) {
    return Status::Corruption("checkpoint header truncated");
  }
  if (format >= 3 && !header.GetU8(&engine_byte)) {
    return Status::Corruption("checkpoint header truncated");
  }
  if (!header.GetU64(&entries) || !header.GetU64(&checksum)) {
    return Status::Corruption("checkpoint header truncated");
  }
  size_t header_bytes = 24;
  if (format >= 2) {
    header_bytes += 8;
  }
  if (format >= 3) {
    header_bytes += 1;
  }
  if (contents.size() < header_bytes) {
    return Status::Corruption("checkpoint header truncated");
  }
  const std::string payload = contents.substr(header_bytes);
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("checkpoint checksum mismatch");
  }
  if (wal_seq != nullptr) {
    *wal_seq = seq;
  }
  if (engine_byte > static_cast<uint8_t>(StorageEngineKind::kDisk)) {
    return Status::Corruption("unknown checkpoint engine kind " +
                              std::to_string(engine_byte));
  }
  const auto saved_kind = static_cast<StorageEngineKind>(engine_byte);

  ByteReader r(payload);
  if (saved_kind == StorageEngineKind::kDisk) {
    // Index snapshot: requires the matching value log attached to `store`.
    StorageEngine* engine = store->engine();
    if (engine->inline_values()) {
      return Status::Internal(
          "disk-engine checkpoint requires a disk engine attached before load");
    }
    uint64_t active_seg = 0, active_size = 0;
    if (!r.GetU64(&active_seg) || !r.GetU64(&active_size)) {
      return Status::Corruption("checkpoint manifest truncated");
    }
    Status st = engine->TruncateTo(active_seg, active_size);
    if (!st.ok()) {
      return st;
    }
    for (uint64_t i = 0; i < entries; ++i) {
      Key key;
      Version version;
      bool stable = false;
      std::vector<Dependency> deps;
      ValueHandle handle;
      if (!r.GetString(&key) || !version.Decode(&r) || !r.GetBool(&stable) ||
          !DecodeDeps(&r, &deps) || !r.GetU64(&handle.segment) ||
          !r.GetU64(&handle.offset) || !r.GetU32(&handle.length)) {
        return Status::Corruption("checkpoint entry " + std::to_string(i) + " truncated");
      }
      if (!store->Adopt(key, version, std::move(deps), handle)) {
        return Status::Corruption("checkpoint entry " + std::to_string(i) +
                                  " points outside the value log");
      }
      if (stable) {
        store->MarkStable(key, version);
      }
    }
  } else {
    for (uint64_t i = 0; i < entries; ++i) {
      Key key;
      Value value;
      Version version;
      bool stable = false;
      std::vector<Dependency> deps;
      if (!r.GetString(&key) || !r.GetString(&value) || !version.Decode(&r) ||
          !r.GetBool(&stable) || !DecodeDeps(&r, &deps)) {
        return Status::Corruption("checkpoint entry " + std::to_string(i) + " truncated");
      }
      store->Apply(key, std::move(value), version, std::move(deps));
      if (stable) {
        store->MarkStable(key, version);
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after last checkpoint entry");
  }
  return Status::Ok();
}

}  // namespace chainreaction

#include "src/storage/checkpoint.h"

#include <cstdio>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/msg/message.h"

namespace chainreaction {

namespace {
constexpr uint32_t kMagic = 0x43525843;  // "CXRC"
constexpr uint32_t kFormatVersion = 1;
}  // namespace

Status SaveCheckpoint(const VersionedStore& store, const std::string& path) {
  ByteWriter payload;
  uint64_t entries = 0;
  store.ForEachVersion([&payload, &entries](const Key& key, const StoredVersion& sv) {
    payload.PutString(key);
    payload.PutString(sv.value);
    sv.version.Encode(&payload);
    payload.PutBool(sv.stable);
    EncodeDeps(sv.deps, &payload);
    entries++;
  });

  ByteWriter file;
  file.PutU32(kMagic);
  file.PutU32(kFormatVersion);
  file.PutU64(entries);
  file.PutU64(Fnv1a64(payload.data()));
  const std::string& body = payload.data();

  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open checkpoint for writing: " + path);
  }
  bool ok = std::fwrite(file.data().data(), 1, file.size(), f) == file.size();
  ok = ok && std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    return Status::Internal("short write to checkpoint: " + path);
  }
  return Status::Ok();
}

Status LoadCheckpoint(const std::string& path, VersionedStore* store) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string contents;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);

  ByteReader header(contents);
  uint32_t magic = 0, format = 0;
  uint64_t entries = 0, checksum = 0;
  if (!header.GetU32(&magic) || !header.GetU32(&format) || !header.GetU64(&entries) ||
      !header.GetU64(&checksum)) {
    return Status::Corruption("checkpoint header truncated");
  }
  if (magic != kMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (format != kFormatVersion) {
    return Status::Corruption("unsupported checkpoint format " + std::to_string(format));
  }
  const std::string payload = contents.substr(24);
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  ByteReader r(payload);
  for (uint64_t i = 0; i < entries; ++i) {
    Key key;
    Value value;
    Version version;
    bool stable = false;
    std::vector<Dependency> deps;
    if (!r.GetString(&key) || !r.GetString(&value) || !version.Decode(&r) ||
        !r.GetBool(&stable) || !DecodeDeps(&r, &deps)) {
      return Status::Corruption("checkpoint entry " + std::to_string(i) + " truncated");
    }
    store->Apply(key, std::move(value), version, std::move(deps));
    if (stable) {
      store->MarkStable(key, version);
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after last checkpoint entry");
  }
  return Status::Ok();
}

}  // namespace chainreaction

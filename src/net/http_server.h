// Minimal embedded HTTP/1.1 server for telemetry exposition.
//
// Serves GET requests only, one poll-loop thread, loopback-bound, built on
// the same non-blocking socket plumbing as TcpRuntime. Handlers are
// registered as (path prefix -> callback); the longest matching prefix
// wins. Responses are buffered whole (metrics pages are small) and sent
// with Content-Length + Connection: close, which keeps the state machine
// trivial: read until blank line, dispatch, write, close.
//
// Deliberately NOT a general web server: no keep-alive, no TLS, no chunked
// bodies, no request bodies. It exists so every node (TCP runtime) and the
// harness (sim runs) can expose /metrics, /status, /traces, /events to
// curl and Prometheus without any dependency beyond POSIX sockets.
//
// Lives in its own chainrx_http library (links only chainrx_common) so
// chainrx_obs can layer telemetry on top of it without pulling the actor
// runtime — chainrx_net depends on chainrx_core which depends on
// chainrx_obs, and an obs -> net edge would cycle.
#ifndef SRC_NET_HTTP_SERVER_H_
#define SRC_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace chainreaction {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// `path` is the request path with the query string stripped; `query` is the
// raw text after '?' ("" if none). Handlers run on the server thread and
// must be thread-safe with respect to the state they read.
using HttpHandler = std::function<HttpResponse(const std::string& path, const std::string& query)>;

class HttpServer {
 public:
  // Binds a loopback listener on `port` (0 = ephemeral). Check ok() before
  // Start(); construction failure (port in use) is reported, not fatal.
  explicit HttpServer(uint16_t port);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }

  // Longest-prefix dispatch: Handle("/traces", fn) serves /traces and
  // /traces/abc123. Register all handlers before Start().
  void Handle(const std::string& prefix, HttpHandler handler);

  void Start();
  void Stop();

  static HttpResponse NotFound();

 private:
  void Loop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const std::string& path, const std::string& query) const;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::vector<std::pair<std::string, HttpHandler>> handlers_;
};

}  // namespace chainreaction

#endif  // SRC_NET_HTTP_SERVER_H_

// Minimal blocking HTTP/1.1 GET client for loopback telemetry scrapes.
//
// The counterpart of HttpServer: the trace assembler (and tests) use it to
// pull /traces, /metrics, and /criticalpath from a node's telemetry port.
// Loopback-only by design — like the server, it never leaves 127.0.0.1.
#ifndef SRC_NET_HTTP_CLIENT_H_
#define SRC_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

namespace chainreaction {

struct HttpClientResponse {
  bool ok = false;   // transport-level success (connected, full response read)
  int status = 0;    // HTTP status code when ok
  std::string body;
};

// Blocking GET of `path` from 127.0.0.1:`port`. `timeout_ms` bounds each
// connect/read wait, not the whole transfer. The server closes after one
// response (Connection: close), so the body is read to EOF and checked
// against Content-Length when present.
HttpClientResponse HttpGet(uint16_t port, const std::string& path, int timeout_ms = 2000);

}  // namespace chainreaction

#endif  // SRC_NET_HTTP_CLIENT_H_

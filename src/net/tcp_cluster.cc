#include "src/net/tcp_cluster.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "src/common/result.h"
#include "src/common/rng.h"

namespace chainreaction {

namespace {

Time WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Elastic-mode control-plane actors live far above node ids and clients.
constexpr Address kTcpMembershipAddr = kServiceAddressBase + 1024;
constexpr Address kTcpCoordinatorAddr = kServiceAddressBase + 2048;

}  // namespace

std::vector<uint32_t> TcpCluster::AssignShardsByRingOrder(const Ring& ring, uint32_t num_nodes,
                                                          uint32_t loops) {
  std::vector<uint32_t> shard_of(num_nodes, 0);
  if (loops <= 1) {
    return shard_of;
  }
  // Walk the ring's segments in order; a node's first appearance (as a
  // segment head, then as any replica) fixes its ring position.
  std::vector<NodeId> order;
  std::unordered_set<NodeId> seen;
  for (const auto& chain : ring.SegmentChains()) {
    for (NodeId n : chain) {
      if (n < num_nodes && seen.insert(n).second) {
        order.push_back(n);
      }
    }
  }
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (seen.insert(n).second) {
      order.push_back(n);
    }
  }
  // Contiguous blocks: ring neighbors (and hence most chain links) share a
  // loop; only chains spanning a block boundary cross threads.
  for (size_t i = 0; i < order.size(); ++i) {
    shard_of[order[i]] =
        static_cast<uint32_t>(i * loops / order.size());
  }
  return shard_of;
}

TcpCluster::TcpCluster(Options opts) : opts_(opts) {
  CHAINRX_CHECK(opts_.num_nodes >= opts_.config.replication);
  CHAINRX_CHECK(opts_.loop_threads >= 1);
  CHAINRX_CHECK(opts_.client_loop_threads >= 1);
  CHAINRX_CHECK(opts_.num_clients >= 1);

  std::vector<NodeId> ids;
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    ids.push_back(n);
  }
  ring_ = Ring(ids, 16, opts_.config.replication, 1);
  node_shard_ = AssignShardsByRingOrder(ring_, opts_.num_nodes, opts_.loop_threads);

  effective_config_ = opts_.config;
  if (opts_.elastic) {
    effective_config_.membership = kTcpMembershipAddr;
  }

  if (opts_.per_node_runtimes) {
    for (NodeId n = 0; n < opts_.num_nodes; ++n) {
      server_runtimes_.push_back(
          std::make_unique<TcpRuntime>(&book_, 1, opts_.coalesced_io));
    }
  } else {
    server_runtimes_.push_back(
        std::make_unique<TcpRuntime>(&book_, opts_.loop_threads, opts_.coalesced_io));
  }
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    auto node = std::make_unique<ChainReactionNode>(n, effective_config_, ring_);
    AttachNodeTelemetry(node.get());
    if (opts_.per_node_runtimes) {
      node->AttachEnv(server_runtimes_[n]->Register(n, node.get()));
    } else {
      node->AttachEnv(server_runtimes_[0]->Register(n, node.get(), node_shard_[n]));
    }
    nodes_.push_back(std::move(node));
  }

  if (opts_.elastic) {
    membership_ = std::make_unique<MembershipService>(ids, 16, effective_config_.replication);
    membership_->AttachEnv(
        server_runtimes_[0]->Register(kTcpMembershipAddr, membership_.get(), 0));
    MigrationCoordinator::Options copt;
    copt.vnodes = 16;
    copt.replication = effective_config_.replication;
    copt.self = kTcpCoordinatorAddr;
    copt.membership = kTcpMembershipAddr;
    copt.batch_keys = opts_.mig_batch_keys;
    copt.batch_interval = opts_.mig_batch_interval;
    copt.timeout = opts_.migration_timeout;
    coordinator_ = std::make_unique<MigrationCoordinator>(copt);
    coordinator_->AttachEnv(
        server_runtimes_[0]->Register(kTcpCoordinatorAddr, coordinator_.get(), 0));
    if (opts_.metrics != nullptr) {
      coordinator_->AttachObs(opts_.metrics);
    }
    coordinator_->Seed(/*epoch=*/1, ids, {});
    membership_->AddListener(kTcpCoordinatorAddr);
  }

  if (opts_.traces == nullptr && opts_.per_node_telemetry) {
    client_collector_ = std::make_unique<TraceCollector>();
  }
  client_runtime_ = std::make_unique<TcpRuntime>(&book_, opts_.client_loop_threads);
  for (uint32_t c = 0; c < opts_.num_clients; ++c) {
    const Address addr = kClientAddressBase + c;
    auto client = std::make_unique<ChainReactionClient>(addr, effective_config_, ring_,
                                                        opts_.seed + 1000 * (c + 1));
    TraceCollector* sink = opts_.traces != nullptr ? opts_.traces : client_collector_.get();
    if (opts_.metrics != nullptr || sink != nullptr) {
      client->AttachObs(opts_.metrics, sink);
    }
    client->AttachEnv(
        client_runtime_->Register(addr, client.get(), c % opts_.client_loop_threads));
    clients_.push_back(std::move(client));
    if (opts_.elastic) {
      membership_->AddListener(addr);
    }
  }

  if (opts_.metrics != nullptr) {
    for (auto& rt : server_runtimes_) {
      rt->AttachMetrics(opts_.metrics);
    }
    client_runtime_->AttachMetrics(opts_.metrics);
  }
  for (auto& rt : server_runtimes_) {
    rt->Start();
  }
  client_runtime_->Start();

  // Timers must be armed from the owning loop thread (Env contract).
  if (opts_.elastic && effective_config_.heartbeat_interval > 0) {
    const Duration sweep = effective_config_.fd_sweep_interval > 0
                               ? effective_config_.fd_sweep_interval
                               : effective_config_.heartbeat_interval;
    const Duration timeout = effective_config_.fd_timeout > 0
                                 ? effective_config_.fd_timeout
                                 : 4 * effective_config_.heartbeat_interval;
    server_runtimes_[0]->PostTo(kTcpMembershipAddr, [this, sweep, timeout]() {
      membership_->EnableFailureDetection(sweep, timeout);
    });
  }
  if (opts_.elastic && effective_config_.membership_rebroadcast_interval > 0) {
    const Duration interval = effective_config_.membership_rebroadcast_interval;
    server_runtimes_[0]->PostTo(kTcpMembershipAddr, [this, interval]() {
      membership_->EnableRebroadcast(interval);
    });
  }
}

TcpCluster::~TcpCluster() {
  for (auto& ts : node_telemetry_) {
    if (ts != nullptr) {
      ts->Stop();
    }
  }
  client_runtime_->Stop();
  for (auto& rt : joined_runtimes_) {
    rt->Stop();
  }
  for (auto& rt : server_runtimes_) {
    rt->Stop();
  }
}

void TcpCluster::AttachNodeTelemetry(ChainReactionNode* node) {
  if (opts_.traces != nullptr) {
    // Shared-sink mode: one collector sees every node's partial reports.
    node->AttachObs(opts_.metrics, opts_.traces);
    return;
  }
  if (!opts_.per_node_telemetry) {
    if (opts_.metrics != nullptr) {
      node->AttachObs(opts_.metrics, nullptr);
    }
    return;
  }
  // Distributed mode: the node's hops land only in its own collector, and
  // the only way to a cluster-wide timeline is pulling each node's /traces
  // endpoint — the same assembly protocol real multi-process deployments
  // use (see TraceAssembler::PullHttp).
  auto collector = std::make_unique<TraceCollector>();
  node->AttachObs(opts_.metrics, collector.get());
  auto server = std::make_unique<TelemetryServer>(/*port=*/0);
  if (opts_.metrics != nullptr) {
    server->AttachMetrics(opts_.metrics);
  }
  server->AttachTraces(collector.get());
  server->AddRecorder("n" + std::to_string(node->id()), node->events());
  server->Start();
  node_collectors_.push_back(std::move(collector));
  node_telemetry_.push_back(std::move(server));
}

NodeId TcpCluster::AddJoiningServer(uint32_t weight) {
  CHAINRX_CHECK(opts_.elastic);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  // A separate runtime = a separate process: it binds fresh ports into the
  // shared address book, and running peers resolve them on first send (the
  // per-shard port cache falls back to the book for unknown addresses).
  auto rt = std::make_unique<TcpRuntime>(&book_, 1, opts_.coalesced_io);
  auto node = std::make_unique<ChainReactionNode>(id, effective_config_, ring_);
  AttachNodeTelemetry(node.get());
  node->AttachEnv(rt->Register(id, node.get()));
  rt->Start();
  nodes_.push_back(std::move(node));
  node_shard_.push_back(0);
  joined_runtimes_.push_back(std::move(rt));

  migrations_issued_.fetch_add(1, std::memory_order_relaxed);
  server_runtimes_[0]->PostTo(kTcpCoordinatorAddr, [this, id, weight]() {
    if (coordinator_->StartJoin(id, weight) == 0) {
      migrations_issued_.fetch_sub(1, std::memory_order_relaxed);
    }
  });
  return id;
}

void TcpCluster::DrainServer(NodeId n) {
  CHAINRX_CHECK(opts_.elastic);
  migrations_issued_.fetch_add(1, std::memory_order_relaxed);
  server_runtimes_[0]->PostTo(kTcpCoordinatorAddr, [this, n]() {
    if (coordinator_->StartDrain(n) == 0) {
      migrations_issued_.fetch_sub(1, std::memory_order_relaxed);
    }
  });
}

void TcpCluster::RebalanceServer(NodeId n, uint32_t weight) {
  CHAINRX_CHECK(opts_.elastic);
  migrations_issued_.fetch_add(1, std::memory_order_relaxed);
  server_runtimes_[0]->PostTo(kTcpCoordinatorAddr, [this, n, weight]() {
    if (coordinator_->StartRebalance(n, weight) == 0) {
      migrations_issued_.fetch_sub(1, std::memory_order_relaxed);
    }
  });
}

bool TcpCluster::WaitMigrationIdle(Duration max_wait) {
  CHAINRX_CHECK(opts_.elastic);
  const Time deadline = WallMicros() + max_wait;
  while (WallMicros() < deadline) {
    const uint64_t finished = coordinator_->completed() + coordinator_->aborted();
    if (finished >= migrations_issued_.load(std::memory_order_relaxed) &&
        coordinator_->idle()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

uint64_t TcpCluster::server_writev_calls() const {
  uint64_t total = 0;
  for (const auto& rt : server_runtimes_) {
    total += rt->writev_calls();
  }
  return total;
}

uint64_t TcpCluster::server_writev_frames() const {
  uint64_t total = 0;
  for (const auto& rt : server_runtimes_) {
    total += rt->writev_frames();
  }
  return total;
}

uint64_t TcpCluster::server_frames_sent() const {
  uint64_t total = 0;
  for (const auto& rt : server_runtimes_) {
    total += rt->frames_sent();
  }
  return total;
}

// All LoadSession state except mu/cv/remaining is touched only on the
// session's client loop thread.
struct TcpCluster::LoadSession {
  TcpCluster* owner = nullptr;
  ChainReactionClient* client = nullptr;
  Rng rng{0};
  Histogram hist;
  uint64_t ops = 0;
  uint64_t failures = 0;
  Time deadline = 0;
  LoadOptions load;

  std::mutex* mu = nullptr;
  std::condition_variable* cv = nullptr;
  size_t* remaining = nullptr;
};

void TcpCluster::StepLoadSession(LoadSession* s) {
  const Time now = WallMicros();
  if (now >= s->deadline) {
    std::lock_guard<std::mutex> lock(*s->mu);
    --*s->remaining;
    s->cv->notify_one();
    return;
  }
  const Key key = "lk-" + std::to_string(s->rng.NextBelow(s->load.key_space));
  const bool is_get =
      s->load.get_fraction > 0.0 && s->rng.NextDouble() < s->load.get_fraction;
  // Completion captures are kept to {s, now} (16 bytes, trivially
  // copyable): they fit std::function's small-object buffer, so issuing an
  // op does not heap-allocate the callback.
  if (is_get) {
    s->client->Get(key, [s, now](const ChainReactionClient::GetResult& r) {
      r.status.ok() ? ++s->ops : ++s->failures;
      s->hist.Record(WallMicros() - now);
      s->owner->StepLoadSession(s);
    });
  } else {
    Value value(s->load.value_size, 'v');
    s->client->Put(key, std::move(value),
                   [s, now](const ChainReactionClient::PutResult& r) {
                     r.status.ok() ? ++s->ops : ++s->failures;
                     s->hist.Record(WallMicros() - now);
                     s->owner->StepLoadSession(s);
                   });
  }
}

TcpCluster::LoadResult TcpCluster::RunClosedLoop(const LoadOptions& load) {
  std::mutex mu;
  std::condition_variable cv;
  const uint32_t pipeline = std::max<uint32_t>(1, load.pipeline);
  // Each session runs `pipeline` independent op chains; every chain
  // retires at the deadline.
  size_t remaining = clients_.size() * pipeline;

  const Time start = WallMicros();
  std::vector<std::unique_ptr<LoadSession>> sessions;
  for (size_t c = 0; c < clients_.size(); ++c) {
    auto s = std::make_unique<LoadSession>();
    s->owner = this;
    s->client = clients_[c].get();
    s->rng = Rng(opts_.seed + 77 * (c + 1));
    s->deadline = start + load.duration;
    s->load = load;
    s->mu = &mu;
    s->cv = &cv;
    s->remaining = &remaining;
    sessions.push_back(std::move(s));
  }
  for (size_t c = 0; c < sessions.size(); ++c) {
    LoadSession* s = sessions[c].get();
    for (uint32_t p = 0; p < pipeline; ++p) {
      client_runtime_->PostTo(s->client->address(), [this, s]() { StepLoadSession(s); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  const Time elapsed = WallMicros() - start;

  LoadResult result;
  for (const auto& s : sessions) {
    result.ops += s->ops;
    result.failures += s->failures;
    result.latency_us.Merge(s->hist);
  }
  result.ops_per_sec = elapsed > 0 ? result.ops * 1e6 / static_cast<double>(elapsed) : 0.0;
  return result;
}

}  // namespace chainreaction

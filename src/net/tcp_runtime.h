// Real-socket runtime for protocol actors.
//
// A TcpRuntime models one OS process: it hosts a set of actors behind a
// single listening TCP socket (127.0.0.1, ephemeral port) and runs one
// event-loop thread that
//   * accepts peer connections and parses length-prefixed frames
//     (u32 length | u32 src | u32 dst | payload),
//   * delivers frames to local actors,
//   * sends outgoing frames — locally addressed ones are dispatched
//     in-process, remote ones over a lazily established TCP connection to
//     the owning runtime (found through the shared AddressBook),
//   * drives an Env-compatible timer heap.
//
// All actor callbacks run on the loop thread, matching the simulator's
// single-threaded execution model, so the exact same protocol code runs on
// both transports. External threads inject work with Post().
#ifndef SRC_NET_TCP_RUNTIME_H_
#define SRC_NET_TCP_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/net/address_book.h"
#include "src/obs/metrics.h"
#include "src/sim/env.h"

namespace chainreaction {

class TcpRuntime {
 public:
  // All runtimes that must talk to each other share one AddressBook.
  explicit TcpRuntime(AddressBook* book);
  ~TcpRuntime();
  TcpRuntime(const TcpRuntime&) = delete;
  TcpRuntime& operator=(const TcpRuntime&) = delete;

  // Must be called before Start(). The returned Env is owned by the
  // runtime and valid until destruction.
  Env* Register(Address addr, Actor* actor);

  // Optional observability: frame/byte counters and the outbound queue
  // depth (bytes buffered across connections), labeled by this runtime's
  // port. Must be called before Start().
  void AttachMetrics(MetricsRegistry* metrics);

  void Start();
  void Stop();

  // Runs `fn` on the loop thread (thread-safe, returns immediately).
  void Post(std::function<void()> fn);

  uint16_t port() const { return port_; }
  uint64_t frames_sent() const { return frames_sent_.load(); }
  uint64_t frames_received() const { return frames_received_.load(); }

 private:
  class TcpEnv;
  struct Connection {
    int fd = -1;
    std::string inbox;    // partially read frames
    std::string outbox;   // partially written frames
  };
  struct Timer {
    Time at;
    uint64_t id;
    std::function<void()> fn;
    bool operator>(const Timer& other) const { return at > other.at; }
  };

  static Time NowMicros();

  void Loop();
  void AcceptNew();
  void ReadFrom(size_t conn_index);
  void ParseFrames(Connection* conn);
  void Deliver(Address src, Address dst, std::string payload);
  void SendFrame(Address src, Address dst, const std::string& payload);
  void FlushOutbox(Connection* conn);
  int ConnectionTo(uint16_t target_port);
  void Wakeup();
  void RunTimers();
  void DrainPosted();
  void CloseAll();
  void UpdateQueueGauge();

  AddressBook* book_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  std::unordered_map<Address, Actor*> actors_;
  std::vector<std::unique_ptr<Env>> envs_;

  std::vector<std::unique_ptr<Connection>> conns_;   // accepted + outgoing
  std::unordered_map<uint16_t, int> port_to_conn_;   // outgoing by port

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_set<uint64_t> cancelled_timers_;
  uint64_t next_timer_id_ = 1;

  std::mutex posted_mu_;
  std::deque<std::function<void()>> posted_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};

  // Observability (null until AttachMetrics).
  Counter* m_frames_sent_ = nullptr;
  Counter* m_frames_received_ = nullptr;
  Counter* m_bytes_sent_ = nullptr;
  Counter* m_bytes_received_ = nullptr;
  Gauge* m_outbox_bytes_ = nullptr;
};

}  // namespace chainreaction

#endif  // SRC_NET_TCP_RUNTIME_H_

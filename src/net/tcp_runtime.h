// Real-socket runtime for protocol actors.
//
// A TcpRuntime models one OS process hosting N event-loop threads
// ("shards"). Each shard owns a listening TCP socket (127.0.0.1, ephemeral
// port), its own connection table, timer heap, and posted-work queue, and
//   * accepts peer connections and parses length-prefixed frames
//     (u32 length | u32 src | u32 dst | payload),
//   * delivers frames to the actors registered on that shard,
//   * sends outgoing frames — locally addressed ones are dispatched
//     in-process to the owning shard's queue, remote ones over a lazily
//     established TCP connection to the owning shard of the destination
//     runtime (found through the shared AddressBook),
//   * coalesces queued frames into one writev() per flush, resuming
//     correctly after partial writes / EINTR / EAGAIN.
//
// Every actor is registered on exactly one shard and all of its callbacks
// (messages and timers) run on that shard's thread, preserving the
// simulator's single-threaded-actor execution model — the exact same
// protocol code runs on both transports. Callers shard node actors by ring
// position so a key's chain neighbors colocate when possible. External
// threads inject work with Post()/PostTo().
#ifndef SRC_NET_TCP_RUNTIME_H_
#define SRC_NET_TCP_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/payload.h"
#include "src/common/types.h"
#include "src/net/address_book.h"
#include "src/obs/metrics.h"
#include "src/sim/env.h"

namespace chainreaction {

class TcpRuntime {
 public:
  // All runtimes that must talk to each other share one AddressBook.
  // `loop_threads` is the number of event-loop shards (>= 1).
  // `coalesced_io` selects the batched hot path (deferred once-per-cycle
  // writev flushes, lock-free same-shard posting); false restores the
  // pre-overhaul behavior — one write() per frame, every post through the
  // mutex + wake pipe — and exists so bench_e16 can measure the overhaul
  // against the old runtime inside one binary.
  explicit TcpRuntime(AddressBook* book, uint32_t loop_threads = 1, bool coalesced_io = true);
  ~TcpRuntime();
  TcpRuntime(const TcpRuntime&) = delete;
  TcpRuntime& operator=(const TcpRuntime&) = delete;

  // Must be called before Start(). The actor lives on shard `loop` (all of
  // its callbacks run on that shard's thread). The returned Env is owned by
  // the runtime and valid until destruction.
  Env* Register(Address addr, Actor* actor, uint32_t loop = 0);

  // Optional observability: frame/byte/writev counters and the outbound
  // queue depth (bytes buffered across connections), labeled by this
  // runtime's primary port. Must be called before Start().
  void AttachMetrics(MetricsRegistry* metrics);

  void Start();
  void Stop();

  // Runs `fn` on shard 0's loop thread (thread-safe, returns immediately).
  void Post(std::function<void()> fn);
  // Runs `fn` on the loop thread owning `addr` (shard 0 if unregistered).
  void PostTo(Address addr, std::function<void()> fn);
  // Runs `fn` on a specific shard's loop thread.
  void PostToLoop(uint32_t loop, std::function<void()> fn);

  uint32_t loop_threads() const { return static_cast<uint32_t>(shards_.size()); }
  uint16_t port() const { return shards_[0]->port; }
  uint16_t port_of_loop(uint32_t loop) const { return shards_[loop]->port; }
  uint64_t frames_sent() const { return frames_sent_.load(); }
  uint64_t frames_received() const { return frames_received_.load(); }
  uint64_t writev_calls() const { return writev_calls_.load(); }
  uint64_t writev_frames() const { return writev_frames_.load(); }

 private:
  class TcpEnv;

  // One queued wire frame; the payload is moved in from Env::Send and held
  // here until fully written. A shared Payload lets one encoded buffer sit
  // in many connections' outboxes at once (chain fan-out, geo ship) —
  // immutability makes that safe even across shard threads.
  struct OutFrame {
    char header[12];  // u32 length | u32 src | u32 dst
    Payload payload;
  };

  struct Connection {
    int fd = -1;
    std::string inbox;              // partially read frames
    std::deque<OutFrame> outbox;    // queued frames, oldest first
    size_t front_written = 0;       // bytes of outbox.front() already on the wire
    size_t outbox_bytes = 0;        // total unwritten bytes across the queue
  };

  struct Timer {
    Time at;
    uint64_t id;
    std::function<void()> fn;
    bool operator>(const Timer& other) const { return at > other.at; }
  };

  // A same-shard in-process frame awaiting delivery. Kept as a plain struct
  // (not a posted closure) because actor-to-actor sends dominate the put
  // hot path — a std::function capturing {src, dst, payload} exceeds the
  // small-object buffer and would heap-allocate on every chain hop.
  struct LocalFrame {
    Address src = 0;
    Address dst = 0;
    Payload payload;
  };

  // Open-addressed set of cancelled timer ids. Every completed client
  // request cancels its timeout timer; a node-based std::unordered_set pays
  // one heap allocation per cancel, so this flat table keeps the steady
  // state allocation-free. Slot value 0 = empty, 1 = tombstone (timer ids
  // start at 2); erases tombstone, and the table rebuilds — sweeping
  // tombstones — once live+dead entries pass half the capacity.
  class CancelSet {
   public:
    void Insert(uint64_t id) {
      if (slots_.empty() || (live_ + dead_ + 1) * 2 > slots_.size()) {
        Rehash();
      }
      const size_t mask = slots_.size() - 1;
      size_t i = Hash(id) & mask;
      size_t tomb = kNone;
      while (true) {
        const uint64_t v = slots_[i];
        if (v == id) {
          return;
        }
        if (v == kTomb && tomb == kNone) {
          tomb = i;
        }
        if (v == kEmpty) {
          if (tomb != kNone) {
            slots_[tomb] = id;
            --dead_;
          } else {
            slots_[i] = id;
          }
          ++live_;
          return;
        }
        i = (i + 1) & mask;
      }
    }

    // Removes `id` if present; returns whether it was.
    bool Erase(uint64_t id) {
      if (slots_.empty()) {
        return false;
      }
      const size_t mask = slots_.size() - 1;
      size_t i = Hash(id) & mask;
      while (true) {
        const uint64_t v = slots_[i];
        if (v == id) {
          slots_[i] = kTomb;
          --live_;
          ++dead_;
          return true;
        }
        if (v == kEmpty) {
          return false;
        }
        i = (i + 1) & mask;
      }
    }

   private:
    static constexpr uint64_t kEmpty = 0;
    static constexpr uint64_t kTomb = 1;
    static constexpr size_t kNone = static_cast<size_t>(-1);

    static uint64_t Hash(uint64_t x) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      x *= 0xc4ceb9fe1a85ec53ULL;
      x ^= x >> 33;
      return x;
    }

    void Rehash() {
      std::vector<uint64_t> old = std::move(slots_);
      size_t want = 64;
      while (want < (live_ + 1) * 4) {
        want <<= 1;
      }
      slots_.assign(want, kEmpty);
      live_ = 0;
      dead_ = 0;
      for (uint64_t v : old) {
        if (v > kTomb) {
          Insert(v);
        }
      }
    }

    std::vector<uint64_t> slots_;
    size_t live_ = 0;
    size_t dead_ = 0;
  };

  // Everything one event-loop thread owns. Only `posted` (mutex) and the
  // wake pipe are touched cross-thread; the rest is loop-thread-private.
  struct Shard {
    uint32_t index = 0;
    int listen_fd = -1;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    uint16_t port = 0;

    std::vector<std::unique_ptr<Connection>> conns;   // accepted + outgoing
    std::unordered_map<uint16_t, int> port_to_conn;   // outgoing by port
    // Address routes resolved from the shared AddressBook, cached here so
    // the steady-state send path never takes the book's global mutex.
    // Safe because bindings are made before Start() and never change.
    std::unordered_map<Address, uint16_t> port_cache;

    std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers;
    CancelSet cancelled_timers;
    uint64_t next_timer_id = 2;  // 0/1 are the CancelSet's empty/tombstone marks

    std::mutex posted_mu;
    std::deque<std::function<void()>> posted;
    // Loop-thread-only drain buffer, swapped with `posted` each cycle so
    // both deques keep their chunk maps warm (no per-cycle construction).
    std::deque<std::function<void()>> posted_scratch;
    // True while a wake byte is pending in the pipe: cross-thread posters
    // skip the write() when one is already in flight.
    std::atomic<bool> wake_armed{false};
    // Work posted from this shard's own loop thread: no lock, no wake —
    // drained before the next poll.
    std::deque<std::function<void()>> local_posted;
    // Same-shard actor-to-actor frames, drained alongside local_posted.
    // Plain structs instead of closures: the dominant send path must not
    // allocate per frame.
    std::deque<LocalFrame> local_frames;

    std::atomic<uint64_t> outbox_bytes{0};  // mirror for the queue gauge
    std::thread thread;
  };

  struct ActorEntry {
    Actor* actor = nullptr;
    uint32_t shard = 0;
  };

  static Time NowMicros();

  void Loop(Shard* shard);
  void AcceptNew(Shard* shard);
  void ReadFrom(Shard* shard, size_t conn_index);
  void ParseFrames(Shard* shard, Connection* conn);
  // `payload` aliases the connection's inbox; same-shard actors receive the
  // view directly (zero copy), cross-shard bounces copy it into an owned
  // buffer before posting.
  void Deliver(Shard* shard, Address src, Address dst, std::string_view payload);
  void SendFrame(Shard* shard, Address src, Address dst, Payload payload);
  void FlushOutbox(Shard* shard, Connection* conn);
  // Flushes every connection with queued frames (one writev each); called
  // once per loop iteration so frames generated in a cycle coalesce.
  void FlushAll(Shard* shard);
  int ConnectionTo(Shard* shard, uint16_t target_port);
  void Wakeup(Shard* shard);
  void RunTimers(Shard* shard);
  void DrainPosted(Shard* shard);
  void CloseAll();
  void UpdateQueueGauge();

  AddressBook* book_;
  const bool coalesced_io_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Immutable after Start() (registered before the threads run).
  std::unordered_map<Address, ActorEntry> actors_;
  std::vector<std::unique_ptr<Env>> envs_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> writev_calls_{0};
  std::atomic<uint64_t> writev_frames_{0};

  // Observability (null until AttachMetrics).
  Counter* m_frames_sent_ = nullptr;
  Counter* m_frames_received_ = nullptr;
  Counter* m_bytes_sent_ = nullptr;
  Counter* m_bytes_received_ = nullptr;
  Counter* m_writev_calls_ = nullptr;
  Counter* m_writev_frames_ = nullptr;
  Gauge* m_outbox_bytes_ = nullptr;
};

}  // namespace chainreaction

#endif  // SRC_NET_TCP_RUNTIME_H_

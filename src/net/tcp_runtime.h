// Real-socket runtime for protocol actors.
//
// A TcpRuntime models one OS process hosting N event-loop threads
// ("shards"). Each shard owns a listening TCP socket (127.0.0.1, ephemeral
// port), its own connection table, timer heap, and posted-work queue, and
//   * accepts peer connections and parses length-prefixed frames
//     (u32 length | u32 src | u32 dst | payload),
//   * delivers frames to the actors registered on that shard,
//   * sends outgoing frames — locally addressed ones are dispatched
//     in-process to the owning shard's queue, remote ones over a lazily
//     established TCP connection to the owning shard of the destination
//     runtime (found through the shared AddressBook),
//   * coalesces queued frames into one writev() per flush, resuming
//     correctly after partial writes / EINTR / EAGAIN.
//
// Every actor is registered on exactly one shard and all of its callbacks
// (messages and timers) run on that shard's thread, preserving the
// simulator's single-threaded-actor execution model — the exact same
// protocol code runs on both transports. Callers shard node actors by ring
// position so a key's chain neighbors colocate when possible. External
// threads inject work with Post()/PostTo().
#ifndef SRC_NET_TCP_RUNTIME_H_
#define SRC_NET_TCP_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/net/address_book.h"
#include "src/obs/metrics.h"
#include "src/sim/env.h"

namespace chainreaction {

class TcpRuntime {
 public:
  // All runtimes that must talk to each other share one AddressBook.
  // `loop_threads` is the number of event-loop shards (>= 1).
  // `coalesced_io` selects the batched hot path (deferred once-per-cycle
  // writev flushes, lock-free same-shard posting); false restores the
  // pre-overhaul behavior — one write() per frame, every post through the
  // mutex + wake pipe — and exists so bench_e16 can measure the overhaul
  // against the old runtime inside one binary.
  explicit TcpRuntime(AddressBook* book, uint32_t loop_threads = 1, bool coalesced_io = true);
  ~TcpRuntime();
  TcpRuntime(const TcpRuntime&) = delete;
  TcpRuntime& operator=(const TcpRuntime&) = delete;

  // Must be called before Start(). The actor lives on shard `loop` (all of
  // its callbacks run on that shard's thread). The returned Env is owned by
  // the runtime and valid until destruction.
  Env* Register(Address addr, Actor* actor, uint32_t loop = 0);

  // Optional observability: frame/byte/writev counters and the outbound
  // queue depth (bytes buffered across connections), labeled by this
  // runtime's primary port. Must be called before Start().
  void AttachMetrics(MetricsRegistry* metrics);

  void Start();
  void Stop();

  // Runs `fn` on shard 0's loop thread (thread-safe, returns immediately).
  void Post(std::function<void()> fn);
  // Runs `fn` on the loop thread owning `addr` (shard 0 if unregistered).
  void PostTo(Address addr, std::function<void()> fn);
  // Runs `fn` on a specific shard's loop thread.
  void PostToLoop(uint32_t loop, std::function<void()> fn);

  uint32_t loop_threads() const { return static_cast<uint32_t>(shards_.size()); }
  uint16_t port() const { return shards_[0]->port; }
  uint16_t port_of_loop(uint32_t loop) const { return shards_[loop]->port; }
  uint64_t frames_sent() const { return frames_sent_.load(); }
  uint64_t frames_received() const { return frames_received_.load(); }
  uint64_t writev_calls() const { return writev_calls_.load(); }
  uint64_t writev_frames() const { return writev_frames_.load(); }

 private:
  class TcpEnv;

  // One queued wire frame; the payload string is moved in from Env::Send
  // and owned here until fully written.
  struct OutFrame {
    char header[12];  // u32 length | u32 src | u32 dst
    std::string payload;
  };

  struct Connection {
    int fd = -1;
    std::string inbox;              // partially read frames
    std::deque<OutFrame> outbox;    // queued frames, oldest first
    size_t front_written = 0;       // bytes of outbox.front() already on the wire
    size_t outbox_bytes = 0;        // total unwritten bytes across the queue
  };

  struct Timer {
    Time at;
    uint64_t id;
    std::function<void()> fn;
    bool operator>(const Timer& other) const { return at > other.at; }
  };

  // Everything one event-loop thread owns. Only `posted` (mutex) and the
  // wake pipe are touched cross-thread; the rest is loop-thread-private.
  struct Shard {
    uint32_t index = 0;
    int listen_fd = -1;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    uint16_t port = 0;

    std::vector<std::unique_ptr<Connection>> conns;   // accepted + outgoing
    std::unordered_map<uint16_t, int> port_to_conn;   // outgoing by port
    // Address routes resolved from the shared AddressBook, cached here so
    // the steady-state send path never takes the book's global mutex.
    // Safe because bindings are made before Start() and never change.
    std::unordered_map<Address, uint16_t> port_cache;

    std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers;
    std::unordered_set<uint64_t> cancelled_timers;
    uint64_t next_timer_id = 1;

    std::mutex posted_mu;
    std::deque<std::function<void()>> posted;
    // True while a wake byte is pending in the pipe: cross-thread posters
    // skip the write() when one is already in flight.
    std::atomic<bool> wake_armed{false};
    // Work posted from this shard's own loop thread (actor-to-actor sends):
    // no lock, no wake — drained before the next poll.
    std::deque<std::function<void()>> local_posted;

    std::atomic<uint64_t> outbox_bytes{0};  // mirror for the queue gauge
    std::thread thread;
  };

  struct ActorEntry {
    Actor* actor = nullptr;
    uint32_t shard = 0;
  };

  static Time NowMicros();

  void Loop(Shard* shard);
  void AcceptNew(Shard* shard);
  void ReadFrom(Shard* shard, size_t conn_index);
  void ParseFrames(Shard* shard, Connection* conn);
  void Deliver(Shard* shard, Address src, Address dst, std::string payload);
  void SendFrame(Shard* shard, Address src, Address dst, std::string payload);
  void FlushOutbox(Shard* shard, Connection* conn);
  // Flushes every connection with queued frames (one writev each); called
  // once per loop iteration so frames generated in a cycle coalesce.
  void FlushAll(Shard* shard);
  int ConnectionTo(Shard* shard, uint16_t target_port);
  void Wakeup(Shard* shard);
  void RunTimers(Shard* shard);
  void DrainPosted(Shard* shard);
  void CloseAll();
  void UpdateQueueGauge();

  AddressBook* book_;
  const bool coalesced_io_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Immutable after Start() (registered before the threads run).
  std::unordered_map<Address, ActorEntry> actors_;
  std::vector<std::unique_ptr<Env>> envs_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> writev_calls_{0};
  std::atomic<uint64_t> writev_frames_{0};

  // Observability (null until AttachMetrics).
  Counter* m_frames_sent_ = nullptr;
  Counter* m_frames_received_ = nullptr;
  Counter* m_bytes_sent_ = nullptr;
  Counter* m_bytes_received_ = nullptr;
  Counter* m_writev_calls_ = nullptr;
  Counter* m_writev_frames_ = nullptr;
  Gauge* m_outbox_bytes_ = nullptr;
};

}  // namespace chainreaction

#endif  // SRC_NET_TCP_RUNTIME_H_

#include "src/net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  CHAINRX_CHECK(flags >= 0);
  CHAINRX_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    default:
      return "Error";
  }
}

// Blocking write of the whole buffer (the fd is non-blocking; poll for
// writability between short writes). Telemetry pages are tens of KB at
// most, so this finishes in a few syscalls.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      if (poll(&p, 1, 1000) <= 0) {
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(uint16_t port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 16) != 0) {
    LOG_WARN("http: cannot bind port %u: %s", port, std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  CHAINRX_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  CHAINRX_CHECK(pipe(pipe_fds) == 0);
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);
}

HttpServer::~HttpServer() {
  Stop();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
  }
  if (wake_read_fd_ >= 0) {
    close(wake_read_fd_);
  }
  if (wake_write_fd_ >= 0) {
    close(wake_write_fd_);
  }
}

void HttpServer::Handle(const std::string& prefix, HttpHandler handler) {
  CHAINRX_CHECK(!running_.load());
  handlers_.emplace_back(prefix, std::move(handler));
  // Longest prefix first so Dispatch can take the first match.
  std::sort(handlers_.begin(), handlers_.end(),
            [](const auto& a, const auto& b) { return a.first.size() > b.first.size(); });
}

void HttpServer::Start() {
  if (!ok() || running_.exchange(true)) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
}

HttpResponse HttpServer::NotFound() {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "not found\n";
  return resp;
}

HttpResponse HttpServer::Dispatch(const std::string& path, const std::string& query) const {
  for (const auto& [prefix, handler] : handlers_) {
    if (path.compare(0, prefix.size(), prefix) == 0) {
      return handler(path, query);
    }
  }
  return NotFound();
}

void HttpServer::ServeConnection(int fd) {
  // Read until the end of the request head, bounded in size and time. The
  // connection is served synchronously — acceptable for a telemetry
  // endpoint scraped a few times a second.
  std::string req;
  char buf[2048];
  while (req.size() < 16 * 1024 && req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      req.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLIN, 0};
      if (poll(&p, 1, 1000) <= 0) {
        break;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;  // EOF or error
  }

  HttpResponse resp;
  const size_t line_end = req.find('\n');
  std::string method, target;
  if (line_end != std::string::npos) {
    const std::string line = req.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      method = line.substr(0, sp1);
      target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  if (method != "GET" || target.empty() || target[0] != '/') {
    resp.status = 400;
    resp.body = "bad request\n";
  } else {
    const size_t q = target.find('?');
    const std::string path = q == std::string::npos ? target : target.substr(0, q);
    const std::string query = q == std::string::npos ? "" : target.substr(q + 1);
    resp = Dispatch(path, query);
  }

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + ' ' + StatusText(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + resp.body;
  WriteAll(fd, out);
}

void HttpServer::Loop() {
  while (running_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int n = poll(fds, 2, 500);
    if (n <= 0) {
      continue;
    }
    if (fds[1].revents != 0) {
      char drain[64];
      while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) {
      while (true) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        SetNonBlocking(fd);
        ServeConnection(fd);
        close(fd);
      }
    }
  }
}

}  // namespace chainreaction

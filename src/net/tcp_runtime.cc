#include "src/net/tcp_runtime.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  CHAINRX_CHECK(flags >= 0);
  CHAINRX_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

constexpr size_t kFrameHeader = 12;  // u32 length | u32 src | u32 dst

}  // namespace

// Env implementation bound to one actor of this runtime.
class TcpRuntime::TcpEnv : public Env {
 public:
  TcpEnv(TcpRuntime* rt, Address self) : rt_(rt), self_(self) {}

  Time Now() override { return NowMicros(); }

  void Send(Address dst, std::string payload) override {
    rt_->SendFrame(self_, dst, payload);
  }

  uint64_t Schedule(Duration delay, std::function<void()> fn) override {
    const uint64_t id = rt_->next_timer_id_++;
    rt_->timers_.push(Timer{NowMicros() + delay, id, std::move(fn)});
    return id;
  }

  void CancelTimer(uint64_t timer_id) override { rt_->cancelled_timers_.insert(timer_id); }

 private:
  TcpRuntime* rt_;
  Address self_;
};

Time TcpRuntime::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TcpRuntime::TcpRuntime(AddressBook* book) : book_(book) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  CHAINRX_CHECK(listen_fd_ >= 0);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  CHAINRX_CHECK(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
  CHAINRX_CHECK(listen(listen_fd_, 128) == 0);
  socklen_t len = sizeof(addr);
  CHAINRX_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  CHAINRX_CHECK(pipe(pipe_fds) == 0);
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);
}

TcpRuntime::~TcpRuntime() {
  Stop();
  CloseAll();
}

Env* TcpRuntime::Register(Address addr, Actor* actor) {
  CHAINRX_CHECK(!running_.load());
  actors_[addr] = actor;
  book_->Bind(addr, port_);
  envs_.push_back(std::make_unique<TcpEnv>(this, addr));
  return envs_.back().get();
}

void TcpRuntime::AttachMetrics(MetricsRegistry* metrics) {
  CHAINRX_CHECK(!running_.load());
  if (metrics == nullptr) {
    return;
  }
  const MetricLabels labels = {{"transport", "tcp"}, {"port", std::to_string(port_)}};
  m_frames_sent_ = metrics->GetCounter("crx_net_frames_sent", labels);
  m_frames_received_ = metrics->GetCounter("crx_net_frames_received", labels);
  m_bytes_sent_ = metrics->GetCounter("crx_net_bytes_sent", labels);
  m_bytes_received_ = metrics->GetCounter("crx_net_bytes_received", labels);
  m_outbox_bytes_ = metrics->GetGauge("crx_net_outbox_bytes", labels);
}

void TcpRuntime::UpdateQueueGauge() {
  if (m_outbox_bytes_ == nullptr) {
    return;
  }
  uint64_t pending = 0;
  for (const auto& conn : conns_) {
    pending += conn->outbox.size();
  }
  m_outbox_bytes_->Set(static_cast<int64_t>(pending));
}

void TcpRuntime::Start() {
  CHAINRX_CHECK(!running_.load());
  running_.store(true);
  thread_ = std::thread([this]() { Loop(); });
}

void TcpRuntime::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  Wakeup();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void TcpRuntime::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  Wakeup();
}

void TcpRuntime::Wakeup() {
  const char byte = 1;
  ssize_t ignored = write(wake_write_fd_, &byte, 1);
  (void)ignored;
}

void TcpRuntime::Loop() {
  while (running_.load()) {
    DrainPosted();
    RunTimers();

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (!conn->outbox.empty()) {
        events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
    }

    int timeout_ms = 50;
    if (!timers_.empty()) {
      const Time delta = timers_.top().at - NowMicros();
      timeout_ms = delta <= 0 ? 0 : static_cast<int>(std::min<Time>(delta / 1000 + 1, 50));
    }
    const int n = poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      LOG_ERROR("poll failed: %s", std::strerror(errno));
      return;
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) {
      AcceptNew();
    }
    // conns_ may grow during handling (new outgoing connections); only the
    // prefix snapshotted into fds is touched here.
    const size_t snapshot = fds.size() - 2;
    for (size_t i = 0; i < snapshot; ++i) {
      const short revents = fds[i + 2].revents;
      if ((revents & POLLOUT) != 0) {
        FlushOutbox(conns_[i].get());
      }
      if ((revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        ReadFrom(i);
      }
    }
    UpdateQueueGauge();
  }
}

void TcpRuntime::DrainPosted() {
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    fn();
  }
}

void TcpRuntime::RunTimers() {
  const Time now = NowMicros();
  while (!timers_.empty() && timers_.top().at <= now) {
    Timer t = timers_.top();
    timers_.pop();
    if (auto it = cancelled_timers_.find(t.id); it != cancelled_timers_.end()) {
      cancelled_timers_.erase(it);
      continue;
    }
    t.fn();
  }
}

void TcpRuntime::AcceptNew() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
  }
}

void TcpRuntime::ReadFrom(size_t conn_index) {
  Connection* conn = conns_[conn_index].get();
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbox.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    // Peer closed (or error): frames already buffered still get parsed.
    break;
  }
  ParseFrames(conn);
}

void TcpRuntime::ParseFrames(Connection* conn) {
  size_t offset = 0;
  while (conn->inbox.size() - offset >= kFrameHeader) {
    uint32_t length = 0, src = 0, dst = 0;
    std::memcpy(&length, conn->inbox.data() + offset, 4);
    std::memcpy(&src, conn->inbox.data() + offset + 4, 4);
    std::memcpy(&dst, conn->inbox.data() + offset + 8, 4);
    if (length > (64u << 20)) {
      LOG_ERROR("oversized frame (%u bytes); dropping connection buffer", length);
      conn->inbox.clear();
      return;
    }
    if (conn->inbox.size() - offset - kFrameHeader < length) {
      break;  // incomplete
    }
    std::string payload = conn->inbox.substr(offset + kFrameHeader, length);
    offset += kFrameHeader + length;
    frames_received_.fetch_add(1);
    if (m_frames_received_ != nullptr) {
      m_frames_received_->Inc();
      m_bytes_received_->Inc(kFrameHeader + length);
    }
    Deliver(src, dst, std::move(payload));
  }
  if (offset > 0) {
    conn->inbox.erase(0, offset);
  }
}

void TcpRuntime::Deliver(Address src, Address dst, std::string payload) {
  auto it = actors_.find(dst);
  if (it == actors_.end()) {
    LOG_WARN("runtime on port %u: no actor %u", port_, dst);
    return;
  }
  it->second->OnMessage(src, payload);
}

void TcpRuntime::SendFrame(Address src, Address dst, const std::string& payload) {
  // Local recipients skip the wire, like colocated processes sharing a bus.
  if (actors_.contains(dst)) {
    // Defer via the posted queue to keep Send() non-reentrant.
    std::string copy = payload;
    Post([this, src, dst, copy = std::move(copy)]() mutable {
      Deliver(src, dst, std::move(copy));
    });
    return;
  }
  const uint16_t target_port = book_->PortOf(dst);
  if (target_port == 0) {
    LOG_WARN("no route to address %u", dst);
    return;
  }
  const int conn_index = ConnectionTo(target_port);
  if (conn_index < 0) {
    return;
  }
  Connection* conn = conns_[static_cast<size_t>(conn_index)].get();
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char header[kFrameHeader];
  std::memcpy(header, &length, 4);
  std::memcpy(header + 4, &src, 4);
  std::memcpy(header + 8, &dst, 4);
  conn->outbox.append(header, kFrameHeader);
  conn->outbox.append(payload);
  frames_sent_.fetch_add(1);
  if (m_frames_sent_ != nullptr) {
    m_frames_sent_->Inc();
    m_bytes_sent_->Inc(kFrameHeader + payload.size());
  }
  FlushOutbox(conn);
  UpdateQueueGauge();
}

void TcpRuntime::FlushOutbox(Connection* conn) {
  while (!conn->outbox.empty()) {
    const ssize_t n = write(conn->fd, conn->outbox.data(), conn->outbox.size());
    if (n > 0) {
      conn->outbox.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // poll will retry with POLLOUT
    }
    LOG_WARN("write failed: %s", std::strerror(errno));
    conn->outbox.clear();
    return;
  }
}

int TcpRuntime::ConnectionTo(uint16_t target_port) {
  auto it = port_to_conn_.find(target_port);
  if (it != port_to_conn_.end()) {
    return it->second;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(target_port);
  // Blocking connect to localhost completes immediately in practice.
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    LOG_WARN("connect to port %u failed: %s", target_port, std::strerror(errno));
    close(fd);
    return -1;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conns_.push_back(std::move(conn));
  const int index = static_cast<int>(conns_.size() - 1);
  port_to_conn_[target_port] = index;
  return index;
}

void TcpRuntime::CloseAll() {
  for (auto& conn : conns_) {
    if (conn->fd >= 0) {
      close(conn->fd);
    }
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    close(wake_read_fd_);
    close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
  }
}

}  // namespace chainreaction

#include "src/net/tcp_runtime.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/result.h"

namespace chainreaction {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  CHAINRX_CHECK(flags >= 0);
  CHAINRX_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

constexpr size_t kFrameHeader = 12;  // u32 length | u32 src | u32 dst

// Max iovec entries gathered into one writev (each frame contributes up to
// two: header + payload). Kept well under IOV_MAX.
constexpr size_t kMaxIov = 64;

// The Shard whose loop is running on the current thread (null on ordinary
// application threads). Lets PostToLoop detect same-shard posts, which need
// neither the mutex nor a wake byte.
thread_local void* g_loop_shard = nullptr;

}  // namespace

// Env implementation bound to one actor of this runtime. Schedule and
// CancelTimer touch only the owning shard's timer heap, and they are only
// called from that shard's loop thread (the single-threaded-actor contract).
class TcpRuntime::TcpEnv : public Env {
 public:
  TcpEnv(TcpRuntime* rt, Shard* shard, Address self)
      : rt_(rt), shard_(shard), self_(self) {}

  Time Now() override { return NowMicros(); }

  void Send(Address dst, Payload payload) override {
    rt_->SendFrame(shard_, self_, dst, std::move(payload));
  }

  uint64_t Schedule(Duration delay, std::function<void()> fn) override {
    const uint64_t id = shard_->next_timer_id++;
    shard_->timers.push(Timer{NowMicros() + delay, id, std::move(fn)});
    return id;
  }

  void CancelTimer(uint64_t timer_id) override { shard_->cancelled_timers.Insert(timer_id); }

 private:
  TcpRuntime* rt_;
  Shard* shard_;
  Address self_;
};

Time TcpRuntime::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TcpRuntime::TcpRuntime(AddressBook* book, uint32_t loop_threads, bool coalesced_io)
    : book_(book), coalesced_io_(coalesced_io) {
  CHAINRX_CHECK(loop_threads >= 1);
  for (uint32_t i = 0; i < loop_threads; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;

    shard->listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    CHAINRX_CHECK(shard->listen_fd >= 0);
    int one = 1;
    setsockopt(shard->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    CHAINRX_CHECK(bind(shard->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
    CHAINRX_CHECK(listen(shard->listen_fd, 128) == 0);
    socklen_t len = sizeof(addr);
    CHAINRX_CHECK(getsockname(shard->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
    shard->port = ntohs(addr.sin_port);
    SetNonBlocking(shard->listen_fd);

    int pipe_fds[2];
    CHAINRX_CHECK(pipe(pipe_fds) == 0);
    shard->wake_read_fd = pipe_fds[0];
    shard->wake_write_fd = pipe_fds[1];
    SetNonBlocking(shard->wake_read_fd);
    SetNonBlocking(shard->wake_write_fd);

    shards_.push_back(std::move(shard));
  }
}

TcpRuntime::~TcpRuntime() {
  Stop();
  CloseAll();
}

Env* TcpRuntime::Register(Address addr, Actor* actor, uint32_t loop) {
  CHAINRX_CHECK(!running_.load());
  CHAINRX_CHECK(loop < shards_.size());
  actors_[addr] = ActorEntry{actor, loop};
  book_->Bind(addr, shards_[loop]->port);
  envs_.push_back(std::make_unique<TcpEnv>(this, shards_[loop].get(), addr));
  return envs_.back().get();
}

void TcpRuntime::AttachMetrics(MetricsRegistry* metrics) {
  CHAINRX_CHECK(!running_.load());
  if (metrics == nullptr) {
    return;
  }
  const MetricLabels labels = {{"transport", "tcp"}, {"port", std::to_string(port())}};
  m_frames_sent_ = metrics->GetCounter("crx_net_frames_sent", labels);
  m_frames_received_ = metrics->GetCounter("crx_net_frames_received", labels);
  m_bytes_sent_ = metrics->GetCounter("crx_net_bytes_sent", labels);
  m_bytes_received_ = metrics->GetCounter("crx_net_bytes_received", labels);
  m_writev_calls_ = metrics->GetCounter("crx_net_writev_calls", labels);
  m_writev_frames_ = metrics->GetCounter("crx_net_writev_frames", labels);
  m_outbox_bytes_ = metrics->GetGauge("crx_net_outbox_bytes", labels);
}

void TcpRuntime::UpdateQueueGauge() {
  if (m_outbox_bytes_ == nullptr) {
    return;
  }
  uint64_t pending = 0;
  for (const auto& shard : shards_) {
    pending += shard->outbox_bytes.load(std::memory_order_relaxed);
  }
  m_outbox_bytes_->Set(static_cast<int64_t>(pending));
}

void TcpRuntime::Start() {
  CHAINRX_CHECK(!running_.load());
  running_.store(true);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s]() { Loop(s); });
  }
}

void TcpRuntime::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  for (auto& shard : shards_) {
    Wakeup(shard.get());
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
}

void TcpRuntime::Post(std::function<void()> fn) { PostToLoop(0, std::move(fn)); }

void TcpRuntime::PostTo(Address addr, std::function<void()> fn) {
  auto it = actors_.find(addr);
  PostToLoop(it == actors_.end() ? 0 : it->second.shard, std::move(fn));
}

void TcpRuntime::PostToLoop(uint32_t loop, std::function<void()> fn) {
  Shard* shard = shards_[loop].get();
  if (coalesced_io_ && g_loop_shard == shard) {
    // Same-shard fast path: the queue is loop-thread-private and the loop
    // drains it before sleeping, so no synchronization is needed. Queueing
    // (instead of calling fn now) keeps actor callbacks non-reentrant.
    shard->local_posted.push_back(std::move(fn));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(shard->posted_mu);
    shard->posted.push_back(std::move(fn));
  }
  if (!shard->wake_armed.exchange(true)) {
    Wakeup(shard);
  }
}

void TcpRuntime::Wakeup(Shard* shard) {
  const char byte = 1;
  ssize_t ignored = write(shard->wake_write_fd, &byte, 1);
  (void)ignored;
}

void TcpRuntime::Loop(Shard* shard) {
  g_loop_shard = shard;
  std::vector<pollfd> fds;  // reused across iterations; capacity sticks
  while (running_.load()) {
    DrainPosted(shard);
    RunTimers(shard);
    // One coalesced writev per dirty connection for everything the drained
    // work produced, before going to sleep.
    FlushAll(shard);

    fds.clear();
    fds.push_back({shard->listen_fd, POLLIN, 0});
    fds.push_back({shard->wake_read_fd, POLLIN, 0});
    for (const auto& conn : shard->conns) {
      short events = POLLIN;
      if (!conn->outbox.empty()) {
        events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
    }

    int timeout_ms = 50;
    if (!shard->timers.empty()) {
      const Time delta = shard->timers.top().at - NowMicros();
      timeout_ms = delta <= 0 ? 0 : static_cast<int>(std::min<Time>(delta / 1000 + 1, 50));
    }
    if (!shard->local_posted.empty() || !shard->local_frames.empty()) {
      timeout_ms = 0;  // timer callbacks may have posted follow-up work
    } else {
      // Don't sleep on work posted cross-thread between drain and poll.
      std::lock_guard<std::mutex> lock(shard->posted_mu);
      if (!shard->posted.empty()) {
        timeout_ms = 0;
      }
    }
    const int n = poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      LOG_ERROR("poll failed: %s", std::strerror(errno));
      return;
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char buf[256];
      while (read(shard->wake_read_fd, buf, sizeof(buf)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) {
      AcceptNew(shard);
    }
    // conns may grow during handling (new outgoing connections); only the
    // prefix snapshotted into fds is touched here.
    const size_t snapshot = fds.size() - 2;
    for (size_t i = 0; i < snapshot; ++i) {
      const short revents = fds[i + 2].revents;
      if ((revents & POLLOUT) != 0) {
        FlushOutbox(shard, shard->conns[i].get());
      }
      if ((revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        ReadFrom(shard, i);
      }
    }
    UpdateQueueGauge();
  }
}

void TcpRuntime::DrainPosted(Shard* shard) {
  shard->wake_armed.store(false);
  // Swap through the shard's scratch deque instead of constructing a fresh
  // one: a default-constructed deque allocates its chunk map every cycle.
  std::deque<std::function<void()>>& batch = shard->posted_scratch;
  {
    std::lock_guard<std::mutex> lock(shard->posted_mu);
    batch.swap(shard->posted);
  }
  for (auto& fn : batch) {
    fn();
  }
  batch.clear();
  // Run same-shard work (and the work it spawns) to quiescence; socket
  // backpressure bounds how much can accumulate per cycle.
  while (!shard->local_frames.empty() || !shard->local_posted.empty()) {
    while (!shard->local_frames.empty()) {
      LocalFrame f = std::move(shard->local_frames.front());
      shard->local_frames.pop_front();
      auto entry = actors_.find(f.dst);
      if (entry != actors_.end()) {
        entry->second.actor->OnMessage(f.src, f.payload.view());
      }
    }
    if (!shard->local_posted.empty()) {
      auto fn = std::move(shard->local_posted.front());
      shard->local_posted.pop_front();
      fn();
    }
  }
}

void TcpRuntime::RunTimers(Shard* shard) {
  const Time now = NowMicros();
  while (!shard->timers.empty() && shard->timers.top().at <= now) {
    // Move (not copy) out of the heap: `at`/`id` are untouched by the move,
    // so pop()'s sift-down compares stay valid, and the closure's buffer is
    // not duplicated on every firing.
    Timer t = std::move(const_cast<Timer&>(shard->timers.top()));
    shard->timers.pop();
    if (shard->cancelled_timers.Erase(t.id)) {
      continue;
    }
    t.fn();
  }
}

void TcpRuntime::AcceptNew(Shard* shard) {
  while (true) {
    const int fd = accept(shard->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      return;
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    shard->conns.push_back(std::move(conn));
  }
}

void TcpRuntime::ReadFrom(Shard* shard, size_t conn_index) {
  Connection* conn = shard->conns[conn_index].get();
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbox.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    // Peer closed (or error): frames already buffered still get parsed.
    break;
  }
  ParseFrames(shard, conn);
}

void TcpRuntime::ParseFrames(Shard* shard, Connection* conn) {
  size_t offset = 0;
  while (conn->inbox.size() - offset >= kFrameHeader) {
    uint32_t length = 0, src = 0, dst = 0;
    std::memcpy(&length, conn->inbox.data() + offset, 4);
    std::memcpy(&src, conn->inbox.data() + offset + 4, 4);
    std::memcpy(&dst, conn->inbox.data() + offset + 8, 4);
    if (length > (64u << 20)) {
      LOG_ERROR("oversized frame (%u bytes); dropping connection buffer", length);
      conn->inbox.clear();
      return;
    }
    if (conn->inbox.size() - offset - kFrameHeader < length) {
      break;  // incomplete
    }
    // Zero-copy delivery: hand out a view directly into the inbox. Safe
    // because the inbox is only mutated here and in ReadFrom, neither of
    // which re-enters while an actor callback runs.
    const std::string_view payload(conn->inbox.data() + offset + kFrameHeader, length);
    offset += kFrameHeader + length;
    frames_received_.fetch_add(1);
    if (m_frames_received_ != nullptr) {
      m_frames_received_->Inc();
      m_bytes_received_->Inc(kFrameHeader + length);
    }
    Deliver(shard, src, dst, payload);
  }
  if (offset > 0) {
    conn->inbox.erase(0, offset);
  }
}

void TcpRuntime::Deliver(Shard* shard, Address src, Address dst, std::string_view payload) {
  auto it = actors_.find(dst);
  if (it == actors_.end()) {
    LOG_WARN("runtime on port %u: no actor %u", shard->port, dst);
    return;
  }
  if (it->second.shard != shard->index) {
    // A frame for an actor homed on another shard (e.g. sent to a stale
    // port binding): the view dies with this parse pass, so copy into an
    // owned buffer and bounce it to the owning loop so the actor's
    // single-threaded contract holds.
    PostToLoop(it->second.shard,
               [this, src, dst, payload = std::string(payload)]() {
                 auto entry = actors_.find(dst);
                 if (entry != actors_.end()) {
                   entry->second.actor->OnMessage(src, payload);
                 }
               });
    return;
  }
  it->second.actor->OnMessage(src, payload);
}

void TcpRuntime::SendFrame(Shard* shard, Address src, Address dst, Payload payload) {
  // Local recipients skip the wire, like colocated processes sharing a bus.
  if (auto it = actors_.find(dst); it != actors_.end()) {
    Shard* home = shards_[it->second.shard].get();
    if (coalesced_io_ && g_loop_shard == home) {
      // Same-shard fast path (the dominant case: chain hops between
      // colocated replicas): queue a plain frame on the loop-private deque.
      // Still deferred — never delivered inline — so Send() stays
      // non-reentrant, but without a per-send closure allocation.
      home->local_frames.push_back(LocalFrame{src, dst, std::move(payload)});
      return;
    }
    // Defer via the owning shard's posted queue: keeps Send() non-reentrant
    // on the same shard and hops threads for cross-shard destinations.
    PostToLoop(it->second.shard,
               [this, src, dst, payload = std::move(payload)]() {
                 auto entry = actors_.find(dst);
                 if (entry != actors_.end()) {
                   entry->second.actor->OnMessage(src, payload.view());
                 }
               });
    return;
  }
  uint16_t target_port = 0;
  if (auto cached = shard->port_cache.find(dst); cached != shard->port_cache.end()) {
    target_port = cached->second;
  } else {
    target_port = book_->PortOf(dst);
    if (target_port != 0) {
      shard->port_cache.emplace(dst, target_port);
    }
  }
  if (target_port == 0) {
    LOG_WARN("no route to address %u", dst);
    return;
  }
  const int conn_index = ConnectionTo(shard, target_port);
  if (conn_index < 0) {
    return;
  }
  Connection* conn = shard->conns[static_cast<size_t>(conn_index)].get();
  OutFrame frame;
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::memcpy(frame.header, &length, 4);
  std::memcpy(frame.header + 4, &src, 4);
  std::memcpy(frame.header + 8, &dst, 4);
  frame.payload = std::move(payload);
  conn->outbox_bytes += kFrameHeader + frame.payload.size();
  conn->outbox.push_back(std::move(frame));
  frames_sent_.fetch_add(1);
  if (m_frames_sent_ != nullptr) {
    m_frames_sent_->Inc();
    m_bytes_sent_->Inc(kFrameHeader + length);
  }
  if (coalesced_io_) {
    // Not flushed here: the loop flushes all dirty connections once per
    // cycle, so frames queued by one batch of work share a writev.
    return;
  }
  FlushOutbox(shard, conn);
  UpdateQueueGauge();
}

void TcpRuntime::FlushAll(Shard* shard) {
  for (const auto& conn : shard->conns) {
    if (!conn->outbox.empty()) {
      FlushOutbox(shard, conn.get());
    }
  }
  UpdateQueueGauge();
}

// Gathers as many queued frames as fit into one writev and resumes
// correctly on partial writes: the front frame's written prefix is tracked
// in Connection::front_written, EINTR retries, EAGAIN defers to POLLOUT.
// Only a real socket error (broken connection) drops the queue.
void TcpRuntime::FlushOutbox(Shard* shard, Connection* conn) {
  while (!conn->outbox.empty()) {
    iovec iov[kMaxIov];
    size_t niov = 0;
    size_t skip = conn->front_written;
    for (const OutFrame& f : conn->outbox) {
      if (niov + 2 > kMaxIov) {
        break;
      }
      const std::string_view bytes = f.payload.view();
      if (skip < kFrameHeader) {
        iov[niov].iov_base = const_cast<char*>(f.header + skip);
        iov[niov].iov_len = kFrameHeader - skip;
        ++niov;
        if (!bytes.empty()) {
          iov[niov].iov_base = const_cast<char*>(bytes.data());
          iov[niov].iov_len = bytes.size();
          ++niov;
        }
      } else {
        const size_t payload_off = skip - kFrameHeader;
        iov[niov].iov_base = const_cast<char*>(bytes.data() + payload_off);
        iov[niov].iov_len = bytes.size() - payload_off;
        ++niov;
      }
      skip = 0;
    }

    const ssize_t n = writev(conn->fd, iov, static_cast<int>(niov));
    if (n < 0) {
      if (errno == EINTR) {
        continue;  // interrupted before any byte moved; retry
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;  // poll will retry with POLLOUT
      }
      // Broken connection: the queued frames can never be delivered.
      LOG_WARN("writev failed: %s; dropping %zu buffered bytes", std::strerror(errno),
               conn->outbox_bytes);
      conn->outbox.clear();
      conn->front_written = 0;
      conn->outbox_bytes = 0;
      break;
    }
    writev_calls_.fetch_add(1);
    if (m_writev_calls_ != nullptr) {
      m_writev_calls_->Inc();
    }

    // Consume n bytes across the queued frames.
    size_t left = static_cast<size_t>(n);
    conn->outbox_bytes -= left;
    uint64_t completed = 0;
    while (left > 0) {
      OutFrame& f = conn->outbox.front();
      const size_t total = kFrameHeader + f.payload.size();
      const size_t rem = total - conn->front_written;
      if (left >= rem) {
        left -= rem;
        conn->outbox.pop_front();
        conn->front_written = 0;
        ++completed;
      } else {
        conn->front_written += left;
        left = 0;
      }
    }
    if (completed > 0) {
      writev_frames_.fetch_add(completed);
      if (m_writev_frames_ != nullptr) {
        m_writev_frames_->Inc(completed);
      }
    }
  }
  size_t pending = 0;
  for (const auto& c : shard->conns) {
    pending += c->outbox_bytes;
  }
  shard->outbox_bytes.store(pending, std::memory_order_relaxed);
}

int TcpRuntime::ConnectionTo(Shard* shard, uint16_t target_port) {
  auto it = shard->port_to_conn.find(target_port);
  if (it != shard->port_to_conn.end()) {
    return it->second;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(target_port);
  // Blocking connect to localhost completes immediately in practice.
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    LOG_WARN("connect to port %u failed: %s", target_port, std::strerror(errno));
    close(fd);
    return -1;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  shard->conns.push_back(std::move(conn));
  const int index = static_cast<int>(shard->conns.size() - 1);
  shard->port_to_conn[target_port] = index;
  return index;
}

void TcpRuntime::CloseAll() {
  for (auto& shard : shards_) {
    for (auto& conn : shard->conns) {
      if (conn->fd >= 0) {
        close(conn->fd);
      }
    }
    shard->conns.clear();
    if (shard->listen_fd >= 0) {
      close(shard->listen_fd);
      shard->listen_fd = -1;
    }
    if (shard->wake_read_fd >= 0) {
      close(shard->wake_read_fd);
      close(shard->wake_write_fd);
      shard->wake_read_fd = shard->wake_write_fd = -1;
    }
  }
}

}  // namespace chainreaction

// One-process TCP deployment harness.
//
// Stands up a full ChainReaction cluster over loopback sockets inside one
// process: a single server TcpRuntime whose `loop_threads` event loops host
// all node actors, plus a client TcpRuntime hosting N client sessions.
// Nodes are sharded across the server loops by *ring position* — contiguous
// ring segments map to the same loop, so the chain neighbors of most keys
// colocate and down-chain hops stay in-process on one thread.
//
// The harness also bundles a closed-loop load driver (each client issues
// its next operation from the previous one's completion callback) used by
// bench_e16_hotpath, crx_loadgen --loop-threads, and the multi-loop tests.
#ifndef SRC_NET_TCP_CLUSTER_H_
#define SRC_NET_TCP_CLUSTER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/admin/migration.h"
#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/core/chainreaction_client.h"
#include "src/core/chainreaction_node.h"
#include "src/core/config.h"
#include "src/net/address_book.h"
#include "src/net/tcp_runtime.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/ring/membership.h"
#include "src/ring/ring.h"

namespace chainreaction {

class TcpCluster {
 public:
  struct Options {
    uint32_t num_nodes = 8;
    uint32_t loop_threads = 1;         // server event loops
    uint32_t num_clients = 1;          // independent client sessions
    uint32_t client_loop_threads = 1;  // client-side event loops
    uint64_t seed = 42;
    // config.replication governs chain length; batching windows and
    // timeouts are taken as-is.
    CrxConfig config;
    MetricsRegistry* metrics = nullptr;  // optional
    // Optional shared trace sink: every node AND client reports its hops
    // here (one-process deployments — the assembler reads it directly).
    TraceCollector* traces = nullptr;
    // Distributed-telemetry mode: each node gets its OWN TraceCollector and
    // TelemetryServer on an ephemeral loopback port (see
    // node_telemetry_port), so trace assembly must pull per-node partials
    // over HTTP exactly as it would against separate processes. Clients
    // report to client_collector(). Ignored when `traces` is set.
    bool per_node_telemetry = false;
    // Seed-style deployment: one single-loop runtime per node, every chain
    // hop over a socket (ignores loop_threads). Benchmarks use it as the
    // pre-overhaul baseline.
    bool per_node_runtimes = false;
    // False restores pre-overhaul per-frame write()/post behavior in all
    // server runtimes (see TcpRuntime).
    bool coalesced_io = true;
    // Elastic membership: hosts a MembershipService and MigrationCoordinator
    // on the server runtime so nodes can join/drain/rebalance while load
    // runs (AddJoiningServer/DrainServer/RebalanceServer). Clients become
    // membership listeners and follow epoch flips live.
    bool elastic = false;
    Duration migration_timeout = 10 * kSecond;
    uint32_t mig_batch_keys = 64;
    Duration mig_batch_interval = 0;
  };

  struct LoadOptions {
    Duration duration = 2 * kSecond;  // wall-clock run length
    uint32_t value_size = 128;        // bytes per put value
    uint32_t key_space = 1024;        // distinct keys
    double get_fraction = 0.0;        // remainder are puts
    // Outstanding operations per client session. 1 = strictly sequential
    // (session guarantees); >1 pipelines puts down the chain, which is what
    // the cumulative-ack batching coalesces.
    uint32_t pipeline = 1;
  };

  struct LoadResult {
    uint64_t ops = 0;
    uint64_t failures = 0;
    double ops_per_sec = 0.0;
    Histogram latency_us;  // per-op completion latency
  };

  explicit TcpCluster(Options opts);
  ~TcpCluster();
  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  // Runs every client session closed-loop until the deadline and merges
  // their stats. Call from an ordinary (non-loop) thread.
  LoadResult RunClosedLoop(const LoadOptions& load);

  // The consolidated server runtime (first one in per-node mode).
  TcpRuntime* server_runtime() { return server_runtimes_[0].get(); }
  TcpRuntime* client_runtime() { return client_runtime_.get(); }
  // Aggregated over all server runtimes (1 unless per_node_runtimes).
  uint64_t server_writev_calls() const;
  uint64_t server_writev_frames() const;
  uint64_t server_frames_sent() const;
  ChainReactionClient* client(size_t i) { return clients_[i].get(); }
  size_t num_clients() const { return clients_.size(); }
  ChainReactionNode* node(NodeId n) { return nodes_[n].get(); }
  size_t num_nodes() const { return nodes_.size(); }
  // The boot-time ring (epoch 1). Under elastic mode the live layout is the
  // membership service's — read it through coordinator atomics, not here.
  const Ring& ring() const { return ring_; }
  uint32_t shard_of_node(NodeId n) const { return node_shard_[n]; }

  // Distributed telemetry (requires Options::per_node_telemetry) ------------
  // Node n's telemetry port (0 if the server failed to bind) and its private
  // trace collector; the client-side collector holds client_put/client_ack
  // hops. A TraceAssembler pulls the node ports + merges client partials.
  uint16_t node_telemetry_port(NodeId n) const {
    return n < node_telemetry_.size() && node_telemetry_[n] != nullptr
               ? node_telemetry_[n]->port()
               : 0;
  }
  TraceCollector* node_collector(NodeId n) {
    return n < node_collectors_.size() ? node_collectors_[n].get() : nullptr;
  }
  TraceCollector* client_collector() { return client_collector_.get(); }

  // Elastic membership (requires Options::elastic) -------------------------
  // Boots a brand-new node in its OWN TcpRuntime — a separate process
  // equivalent; peers learn its port from the shared address book without
  // any restart — and plans a join migration for it. Returns the node id.
  NodeId AddJoiningServer(uint32_t weight = 0);
  // Plans a drain (the node's data migrates away, then it leaves the ring).
  void DrainServer(NodeId n);
  // Plans a vnode-weight change for a live node.
  void RebalanceServer(NodeId n, uint32_t weight);
  // Blocks (wall-clock) until every planned migration issued through this
  // harness has finished (committed or aborted). False on timeout.
  bool WaitMigrationIdle(Duration max_wait = 30 * kSecond);
  MigrationCoordinator* coordinator() { return coordinator_.get(); }

  // Ring-segment affinity: nodes in ring order, split into `loops`
  // contiguous blocks. Exposed for tests.
  static std::vector<uint32_t> AssignShardsByRingOrder(const Ring& ring, uint32_t num_nodes,
                                                       uint32_t loops);

 private:
  struct LoadSession;
  void StepLoadSession(LoadSession* s);

  Options opts_;
  CrxConfig effective_config_;  // opts_.config + elastic-mode membership addr
  Ring ring_;
  AddressBook book_;
  std::vector<uint32_t> node_shard_;
  std::vector<std::unique_ptr<TcpRuntime>> server_runtimes_;
  std::unique_ptr<TcpRuntime> client_runtime_;
  std::vector<std::unique_ptr<ChainReactionNode>> nodes_;
  std::vector<std::unique_ptr<ChainReactionClient>> clients_;

  // Distributed-telemetry state (empty unless opts_.per_node_telemetry).
  std::vector<std::unique_ptr<TraceCollector>> node_collectors_;
  std::vector<std::unique_ptr<TelemetryServer>> node_telemetry_;
  std::unique_ptr<TraceCollector> client_collector_;
  void AttachNodeTelemetry(ChainReactionNode* node);

  // Elastic-mode state (null unless opts_.elastic).
  std::unique_ptr<MembershipService> membership_;
  std::unique_ptr<MigrationCoordinator> coordinator_;
  // One runtime per live-joined node, modeling separate processes.
  std::vector<std::unique_ptr<TcpRuntime>> joined_runtimes_;
  std::atomic<uint64_t> migrations_issued_{0};
};

}  // namespace chainreaction

#endif  // SRC_NET_TCP_CLUSTER_H_

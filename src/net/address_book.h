// Maps actor addresses to TCP endpoints (localhost ports).
//
// Every TcpRuntime registers its actors here so that peer runtimes — which
// model separate server/client processes — can route frames to them. The
// book is shared and thread-safe.
#ifndef SRC_NET_ADDRESS_BOOK_H_
#define SRC_NET_ADDRESS_BOOK_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/common/types.h"

namespace chainreaction {

class AddressBook {
 public:
  void Bind(Address addr, uint16_t port) {
    std::lock_guard<std::mutex> lock(mu_);
    map_[addr] = port;
  }

  // Returns 0 if unknown.
  uint16_t PortOf(Address addr) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(addr);
    return it == map_.end() ? 0 : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Address, uint16_t> map_;
};

}  // namespace chainreaction

#endif  // SRC_NET_ADDRESS_BOOK_H_

#include "src/net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace chainreaction {

HttpClientResponse HttpGet(uint16_t port, const std::string& path, int timeout_ms) {
  HttpClientResponse resp;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return resp;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return resp;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = write(fd, request.data() + off, request.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    close(fd);
    return resp;
  }
  // Read to EOF; the server sends one response then closes.
  std::string raw;
  char buf[4096];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    const int pr = poll(&p, 1, timeout_ms);
    if (pr <= 0) {
      close(fd);
      return resp;  // timed out or poll error: transport failure
    }
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;  // EOF (or hard error with a possibly-complete response)
  }
  close(fd);

  // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
  if (raw.compare(0, 5, "HTTP/") != 0) {
    return resp;
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos) {
    return resp;
  }
  resp.status = std::atoi(raw.c_str() + sp + 1);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return resp;
  }
  resp.body = raw.substr(header_end + 4);

  // Verify completeness against Content-Length when the server sent one.
  const std::string headers = raw.substr(0, header_end);
  size_t cl = headers.find("Content-Length:");
  if (cl == std::string::npos) {
    cl = headers.find("content-length:");
  }
  if (cl != std::string::npos) {
    const size_t expected = std::strtoull(headers.c_str() + cl + 15, nullptr, 10);
    if (resp.body.size() < expected) {
      return resp;  // truncated read: not ok
    }
    resp.body.resize(expected);
  }
  resp.ok = true;
  return resp;
}

}  // namespace chainreaction

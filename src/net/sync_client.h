// Blocking facade over the asynchronous ChainReaction client for use from
// ordinary application threads when the client runs on a TcpRuntime.
//
// Every call posts the operation to the client's loop thread and waits for
// the completion callback. One SyncClient may be shared by one application
// thread at a time (operations are sequential — a session).
#ifndef SRC_NET_SYNC_CLIENT_H_
#define SRC_NET_SYNC_CLIENT_H_

#include <condition_variable>
#include <mutex>

#include "src/core/chainreaction_client.h"
#include "src/net/tcp_runtime.h"

namespace chainreaction {

class SyncClient {
 public:
  SyncClient(ChainReactionClient* client, TcpRuntime* runtime)
      : client_(client), runtime_(runtime) {}

  ChainReactionClient::PutResult Put(const Key& key, Value value) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ChainReactionClient::PutResult result;
    runtime_->PostTo(client_->address(), [&, key]() mutable {
      client_->Put(key, std::move(value), [&](const ChainReactionClient::PutResult& r) {
        std::lock_guard<std::mutex> lock(mu);
        result = r;
        done = true;
        cv.notify_one();
      });
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return result;
  }

  ChainReactionClient::GetResult Get(const Key& key) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ChainReactionClient::GetResult result;
    runtime_->PostTo(client_->address(), [&, key]() {
      client_->Get(key, [&](const ChainReactionClient::GetResult& r) {
        std::lock_guard<std::mutex> lock(mu);
        result = r;
        done = true;
        cv.notify_one();
      });
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return result;
  }

 private:
  ChainReactionClient* client_;
  TcpRuntime* runtime_;
};

}  // namespace chainreaction

#endif  // SRC_NET_SYNC_CLIENT_H_

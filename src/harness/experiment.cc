#include "src/harness/experiment.h"

#include <cstdio>
#include <utility>

#include "src/common/result.h"

namespace chainreaction {

RunResult RunWorkload(Cluster* cluster, const RunOptions& options) {
  Simulator* sim = cluster->sim();

  if (options.preload && options.spec.record_count > 0) {
    cluster->Preload(options.spec.record_count, options.spec.value_size);
  }

  RunResult result;
  CausalChecker checker;
  uint64_t insert_counter = options.spec.record_count;

  std::vector<std::unique_ptr<WorkloadDriver>> drivers;
  drivers.reserve(cluster->num_clients());
  for (size_t i = 0; i < cluster->num_clients(); ++i) {
    auto driver = std::make_unique<WorkloadDriver>(
        cluster->client(i), cluster->client_env(i), options.spec,
        cluster->options().seed * 104729 + i, &insert_counter, &result.stats);
    driver->set_think_time(options.think_time);
    if (options.attach_checker) {
      const uint32_t session = cluster->client(i)->address();
      driver->on_write_complete = [&checker, session](const Key& key, const KvPutResult& r) {
        checker.RecordWrite(session, key, r.version, r.deps);
      };
      driver->on_read_complete = [&checker, session](const Key& key, const KvGetResult& r) {
        checker.RecordRead(session, key, r.found, r.version);
      };
    }
    drivers.push_back(std::move(driver));
  }

  const Time start = sim->Now();
  for (auto& driver : drivers) {
    driver->Start();
  }
  sim->RunUntil(start + options.warmup);
  result.stats.Reset(sim->Now());

  sim->RunUntil(sim->Now() + options.measure);
  const Time measure_end = sim->Now();
  for (auto& driver : drivers) {
    driver->Stop();
  }
  // Drain in-flight operations (their completions are recorded too; the
  // window division below slightly underestimates throughput, uniformly
  // across systems).
  sim->Run();

  result.throughput_ops_sec = static_cast<double>(result.stats.TotalOps()) * 1e6 /
                              static_cast<double>(measure_end - result.stats.window_start);
  result.checker_violations = checker.violations();
  result.checker_diagnostics = checker.diagnostics();
  result.insert_counter = insert_counter;
  return result;
}

std::string FormatMicros(int64_t us) {
  char buf[32];
  if (us >= 10 * kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

void PrintTableHeader(const std::string& title, const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const std::string& c : columns) {
    std::printf("%-16s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%-16s", "----------------");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    std::printf("%-16s", c.c_str());
  }
  std::printf("\n");
}

}  // namespace chainreaction

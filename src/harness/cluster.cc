#include "src/harness/cluster.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/common/result.h"
#include "src/ycsb/workload.h"

namespace chainreaction {

namespace {
// Server ids: dc * kDcStride + idx. Keeps server addresses below the client
// address base for any sane cluster size.
constexpr Address kDcStride = 4096;
constexpr Address kGeoBase = kServiceAddressBase;          // + dc
constexpr Address kMembershipBase = kServiceAddressBase + 1024;  // + dc
constexpr Address kCoordinatorBase = kServiceAddressBase + 2048;  // + dc
}  // namespace

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kChainReaction:
      return "CHAINREACTION";
    case SystemKind::kCr:
      return "CR(FAWN-KV)";
    case SystemKind::kCraq:
      return "CRAQ";
    case SystemKind::kEventualOne:
      return "EVENTUAL-R1W1";
    case SystemKind::kQuorum:
      return "QUORUM";
  }
  return "?";
}

NodeId Cluster::ServerAddress(DcId dc, uint32_t idx) const { return dc * kDcStride + idx; }

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  CHAINRX_CHECK(options_.num_dcs >= 1);
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction || options_.num_dcs == 1);
  net_ = std::make_unique<SimNetwork>(&sim_, options_.net, options_.seed ^ 0x6e657400);
  net_->AttachMetrics(&metrics_);
  if (options_.system == SystemKind::kChainReaction) {
    BuildChainReaction();
  } else {
    BuildBaseline();
  }
}

Cluster::~Cluster() {
  // Clean-teardown flight dump: crash dumps (CrashServer) already write
  // flight.log, but a run that ends normally used to discard every live
  // node's recorder. Dump them all so post-run analysis always has the
  // control-plane tail, marked with a shutdown (not crash) header.
  if (!options_.data_root.empty()) {
    for (DcId dc = 0; dc < crx_nodes_.size(); ++dc) {
      for (uint32_t idx = 0; idx < crx_nodes_[dc].size(); ++idx) {
        if (crx_nodes_[dc][idx] != nullptr) {
          crx_nodes_[dc][idx]->events()->DumpToFile(NodeDataDir(dc, idx) + "/flight.log",
                                                    sim_.Now(), EventKind::kShutdownDump);
        }
      }
    }
  }
}

CrxConfig Cluster::MakeCrxConfig(DcId dc) const {
  CrxConfig cfg;
  cfg.replication = options_.replication;
  cfg.k_stability = options_.k_stability;
  cfg.vnodes = options_.vnodes;
  cfg.local_dc = dc;
  cfg.num_dcs = options_.num_dcs;
  cfg.geo_replicator = options_.num_dcs > 1 ? kGeoBase + dc : 0;
  cfg.client_timeout = options_.client_timeout;
  if (options_.heartbeat_interval > 0) {
    cfg.membership = kMembershipBase + dc;
    cfg.heartbeat_interval = options_.heartbeat_interval;
  }
  cfg.fd_sweep_interval = options_.fd_sweep_interval;
  cfg.fd_timeout = options_.fd_timeout;
  cfg.membership_rebroadcast_interval = options_.membership_rebroadcast_interval;
  cfg.read_policy = options_.read_policy;
  cfg.wire_format = options_.wire_format;
  cfg.dep_watermark = options_.dep_watermark;
  cfg.wm_gossip_interval = options_.wm_gossip_interval;
  cfg.engine = options_.engine;
  cfg.engine_cache_bytes = options_.engine_cache_bytes;
  cfg.engine_segment_bytes = options_.engine_segment_bytes;
  cfg.disable_dependency_gating = options_.disable_dependency_gating;
  cfg.trace_sample_every = options_.trace_sample_every;
  cfg.trace_probability = options_.trace_probability;
  cfg.slow_trace_us = options_.slow_trace_us;
  cfg.stall_depwait_multiple = options_.stall_depwait_multiple;
  return cfg;
}

WalOptions Cluster::MakeWalOptions() const {
  WalOptions wal;
  wal.policy = options_.fsync_policy;
  wal.batch_max_records = options_.wal_batch_records;
  wal.start_flusher_thread = false;  // deterministic under the simulator
  return wal;
}

std::string Cluster::NodeDataDir(DcId dc, uint32_t idx) const {
  return options_.data_root + "/dc" + std::to_string(dc) + "-n" + std::to_string(idx);
}

void Cluster::BuildChainReaction() {
  const uint16_t dcs = options_.num_dcs;
  membership_.resize(dcs);
  coordinators_.resize(dcs);
  geo_.resize(dcs);
  crx_nodes_.resize(dcs);

  for (DcId dc = 0; dc < dcs; ++dc) {
    std::vector<NodeId> node_ids;
    for (uint32_t i = 0; i < options_.servers_per_dc; ++i) {
      node_ids.push_back(ServerAddress(dc, i));
    }
    membership_[dc] = std::make_unique<MembershipService>(node_ids, options_.vnodes,
                                                          options_.replication);
    Env* menv = net_->Register(kMembershipBase + dc, membership_[dc].get(), dc);
    membership_[dc]->AttachEnv(menv);
    const CrxConfig cfg = MakeCrxConfig(dc);
    if (options_.heartbeat_interval > 0) {
      const Duration sweep = cfg.fd_sweep_interval > 0 ? cfg.fd_sweep_interval
                                                       : options_.heartbeat_interval;
      const Duration timeout =
          cfg.fd_timeout > 0 ? cfg.fd_timeout : 4 * options_.heartbeat_interval;
      membership_[dc]->EnableFailureDetection(sweep, timeout);
    }
    if (cfg.membership_rebroadcast_interval > 0) {
      membership_[dc]->EnableRebroadcast(cfg.membership_rebroadcast_interval);
    }
    const Ring& ring = membership_[dc]->ring();

    // Planned-migration coordinator: a per-DC control-plane actor tracking
    // the membership view live (listener) and driving join/drain/rebalance.
    MigrationCoordinator::Options copt;
    copt.vnodes = options_.vnodes;
    copt.replication = options_.replication;
    copt.self = kCoordinatorBase + dc;
    copt.membership = kMembershipBase + dc;
    copt.batch_keys = options_.mig_batch_keys;
    copt.batch_interval = options_.mig_batch_interval;
    copt.timeout = options_.migration_timeout;
    coordinators_[dc] = std::make_unique<MigrationCoordinator>(copt);
    Env* xenv = net_->Register(kCoordinatorBase + dc, coordinators_[dc].get(), dc);
    coordinators_[dc]->AttachEnv(xenv);
    coordinators_[dc]->AttachObs(&metrics_);
    coordinators_[dc]->Seed(membership_[dc]->epoch(), node_ids, membership_[dc]->Weights());
    membership_[dc]->AddListener(kCoordinatorBase + dc);

    // The disk engine lives under each node's data dir.
    CHAINRX_CHECK(options_.engine != StorageEngineKind::kDisk || !options_.data_root.empty());
    for (uint32_t i = 0; i < options_.servers_per_dc; ++i) {
      auto node = std::make_unique<ChainReactionNode>(node_ids[i], cfg, ring);
      if (!options_.data_root.empty()) {
        const Status st = node->EnableDurability(NodeDataDir(dc, i), MakeWalOptions());
        CHAINRX_CHECK(st.ok());
      }
      Env* env = net_->Register(node_ids[i], node.get(), dc, options_.server_service);
      node->AttachEnv(env);
      node->AttachObs(&metrics_, &traces_);
      crx_nodes_[dc].push_back(std::move(node));
    }

    if (dcs > 1) {
      geo_[dc] = std::make_unique<GeoReplicator>(dc, cfg, ring);
      Env* genv = net_->Register(kGeoBase + dc, geo_[dc].get(), dc, ServiceModel{2, 0.0, 0});
      geo_[dc]->AttachEnv(genv);
      geo_[dc]->AttachObs(&metrics_, &traces_);
      membership_[dc]->AddListener(kGeoBase + dc);
    }

    for (uint32_t c = 0; c < options_.clients_per_dc; ++c) {
      const Address addr = kClientAddressBase + dc * options_.clients_per_dc + c;
      auto client = std::make_unique<ChainReactionClient>(
          addr, cfg, ring, options_.seed * 7919 + addr);
      Env* cenv = net_->Register(addr, client.get(), dc, options_.client_service);
      client->AttachEnv(cenv);
      client->AttachObs(&metrics_, &traces_);
      membership_[dc]->AddListener(addr);
      kv_clients_.push_back(std::make_unique<CrxKvClient>(client.get()));
      client_envs_.push_back(cenv);
      crx_clients_.push_back(std::move(client));
    }
  }

  if (dcs > 1) {
    std::vector<Address> peers(dcs, 0);
    for (DcId dc = 0; dc < dcs; ++dc) {
      peers[dc] = kGeoBase + dc;
    }
    for (DcId dc = 0; dc < dcs; ++dc) {
      geo_[dc]->SetPeers(peers);
    }
  }
}

void Cluster::BuildBaseline() {
  std::vector<NodeId> node_ids;
  for (uint32_t i = 0; i < options_.servers_per_dc; ++i) {
    node_ids.push_back(ServerAddress(0, i));
  }
  const Ring ring(node_ids, options_.vnodes, options_.replication, /*epoch=*/1);

  for (uint32_t i = 0; i < options_.servers_per_dc; ++i) {
    switch (options_.system) {
      case SystemKind::kCr: {
        auto node = std::make_unique<CrNode>(node_ids[i], ring);
        node->AttachEnv(net_->Register(node_ids[i], node.get(), 0, options_.server_service));
        cr_nodes_.push_back(std::move(node));
        break;
      }
      case SystemKind::kCraq: {
        auto node = std::make_unique<CraqNode>(node_ids[i], ring);
        node->AttachEnv(net_->Register(node_ids[i], node.get(), 0, options_.server_service));
        craq_nodes_.push_back(std::move(node));
        break;
      }
      case SystemKind::kEventualOne:
      case SystemKind::kQuorum: {
        const EvConsistency mode = options_.system == SystemKind::kQuorum
                                       ? EvConsistency::kQuorum
                                       : EvConsistency::kOne;
        auto node = std::make_unique<EventualNode>(node_ids[i], ring, mode,
                                                   options_.seed * 31 + i);
        node->AttachEnv(net_->Register(node_ids[i], node.get(), 0, options_.server_service));
        ev_nodes_.push_back(std::move(node));
        break;
      }
      case SystemKind::kChainReaction:
        CHAINRX_CHECK(false);
    }
  }

  for (uint32_t c = 0; c < options_.clients_per_dc; ++c) {
    const Address addr = kClientAddressBase + c;
    Env* cenv = nullptr;
    switch (options_.system) {
      case SystemKind::kCr: {
        auto client = std::make_unique<CrClient>(addr, ring, options_.client_timeout);
        cenv = net_->Register(addr, client.get(), 0, options_.client_service);
        client->AttachEnv(cenv);
        kv_clients_.push_back(std::make_unique<CrKvClient>(client.get(), addr));
        cr_clients_.push_back(std::move(client));
        break;
      }
      case SystemKind::kCraq: {
        auto client = std::make_unique<CraqClient>(addr, ring, options_.client_timeout,
                                                   options_.seed * 7919 + addr);
        cenv = net_->Register(addr, client.get(), 0, options_.client_service);
        client->AttachEnv(cenv);
        kv_clients_.push_back(std::make_unique<CraqKvClient>(client.get(), addr));
        craq_clients_.push_back(std::move(client));
        break;
      }
      case SystemKind::kEventualOne:
      case SystemKind::kQuorum: {
        auto client = std::make_unique<EventualClient>(addr, ring, options_.client_timeout,
                                                       options_.seed * 7919 + addr);
        cenv = net_->Register(addr, client.get(), 0, options_.client_service);
        client->AttachEnv(cenv);
        kv_clients_.push_back(std::make_unique<EventualKvClient>(client.get(), addr));
        ev_clients_.push_back(std::move(client));
        break;
      }
      case SystemKind::kChainReaction:
        CHAINRX_CHECK(false);
    }
    client_envs_.push_back(cenv);
  }
}

ChainReactionClient* Cluster::crx_client(size_t i) {
  return i < crx_clients_.size() ? crx_clients_[i].get() : nullptr;
}

ChainReactionNode* Cluster::crx_node(DcId dc, uint32_t idx) {
  if (dc < crx_nodes_.size() && idx < crx_nodes_[dc].size()) {
    return crx_nodes_[dc][idx].get();
  }
  return nullptr;
}

GeoReplicator* Cluster::geo(DcId dc) { return dc < geo_.size() ? geo_[dc].get() : nullptr; }

MembershipService* Cluster::membership(DcId dc) {
  return dc < membership_.size() ? membership_[dc].get() : nullptr;
}

MigrationCoordinator* Cluster::coordinator(DcId dc) {
  return dc < coordinators_.size() ? coordinators_[dc].get() : nullptr;
}

uint64_t Cluster::AddJoiningServer(DcId dc, uint32_t* idx_out, uint32_t weight) {
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction);
  CHAINRX_CHECK(dc < crx_nodes_.size());
  const uint32_t idx = static_cast<uint32_t>(crx_nodes_[dc].size());
  const NodeId node_id = ServerAddress(dc, idx);
  // The newcomer boots on the *current* ring (which does not contain it):
  // it owns nothing yet, absorbs the migration stream as a target, and
  // takes over its chain segments when the committed epoch arrives.
  auto node = std::make_unique<ChainReactionNode>(node_id, MakeCrxConfig(dc),
                                                  membership_[dc]->ring());
  if (!options_.data_root.empty()) {
    const Status st = node->EnableDurability(NodeDataDir(dc, idx), MakeWalOptions());
    CHAINRX_CHECK(st.ok());
  }
  Env* env = net_->Register(node_id, node.get(), dc, options_.server_service);
  node->AttachEnv(env);
  node->AttachObs(&metrics_, &traces_);
  crx_nodes_[dc].push_back(std::move(node));
  if (idx_out != nullptr) {
    *idx_out = idx;
  }
  return coordinators_[dc]->StartJoin(node_id, weight);
}

uint64_t Cluster::DrainServer(DcId dc, uint32_t idx) {
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction);
  CHAINRX_CHECK(dc < crx_nodes_.size() && idx < crx_nodes_[dc].size());
  return coordinators_[dc]->StartDrain(ServerAddress(dc, idx));
}

uint64_t Cluster::RebalanceServer(DcId dc, uint32_t idx, uint32_t weight) {
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction);
  CHAINRX_CHECK(dc < crx_nodes_.size() && idx < crx_nodes_[dc].size());
  return coordinators_[dc]->StartRebalance(ServerAddress(dc, idx), weight);
}

bool Cluster::WaitMigrationIdle(DcId dc, Duration max_wait) {
  CHAINRX_CHECK(dc < coordinators_.size() && coordinators_[dc] != nullptr);
  const Time deadline = sim_.Now() + max_wait;
  while (!coordinators_[dc]->idle() && sim_.Now() < deadline) {
    sim_.RunUntil(sim_.Now() + 10 * kMillisecond);
  }
  return coordinators_[dc]->idle();
}

void Cluster::Preload(uint64_t records, size_t value_size) {
  // Load through the DC-0 clients, keys striped round-robin, each client
  // loading sequentially; then run to quiescence (stabilization + geo).
  const size_t loaders = std::min<size_t>(options_.clients_per_dc, kv_clients_.size());
  CHAINRX_CHECK(loaders > 0);
  uint64_t outstanding = 0;

  struct Loader {
    Cluster* cluster;
    size_t client_idx;
    uint64_t next;
    uint64_t records;
    size_t stride;
    size_t value_size;
    uint64_t* outstanding;

    void LoadOne() {
      if (next >= records) {
        return;
      }
      const uint64_t idx = next;
      next += stride;
      (*outstanding)++;
      cluster->client(client_idx)
          ->Put(RecordKey(idx), MakeValue(0, idx, value_size), [this](const KvPutResult&) {
            (*outstanding)--;
            LoadOne();
          });
    }
  };

  std::vector<Loader> tasks(loaders);
  for (size_t i = 0; i < loaders; ++i) {
    tasks[i] = Loader{this, i, static_cast<uint64_t>(i), records, loaders, value_size,
                      &outstanding};
    tasks[i].LoadOne();
  }
  if (options_.heartbeat_interval > 0) {
    // Heartbeat timers keep the queue non-empty forever; drain in bounded
    // windows until the load completes, then let stabilization settle.
    while (outstanding > 0) {
      sim_.RunUntil(sim_.Now() + 100 * kMillisecond);
    }
    sim_.RunUntil(sim_.Now() + 500 * kMillisecond);
  } else {
    // Loaders chain their own continuation, so running the simulator until
    // the event queue is empty completes the load and stabilization.
    sim_.Run();
  }
  CHAINRX_CHECK(outstanding == 0);
}

void Cluster::KillServer(DcId dc, uint32_t idx) {
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction);
  const NodeId node = ServerAddress(dc, idx);
  net_->Crash(node);
  membership_[dc]->RemoveNode(node);
}

void Cluster::CrashServer(DcId dc, uint32_t idx) {
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction);
  CHAINRX_CHECK(!options_.data_root.empty());
  const NodeId node = ServerAddress(dc, idx);
  // Dump the victim's flight recorder to its data dir first — the post-crash
  // artifact an operator (or the crash-restart property test) reads to see
  // what the node was doing when it died.
  crx_nodes_[dc][idx]->events()->DumpToFile(NodeDataDir(dc, idx) + "/flight.log",
                                            sim_.Now());
  // Drop the un-flushed group-commit batch, as a real process crash would;
  // everything already written through to the OS stays in the data dir.
  crx_nodes_[dc][idx]->CrashDurability();
  net_->Crash(node);
  membership_[dc]->RemoveNode(node);
}

Status Cluster::RestartServer(DcId dc, uint32_t idx) {
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction);
  CHAINRX_CHECK(!options_.data_root.empty());
  const NodeId node_id = ServerAddress(dc, idx);

  // The crashed actor is gone; a restarted process is a fresh node that
  // rebuilds its store from the data dir before rejoining.
  net_->Unregister(node_id);
  net_->Restore(node_id);
  auto node = std::make_unique<ChainReactionNode>(node_id, MakeCrxConfig(dc),
                                                  membership_[dc]->ring());
  // Recover before re-opening the WAL: torn-tail truncation only applies to
  // the newest segment, and opening the WAL first would create a fresh one.
  Status status = node->RecoverFrom(NodeDataDir(dc, idx));
  if (!status.ok()) {
    return status;
  }
  status = node->EnableDurability(NodeDataDir(dc, idx), MakeWalOptions());
  if (!status.ok()) {
    return status;
  }
  Env* env = net_->Register(node_id, node.get(), dc, options_.server_service);
  node->AttachEnv(env);
  node->AttachObs(&metrics_, &traces_);
  retired_nodes_.push_back(std::move(crx_nodes_[dc][idx]));
  crx_nodes_[dc][idx] = std::move(node);
  // Announce the rejoin only once recovery is complete: the epoch broadcast
  // triggers chain repair, which syncs the node the delta it missed.
  membership_[dc]->AddNode(node_id);
  return Status::Ok();
}

std::unique_ptr<TelemetryServer> Cluster::ServeTelemetry(uint16_t port) {
  auto server = std::make_unique<TelemetryServer>(port);
  if (!server->ok()) {
    return nullptr;
  }
  server->AttachMetrics(&metrics_);
  server->AttachTraces(&traces_);
  for (DcId dc = 0; dc < crx_nodes_.size(); ++dc) {
    for (uint32_t idx = 0; idx < crx_nodes_[dc].size(); ++idx) {
      server->AddRecorder(
          "dc" + std::to_string(dc) + "-n" + std::to_string(idx),
          crx_nodes_[dc][idx]->events());
    }
  }
  for (DcId dc = 0; dc < geo_.size(); ++dc) {
    if (geo_[dc] != nullptr) {
      server->AddRecorder("geo-dc" + std::to_string(dc), geo_[dc]->events());
    }
  }
  // Static topology only: dynamic node state is owned by the sim thread.
  const ClusterOptions& opt = options_;
  server->SetStatusProvider([opt] {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"system\":\"%s\",\"dcs\":%u,\"servers_per_dc\":%u,"
                  "\"clients_per_dc\":%u,\"replication\":%u,\"k_stability\":%u,"
                  "\"durability\":%s}",
                  SystemKindName(opt.system), opt.num_dcs, opt.servers_per_dc,
                  opt.clients_per_dc, opt.replication, opt.k_stability,
                  opt.data_root.empty() ? "false" : "true");
    return std::string(buf);
  });
  server->Start();
  return server;
}

std::vector<uint64_t> Cluster::ReadsByPosition() const {
  std::vector<uint64_t> sums;
  for (const auto& dc_nodes : crx_nodes_) {
    for (const auto& node : dc_nodes) {
      const auto& per = node->reads_by_position();
      if (sums.size() < per.size()) {
        sums.resize(per.size(), 0);
      }
      for (size_t i = 0; i < per.size(); ++i) {
        sums[i] += per[i];
      }
    }
  }
  for (const auto& node : craq_nodes_) {
    const auto& per = node->reads_by_position();
    if (sums.size() < per.size()) {
      sums.resize(per.size(), 0);
    }
    for (size_t i = 0; i < per.size(); ++i) {
      sums[i] += per[i];
    }
  }
  // Trim trailing zero positions beyond R.
  while (sums.size() > options_.replication && sums.back() == 0) {
    sums.pop_back();
  }
  return sums;
}

uint64_t Cluster::TotalDepWaitMicros() const {
  uint64_t total = 0;
  for (const auto& dc_nodes : crx_nodes_) {
    for (const auto& node : dc_nodes) {
      total += node->dep_wait_total_us();
    }
  }
  return total;
}

Histogram Cluster::MergedDepWaitHist() const {
  Histogram merged;
  for (const auto& dc_nodes : crx_nodes_) {
    for (const auto& node : dc_nodes) {
      merged.Merge(node->dep_wait_hist());
    }
  }
  return merged;
}

uint64_t Cluster::TotalDepWaits() const {
  uint64_t total = 0;
  for (const auto& dc_nodes : crx_nodes_) {
    for (const auto& node : dc_nodes) {
      total += node->dep_waits();
    }
  }
  return total;
}

uint64_t Cluster::TotalWritesApplied() const {
  uint64_t total = 0;
  for (const auto& dc_nodes : crx_nodes_) {
    for (const auto& node : dc_nodes) {
      total += node->writes_applied();
    }
  }
  return total;
}

bool Cluster::CheckConvergence(std::string* diagnostic) const {
  CHAINRX_CHECK(options_.system == SystemKind::kChainReaction);
  // key -> set of distinct latest versions observed across all replicas
  // everywhere. Converged iff exactly one per key.
  std::map<Key, std::map<std::string, std::vector<NodeId>>> latest_by_key;
  for (DcId dc = 0; dc < crx_nodes_.size(); ++dc) {
    const Ring& ring = membership_[dc]->ring();
    for (const auto& node : crx_nodes_[dc]) {
      if (net_->IsCrashed(node->id())) {
        continue;
      }
      node->store().ForEachKey([&](const Key& key, const StoredVersion&) {
        // A node that dropped out of a key's chain (e.g. the chain shrank
        // back when a crashed server rejoined) keeps a leftover copy that
        // serves no reads; only current chain members count.
        if (ring.PositionOf(key, node->id()) == 0) {
          return;
        }
        // ForEachKey is metadata-only (value may be unmaterialized under a
        // disk engine); Latest() faults the bytes in for the comparison.
        const StoredVersion* latest = node->store().Latest(key);
        latest_by_key[key][latest->version.ToString() + "=" + latest->value.substr(0, 24)]
            .push_back(node->id());
      });
    }
  }
  for (const auto& [key, versions] : latest_by_key) {
    if (versions.size() != 1) {
      if (diagnostic != nullptr) {
        *diagnostic = "key '" + key + "' diverged: " + std::to_string(versions.size()) +
                      " distinct latest versions:";
        for (const auto& [version, nodes] : versions) {
          *diagnostic += " [" + version + " @ nodes";
          for (NodeId n : nodes) {
            *diagnostic += " " + std::to_string(n);
          }
          *diagnostic += "]";
        }
      }
      return false;
    }
  }
  return true;
}

}  // namespace chainreaction

// Workload-running helpers shared by integration tests and benchmarks.
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/checker/causal_checker.h"
#include "src/harness/cluster.h"
#include "src/ycsb/driver.h"
#include "src/ycsb/stats.h"
#include "src/ycsb/workload.h"

namespace chainreaction {

struct RunOptions {
  WorkloadSpec spec;
  Duration warmup = 1 * kSecond;
  Duration measure = 5 * kSecond;
  Duration think_time = 0;
  // Attach the causal+ checker to every session (meaningful for
  // ChainReaction, whose clients expose versions and dependencies).
  bool attach_checker = false;
  // Preload spec.record_count keys before driving (skips if 0 records).
  bool preload = true;
};

struct RunResult {
  StatsCollector stats;           // aggregated over all sessions
  double throughput_ops_sec = 0;  // over the measurement window
  uint64_t checker_violations = 0;
  std::vector<std::string> checker_diagnostics;
  uint64_t insert_counter = 0;    // final key-space size (workload D)
};

// Preloads (optionally), starts one driver per client, warms up, measures,
// stops, and drains. Deterministic for a fixed (cluster seed, options).
RunResult RunWorkload(Cluster* cluster, const RunOptions& options);

// Formatting helpers for the benchmark tables.
std::string FormatMicros(int64_t us);
void PrintTableHeader(const std::string& title, const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

}  // namespace chainreaction

#endif  // SRC_HARNESS_EXPERIMENT_H_

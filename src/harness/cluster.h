// Simulated cluster harness.
//
// Builds a complete deployment of one of the five systems under test on the
// deterministic simulator: servers placed on per-DC consistent-hashing
// rings, a membership service and geo replicator per DC, and a set of
// closed-loop clients. Provides preloading, failure injection, convergence
// checking, and aggregated introspection for the experiments.
#ifndef SRC_HARNESS_CLUSTER_H_
#define SRC_HARNESS_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/admin/migration.h"
#include "src/baselines/eventual.h"
#include "src/common/histogram.h"
#include "src/chain/cr.h"
#include "src/chain/craq.h"
#include "src/common/types.h"
#include "src/core/chainreaction_client.h"
#include "src/core/chainreaction_node.h"
#include "src/geo/geo_replicator.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/ring/membership.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/wal/wal.h"
#include "src/ycsb/kv_client.h"

namespace chainreaction {

enum class SystemKind {
  kChainReaction,
  kCr,            // classic chain replication (FAWN-KV baseline)
  kCraq,          // CRAQ baseline
  kEventualOne,   // Cassandra R=1/W=1 stand-in
  kQuorum,        // Cassandra quorum stand-in
};

const char* SystemKindName(SystemKind kind);

struct ClusterOptions {
  SystemKind system = SystemKind::kChainReaction;
  uint32_t servers_per_dc = 16;
  uint32_t clients_per_dc = 32;
  uint32_t replication = 3;   // R
  uint32_t k_stability = 2;   // k (ChainReaction only)
  uint32_t vnodes = 16;
  uint16_t num_dcs = 1;       // >1 supported for ChainReaction only

  NetworkConfig net{LinkModel{100, 20}, LinkModel{80 * kMillisecond, 2 * kMillisecond}, 0.0};
  // Per-message server cost: ~10us + 10ns/byte saturates a node around
  // 10^5 small messages/sec, in the ballpark of a FAWN-KV backend.
  ServiceModel server_service{10, 0.01, 2};
  ServiceModel client_service{1, 0.0, 0};

  ReadPolicy read_policy = ReadPolicy::kUniformPrefix;
  // Wire format for hot-path Crx frames (see CrxConfig::wire_format); kV1
  // is the legacy fixed-width baseline for bytes/op comparisons.
  WireFormat wire_format = WireFormat::kV2;
  // Stable-watermark dependency compression (see CrxConfig::dep_watermark).
  bool dep_watermark = false;
  Duration wm_gossip_interval = 5 * kMillisecond;
  bool disable_dependency_gating = false;  // testing only
  Duration client_timeout = 500 * kMillisecond;
  // >0 enables heartbeat failure detection (ChainReaction only): nodes
  // heartbeat at this period; the membership service removes nodes silent
  // for 4 periods. Keeps timers alive forever — drive with RunUntil.
  Duration heartbeat_interval = 0;
  // Failure-detection tuning (effective only with heartbeat_interval > 0).
  // 0 picks the defaults: sweep every heartbeat_interval, timeout 4x it.
  Duration fd_sweep_interval = 0;
  Duration fd_timeout = 0;
  // >0: the membership service re-broadcasts the current epoch at this
  // period even without topology changes (keeps the event queue non-empty;
  // drive with RunUntil).
  Duration membership_rebroadcast_interval = 0;
  // Planned-migration coordinator tuning (see src/admin/migration.h).
  Duration migration_timeout = 5 * kSecond;
  uint32_t mig_batch_keys = 64;
  Duration mig_batch_interval = 0;
  // >0: clients trace every Nth put end-to-end (ChainReaction only); hops
  // land in Cluster::traces().
  uint32_t trace_sample_every = 0;
  // Probabilistic head sampling (combines with trace_sample_every).
  double trace_probability = 0.0;
  // >0: tail-based capture — every put is traced; traces whose observed
  // latency is >= this threshold are always retained (see CrxConfig).
  int64_t slow_trace_us = 0;
  // Dep-stall watchdog threshold, as a multiple of the per-node chain-lag
  // EWMA (see CrxConfig::stall_depwait_multiple; 0 disables).
  double stall_depwait_multiple = 8.0;
  uint64_t seed = 1;

  // Non-empty: every ChainReaction server runs with durability enabled,
  // node idx of DC dc logging to `<data_root>/dc<dc>-n<idx>/`, and the
  // crash-restart-with-recovery failure mode (CrashServer/RestartServer)
  // becomes available alongside the lose-everything KillServer. The WALs
  // run without the background flusher — the simulator is single-threaded
  // and deterministic, so batch-mode flushes happen at batch-size
  // boundaries and on crash/shutdown instead of on a wall-clock timer.
  std::string data_root;
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
  uint32_t wal_batch_records = 64;

  // Value-storage engine for ChainReaction nodes. kDisk requires data_root
  // (values live in `<node dir>/vlog`); the cache budget bounds how many
  // value bytes each node keeps materialized in memory.
  StorageEngineKind engine = StorageEngineKind::kMem;
  uint64_t engine_cache_bytes = 64u << 20;
  uint64_t engine_segment_bytes = 8u << 20;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Simulator* sim() { return &sim_; }
  SimNetwork* net() { return net_.get(); }
  const ClusterOptions& options() const { return options_; }

  // Shared observability: one registry + trace collector for the whole
  // deployment (the simulator is one process). Always non-null; every
  // ChainReaction actor and the network have their instruments attached.
  MetricsRegistry* metrics() { return &metrics_; }
  const MetricsRegistry* metrics() const { return &metrics_; }
  TraceCollector* traces() { return &traces_; }

  // Clients are numbered 0..num_dcs*clients_per_dc-1, DC-major.
  size_t num_clients() const { return kv_clients_.size(); }
  KvClient* client(size_t i) { return kv_clients_[i].get(); }
  Env* client_env(size_t i) { return client_envs_[i]; }
  DcId client_dc(size_t i) const { return static_cast<DcId>(i / options_.clients_per_dc); }

  // ChainReaction-specific access (null / empty for baselines).
  ChainReactionClient* crx_client(size_t i);
  ChainReactionNode* crx_node(DcId dc, uint32_t idx);
  GeoReplicator* geo(DcId dc);
  MembershipService* membership(DcId dc);
  MigrationCoordinator* coordinator(DcId dc);

  // Baseline node access (null when a different system is running).
  CrNode* cr_node(uint32_t idx) { return idx < cr_nodes_.size() ? cr_nodes_[idx].get() : nullptr; }
  CraqNode* craq_node(uint32_t idx) {
    return idx < craq_nodes_.size() ? craq_nodes_[idx].get() : nullptr;
  }
  EventualNode* ev_node(uint32_t idx) {
    return idx < ev_nodes_.size() ? ev_nodes_[idx].get() : nullptr;
  }

  // Synchronously (in simulated time) loads keys 0..records-1 with
  // `value_size`-byte values, then runs the simulation to quiescence.
  void Preload(uint64_t records, size_t value_size);

  // Crashes a server and tells the membership service (ChainReaction only;
  // baselines run with static membership). The node's in-memory state is
  // gone for good — recovery is a full resync from its chain peers.
  void KillServer(DcId dc, uint32_t idx);

  // Crash-restart with recovery (requires options().data_root). CrashServer
  // drops the server off the network exactly as a process crash would: the
  // un-flushed WAL batch is lost, everything already handed to the OS
  // survives in its data dir. RestartServer later rebuilds the node from
  // that data dir (newest checkpoint + WAL tail replay) and rejoins it;
  // chain repair then re-propagates only what it missed while down.
  void CrashServer(DcId dc, uint32_t idx);
  Status RestartServer(DcId dc, uint32_t idx);
  std::string NodeDataDir(DcId dc, uint32_t idx) const;

  // Elastic membership (ChainReaction only; requires heartbeat_interval so
  // the sim stays drivable with RunUntil). Each operation is planned through
  // the DC's migration coordinator: data streams to the new layout first,
  // then the epoch flips. Returns the migration id (0 = rejected).
  //
  // AddJoiningServer boots a brand-new server (index servers_per_dc, then
  // +1, ...) and starts a join migration for it; the returned idx addresses
  // it via crx_node()/ServerAddress. `weight` 0 = default vnode count.
  uint64_t AddJoiningServer(DcId dc, uint32_t* idx_out = nullptr, uint32_t weight = 0);
  // Drains a live server out of the ring (its data migrates away first).
  // The process stays up — it just stops owning any key range.
  uint64_t DrainServer(DcId dc, uint32_t idx);
  // Changes a server's vnode weight, shifting ring arcs onto/off it.
  uint64_t RebalanceServer(DcId dc, uint32_t idx, uint32_t weight);
  // Runs the simulator in bounded slices until the DC's coordinator has no
  // active or queued migration (or `max_wait` sim time elapses). Returns
  // true if it went idle.
  bool WaitMigrationIdle(DcId dc, Duration max_wait = 30 * kSecond);

  // Aggregations ------------------------------------------------------------
  // Sum of reads answered per chain position across all servers
  // (ChainReaction and CRAQ expose this; others return empty).
  std::vector<uint64_t> ReadsByPosition() const;
  uint64_t TotalDepWaitMicros() const;
  Histogram MergedDepWaitHist() const;
  uint64_t TotalDepWaits() const;
  uint64_t TotalWritesApplied() const;

  // After quiescence, verifies that every replica of every key agrees on the
  // newest version, within and across DCs (ChainReaction only).
  bool CheckConvergence(std::string* diagnostic) const;

  NodeId ServerAddress(DcId dc, uint32_t idx) const;

  // Starts one aggregated HTTP telemetry endpoint for the whole simulated
  // deployment: the shared metrics registry and trace collector (both
  // thread-safe to scrape while the simulation runs), every node's and
  // replicator's flight recorder under /events, and a static-topology
  // /status (dynamic per-node state is loop-owned and not exposed here —
  // use the per-node endpoints of the TCP runtime for that). Returns null
  // if `port` cannot be bound. The cluster must outlive the server.
  std::unique_ptr<TelemetryServer> ServeTelemetry(uint16_t port);

 private:
  void BuildChainReaction();
  void BuildBaseline();
  CrxConfig MakeCrxConfig(DcId dc) const;
  WalOptions MakeWalOptions() const;

  ClusterOptions options_;
  Simulator sim_;
  std::unique_ptr<SimNetwork> net_;
  MetricsRegistry metrics_;
  TraceCollector traces_;

  // Per-DC state (ChainReaction); baselines use index 0 only.
  std::vector<std::unique_ptr<MembershipService>> membership_;
  std::vector<std::unique_ptr<MigrationCoordinator>> coordinators_;
  std::vector<std::unique_ptr<GeoReplicator>> geo_;
  std::vector<std::vector<std::unique_ptr<ChainReactionNode>>> crx_nodes_;
  // Crashed-then-replaced nodes, parked until teardown so flight-recorder
  // pointers handed to a TelemetryServer can never dangle across restarts.
  std::vector<std::unique_ptr<ChainReactionNode>> retired_nodes_;
  std::vector<std::unique_ptr<CrNode>> cr_nodes_;
  std::vector<std::unique_ptr<CraqNode>> craq_nodes_;
  std::vector<std::unique_ptr<EventualNode>> ev_nodes_;

  std::vector<std::unique_ptr<ChainReactionClient>> crx_clients_;
  std::vector<std::unique_ptr<CrClient>> cr_clients_;
  std::vector<std::unique_ptr<CraqClient>> craq_clients_;
  std::vector<std::unique_ptr<EventualClient>> ev_clients_;

  std::vector<std::unique_ptr<KvClient>> kv_clients_;
  std::vector<Env*> client_envs_;
};

}  // namespace chainreaction

#endif  // SRC_HARNESS_CLUSTER_H_

// Causal+ consistency checker.
//
// The checker observes every completed operation of every client session
// (wired in by the workload harness) and verifies, online:
//
//   * session causality per key — a read must never return a version that is
//     strictly causally dominated by a version already in the session's
//     causal past for that key (covers read-your-writes and monotonic
//     reads);
//   * cross-key causality — reading version v of key k pulls v's write-time
//     dependency *closure* into the session's causal past, so a later read
//     of any dependency key must not travel causally backwards. This is
//     exactly the guarantee ChainReaction's dependency-stability gating
//     exists to provide, and the checker provably flags histories produced
//     with the gating disabled (see tests);
//   * causal not-found — a read returning "not found" while the session
//     causally knows a write to that key is a violation.
//
// Precision note: the causal past per key is kept as a set of *maximal*
// version vectors, so genuinely concurrent writes (geo conflicts) are never
// misreported: a violation requires strict vv dominance. Convergence of
// LWW conflict resolution is checked separately by the harness by comparing
// replica stores after quiescence.
#ifndef SRC_CHECKER_CAUSAL_CHECKER_H_
#define SRC_CHECKER_CAUSAL_CHECKER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/common/version.h"

namespace chainreaction {

// A set of pairwise-incomparable version vectors (tiny in practice).
class MaximalVvSet {
 public:
  // Inserts vv, dropping members it dominates; no-op if dominated.
  void Add(const VersionVector& vv);

  // True if some member strictly dominates `vv` (dominates and differs).
  bool StrictlyDominates(const VersionVector& vv) const;

  bool empty() const { return set_.empty(); }
  size_t size() const { return set_.size(); }
  const std::vector<VersionVector>& members() const { return set_; }

 private:
  std::vector<VersionVector> set_;
};

class CausalChecker {
 public:
  // Records a completed write of `session` with its nearest dependencies
  // (as carried on the wire). The checker expands them to a closure.
  void RecordWrite(uint32_t session, const Key& key, const Version& version,
                   const std::vector<Dependency>& deps);

  // Records a completed read. `found` false means not-found.
  void RecordRead(uint32_t session, const Key& key, bool found, const Version& version);

  uint64_t violations() const { return violations_; }
  const std::vector<std::string>& diagnostics() const { return diagnostics_; }
  uint64_t reads_checked() const { return reads_checked_; }
  uint64_t writes_recorded() const { return writes_recorded_; }

 private:
  // Dependency closure of one write: per key, the maximal set of *real*
  // version vectors the write causally requires. Kept as sets (not a
  // merged vector) because the componentwise max of two concurrent
  // versions corresponds to no real write — requiring it would flag legal
  // reads as stale.
  using Closure = std::unordered_map<Key, MaximalVvSet>;

  struct SessionState {
    std::unordered_map<Key, MaximalVvSet> causal_past;
  };

  static std::string VersionId(const Key& key, const Version& v);
  void MergeClosureIntoSession(SessionState* state, const Closure& closure);
  void Violation(std::string message);

  std::unordered_map<uint32_t, SessionState> sessions_;
  std::unordered_map<std::string, std::shared_ptr<const Closure>> closures_;
  uint64_t violations_ = 0;
  uint64_t reads_checked_ = 0;
  uint64_t writes_recorded_ = 0;
  std::vector<std::string> diagnostics_;
};

}  // namespace chainreaction

#endif  // SRC_CHECKER_CAUSAL_CHECKER_H_

#include "src/checker/causal_checker.h"

#include <utility>

#include "src/common/bytes.h"

namespace chainreaction {

void MaximalVvSet::Add(const VersionVector& vv) {
  for (const VersionVector& member : set_) {
    if (member.Dominates(vv)) {
      return;  // dominated (or equal): nothing new
    }
  }
  // Remove members the new vv dominates.
  size_t out = 0;
  for (size_t i = 0; i < set_.size(); ++i) {
    if (!vv.Dominates(set_[i])) {
      set_[out++] = set_[i];
    }
  }
  set_.resize(out);
  set_.push_back(vv);
}

bool MaximalVvSet::StrictlyDominates(const VersionVector& vv) const {
  for (const VersionVector& member : set_) {
    if (member.Dominates(vv) && !(member == vv)) {
      return true;
    }
  }
  return false;
}

std::string CausalChecker::VersionId(const Key& key, const Version& v) {
  ByteWriter w;
  w.PutString(key);
  w.PutVarU64(v.lamport);
  w.PutU16(v.origin);
  return w.Take();
}

void CausalChecker::Violation(std::string message) {
  violations_++;
  if (diagnostics_.size() < 64) {
    diagnostics_.push_back(std::move(message));
  }
}

void CausalChecker::RecordWrite(uint32_t session, const Key& key, const Version& version,
                                const std::vector<Dependency>& deps) {
  writes_recorded_++;

  // Build the closure: nearest deps plus their recorded closures.
  auto closure = std::make_shared<Closure>();
  for (const Dependency& dep : deps) {
    if (dep.version.IsNull()) {
      continue;
    }
    (*closure)[dep.key].Add(dep.version.vv);
    auto it = closures_.find(VersionId(dep.key, dep.version));
    if (it != closures_.end()) {
      for (const auto& [k, vvset] : *it->second) {
        for (const VersionVector& vv : vvset.members()) {
          (*closure)[k].Add(vv);
        }
      }
    }
  }
  closures_[VersionId(key, version)] = closure;

  SessionState& state = sessions_[session];
  state.causal_past[key].Add(version.vv);
  MergeClosureIntoSession(&state, *closure);
}

void CausalChecker::MergeClosureIntoSession(SessionState* state, const Closure& closure) {
  for (const auto& [k, vvset] : closure) {
    for (const VersionVector& vv : vvset.members()) {
      state->causal_past[k].Add(vv);
    }
  }
}

void CausalChecker::RecordRead(uint32_t session, const Key& key, bool found,
                               const Version& version) {
  reads_checked_++;
  SessionState& state = sessions_[session];
  auto past = state.causal_past.find(key);

  if (!found) {
    if (past != state.causal_past.end() && !past->second.empty()) {
      Violation("session " + std::to_string(session) + ": read of '" + key +
                "' returned not-found but a write to it is in the causal past");
    }
    return;
  }

  if (past != state.causal_past.end() && past->second.StrictlyDominates(version.vv)) {
    std::string dominators;
    for (const VersionVector& vv : past->second.members()) {
      if (vv.Dominates(version.vv)) {
        if (!dominators.empty()) {
          dominators += ",";
        }
        dominators += vv.ToString();
      }
    }
    Violation("session " + std::to_string(session) + ": read of '" + key +
              "' returned causally stale version " + version.ToString() +
              " (causal past holds " + dominators + ")");
  }

  state.causal_past[key].Add(version.vv);
  auto it = closures_.find(VersionId(key, version));
  if (it != closures_.end()) {
    MergeClosureIntoSession(&state, *it->second);
  }
  // A version whose write completion we have not (yet) observed contributes
  // no closure; this is sound (never a false violation), merely less strict
  // for the brief ack-in-flight window.
}

}  // namespace chainreaction

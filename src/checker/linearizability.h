// Per-key linearizability checker for sequence-numbered registers.
//
// The classic Chain Replication baseline exposes a per-key, head-assigned
// sequence number; that collapses linearizability checking of each key to
// cheap interval conditions (no NP-hard search needed):
//   W1. If write w1 completes before write w2 is invoked, seq(w1) < seq(w2).
//   R1. A read must return a seq >= the largest seq of any write that
//       completed before the read was invoked.
//   R2. A read returning seq s must overlap or follow the write of s: that
//       write's invocation must precede the read's completion.
//   R3. Two reads on the same key ordered in real time must return
//       non-decreasing seqs.
// These are necessary conditions for linearizability; for a register whose
// write order is fixed by seq they are also sufficient.
#ifndef SRC_CHECKER_LINEARIZABILITY_H_
#define SRC_CHECKER_LINEARIZABILITY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace chainreaction {

class LinearizabilityChecker {
 public:
  void RecordWrite(const Key& key, Time invoked, Time completed, uint64_t seq);
  void RecordRead(const Key& key, Time invoked, Time completed, uint64_t seq_or_zero);

  // Runs all checks; returns the number of violations found.
  uint64_t Check();

  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

 private:
  struct Op {
    bool is_write = false;
    Time invoked = 0;
    Time completed = 0;
    uint64_t seq = 0;
  };

  void Violation(std::string message);

  std::unordered_map<Key, std::vector<Op>> ops_;
  std::vector<std::string> diagnostics_;
  uint64_t violations_ = 0;
};

}  // namespace chainreaction

#endif  // SRC_CHECKER_LINEARIZABILITY_H_

#include "src/checker/linearizability.h"

#include <algorithm>
#include <utility>

namespace chainreaction {

void LinearizabilityChecker::RecordWrite(const Key& key, Time invoked, Time completed,
                                         uint64_t seq) {
  ops_[key].push_back(Op{true, invoked, completed, seq});
}

void LinearizabilityChecker::RecordRead(const Key& key, Time invoked, Time completed,
                                        uint64_t seq_or_zero) {
  ops_[key].push_back(Op{false, invoked, completed, seq_or_zero});
}

void LinearizabilityChecker::Violation(std::string message) {
  violations_++;
  if (diagnostics_.size() < 64) {
    diagnostics_.push_back(std::move(message));
  }
}

uint64_t LinearizabilityChecker::Check() {
  violations_ = 0;
  diagnostics_.clear();

  for (auto& [key, ops] : ops_) {
    std::sort(ops.begin(), ops.end(),
              [](const Op& a, const Op& b) { return a.invoked < b.invoked; });

    // W1: completed-before order of writes must agree with seq order.
    // Scan with the max seq among writes completed so far.
    {
      // Sweep ops by invocation time, tracking the largest seq among writes
      // already completed; no later-invoked op may observe/produce less.
      std::vector<std::pair<Time, uint64_t>> completion_events;  // (completed, seq)
      for (const Op& op : ops) {
        if (op.is_write) {
          completion_events.push_back({op.completed, op.seq});
        }
      }
      std::sort(completion_events.begin(), completion_events.end());
      size_t idx = 0;
      uint64_t max_seq_completed = 0;
      for (const Op& op : ops) {  // by invocation time
        while (idx < completion_events.size() && completion_events[idx].first < op.invoked) {
          max_seq_completed = std::max(max_seq_completed, completion_events[idx].second);
          idx++;
        }
        if (op.is_write && op.seq < max_seq_completed) {
          Violation("key '" + key + "': write seq " + std::to_string(op.seq) +
                    " invoked after a completed write with larger seq " +
                    std::to_string(max_seq_completed));
        }
        if (!op.is_write && op.seq < max_seq_completed) {
          // R1: read is stale w.r.t. real time.
          Violation("key '" + key + "': read returned seq " + std::to_string(op.seq) +
                    " but a write with seq " + std::to_string(max_seq_completed) +
                    " completed before the read was invoked");
        }
      }
    }

    // R2: a read's returned seq must come from a write invoked before the
    // read completed.
    {
      std::unordered_map<uint64_t, Time> write_invocation;
      for (const Op& op : ops) {
        if (op.is_write) {
          write_invocation[op.seq] = op.invoked;
        }
      }
      for (const Op& op : ops) {
        if (!op.is_write && op.seq != 0) {
          auto it = write_invocation.find(op.seq);
          if (it == write_invocation.end()) {
            Violation("key '" + key + "': read returned seq " + std::to_string(op.seq) +
                      " that no recorded write produced");
          } else if (it->second > op.completed) {
            Violation("key '" + key + "': read returned seq " + std::to_string(op.seq) +
                      " from a write invoked after the read completed");
          }
        }
      }
    }

    // R3: reads ordered in real time return non-decreasing seqs.
    {
      std::vector<const Op*> reads;
      for (const Op& op : ops) {
        if (!op.is_write) {
          reads.push_back(&op);
        }
      }
      std::sort(reads.begin(), reads.end(),
                [](const Op* a, const Op* b) { return a->completed < b->completed; });
      uint64_t max_read_seq = 0;
      Time max_read_completed = -1;
      for (const Op* r : reads) {
        if (r->invoked > max_read_completed) {
          // Strictly after the read that returned max_read_seq.
          if (r->seq < max_read_seq) {
            Violation("key '" + key + "': read seq regressed from " +
                      std::to_string(max_read_seq) + " to " + std::to_string(r->seq));
          }
        }
        if (r->seq >= max_read_seq) {
          max_read_seq = r->seq;
          max_read_completed = r->completed;
        }
      }
    }
  }
  return violations_;
}

}  // namespace chainreaction

// Tests for the consistency checkers themselves: they must accept legal
// histories and reject crafted violations of each class.
#include <gtest/gtest.h>

#include "src/checker/causal_checker.h"
#include "src/checker/linearizability.h"

namespace chainreaction {
namespace {

Version V(uint64_t lamport, DcId origin, std::initializer_list<uint64_t> vv) {
  Version v;
  v.lamport = lamport;
  v.origin = origin;
  v.vv = VersionVector(vv.size());
  size_t i = 0;
  for (uint64_t c : vv) {
    v.vv.Set(static_cast<DcId>(i++), c);
  }
  return v;
}

VersionVector Vv(std::initializer_list<uint64_t> vv) {
  VersionVector out(vv.size());
  size_t i = 0;
  for (uint64_t c : vv) {
    out.Set(static_cast<DcId>(i++), c);
  }
  return out;
}

// ----------------------------------------------------------- MaximalVvSet --

TEST(MaximalVvSet, KeepsOnlyMaximal) {
  MaximalVvSet set;
  set.Add(Vv({1, 0}));
  set.Add(Vv({2, 0}));  // dominates previous
  EXPECT_EQ(set.size(), 1u);
  set.Add(Vv({0, 3}));  // concurrent
  EXPECT_EQ(set.size(), 2u);
  set.Add(Vv({2, 3}));  // dominates both
  EXPECT_EQ(set.size(), 1u);
}

TEST(MaximalVvSet, AddDominatedIsNoop) {
  MaximalVvSet set;
  set.Add(Vv({5, 5}));
  set.Add(Vv({1, 1}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(MaximalVvSet, StrictDominance) {
  MaximalVvSet set;
  set.Add(Vv({2, 1}));
  EXPECT_TRUE(set.StrictlyDominates(Vv({1, 1})));
  EXPECT_FALSE(set.StrictlyDominates(Vv({2, 1})));  // equal, not strict
  EXPECT_FALSE(set.StrictlyDominates(Vv({3, 0})));  // concurrent
  EXPECT_FALSE(set.StrictlyDominates(Vv({9, 9})));  // dominates us
}

// ----------------------------------------------------------- CausalChecker --

TEST(CausalChecker, CleanSessionHistoryPasses) {
  CausalChecker c;
  c.RecordWrite(1, "k", V(1, 0, {1}), {});
  c.RecordRead(1, "k", true, V(1, 0, {1}));
  c.RecordWrite(1, "k", V(2, 0, {2}), {});
  c.RecordRead(1, "k", true, V(2, 0, {2}));
  c.RecordRead(1, "k", true, V(3, 0, {3}));  // newer than known: fine
  EXPECT_EQ(c.violations(), 0u);
}

TEST(CausalChecker, DetectsReadYourWritesViolation) {
  CausalChecker c;
  c.RecordWrite(1, "k", V(2, 0, {2}), {});
  c.RecordRead(1, "k", true, V(1, 0, {1}));  // older than own write
  EXPECT_EQ(c.violations(), 1u);
  ASSERT_FALSE(c.diagnostics().empty());
}

TEST(CausalChecker, DetectsMonotonicReadsViolation) {
  CausalChecker c;
  c.RecordRead(1, "k", true, V(5, 0, {5}));
  c.RecordRead(1, "k", true, V(3, 0, {3}));  // goes backwards
  EXPECT_EQ(c.violations(), 1u);
}

TEST(CausalChecker, ConcurrentVersionsNotFlagged) {
  CausalChecker c;
  c.RecordRead(1, "k", true, V(5, 0, {1, 0}));
  c.RecordRead(1, "k", true, V(6, 1, {0, 1}));  // concurrent, LWW winner
  EXPECT_EQ(c.violations(), 0u);
}

TEST(CausalChecker, DetectsCrossKeyViolation) {
  CausalChecker c;
  // Session 1 writes k1, then writes k2 depending on k1.
  const Version k1v = V(1, 0, {1});
  const Version k2v = V(2, 0, {1});
  c.RecordWrite(1, "k1", k1v, {});
  c.RecordWrite(1, "k2", k2v, {{"k1", k1v}});
  // Session 2 reads k2 (pulling in the dependency on k1), then reads a
  // pre-dependency version of k1: violation.
  c.RecordRead(2, "k2", true, k2v);
  c.RecordRead(2, "k1", true, V(0, 0, {0}));
  EXPECT_GE(c.violations(), 1u);
}

TEST(CausalChecker, CrossKeySatisfiedPasses) {
  CausalChecker c;
  const Version k1v = V(1, 0, {1});
  const Version k2v = V(2, 0, {1});
  c.RecordWrite(1, "k1", k1v, {});
  c.RecordWrite(1, "k2", k2v, {{"k1", k1v}});
  c.RecordRead(2, "k2", true, k2v);
  c.RecordRead(2, "k1", true, k1v);
  EXPECT_EQ(c.violations(), 0u);
}

TEST(CausalChecker, TransitiveDependencyClosure) {
  CausalChecker c;
  // k0 <- k1 <- k2 dependency chain by session 1.
  const Version k0v = V(1, 0, {1});
  const Version k1v = V(2, 0, {1});
  const Version k2v = V(3, 0, {1});
  c.RecordWrite(1, "k0", k0v, {});
  c.RecordWrite(1, "k1", k1v, {{"k0", k0v}});
  c.RecordWrite(1, "k2", k2v, {{"k1", k1v}});
  // Session 2 reads the end of the chain, then violates the *transitive*
  // dependency (k0), never having read k1.
  c.RecordRead(2, "k2", true, k2v);
  c.RecordRead(2, "k0", true, V(0, 0, {0}));
  EXPECT_GE(c.violations(), 1u);
}

TEST(CausalChecker, NotFoundAfterKnownWriteIsViolation) {
  CausalChecker c;
  c.RecordWrite(1, "k", V(1, 0, {1}), {});
  c.RecordRead(1, "k", false, Version{});
  EXPECT_EQ(c.violations(), 1u);
}

TEST(CausalChecker, NotFoundOnUnknownKeyFine) {
  CausalChecker c;
  c.RecordRead(1, "nope", false, Version{});
  EXPECT_EQ(c.violations(), 0u);
}

TEST(CausalChecker, SessionsAreIndependent) {
  CausalChecker c;
  c.RecordWrite(1, "k", V(5, 0, {5}), {});
  // A different session reading an older version is legal (it has no
  // causal relation to session 1's write).
  c.RecordRead(2, "k", true, V(1, 0, {1}));
  EXPECT_EQ(c.violations(), 0u);
}

// ----------------------------------------------- LinearizabilityChecker ----

TEST(LinearizabilityChecker, CleanHistoryPasses) {
  LinearizabilityChecker c;
  c.RecordWrite("k", 0, 10, 1);
  c.RecordRead("k", 20, 30, 1);
  c.RecordWrite("k", 40, 50, 2);
  c.RecordRead("k", 60, 70, 2);
  EXPECT_EQ(c.Check(), 0u);
}

TEST(LinearizabilityChecker, OverlappingOpsFlexible) {
  LinearizabilityChecker c;
  // Read overlaps the write; may return old or new value.
  c.RecordWrite("k", 0, 10, 1);
  c.RecordWrite("k", 20, 40, 2);
  c.RecordRead("k", 25, 35, 1);  // overlapping: old value OK
  c.RecordRead("k", 26, 36, 2);  // overlapping: new value OK
  EXPECT_EQ(c.Check(), 0u);
}

TEST(LinearizabilityChecker, DetectsStaleRead) {
  LinearizabilityChecker c;
  c.RecordWrite("k", 0, 10, 1);
  c.RecordWrite("k", 20, 30, 2);
  c.RecordRead("k", 40, 50, 1);  // write 2 completed before read started
  EXPECT_GE(c.Check(), 1u);
}

TEST(LinearizabilityChecker, DetectsFutureRead) {
  LinearizabilityChecker c;
  c.RecordWrite("k", 100, 110, 1);
  c.RecordRead("k", 0, 10, 1);  // read returned a value written later
  EXPECT_GE(c.Check(), 1u);
}

TEST(LinearizabilityChecker, DetectsPhantomRead) {
  LinearizabilityChecker c;
  c.RecordWrite("k", 0, 10, 1);
  c.RecordRead("k", 20, 30, 7);  // seq 7 never written
  EXPECT_GE(c.Check(), 1u);
}

TEST(LinearizabilityChecker, DetectsReadRegression) {
  LinearizabilityChecker c;
  c.RecordWrite("k", 0, 10, 1);
  c.RecordWrite("k", 0, 12, 2);
  c.RecordRead("k", 20, 30, 2);
  c.RecordRead("k", 40, 50, 1);  // non-overlapping reads went backwards
  EXPECT_GE(c.Check(), 1u);
}

TEST(LinearizabilityChecker, DetectsWriteOrderInversion) {
  LinearizabilityChecker c;
  c.RecordWrite("k", 0, 10, 5);   // completed with seq 5
  c.RecordWrite("k", 20, 30, 3);  // later write got smaller seq
  EXPECT_GE(c.Check(), 1u);
}

TEST(LinearizabilityChecker, KeysIndependent) {
  LinearizabilityChecker c;
  c.RecordWrite("a", 0, 10, 5);
  c.RecordWrite("b", 20, 30, 1);  // smaller seq on a different key: fine
  EXPECT_EQ(c.Check(), 0u);
}

}  // namespace
}  // namespace chainreaction

// Unit tests for the multi-version store: LWW ordering, idempotent applies,
// stability marking, dependency predicates, and garbage collection.
#include <gtest/gtest.h>

#include "src/storage/versioned_store.h"

namespace chainreaction {
namespace {

Version V(uint64_t lamport, DcId origin = 0, std::initializer_list<uint64_t> vv = {}) {
  Version v;
  v.lamport = lamport;
  v.origin = origin;
  v.vv = VersionVector(vv.size());
  size_t i = 0;
  for (uint64_t c : vv) {
    v.vv.Set(static_cast<DcId>(i++), c);
  }
  return v;
}

TEST(VersionedStore, ApplyAndLatest) {
  VersionedStore store;
  EXPECT_EQ(store.Latest("k"), nullptr);
  EXPECT_TRUE(store.Apply("k", "v1", V(1, 0, {1})));
  ASSERT_NE(store.Latest("k"), nullptr);
  EXPECT_EQ(store.Latest("k")->value, "v1");
}

TEST(VersionedStore, DuplicateApplyIgnored) {
  VersionedStore store;
  EXPECT_TRUE(store.Apply("k", "v1", V(1)));
  EXPECT_FALSE(store.Apply("k", "v1", V(1)));
  EXPECT_EQ(store.VersionCount("k"), 1u);
}

TEST(VersionedStore, LwwOrderDecidesLatest) {
  VersionedStore store;
  store.Apply("k", "newer", V(10, 1, {0, 1}));
  store.Apply("k", "older", V(5, 0, {1, 0}));
  EXPECT_EQ(store.Latest("k")->value, "newer");
  // Origin breaks lamport ties deterministically.
  store.Apply("k", "tie-higher-origin", V(10, 2, {0, 0, 1}));
  EXPECT_EQ(store.Latest("k")->value, "tie-higher-origin");
}

TEST(VersionedStore, FindExactVersion) {
  VersionedStore store;
  store.Apply("k", "a", V(1, 0, {1}));
  store.Apply("k", "b", V(2, 0, {2}));
  const StoredVersion* sv = store.Find("k", V(1, 0, {1}));
  ASSERT_NE(sv, nullptr);
  EXPECT_EQ(sv->value, "a");
  EXPECT_EQ(store.Find("k", V(3, 0, {3})), nullptr);
  EXPECT_EQ(store.Find("missing", V(1)), nullptr);
}

TEST(VersionedStore, MarkStableAndLatestStable) {
  VersionedStore store;
  store.Apply("k", "a", V(1, 0, {1}));
  store.Apply("k", "b", V(2, 0, {2}));
  EXPECT_EQ(store.LatestStable("k"), nullptr);
  EXPECT_TRUE(store.MarkStable("k", V(1, 0, {1})));
  ASSERT_NE(store.LatestStable("k"), nullptr);
  EXPECT_EQ(store.LatestStable("k")->value, "a");
  EXPECT_FALSE(store.Latest("k")->stable);
}

TEST(VersionedStore, MarkStableUnknownVersionFails) {
  VersionedStore store;
  EXPECT_FALSE(store.MarkStable("k", V(1)));
  store.Apply("k", "a", V(1, 0, {1}));
  EXPECT_FALSE(store.MarkStable("k", V(9, 0, {9})));
}

TEST(VersionedStore, StabilityIsPrefixClosed) {
  VersionedStore store;
  store.Apply("k", "a", V(1, 0, {1}));
  store.Apply("k", "b", V(2, 0, {2}));
  // Marking the causally-later version stable stabilizes the earlier one.
  EXPECT_TRUE(store.MarkStable("k", V(2, 0, {2})));
  EXPECT_EQ(store.LatestStable("k")->value, "b");
}

TEST(VersionedStore, HasAtLeast) {
  VersionedStore store;
  EXPECT_TRUE(store.HasAtLeast("k", Version{}));  // null version: trivially
  EXPECT_FALSE(store.HasAtLeast("k", V(1, 0, {1})));
  store.Apply("k", "a", V(1, 0, {1}));
  EXPECT_TRUE(store.HasAtLeast("k", V(1, 0, {1})));
  EXPECT_FALSE(store.HasAtLeast("k", V(2, 0, {2})));
  store.Apply("k", "b", V(2, 0, {2}));
  EXPECT_TRUE(store.HasAtLeast("k", V(2, 0, {2})));
}

TEST(VersionedStore, HasAtLeastMergesAcrossVersions) {
  // Applied {1,0} and {0,1} separately: together they cover {1,1}.
  VersionedStore store;
  store.Apply("k", "a", V(1, 0, {1, 0}));
  store.Apply("k", "b", V(2, 1, {0, 1}));
  Version need = V(3, 0, {1, 1});
  EXPECT_TRUE(store.HasAtLeast("k", need));
}

TEST(VersionedStore, GcDropsVersionsOlderThanNewestStable) {
  VersionedStore store;
  for (uint64_t i = 1; i <= 5; ++i) {
    store.Apply("k", "v" + std::to_string(i), V(i, 0, {i}));
  }
  EXPECT_EQ(store.VersionCount("k"), 5u);
  store.MarkStable("k", V(4, 0, {4}));
  // Versions 1..3 are collectible; 4 (stable) and 5 (unstable) remain.
  EXPECT_EQ(store.VersionCount("k"), 2u);
  EXPECT_EQ(store.Latest("k")->value, "v5");
  EXPECT_EQ(store.LatestStable("k")->value, "v4");
  // Causal knowledge is preserved even after GC.
  EXPECT_TRUE(store.HasAtLeast("k", V(1, 0, {1})));
}

TEST(VersionedStore, UnstableVersionsOldestFirst) {
  VersionedStore store;
  store.Apply("k", "a", V(1, 0, {1}));
  store.Apply("k", "b", V(2, 0, {2}));
  store.Apply("k", "c", V(3, 0, {3}));
  store.MarkStable("k", V(1, 0, {1}));
  auto unstable = store.UnstableVersions("k");
  ASSERT_EQ(unstable.size(), 2u);
  EXPECT_EQ(unstable[0].value, "b");
  EXPECT_EQ(unstable[1].value, "c");
  EXPECT_TRUE(store.UnstableVersions("missing").empty());
}

TEST(VersionedStore, ForEachKeyVisitsLatest) {
  VersionedStore store;
  store.Apply("a", "1", V(1, 0, {1}));
  store.Apply("b", "2", V(2, 0, {1}));
  store.Apply("b", "3", V(3, 0, {2}));
  int seen = 0;
  store.ForEachKey([&](const Key& key, const StoredVersion& latest) {
    seen++;
    if (key == "b") {
      EXPECT_EQ(latest.value, "3");
    }
  });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(store.KeyCount(), 2u);
}

TEST(VersionedStore, ConcurrentVersionsBothKept) {
  VersionedStore store;
  store.Apply("k", "dc0", V(10, 0, {1, 0}));
  store.Apply("k", "dc1", V(11, 1, {0, 1}));
  EXPECT_EQ(store.VersionCount("k"), 2u);
  EXPECT_EQ(store.Latest("k")->value, "dc1");  // LWW winner
  const VersionVector* vv = store.AppliedVv("k");
  ASSERT_NE(vv, nullptr);
  EXPECT_EQ(vv->Get(0), 1u);
  EXPECT_EQ(vv->Get(1), 1u);
}

TEST(VersionedStore, TotalVersionsAccounting) {
  VersionedStore store;
  store.Apply("a", "1", V(1, 0, {1}));
  store.Apply("a", "2", V(2, 0, {2}));
  store.Apply("b", "3", V(3, 0, {1}));
  EXPECT_EQ(store.total_versions(), 3u);
  store.MarkStable("a", V(2, 0, {2}));  // GCs version 1
  EXPECT_EQ(store.total_versions(), 2u);
}

}  // namespace
}  // namespace chainreaction

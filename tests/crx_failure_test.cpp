// Failure-injection tests: node crashes with chain repair must never lose
// acknowledged writes or violate causal+ consistency. The CrashRestart
// tests exercise the durability path: a crashed server restarts from its
// WAL + checkpoint instead of resyncing from scratch.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

ClusterOptions FailureOpts(uint64_t seed = 1) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 10;
  opts.clients_per_dc = 4;
  opts.replication = 3;
  opts.k_stability = 2;
  opts.seed = seed;
  return opts;
}

// Unique per-test scratch directory for node data dirs, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(::testing::TempDir() + "crx_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))) {}
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return "";
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

// True when the recorder currently holds an event of `kind`.
bool RecorderHas(const FlightRecorder* recorder, EventKind kind) {
  for (const FlightEvent& e : recorder->Snapshot()) {
    if (e.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST(CrxFailure, AckedWritesSurviveOneCrash) {
  Cluster cluster(FailureOpts());
  ChainReactionClient* writer = cluster.crx_client(0);

  // Write 50 keys and remember their acknowledged versions.
  std::map<Key, Version> acked;
  for (int i = 0; i < 50; ++i) {
    const Key key = "surv-" + std::to_string(i);
    writer->Put(key, "value-" + std::to_string(i),
                [&acked, key](const ChainReactionClient::PutResult& r) {
                  ASSERT_TRUE(r.status.ok());
                  acked[key] = r.version;
                });
    cluster.sim()->Run();
  }
  ASSERT_EQ(acked.size(), 50u);

  // Crash one server; membership reconfigures and repairs chains.
  cluster.KillServer(0, 3);
  cluster.sim()->Run();

  // Every acknowledged write must still be readable at (at least) its
  // acknowledged version, from a fresh session.
  ChainReactionClient* reader = cluster.crx_client(1);
  for (const auto& [key, version] : acked) {
    bool done = false;
    reader->Get(key, [&, key_copy = key](const ChainReactionClient::GetResult& r) {
      EXPECT_TRUE(r.found) << "lost acked key " << key_copy;
      if (r.found) {
        EXPECT_FALSE(acked[key_copy].vv.Dominates(r.version.vv) &&
                     !(acked[key_copy].vv == r.version.vv))
            << "read version older than acked for " << key_copy;
      }
      done = true;
    });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }
}

TEST(CrxFailure, WorkloadAcrossCrashStaysCausal) {
  Cluster cluster(FailureOpts(7));
  cluster.Preload(300, 64);

  RunOptions run;
  run.spec = WorkloadSpec::A(300, 64);
  run.preload = false;
  run.warmup = 200 * kMillisecond;
  run.measure = 2 * kSecond;
  run.attach_checker = true;

  // Interleave the crash with the measurement window.
  cluster.sim()->Schedule(1 * kSecond, [&cluster]() { cluster.KillServer(0, 5); });
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  EXPECT_GT(result.stats.TotalOps(), 500u);

  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;

  // No write may stay parked at a head forever.
  for (uint32_t i = 0; i < cluster.options().servers_per_dc; ++i) {
    if (cluster.net()->IsCrashed(cluster.ServerAddress(0, i))) {
      continue;
    }
    EXPECT_EQ(cluster.crx_node(0, i)->gated_puts_pending(), 0u) << "node " << i;
  }
}

TEST(CrxFailure, SequentialCrashesSurvivable) {
  ClusterOptions opts = FailureOpts(11);
  opts.servers_per_dc = 12;
  Cluster cluster(opts);
  cluster.Preload(200, 64);

  RunOptions run;
  run.spec = WorkloadSpec::B(200, 64);
  run.preload = false;
  run.warmup = 200 * kMillisecond;
  run.measure = 3 * kSecond;
  run.attach_checker = true;

  // Crash three different servers, spaced out so repair completes between.
  cluster.sim()->Schedule(800 * kMillisecond, [&] { cluster.KillServer(0, 2); });
  cluster.sim()->Schedule(1600 * kMillisecond, [&] { cluster.KillServer(0, 7); });
  cluster.sim()->Schedule(2400 * kMillisecond, [&] { cluster.KillServer(0, 11); });

  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(CrxFailure, CrashDuringGeoReplication) {
  ClusterOptions opts = FailureOpts(13);
  opts.num_dcs = 2;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 2;
  Cluster cluster(opts);
  cluster.Preload(100, 64);

  RunOptions run;
  run.spec = WorkloadSpec::A(100, 64);
  run.preload = false;
  run.warmup = 200 * kMillisecond;
  run.measure = 2 * kSecond;
  run.attach_checker = true;

  cluster.sim()->Schedule(1 * kSecond, [&] { cluster.KillServer(1, 4); });
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(CrxFailure, NewChainMemberServesAfterSync) {
  Cluster cluster(FailureOpts(17));
  ChainReactionClient* client = cluster.crx_client(0);

  // Establish stable data.
  for (int i = 0; i < 30; ++i) {
    bool done = false;
    client->Put("sync-" + std::to_string(i), "v", [&](const auto&) { done = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }

  cluster.KillServer(0, 1);
  cluster.sim()->Run();  // repair completes

  // A fresh session (no metadata) reads every key from arbitrary chain
  // positions — including freshly synced members — and must find them all.
  ChainReactionClient* reader = cluster.crx_client(2);
  for (int i = 0; i < 30; ++i) {
    bool found = false;
    reader->Get("sync-" + std::to_string(i),
                [&](const ChainReactionClient::GetResult& r) { found = r.found; });
    cluster.sim()->Run();
    EXPECT_TRUE(found) << "key sync-" << i << " unreadable after repair";
  }
}

// The crash-restart suite runs under both value engines: recovery must be
// engine-oblivious (mem replays values from the WAL; disk re-opens the
// value log, truncates to the checkpoint manifest, and replays the tail).
// The disk variant uses a deliberately tiny residency cache so recovery
// and post-restart reads exercise real log reads.
class CrxCrashRestart : public ::testing::TestWithParam<StorageEngineKind> {
 protected:
  ClusterOptions EngineOpts(ClusterOptions opts) const {
    opts.engine = GetParam();
    opts.engine_cache_bytes = 32u << 10;
    opts.engine_segment_bytes = 64u << 10;
    return opts;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Engines, CrxCrashRestart,
    ::testing::Values(StorageEngineKind::kMem, StorageEngineKind::kDisk),
    [](const ::testing::TestParamInfo<StorageEngineKind>& param_info) {
      return std::string(StorageEngineKindName(param_info.param));
    });

TEST_P(CrxCrashRestart, RecoveryRebuildsPreCrashStoreExactly) {
  ScratchDir scratch("restart_exact");
  ClusterOptions opts = EngineOpts(FailureOpts(23));
  opts.data_root = scratch.path();
  opts.fsync_policy = FsyncPolicy::kAlways;  // every acked byte durable
  Cluster cluster(opts);
  cluster.Preload(150, 64);

  ChainReactionClient* writer = cluster.crx_client(0);
  for (int i = 0; i < 80; ++i) {
    writer->Put("exact-" + std::to_string(i), "v" + std::to_string(i), [](const auto&) {});
    cluster.sim()->Run();
  }

  // Capture the victim's store, version for version, then crash it.
  const uint32_t victim = 4;
  std::map<std::pair<Key, std::string>, std::pair<Value, bool>> before;
  cluster.crx_node(0, victim)->store().ForEachVersion(
      [&before](const Key& key, const StoredVersion& sv) {
        before[{key, sv.version.ToString()}] = {sv.value, sv.stable};
      });
  ASSERT_FALSE(before.empty());
  cluster.CrashServer(0, victim);

  // Recover from its data dir alone (no chain help): with fsync=always the
  // rebuilt store must match the pre-crash store exactly.
  CrxConfig cfg;
  cfg.replication = opts.replication;
  cfg.k_stability = opts.k_stability;
  cfg.engine = GetParam();
  cfg.engine_cache_bytes = opts.engine_cache_bytes;
  ChainReactionNode recovered(cluster.ServerAddress(0, victim), cfg,
                              cluster.membership(0)->ring());
  ASSERT_TRUE(recovered.RecoverFrom(cluster.NodeDataDir(0, victim)).ok());
  EXPECT_GT(recovered.last_recovery_stats().records, 0u);

  std::map<std::pair<Key, std::string>, std::pair<Value, bool>> after;
  recovered.store().ForEachVersion([&after](const Key& key, const StoredVersion& sv) {
    after[{key, sv.version.ToString()}] = {sv.value, sv.stable};
  });
  EXPECT_EQ(before, after);
}

TEST_P(CrxCrashRestart, AckedWritesSurviveCrashRestart) {
  ScratchDir scratch("restart_acked");
  ClusterOptions opts = EngineOpts(FailureOpts(29));
  opts.data_root = scratch.path();
  opts.fsync_policy = FsyncPolicy::kAlways;
  Cluster cluster(opts);

  std::map<Key, Version> acked;
  ChainReactionClient* writer = cluster.crx_client(0);
  for (int i = 0; i < 50; ++i) {
    const Key key = "rsurv-" + std::to_string(i);
    writer->Put(key, "value-" + std::to_string(i),
                [&acked, key](const ChainReactionClient::PutResult& r) {
                  ASSERT_TRUE(r.status.ok());
                  acked[key] = r.version;
                });
    cluster.sim()->Run();
  }
  ASSERT_EQ(acked.size(), 50u);

  cluster.CrashServer(0, 3);
  cluster.sim()->Run();

  // The crash path dumped the victim's flight recorder to its data dir:
  // a crash_dump header plus the control-plane events leading up to death.
  const std::string flight = ReadFileOrEmpty(cluster.NodeDataDir(0, 3) + "/flight.log");
  ASSERT_FALSE(flight.empty()) << "no flight.log written on crash";
  EXPECT_NE(flight.find("crash_dump"), std::string::npos) << flight;

  ASSERT_TRUE(cluster.RestartServer(0, 3).ok());
  cluster.sim()->Run();  // rejoin repair completes
  EXPECT_GT(cluster.crx_node(0, 3)->last_recovery_stats().records, 0u);
  // The restarted node's fresh recorder must show the recovery replay and
  // the rejoin guard lifting once chain repair caught it up.
  EXPECT_TRUE(RecorderHas(cluster.crx_node(0, 3)->events(), EventKind::kWalRecovery));

  // Every acknowledged write must still be readable at (at least) its
  // acknowledged version from a fresh session, with the restarted node
  // back in its chains.
  ChainReactionClient* reader = cluster.crx_client(1);
  for (const auto& [key, version] : acked) {
    bool done = false;
    reader->Get(key, [&, key_copy = key](const ChainReactionClient::GetResult& r) {
      EXPECT_TRUE(r.found) << "lost acked key " << key_copy;
      if (r.found) {
        EXPECT_FALSE(acked[key_copy].vv.Dominates(r.version.vv) &&
                     !(acked[key_copy].vv == r.version.vv))
            << "read version older than acked for " << key_copy;
      }
      done = true;
    });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }
}

TEST_P(CrxCrashRestart, WorkloadAcrossCrashRestartStaysCausal) {
  // The property test: crash a node mid-propagation under YCSB-A with
  // group-commit durability (the un-flushed batch is lost on crash),
  // restart it from its data dir mid-run, and require a clean causal+
  // checker and full convergence.
  ScratchDir scratch("restart_causal");
  ClusterOptions opts = EngineOpts(FailureOpts(31));
  opts.data_root = scratch.path();
  opts.fsync_policy = FsyncPolicy::kBatch;
  Cluster cluster(opts);
  cluster.Preload(300, 64);

  RunOptions run;
  run.spec = WorkloadSpec::A(300, 64);
  run.preload = false;
  run.warmup = 200 * kMillisecond;
  run.measure = 3 * kSecond;
  run.attach_checker = true;

  cluster.sim()->Schedule(1 * kSecond, [&cluster]() { cluster.CrashServer(0, 5); });
  cluster.sim()->Schedule(2 * kSecond, [&cluster]() {
    ASSERT_TRUE(cluster.RestartServer(0, 5).ok());
  });
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  EXPECT_GT(result.stats.TotalOps(), 500u);
  EXPECT_GT(cluster.crx_node(0, 5)->last_recovery_stats().records, 0u);

  // The mid-run crash left a readable flight dump with the crash header and
  // real pre-crash activity; the restarted node recorded its WAL replay.
  const std::string flight = ReadFileOrEmpty(cluster.NodeDataDir(0, 5) + "/flight.log");
  ASSERT_FALSE(flight.empty()) << "no flight.log written on crash";
  EXPECT_NE(flight.find("crash_dump"), std::string::npos);
  EXPECT_TRUE(RecorderHas(cluster.crx_node(0, 5)->events(), EventKind::kWalRecovery));

  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;

  // No write may stay parked at a head forever — including the rejoined one.
  for (uint32_t i = 0; i < cluster.options().servers_per_dc; ++i) {
    EXPECT_EQ(cluster.crx_node(0, i)->gated_puts_pending(), 0u) << "node " << i;
  }
}

}  // namespace
}  // namespace chainreaction

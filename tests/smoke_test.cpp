// End-to-end smoke tests: one put/get round trip on every system, plus the
// basic ChainReaction client-metadata behaviour.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

TEST(Smoke, ChainReactionPutGet) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 2;
  Cluster cluster(opts);

  bool put_done = false;
  Version put_version;
  cluster.crx_client(0)->Put("alpha", "value-1",
                             [&](const ChainReactionClient::PutResult& r) {
                               ASSERT_TRUE(r.status.ok());
                               put_version = r.version;
                               put_done = true;
                             });
  cluster.sim()->Run();
  ASSERT_TRUE(put_done);
  EXPECT_EQ(put_version.vv.Get(0), 1u);

  // After the ack the client may read from the first k positions.
  EXPECT_EQ(cluster.crx_client(0)->metadata_entries(), 1u);

  bool get_done = false;
  cluster.crx_client(0)->Get("alpha", [&](const ChainReactionClient::GetResult& r) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, "value-1");
    EXPECT_TRUE(r.version == put_version);
    get_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(get_done);

  // A second client (no metadata) reads from anywhere and sees the value.
  bool get2_done = false;
  cluster.crx_client(1)->Get("alpha", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, "value-1");
    get2_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(get2_done);
}

TEST(Smoke, ChainReactionMissingKey) {
  ClusterOptions opts;
  opts.servers_per_dc = 4;
  opts.clients_per_dc = 1;
  Cluster cluster(opts);

  bool done = false;
  cluster.crx_client(0)->Get("nope", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_FALSE(r.found);
    done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
}

template <typename MakeOpts>
void PutGetRoundTrip(MakeOpts make_opts) {
  ClusterOptions opts = make_opts();
  Cluster cluster(opts);
  bool put_done = false;
  bool get_done = false;
  cluster.client(0)->Put("k", "v", [&](const KvPutResult& r) {
    EXPECT_TRUE(r.ok);
    put_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(put_done);
  cluster.client(0)->Get("k", [&](const KvGetResult& r) {
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, "v");
    get_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(get_done);
}

TEST(Smoke, CrPutGet) {
  PutGetRoundTrip([] {
    ClusterOptions o;
    o.system = SystemKind::kCr;
    o.servers_per_dc = 6;
    o.clients_per_dc = 1;
    return o;
  });
}

TEST(Smoke, CraqPutGet) {
  PutGetRoundTrip([] {
    ClusterOptions o;
    o.system = SystemKind::kCraq;
    o.servers_per_dc = 6;
    o.clients_per_dc = 1;
    return o;
  });
}

TEST(Smoke, EventualPutGet) {
  PutGetRoundTrip([] {
    ClusterOptions o;
    o.system = SystemKind::kEventualOne;
    o.servers_per_dc = 6;
    o.clients_per_dc = 1;
    return o;
  });
}

TEST(Smoke, QuorumPutGet) {
  PutGetRoundTrip([] {
    ClusterOptions o;
    o.system = SystemKind::kQuorum;
    o.servers_per_dc = 6;
    o.clients_per_dc = 1;
    return o;
  });
}

TEST(Smoke, GeoTwoDcsPropagates) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 1;
  opts.num_dcs = 2;
  Cluster cluster(opts);

  bool put_done = false;
  cluster.crx_client(0)->Put("geo-key", "from-dc0",
                             [&](const ChainReactionClient::PutResult& r) {
                               EXPECT_TRUE(r.status.ok());
                               put_done = true;
                             });
  cluster.sim()->Run();
  ASSERT_TRUE(put_done);

  // Client 1 lives in DC 1; the update must have arrived there.
  bool get_done = false;
  cluster.crx_client(1)->Get("geo-key", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, "from-dc0");
    get_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(get_done);

  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(Smoke, SmallWorkloadRunsClean) {
  ClusterOptions opts;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 4;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/200, /*value_size=*/64);
  run.warmup = 200 * kMillisecond;
  run.measure = 1 * kSecond;
  run.attach_checker = true;
  RunResult result = RunWorkload(&cluster, run);

  EXPECT_GT(result.stats.TotalOps(), 100u);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  EXPECT_GT(result.throughput_ops_sec, 0.0);

  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

}  // namespace
}  // namespace chainreaction

// Multi-key causally consistent read transactions (MultiGet).
//
// Checks the basic API, the snapshot property under adversarial concurrent
// writers (every returned snapshot is internally causally consistent), and
// that the second round actually triggers when it must.
#include <gtest/gtest.h>

#include <map>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

ClusterOptions Opts(uint32_t servers = 8, uint32_t clients = 3, uint64_t seed = 1) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = servers;
  opts.clients_per_dc = clients;
  opts.seed = seed;
  return opts;
}

// Snapshot invariant: no returned version is strictly causally dominated by
// a dependency (on the same multiget key set) of another returned version.
void AssertSnapshotConsistent(const std::vector<Key>& keys,
                              const ChainReactionClient::MultiGetResult& out) {
  ASSERT_EQ(out.results.size(), keys.size());
  for (size_t j = 0; j < out.results.size(); ++j) {
    if (!out.results[j].found) {
      continue;
    }
    for (const Dependency& dep : out.results[j].deps) {
      for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] != dep.key) {
          continue;
        }
        const auto& got = out.results[i];
        ASSERT_TRUE(got.found)
            << "snapshot returned not-found for '" << keys[i] << "' although '" << keys[j]
            << "' causally depends on it";
        const bool strictly_dominated = dep.version.vv.Dominates(got.version.vv) &&
                                        !(dep.version.vv == got.version.vv);
        EXPECT_FALSE(strictly_dominated)
            << "'" << keys[i] << "' returned " << got.version.ToString()
            << " but co-read '" << keys[j] << "' depends on " << dep.version.ToString();
      }
    }
  }
}

TEST(MultiGet, EmptyAndSingleKey) {
  Cluster cluster(Opts());
  ChainReactionClient* client = cluster.crx_client(0);

  bool empty_done = false;
  client->MultiGet({}, [&](const ChainReactionClient::MultiGetResult& r) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.results.empty());
    empty_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(empty_done);

  bool put_done = false;
  client->Put("solo", "v", [&](const auto&) { put_done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(put_done);

  bool got = false;
  client->MultiGet({"solo", "missing"}, [&](const ChainReactionClient::MultiGetResult& r) {
    ASSERT_EQ(r.results.size(), 2u);
    EXPECT_TRUE(r.results[0].found);
    EXPECT_EQ(r.results[0].value, "v");
    EXPECT_FALSE(r.results[1].found);
    EXPECT_EQ(r.rounds, 1u);
    got = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(got);
}

TEST(MultiGet, ReturnsDependencyLists) {
  Cluster cluster(Opts());
  ChainReactionClient* client = cluster.crx_client(0);
  bool done = false;
  client->Put("x", "x1", [&](const auto&) {
    client->Put("y", "y1", [&](const auto&) { done = true; });  // y depends on x
  });
  cluster.sim()->Run();
  ASSERT_TRUE(done);

  bool got = false;
  cluster.crx_client(1)->MultiGet({"x", "y"},
                                  [&](const ChainReactionClient::MultiGetResult& r) {
                                    ASSERT_TRUE(r.results[1].found);
                                    ASSERT_EQ(r.results[1].deps.size(), 1u);
                                    EXPECT_EQ(r.results[1].deps[0].key, "x");
                                    got = true;
                                  });
  cluster.sim()->Run();
  ASSERT_TRUE(got);
}

// Adversarial property test: writers build dependency chains x->y across
// sessions while readers continuously snapshot {x, y}. Every snapshot must
// be consistent, and under this contention the two-round path must trigger
// at least once (proving the guarantee is not vacuous).
TEST(MultiGet, SnapshotsConsistentUnderContention) {
  ClusterOptions opts = Opts(8, 4, 7);
  // Within one DC the write gating already forbids most anomalies; the
  // residual snapshot hazard needs the transaction's two reads to be served
  // far apart in time, with a full write+stabilize cycle of the co-read key
  // in between. Huge latency jitter spreads the reads; the writer keeps the
  // cross-dependencies churning.
  opts.net.intra_site = LinkModel{200, 4000};
  Cluster cluster(opts);

  ChainReactionClient* writer = cluster.crx_client(0);
  ChainReactionClient* reader1 = cluster.crx_client(1);
  ChainReactionClient* reader2 = cluster.crx_client(2);

  // Writer loop: read x, write y (dep x), write x anew — builds fresh
  // cross-key dependencies continuously.
  int writes_left = 400;
  std::function<void()> write_loop = [&]() {
    if (writes_left-- <= 0) {
      return;
    }
    writer->Put("x", "x-" + std::to_string(writes_left), [&](const auto&) {
      writer->Get("x", [&](const auto&) {
        writer->Put("y", "y-" + std::to_string(writes_left), [&](const auto&) { write_loop(); });
      });
    });
  };
  write_loop();

  const std::vector<Key> keys = {"x", "y"};
  int snapshots = 0;
  std::function<void(ChainReactionClient*)> read_loop = [&](ChainReactionClient* reader) {
    if (snapshots >= 600) {
      return;
    }
    reader->MultiGet(keys, [&, reader](const ChainReactionClient::MultiGetResult& r) {
      snapshots++;
      AssertSnapshotConsistent(keys, r);
      read_loop(reader);
    });
  };
  read_loop(reader1);
  read_loop(reader2);

  cluster.sim()->Run();
  EXPECT_GE(snapshots, 600);
  const uint64_t second_rounds =
      reader1->multiget_second_rounds() + reader2->multiget_second_rounds();
  EXPECT_GT(second_rounds, 0u)
      << "contention never triggered round two — the property test is vacuous";
}

TEST(MultiGet, WiderKeySetSnapshot) {
  ClusterOptions opts = Opts(8, 3, 9);
  opts.net.intra_site = LinkModel{300, 400};
  Cluster cluster(opts);

  ChainReactionClient* writer = cluster.crx_client(0);
  // Build a dependency chain a -> b -> c -> d (each write reads the prior).
  int rounds_left = 150;
  std::function<void()> write_loop = [&]() {
    if (rounds_left-- <= 0) {
      return;
    }
    writer->Put("a", "a" + std::to_string(rounds_left), [&](const auto&) {
      writer->Get("a", [&](const auto&) {
        writer->Put("b", "b" + std::to_string(rounds_left), [&](const auto&) {
          writer->Get("b", [&](const auto&) {
            writer->Put("c", "c" + std::to_string(rounds_left),
                        [&](const auto&) { write_loop(); });
          });
        });
      });
    });
  };
  write_loop();

  const std::vector<Key> keys = {"a", "b", "c"};
  int snapshots = 0;
  std::function<void()> read_loop = [&]() {
    if (snapshots >= 300) {
      return;
    }
    cluster.crx_client(1)->MultiGet(keys, [&](const ChainReactionClient::MultiGetResult& r) {
      snapshots++;
      AssertSnapshotConsistent(keys, r);
      EXPECT_LE(r.rounds, 2u);
      read_loop();
    });
  };
  read_loop();
  cluster.sim()->Run();
  EXPECT_GE(snapshots, 300);
}

TEST(MultiGet, GeoSnapshots) {
  ClusterOptions opts = Opts(6, 2, 11);
  opts.num_dcs = 2;
  Cluster cluster(opts);

  // DC0 writes the dependency pair; DC1 snapshots it.
  ChainReactionClient* writer = cluster.crx_client(0);
  int writes_left = 60;
  std::function<void()> write_loop = [&]() {
    if (writes_left-- <= 0) {
      return;
    }
    writer->Put("gx", "x" + std::to_string(writes_left), [&](const auto&) {
      writer->Put("gy", "y" + std::to_string(writes_left), [&](const auto&) { write_loop(); });
    });
  };
  write_loop();

  const std::vector<Key> keys = {"gx", "gy"};
  int snapshots = 0;
  std::function<void()> read_loop = [&]() {
    if (snapshots >= 100) {
      return;
    }
    cluster.crx_client(2)->MultiGet(keys, [&](const ChainReactionClient::MultiGetResult& r) {
      snapshots++;
      if (r.results[0].found || r.results[1].found) {
        AssertSnapshotConsistent(keys, r);
      }
      read_loop();
    });
  };
  read_loop();
  cluster.sim()->Run();
  EXPECT_GE(snapshots, 100);
}

}  // namespace
}  // namespace chainreaction

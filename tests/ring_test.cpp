// Unit tests for the consistent-hashing ring and chain composition.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/ring/ring.h"
#include "src/ycsb/workload.h"

namespace chainreaction {
namespace {

std::vector<NodeId> MakeNodes(uint32_t n, NodeId base = 0) {
  std::vector<NodeId> nodes;
  for (uint32_t i = 0; i < n; ++i) {
    nodes.push_back(base + i);
  }
  return nodes;
}

TEST(Ring, ChainHasRDistinctNodes) {
  const Ring ring(MakeNodes(10), 16, 3);
  for (int i = 0; i < 500; ++i) {
    const auto& chain = ring.ChainFor(RecordKey(i));
    EXPECT_EQ(chain.size(), 3u);
    std::set<NodeId> unique(chain.begin(), chain.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(Ring, DeterministicChains) {
  const Ring a(MakeNodes(10), 16, 3);
  const Ring b(MakeNodes(10), 16, 3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.ChainFor(RecordKey(i)), b.ChainFor(RecordKey(i)));
  }
}

TEST(Ring, PositionConsistentWithChain) {
  const Ring ring(MakeNodes(8), 8, 3);
  for (int i = 0; i < 200; ++i) {
    const Key key = RecordKey(i);
    const auto& chain = ring.ChainFor(key);
    for (size_t p = 0; p < chain.size(); ++p) {
      EXPECT_EQ(ring.PositionOf(key, chain[p]), p + 1);
    }
    EXPECT_EQ(ring.PositionOf(key, 9999), 0u);
    EXPECT_EQ(ring.HeadFor(key), chain.front());
    EXPECT_EQ(ring.TailFor(key), chain.back());
  }
}

TEST(Ring, SuccessorPredecessor) {
  const Ring ring(MakeNodes(8), 8, 3);
  const Key key = RecordKey(7);
  const auto& chain = ring.ChainFor(key);
  EXPECT_EQ(ring.SuccessorFor(key, chain[0]), chain[1]);
  EXPECT_EQ(ring.SuccessorFor(key, chain[1]), chain[2]);
  EXPECT_EQ(ring.SuccessorFor(key, chain[2]), kInvalidNode);
  EXPECT_EQ(ring.PredecessorFor(key, chain[0]), kInvalidNode);
  EXPECT_EQ(ring.PredecessorFor(key, chain[2]), chain[1]);
}

TEST(Ring, ReplicationOne) {
  const Ring ring(MakeNodes(4), 8, 1);
  const Key key = RecordKey(3);
  EXPECT_EQ(ring.ChainFor(key).size(), 1u);
  EXPECT_EQ(ring.HeadFor(key), ring.TailFor(key));
}

TEST(Ring, LoadRoughlyBalanced) {
  const uint32_t n = 16;
  const Ring ring(MakeNodes(n), 64, 3);
  std::map<NodeId, int> head_count;
  const int keys = 20000;
  for (int i = 0; i < keys; ++i) {
    head_count[ring.HeadFor(RecordKey(i))]++;
  }
  // Every node heads some chains; no node heads more than 4x its fair share.
  EXPECT_EQ(head_count.size(), n);
  for (const auto& [node, count] : head_count) {
    EXPECT_GT(count, keys / static_cast<int>(n) / 4) << "node " << node;
    EXPECT_LT(count, keys * 4 / static_cast<int>(n)) << "node " << node;
  }
}

TEST(Ring, RemovingNodeOnlyDisturbsItsChains) {
  const Ring before(MakeNodes(12), 32, 3, 1);
  std::vector<NodeId> smaller = MakeNodes(12);
  const NodeId removed = 5;
  smaller.erase(smaller.begin() + removed);
  const Ring after(smaller, 32, 3, 2);

  int moved = 0, total = 2000;
  for (int i = 0; i < total; ++i) {
    const Key key = RecordKey(i);
    const auto& a = before.ChainFor(key);
    const auto& b = after.ChainFor(key);
    const bool involved =
        std::find(a.begin(), a.end(), removed) != a.end();
    if (!involved) {
      EXPECT_EQ(a, b) << "chain for uninvolved key " << key << " changed";
    } else {
      moved++;
      EXPECT_TRUE(std::find(b.begin(), b.end(), removed) == b.end());
    }
  }
  // Removed node participated in roughly R/N of chains.
  EXPECT_NEAR(static_cast<double>(moved) / total, 3.0 / 12.0, 0.1);
}

TEST(Ring, ContainsAndEpoch) {
  const Ring ring(MakeNodes(5), 8, 2, 42);
  EXPECT_TRUE(ring.Contains(3));
  EXPECT_FALSE(ring.Contains(77));
  EXPECT_EQ(ring.epoch(), 42u);
  EXPECT_EQ(ring.replication(), 2u);
}

TEST(Ring, TailDistributionBalanced) {
  // The CR baseline serves all reads at tails; tails must be spread out.
  const uint32_t n = 16;
  const Ring ring(MakeNodes(n), 64, 3);
  std::map<NodeId, int> tail_count;
  const int keys = 20000;
  for (int i = 0; i < keys; ++i) {
    tail_count[ring.TailFor(RecordKey(i))]++;
  }
  EXPECT_EQ(tail_count.size(), n);
}

}  // namespace
}  // namespace chainreaction

// Tests for the three baselines: CR is linearizable (checker-verified),
// CRAQ is linearizable and uses apportioned version queries, the eventual
// store converges but admits stale reads, and the quorum store gives
// read-your-writes.
#include <gtest/gtest.h>

#include <map>

#include "src/checker/linearizability.h"
#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

ClusterOptions BaselineOpts(SystemKind kind, uint64_t seed = 1) {
  ClusterOptions opts;
  opts.system = kind;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 6;
  opts.seed = seed;
  return opts;
}

// Drives a concurrent closed-loop put/get mix over a tiny hot key space on
// a chain system and feeds invoke/complete/seq into the linearizability
// checker.
uint64_t RunLinearizabilityTrial(SystemKind kind, uint64_t seed) {
  ClusterOptions opts = BaselineOpts(kind, seed);
  Cluster cluster(opts);
  LinearizabilityChecker checker;

  struct Session {
    Cluster* cluster;
    LinearizabilityChecker* checker;
    KvClient* kv;
    Rng rng;
    int remaining;

    void Next() {
      if (remaining-- <= 0) {
        return;
      }
      const Key key = "hot-" + std::to_string(rng.NextBelow(3));
      const Time invoked = cluster->sim()->Now();
      if (rng.NextBool(0.5)) {
        kv->Put(key, "v", [this, key, invoked](const KvPutResult& r) {
          checker->RecordWrite(key, invoked, cluster->sim()->Now(), r.version.lamport);
          Next();
        });
      } else {
        kv->Get(key, [this, key, invoked](const KvGetResult& r) {
          checker->RecordRead(key, invoked, cluster->sim()->Now(),
                              r.found ? r.version.lamport : 0);
          Next();
        });
      }
    }
  };

  std::vector<Session> sessions;
  sessions.reserve(cluster.num_clients());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    sessions.push_back(Session{&cluster, &checker, cluster.client(i), Rng(seed * 97 + i), 150});
  }
  for (auto& s : sessions) {
    s.Next();
  }
  cluster.sim()->Run();
  return checker.Check();
}

TEST(Baselines, CrIsLinearizable) {
  EXPECT_EQ(RunLinearizabilityTrial(SystemKind::kCr, 1), 0u);
  EXPECT_EQ(RunLinearizabilityTrial(SystemKind::kCr, 2), 0u);
}

TEST(Baselines, CraqIsLinearizable) {
  EXPECT_EQ(RunLinearizabilityTrial(SystemKind::kCraq, 3), 0u);
  EXPECT_EQ(RunLinearizabilityTrial(SystemKind::kCraq, 4), 0u);
}

TEST(Baselines, CraqIssuesVersionQueriesUnderWriteLoad) {
  ClusterOptions opts = BaselineOpts(SystemKind::kCraq, 5);
  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/30, /*value_size=*/64);  // hot keys, many writes
  run.warmup = 100 * kMillisecond;
  run.measure = 1 * kSecond;
  RunWorkload(&cluster, run);
  uint64_t queries = 0;
  for (uint32_t i = 0; i < opts.servers_per_dc; ++i) {
    queries += cluster.craq_node(i)->version_queries();
  }
  EXPECT_GT(queries, 0u) << "dirty reads should trigger apportioned queries";
}

TEST(Baselines, CraqDistributesReads) {
  ClusterOptions opts = BaselineOpts(SystemKind::kCraq, 6);
  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::C(/*records=*/200, /*value_size=*/64);
  run.warmup = 100 * kMillisecond;
  run.measure = 1 * kSecond;
  RunWorkload(&cluster, run);
  const auto by_pos = cluster.ReadsByPosition();
  ASSERT_GE(by_pos.size(), 3u);
  EXPECT_GT(by_pos[0], 0u);
  EXPECT_GT(by_pos[1], 0u);
  EXPECT_GT(by_pos[2], 0u);
}

TEST(Baselines, EventualConvergesAfterQuiescence) {
  ClusterOptions opts = BaselineOpts(SystemKind::kEventualOne, 7);
  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/100, /*value_size=*/32);
  run.warmup = 100 * kMillisecond;
  run.measure = 1 * kSecond;
  RunWorkload(&cluster, run);  // RunWorkload drains the simulation

  // Every replica of every key holds the same version.
  std::map<Key, std::map<std::string, int>> versions_seen;
  for (uint32_t i = 0; i < opts.servers_per_dc; ++i) {
    EventualNode* node = cluster.ev_node(i);
    for (uint64_t k = 0; k < 100; ++k) {
      const Key key = RecordKey(k);
      if (!node->IsReplicaOf(key)) {
        continue;
      }
      Version v;
      const Value* value = node->Lookup(key, &v);
      if (value != nullptr) {
        versions_seen[key][v.ToString()]++;
      }
    }
  }
  for (const auto& [key, versions] : versions_seen) {
    EXPECT_EQ(versions.size(), 1u) << "key " << key << " diverged";
  }
}

TEST(Baselines, EventualAdmitsStaleReads) {
  // R=1/W=1: a read racing its own write's replication can be stale. This
  // documents the baseline's weakness (and validates that the comparison
  // in the paper's evaluation is meaningful).
  ClusterOptions opts = BaselineOpts(SystemKind::kEventualOne, 8);
  opts.clients_per_dc = 1;
  // Huge latency variance: replication to the other replicas can lag far
  // behind the ack + read round trip, exposing stale reads.
  opts.net.intra_site = LinkModel{100, 3000};
  Cluster cluster(opts);
  KvClient* kv = cluster.client(0);

  int stale = 0;
  int iterations = 200;
  std::function<void(int)> loop = [&](int i) {
    if (i >= iterations) {
      return;
    }
    const Value expect = "val-" + std::to_string(i);
    kv->Put("stale-key", expect, [&, i, expect](const KvPutResult&) {
      kv->Get("stale-key", [&, i, expect](const KvGetResult& r) {
        if (!r.found || r.value != expect) {
          stale++;
        }
        loop(i + 1);
      });
    });
  };
  loop(0);
  cluster.sim()->Run();
  EXPECT_GT(stale, 0) << "R1W1 should exhibit stale read-your-writes";
}

TEST(Baselines, QuorumGivesReadYourWrites) {
  ClusterOptions opts = BaselineOpts(SystemKind::kQuorum, 9);
  opts.clients_per_dc = 1;
  opts.net.intra_site = LinkModel{300, 100};
  Cluster cluster(opts);
  KvClient* kv = cluster.client(0);

  int stale = 0;
  std::function<void(int)> loop = [&](int i) {
    if (i >= 200) {
      return;
    }
    const Value expect = "val-" + std::to_string(i);
    kv->Put("q-key", expect, [&, expect, i](const KvPutResult&) {
      kv->Get("q-key", [&, expect, i](const KvGetResult& r) {
        if (!r.found || r.value != expect) {
          stale++;
        }
        loop(i + 1);
      });
    });
  };
  loop(0);
  cluster.sim()->Run();
  EXPECT_EQ(stale, 0) << "majority quorums must overlap";
}

TEST(Baselines, QuorumReadRepairsStaleReplicas) {
  ClusterOptions opts = BaselineOpts(SystemKind::kQuorum, 10);
  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/50, /*value_size=*/32);
  run.warmup = 100 * kMillisecond;
  run.measure = 1 * kSecond;
  RunWorkload(&cluster, run);
  uint64_t repairs = 0;
  for (uint32_t i = 0; i < opts.servers_per_dc; ++i) {
    repairs += cluster.ev_node(i)->read_repairs();
  }
  // Quorum writes ack before all replicas apply, so some reads observe
  // laggards and repair them.
  EXPECT_GT(repairs, 0u);
}

TEST(Baselines, CrReadsOnlyAtTail) {
  ClusterOptions opts = BaselineOpts(SystemKind::kCr, 11);
  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::C(/*records=*/100, /*value_size=*/32);
  run.warmup = 100 * kMillisecond;
  run.measure = 1 * kSecond;
  RunWorkload(&cluster, run);
  // CR exposes no per-position counter; instead verify that total reads
  // served equals reads issued (all answered) — and that CR answered them
  // at tails by construction (clients address tails directly).
  uint64_t served = 0;
  for (uint32_t i = 0; i < opts.servers_per_dc; ++i) {
    served += cluster.cr_node(i)->reads_served();
  }
  EXPECT_GT(served, 0u);
}

}  // namespace
}  // namespace chainreaction

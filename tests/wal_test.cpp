// Segmented write-ahead log: append/replay round trips, group-commit fsync
// accounting, segment rotation and checkpoint-coordinated truncation, and
// the corruption taxonomy (torn tail recoverable, everything else fatal).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/storage/checkpoint.h"
#include "src/storage/versioned_store.h"
#include "src/wal/wal.h"

namespace chainreaction {
namespace {

Version V(uint64_t lamport, DcId origin, std::initializer_list<uint64_t> vv) {
  Version v;
  v.lamport = lamport;
  v.origin = origin;
  v.vv = VersionVector(vv.size());
  size_t i = 0;
  for (uint64_t c : vv) {
    v.vv.Set(static_cast<DcId>(i++), c);
  }
  return v;
}

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    dir_ = ::testing::TempDir() + "crx_wal_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  ~WalTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  // Synchronous options: no background flusher, deterministic fsyncs.
  static WalOptions Opts(FsyncPolicy policy, uint32_t batch = 4) {
    WalOptions o;
    o.policy = policy;
    o.batch_max_records = batch;
    o.start_flusher_thread = false;
    return o;
  }

  std::vector<WalRecord> ReplayAll(uint64_t min_seq = 0, WalReplayStats* stats = nullptr,
                                   Status* status = nullptr) {
    std::vector<WalRecord> records;
    const Status s = Wal::Replay(
        dir_, min_seq, [&records](const WalRecord& r) { records.push_back(r); }, stats);
    if (status != nullptr) {
      *status = s;
    } else {
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    return records;
  }

  std::string SegmentPath(uint64_t seq) const { return dir_ + "/" + Wal::SegmentFileName(seq); }

  std::string dir_;
};

TEST_F(WalTest, AppendReplayRoundTrip) {
  {
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Apply("a", "va", V(1, 0, {1, 0}),
                                             {Dependency{"z", V(9, 1, {0, 3}), true}}))
                    .ok());
    ASSERT_TRUE(wal->Append(WalRecord::Stable("a", V(1, 0, {1, 0}))).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Apply("b", "vb", V(5, 1, {0, 1}), {})).ok());
  }

  WalReplayStats stats;
  const std::vector<WalRecord> records = ReplayAll(0, &stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_FALSE(stats.tail_truncated);

  EXPECT_EQ(records[0].type, WalRecordType::kApply);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[0].value, "va");
  EXPECT_TRUE(records[0].version == V(1, 0, {1, 0}));
  ASSERT_EQ(records[0].deps.size(), 1u);
  EXPECT_EQ(records[0].deps[0].key, "z");
  EXPECT_TRUE(records[0].deps[0].local_stable);

  EXPECT_EQ(records[1].type, WalRecordType::kStable);
  EXPECT_EQ(records[1].key, "a");
  EXPECT_TRUE(records[1].value.empty());

  EXPECT_EQ(records[2].type, WalRecordType::kApply);
  EXPECT_EQ(records[2].key, "b");
}

TEST_F(WalTest, EmptyLogReplaysToNothing) {
  {
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kNone), &wal).ok());
  }
  WalReplayStats stats;
  EXPECT_TRUE(ReplayAll(0, &stats).empty());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.segments_replayed, 1u);  // the header-only active segment
}

TEST_F(WalTest, MissingDirIsNotFound) {
  Status status;
  ReplayAll(0, nullptr, &status);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(WalTest, GroupCommitFsyncsPerBatchNotPerAppend) {
  std::unique_ptr<Wal> wal;
  ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kBatch, /*batch=*/8), &wal).ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        wal->Append(WalRecord::Apply("k" + std::to_string(i), "v",
                                     V(static_cast<uint64_t>(i + 1), 0,
                                       {static_cast<uint64_t>(i + 1)}),
                                     {}))
            .ok());
  }
  EXPECT_EQ(wal->appends(), 32u);
  EXPECT_EQ(wal->fsyncs(), 4u);  // 32 appends / batch of 8

  // always-mode: one fsync per append.
  std::unique_ptr<Wal> always;
  const std::string dir2 = dir_ + "-always";
  ASSERT_TRUE(Wal::Open(dir2, Opts(FsyncPolicy::kAlways), &always).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(always->Append(WalRecord::Stable("k", V(1, 0, {1}))).ok());
  }
  EXPECT_EQ(always->fsyncs(), 5u);
  always.reset();
  std::error_code ec;
  std::filesystem::remove_all(dir2, ec);

  // none-mode: zero fsyncs ever.
  wal.reset();
  std::unique_ptr<Wal> none;
  ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kNone), &none).ok());
  ASSERT_TRUE(none->Append(WalRecord::Stable("k", V(1, 0, {1}))).ok());
  EXPECT_EQ(none->fsyncs(), 0u);
}

TEST_F(WalTest, AbandonPendingDropsUnflushedBatch) {
  std::unique_ptr<Wal> wal;
  ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kBatch, /*batch=*/100), &wal).ok());
  // First 3 records flushed explicitly; the next 2 stay in the batch buffer.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal->Append(WalRecord::Stable("flushed", V(1, 0, {1}))).ok());
  }
  ASSERT_TRUE(wal->Flush().ok());
  ASSERT_TRUE(wal->Append(WalRecord::Stable("lost", V(2, 0, {2}))).ok());
  ASSERT_TRUE(wal->Append(WalRecord::Stable("lost", V(3, 0, {3}))).ok());
  wal->AbandonPending();  // crash: the un-flushed batch never hits the OS
  wal.reset();

  const std::vector<WalRecord> records = ReplayAll();
  ASSERT_EQ(records.size(), 3u);
  for (const WalRecord& r : records) {
    EXPECT_EQ(r.key, "flushed");
  }
}

TEST_F(WalTest, RotationAndTruncation) {
  std::unique_ptr<Wal> wal;
  ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
  ASSERT_TRUE(wal->Append(WalRecord::Stable("seg1", V(1, 0, {1}))).ok());
  const uint64_t floor1 = wal->Rotate();
  EXPECT_EQ(floor1, wal->active_seq());
  ASSERT_TRUE(wal->Append(WalRecord::Stable("seg2", V(2, 0, {2}))).ok());

  // Both segments replay before truncation; only the newer one after.
  EXPECT_EQ(ReplayAll().size(), 2u);
  wal->DeleteSegmentsBelow(floor1);
  const std::vector<WalRecord> records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "seg2");
}

TEST_F(WalTest, ReplayFloorSkipsCoveredSegments) {
  std::unique_ptr<Wal> wal;
  ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
  ASSERT_TRUE(wal->Append(WalRecord::Stable("old", V(1, 0, {1}))).ok());
  const uint64_t floor_seq = wal->Rotate();
  ASSERT_TRUE(wal->Append(WalRecord::Stable("new", V(2, 0, {2}))).ok());
  wal.reset();

  // A checkpoint taken at the rotation covers everything below floor_seq:
  // replay from the floor sees only the tail.
  WalReplayStats stats;
  const std::vector<WalRecord> records = ReplayAll(floor_seq, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "new");
  EXPECT_EQ(stats.segments_skipped, 1u);
}

TEST_F(WalTest, SegmentRotatesAtSizeLimit) {
  WalOptions opts = Opts(FsyncPolicy::kNone);
  opts.segment_bytes = 256;  // tiny, to force rotation
  std::unique_ptr<Wal> wal;
  ASSERT_TRUE(Wal::Open(dir_, opts, &wal).ok());
  const uint64_t first = wal->active_seq();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(wal->Append(WalRecord::Apply("key", std::string(64, 'x'),
                                             V(static_cast<uint64_t>(i + 1), 0,
                                               {static_cast<uint64_t>(i + 1)}),
                                             {}))
                    .ok());
  }
  EXPECT_GT(wal->active_seq(), first);
  wal.reset();
  EXPECT_EQ(ReplayAll().size(), 32u);  // nothing lost across rotations
}

TEST_F(WalTest, TornTailTruncatedNotFatal) {
  {
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Stable("good", V(1, 0, {1}))).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Apply("torn", std::string(100, 'y'), V(2, 0, {2}), {}))
                    .ok());
  }
  // Chop the final record in half: a crash mid-append.
  const std::string path = SegmentPath(Wal::NewestSegmentSeq(dir_));
  const auto size = std::filesystem::file_size(path);
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(size - 60)), 0);

  WalReplayStats stats;
  const std::vector<WalRecord> records = ReplayAll(0, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "good");
  EXPECT_TRUE(stats.tail_truncated);

  // The torn bytes are gone from disk: a second replay is clean.
  WalReplayStats again;
  ReplayAll(0, &again);
  EXPECT_FALSE(again.tail_truncated);
  EXPECT_EQ(again.records, 1u);
}

TEST_F(WalTest, TruncationMidLogIsCorruption) {
  std::unique_ptr<Wal> wal;
  ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
  ASSERT_TRUE(wal->Append(WalRecord::Stable("one", V(1, 0, {1}))).ok());
  const uint64_t old_seq = wal->active_seq();
  wal->Rotate();
  ASSERT_TRUE(wal->Append(WalRecord::Stable("two", V(2, 0, {2}))).ok());
  wal.reset();

  // Truncating an OLDER segment is not a torn tail — bytes vanished from
  // the middle of the log.
  const std::string path = SegmentPath(old_seq);
  const auto size = std::filesystem::file_size(path);
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(size - 3)), 0);

  Status status;
  ReplayAll(0, nullptr, &status);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
}

TEST_F(WalTest, BitFlipIsCorruption) {
  {
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Apply("k", "payload-payload", V(1, 0, {1}), {})).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Stable("k", V(1, 0, {1}))).ok());
  }
  // Flip a bit inside the first record's payload (not the tail record, so
  // torn-tail handling cannot paper over it).
  const std::string path = SegmentPath(Wal::NewestSegmentSeq(dir_));
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16 + 12 + 4, SEEK_SET);  // segment header + record frame + a bit in
  const int c = std::fgetc(f);
  std::fseek(f, 16 + 12 + 4, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  Status status;
  ReplayAll(0, nullptr, &status);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  EXPECT_NE(status.ToString().find("checksum"), std::string::npos);
}

TEST_F(WalTest, CheckpointNewerThanLogReplaysNothing) {
  // A checkpoint can cover WAL segments that were then truncated, leaving a
  // floor above every surviving segment: replay must be an empty no-op, and
  // recovery must rely on the checkpoint alone.
  std::unique_ptr<Wal> wal;
  ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
  VersionedStore store;
  store.Apply("k", "v", V(1, 0, {1}));
  ASSERT_TRUE(wal->Append(WalRecord::Apply("k", "v", V(1, 0, {1}), {})).ok());

  const uint64_t floor_seq = wal->Rotate();
  const std::string ckpt = dir_ + "/checkpoint.crx";
  ASSERT_TRUE(SaveCheckpoint(store, ckpt, floor_seq).ok());
  wal->DeleteSegmentsBelow(floor_seq);
  wal.reset();

  VersionedStore restored;
  uint64_t restored_floor = 0;
  ASSERT_TRUE(LoadCheckpoint(ckpt, &restored, &restored_floor).ok());
  EXPECT_EQ(restored_floor, floor_seq);

  WalReplayStats stats;
  const std::vector<WalRecord> records = ReplayAll(restored_floor, &stats);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(restored.Latest("k")->value, "v");
}

TEST_F(WalTest, ReopenAppendsNewSegment) {
  {
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Stable("first-run", V(1, 0, {1}))).ok());
  }
  uint64_t first_newest = Wal::NewestSegmentSeq(dir_);
  {
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(Wal::Open(dir_, Opts(FsyncPolicy::kAlways), &wal).ok());
    EXPECT_GT(wal->active_seq(), first_newest);
    ASSERT_TRUE(wal->Append(WalRecord::Stable("second-run", V(2, 0, {2}))).ok());
  }
  const std::vector<WalRecord> records = ReplayAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "first-run");
  EXPECT_EQ(records[1].key, "second-run");
}

}  // namespace
}  // namespace chainreaction

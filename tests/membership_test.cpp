// Membership service and chain-repair mechanics.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/msg/message.h"
#include "src/ring/membership.h"
#include "src/sim/network.h"

namespace chainreaction {
namespace {

class RecordingActor : public Actor {
 public:
  void OnMessage(Address, const std::string& payload) override {
    MemNewMembership m;
    if (DecodeMessage(payload, &m)) {
      epochs.push_back(m.epoch);
      last_nodes = m.nodes;
    }
  }
  std::vector<uint64_t> epochs;
  std::vector<NodeId> last_nodes;
};

TEST(Membership, RemoveBroadcastsNewEpochToNodesAndListeners) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{{10, 0}, {100, 0}, 0.0}, 1);

  MembershipService service({1, 2, 3, 4, 5}, 8, 3);
  service.AttachEnv(net.Register(100, &service, 0));

  RecordingActor nodes[5];
  for (NodeId n = 1; n <= 5; ++n) {
    net.Register(n, &nodes[n - 1], 0);
  }
  RecordingActor listener;
  net.Register(200, &listener, 0);
  service.AddListener(200);

  EXPECT_EQ(service.epoch(), 1u);
  service.RemoveNode(3);
  sim.Run();

  EXPECT_EQ(service.epoch(), 2u);
  for (NodeId n : {1u, 2u, 4u, 5u}) {
    ASSERT_EQ(nodes[n - 1].epochs.size(), 1u) << "node " << n;
    EXPECT_EQ(nodes[n - 1].epochs[0], 2u);
  }
  // The removed node is not told (it is presumed dead).
  EXPECT_TRUE(nodes[2].epochs.empty());
  ASSERT_EQ(listener.epochs.size(), 1u);
  EXPECT_EQ(listener.last_nodes, (std::vector<NodeId>{1, 2, 4, 5}));
}

TEST(Membership, AddNodeRejoins) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{{10, 0}, {100, 0}, 0.0}, 1);
  MembershipService service({1, 2, 3}, 8, 2);
  service.AttachEnv(net.Register(100, &service, 0));
  RecordingActor a;
  for (NodeId n = 1; n <= 4; ++n) {
    net.Register(n, n == 4 ? &a : new RecordingActor(), 0);  // others leak (test scope)
  }
  service.AddNode(4);
  sim.Run();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_TRUE(service.ring().Contains(4));
  ASSERT_FALSE(a.epochs.empty());
}

TEST(Membership, RemoveUnknownNodeIsNoop) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{{10, 0}, {100, 0}, 0.0}, 1);
  MembershipService service({1, 2, 3}, 8, 2);
  service.AttachEnv(net.Register(100, &service, 0));
  service.RemoveNode(99);
  EXPECT_EQ(service.epoch(), 1u);
}

TEST(Repair, StaleEpochChainPutsDropped) {
  // A chain put sent under epoch 1 that arrives after a reconfiguration
  // must be ignored (the new head re-propagates under the new epoch).
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  Cluster cluster(opts);

  // Establish data, then reconfigure.
  bool done = false;
  cluster.crx_client(0)->Put("epoch-key", "v", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  cluster.KillServer(0, 7);
  cluster.sim()->Run();

  // Inject a stale-epoch chain put at some live node: it must not apply.
  const Ring& ring = cluster.membership(0)->ring();
  const NodeId victim = ring.ChainFor("epoch-key")[1];
  CrxChainPut stale;
  stale.key = "epoch-key";
  stale.value = "STALE";
  stale.version = Version{};
  stale.version.vv = VersionVector(1);
  stale.version.vv.Set(0, 99);
  stale.version.lamport = 1;  // LWW-oldest: even if applied it would not win
  stale.epoch = 1;            // pre-reconfiguration epoch
  // Find the node object to address it through a raw registered sender.
  class Sender : public Actor {
   public:
    void OnMessage(Address, const std::string&) override {}
  } sender;
  Env* env = cluster.net()->Register(kClientAddressBase + 500, &sender, 0);
  env->Send(victim, EncodeMessage(stale));
  cluster.sim()->Run();

  bool read_done = false;
  cluster.crx_client(0)->Get("epoch-key", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, "v");
    read_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(read_done);
}

TEST(Repair, ClientsLearnNewRing) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 2;
  Cluster cluster(opts);
  cluster.Preload(50, 32);

  cluster.KillServer(0, 0);
  cluster.sim()->Run();

  // All subsequent operations complete without the crashed node (if a
  // client still addressed it, the message would be dropped and the op
  // would only complete via timeout retries; with the membership update it
  // completes at normal latency).
  for (int i = 0; i < 50; ++i) {
    const Time start = cluster.sim()->Now();
    bool done = false;
    cluster.crx_client(1)->Get(RecordKey(i), [&](const auto& r) {
      EXPECT_TRUE(r.found);
      done = true;
    });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
    EXPECT_LT(cluster.sim()->Now() - start, 100 * kMillisecond) << "op used timeout retries";
  }
  EXPECT_EQ(cluster.crx_client(1)->retries(), 0u);
}

TEST(Repair, SurvivesDownToReplicationFloor) {
  // Keep killing nodes until only R remain; every acked write stays
  // readable throughout.
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 1;
  opts.replication = 3;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  for (int i = 0; i < 20; ++i) {
    bool done = false;
    client->Put("floor-" + std::to_string(i), "v", [&](const auto&) { done = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }

  for (uint32_t victim = 0; victim < 3; ++victim) {
    cluster.KillServer(0, victim);
    cluster.sim()->Run();
    for (int i = 0; i < 20; ++i) {
      bool found = false;
      client->Get("floor-" + std::to_string(i),
                  [&](const ChainReactionClient::GetResult& r) { found = r.found; });
      cluster.sim()->Run();
      EXPECT_TRUE(found) << "key " << i << " lost after killing " << victim + 1 << " nodes";
    }
  }
}

}  // namespace
}  // namespace chainreaction

// Membership service and chain-repair mechanics.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "src/msg/message.h"
#include "src/ring/membership.h"
#include "src/sim/network.h"

namespace chainreaction {
namespace {

class RecordingActor : public Actor {
 public:
  void OnMessage(Address, std::string_view payload) override {
    MemNewMembership m;
    if (DecodeMessage(payload, &m)) {
      epochs.push_back(m.epoch);
      last_nodes = m.nodes;
    }
  }
  std::vector<uint64_t> epochs;
  std::vector<NodeId> last_nodes;
};

TEST(Membership, RemoveBroadcastsNewEpochToNodesAndListeners) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{{10, 0}, {100, 0}, 0.0}, 1);

  MembershipService service({1, 2, 3, 4, 5}, 8, 3);
  service.AttachEnv(net.Register(100, &service, 0));

  RecordingActor nodes[5];
  for (NodeId n = 1; n <= 5; ++n) {
    net.Register(n, &nodes[n - 1], 0);
  }
  RecordingActor listener;
  net.Register(200, &listener, 0);
  service.AddListener(200);

  EXPECT_EQ(service.epoch(), 1u);
  service.RemoveNode(3);
  sim.Run();

  EXPECT_EQ(service.epoch(), 2u);
  for (NodeId n : {1u, 2u, 4u, 5u}) {
    ASSERT_EQ(nodes[n - 1].epochs.size(), 1u) << "node " << n;
    EXPECT_EQ(nodes[n - 1].epochs[0], 2u);
  }
  // The removed node gets exactly one farewell copy: a live-drained node
  // must learn the flip to hand off its unstable head keys (a node removed
  // because it crashed simply never receives it).
  ASSERT_EQ(nodes[2].epochs.size(), 1u);
  EXPECT_EQ(nodes[2].epochs[0], 2u);
  ASSERT_EQ(listener.epochs.size(), 1u);
  EXPECT_EQ(listener.last_nodes, (std::vector<NodeId>{1, 2, 4, 5}));
}

TEST(Membership, AddNodeRejoins) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{{10, 0}, {100, 0}, 0.0}, 1);
  MembershipService service({1, 2, 3}, 8, 2);
  service.AttachEnv(net.Register(100, &service, 0));
  RecordingActor a;
  for (NodeId n = 1; n <= 4; ++n) {
    net.Register(n, n == 4 ? &a : new RecordingActor(), 0);  // others leak (test scope)
  }
  service.AddNode(4);
  sim.Run();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_TRUE(service.ring().Contains(4));
  ASSERT_FALSE(a.epochs.empty());
}

TEST(Membership, RemoveUnknownNodeIsNoop) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{{10, 0}, {100, 0}, 0.0}, 1);
  MembershipService service({1, 2, 3}, 8, 2);
  service.AttachEnv(net.Register(100, &service, 0));
  service.RemoveNode(99);
  EXPECT_EQ(service.epoch(), 1u);
}

TEST(Repair, StaleEpochChainPutsDropped) {
  // A chain put sent under epoch 1 that arrives after a reconfiguration
  // must be ignored (the new head re-propagates under the new epoch).
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  Cluster cluster(opts);

  // Establish data, then reconfigure.
  bool done = false;
  cluster.crx_client(0)->Put("epoch-key", "v", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  cluster.KillServer(0, 7);
  cluster.sim()->Run();

  // Inject a stale-epoch chain put at some live node: it must not apply.
  const Ring& ring = cluster.membership(0)->ring();
  const NodeId victim = ring.ChainFor("epoch-key")[1];
  CrxChainPut stale;
  stale.key = "epoch-key";
  stale.value = "STALE";
  stale.version = Version{};
  stale.version.vv = VersionVector(1);
  stale.version.vv.Set(0, 99);
  stale.version.lamport = 1;  // LWW-oldest: even if applied it would not win
  stale.epoch = 1;            // pre-reconfiguration epoch
  // Find the node object to address it through a raw registered sender.
  class Sender : public Actor {
   public:
    void OnMessage(Address, std::string_view) override {}
  } sender;
  Env* env = cluster.net()->Register(kClientAddressBase + 500, &sender, 0);
  env->Send(victim, EncodeMessage(stale));
  cluster.sim()->Run();

  bool read_done = false;
  cluster.crx_client(0)->Get("epoch-key", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, "v");
    read_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(read_done);
}

TEST(Repair, ClientsLearnNewRing) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 2;
  Cluster cluster(opts);
  cluster.Preload(50, 32);

  cluster.KillServer(0, 0);
  cluster.sim()->Run();

  // All subsequent operations complete without the crashed node (if a
  // client still addressed it, the message would be dropped and the op
  // would only complete via timeout retries; with the membership update it
  // completes at normal latency).
  for (int i = 0; i < 50; ++i) {
    const Time start = cluster.sim()->Now();
    bool done = false;
    cluster.crx_client(1)->Get(RecordKey(i), [&](const auto& r) {
      EXPECT_TRUE(r.found);
      done = true;
    });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
    EXPECT_LT(cluster.sim()->Now() - start, 100 * kMillisecond) << "op used timeout retries";
  }
  EXPECT_EQ(cluster.crx_client(1)->retries(), 0u);
}

// Failure-detection / broadcast tuning knobs (CrxConfig fd_sweep_interval,
// fd_timeout, membership_rebroadcast_interval), one test per knob.

TEST(FailureKnobs, FdTimeoutKnobExtendsGrace) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  opts.heartbeat_interval = 50 * kMillisecond;
  opts.fd_timeout = 2 * kSecond;  // default would be 4x50ms = 200ms
  Cluster cluster(opts);

  cluster.net()->Crash(cluster.ServerAddress(0, 2));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 1 * kSecond);
  // Default timeout would have evicted the node ~4 sweeps in; the knob says
  // tolerate 2s of silence.
  EXPECT_EQ(cluster.membership(0)->failures_detected(), 0u);
  cluster.sim()->RunUntil(cluster.sim()->Now() + 2 * kSecond);
  EXPECT_EQ(cluster.membership(0)->failures_detected(), 1u);
}

TEST(FailureKnobs, FdSweepIntervalKnobSetsDetectionCadence) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  opts.heartbeat_interval = 50 * kMillisecond;
  opts.fd_sweep_interval = 1 * kSecond;  // default would sweep every 50ms
  Cluster cluster(opts);

  cluster.net()->Crash(cluster.ServerAddress(0, 2));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  // The silence already exceeds the (default 200ms) timeout, but no sweep
  // has run yet.
  EXPECT_EQ(cluster.membership(0)->failures_detected(), 0u);
  cluster.sim()->RunUntil(cluster.sim()->Now() + 700 * kMillisecond);
  EXPECT_EQ(cluster.membership(0)->failures_detected(), 1u);
}

TEST(FailureKnobs, RebroadcastKnobRefreshesListeners) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  opts.heartbeat_interval = 50 * kMillisecond;
  opts.membership_rebroadcast_interval = 100 * kMillisecond;
  Cluster cluster(opts);

  // A listener registered *after* construction never saw an announcement;
  // only the periodic rebroadcast can teach it the current ring.
  RecordingActor late;
  cluster.net()->Register(kClientAddressBase + 900, &late, 0);
  cluster.membership(0)->AddListener(kClientAddressBase + 900);

  cluster.sim()->RunUntil(cluster.sim()->Now() + 1 * kSecond);
  EXPECT_GE(cluster.membership(0)->rebroadcasts(), 8u);
  ASSERT_FALSE(late.epochs.empty());
  EXPECT_EQ(late.epochs.back(), 1u);  // no topology change, same epoch
  EXPECT_EQ(late.last_nodes.size(), 8u);
}

TEST(Repair, SurvivesDownToReplicationFloor) {
  // Keep killing nodes until only R remain; every acked write stays
  // readable throughout.
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 1;
  opts.replication = 3;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  for (int i = 0; i < 20; ++i) {
    bool done = false;
    client->Put("floor-" + std::to_string(i), "v", [&](const auto&) { done = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }

  for (uint32_t victim = 0; victim < 3; ++victim) {
    cluster.KillServer(0, victim);
    cluster.sim()->Run();
    for (int i = 0; i < 20; ++i) {
      bool found = false;
      client->Get("floor-" + std::to_string(i),
                  [&](const ChainReactionClient::GetResult& r) { found = r.found; });
      cluster.sim()->Run();
      EXPECT_TRUE(found) << "key " << i << " lost after killing " << victim + 1 << " nodes";
    }
  }
}

}  // namespace
}  // namespace chainreaction

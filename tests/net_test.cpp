// TCP transport tests: the same ChainReaction actors that run on the
// simulator are deployed across several TcpRuntimes (one per modeled
// process) on loopback sockets, and must behave identically.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/chainreaction_client.h"
#include "src/core/chainreaction_node.h"
#include "src/net/address_book.h"
#include "src/net/sync_client.h"
#include "src/net/tcp_runtime.h"
#include "src/ring/ring.h"

namespace chainreaction {
namespace {

// A little TCP deployment: N single-node server "processes" + 1 client
// process, all over loopback.
class TcpClusterFixture {
 public:
  explicit TcpClusterFixture(uint32_t num_nodes, uint32_t replication = 3) {
    std::vector<NodeId> ids;
    for (NodeId n = 0; n < num_nodes; ++n) {
      ids.push_back(n);
    }
    const Ring ring(ids, 16, replication, 1);

    CrxConfig cfg;
    cfg.replication = replication;
    cfg.k_stability = 2 <= replication ? 2 : 1;
    cfg.num_dcs = 1;
    cfg.client_timeout = 2 * kSecond;

    for (NodeId n = 0; n < num_nodes; ++n) {
      auto runtime = std::make_unique<TcpRuntime>(&book_);
      auto node = std::make_unique<ChainReactionNode>(n, cfg, ring);
      node->AttachEnv(runtime->Register(n, node.get()));
      nodes_.push_back(std::move(node));
      runtimes_.push_back(std::move(runtime));
    }

    client_runtime_ = std::make_unique<TcpRuntime>(&book_);
    client_ = std::make_unique<ChainReactionClient>(kClientAddressBase, cfg, ring, 42);
    client_->AttachEnv(client_runtime_->Register(kClientAddressBase, client_.get()));

    for (auto& rt : runtimes_) {
      rt->Start();
    }
    client_runtime_->Start();
  }

  ~TcpClusterFixture() {
    client_runtime_->Stop();
    for (auto& rt : runtimes_) {
      rt->Stop();
    }
  }

  SyncClient MakeSyncClient() { return SyncClient(client_.get(), client_runtime_.get()); }

  uint64_t TotalFrames() const {
    uint64_t total = client_runtime_->frames_sent();
    for (const auto& rt : runtimes_) {
      total += rt->frames_sent();
    }
    return total;
  }

 private:
  AddressBook book_;
  std::vector<std::unique_ptr<TcpRuntime>> runtimes_;
  std::vector<std::unique_ptr<ChainReactionNode>> nodes_;
  std::unique_ptr<TcpRuntime> client_runtime_;
  std::unique_ptr<ChainReactionClient> client_;
};

TEST(TcpTransport, PutGetRoundTrip) {
  TcpClusterFixture cluster(5);
  SyncClient client = cluster.MakeSyncClient();

  const auto put = client.Put("tcp-key", "tcp-value");
  ASSERT_TRUE(put.status.ok());
  EXPECT_EQ(put.version.vv.Get(0), 1u);

  const auto get = client.Get("tcp-key");
  ASSERT_TRUE(get.status.ok());
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "tcp-value");
  EXPECT_TRUE(get.version == put.version);

  EXPECT_GT(cluster.TotalFrames(), 0u) << "operations must traverse real sockets";
}

TEST(TcpTransport, MissingKey) {
  TcpClusterFixture cluster(4);
  SyncClient client = cluster.MakeSyncClient();
  const auto get = client.Get("never-written");
  ASSERT_TRUE(get.status.ok());
  EXPECT_FALSE(get.found);
}

TEST(TcpTransport, ManySequentialOps) {
  TcpClusterFixture cluster(5);
  SyncClient client = cluster.MakeSyncClient();
  for (int i = 0; i < 60; ++i) {
    const Key key = "k-" + std::to_string(i % 7);
    const Value value = "v-" + std::to_string(i);
    ASSERT_TRUE(client.Put(key, value).status.ok());
    const auto get = client.Get(key);
    ASSERT_TRUE(get.found);
    EXPECT_EQ(get.value, value);
  }
}

TEST(TcpTransport, LargeValueFraming) {
  TcpClusterFixture cluster(4);
  SyncClient client = cluster.MakeSyncClient();
  // Large enough to exercise partial reads/writes through the 16 KiB
  // socket buffers and the outbox path.
  Value big(512 * 1024, 'x');
  for (size_t i = 0; i < big.size(); i += 4096) {
    big[i] = static_cast<char>('a' + (i / 4096) % 26);
  }
  ASSERT_TRUE(client.Put("big", big).status.ok());
  const auto get = client.Get("big");
  ASSERT_TRUE(get.found);
  EXPECT_EQ(get.value, big);
}

TEST(TcpTransport, VersionsMonotonePerKey) {
  TcpClusterFixture cluster(5);
  SyncClient client = cluster.MakeSyncClient();
  Version last;
  for (int i = 0; i < 10; ++i) {
    const auto put = client.Put("mono", "v" + std::to_string(i));
    ASSERT_TRUE(put.status.ok());
    if (i > 0) {
      EXPECT_TRUE(last.LwwLess(put.version));
      EXPECT_TRUE(put.version.CausallyIncludes(last));
    }
    last = put.version;
  }
}

TEST(TcpTransport, ReplicationOneSingleProcess) {
  TcpClusterFixture cluster(2, /*replication=*/1);
  SyncClient client = cluster.MakeSyncClient();
  ASSERT_TRUE(client.Put("solo", "v").status.ok());
  const auto get = client.Get("solo");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "v");
}

}  // namespace
}  // namespace chainreaction

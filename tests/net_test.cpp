// TCP transport tests: the same ChainReaction actors that run on the
// simulator are deployed across several TcpRuntimes (one per modeled
// process) on loopback sockets, and must behave identically.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include <chrono>
#include <thread>

#include "src/core/chainreaction_client.h"
#include "src/core/chainreaction_node.h"
#include "src/net/address_book.h"
#include "src/net/sync_client.h"
#include "src/net/tcp_cluster.h"
#include "src/net/tcp_runtime.h"
#include "src/ring/ring.h"

namespace chainreaction {
namespace {

// A little TCP deployment: N single-node server "processes" + 1 client
// process, all over loopback.
class TcpClusterFixture {
 public:
  explicit TcpClusterFixture(uint32_t num_nodes, uint32_t replication = 3) {
    std::vector<NodeId> ids;
    for (NodeId n = 0; n < num_nodes; ++n) {
      ids.push_back(n);
    }
    const Ring ring(ids, 16, replication, 1);

    CrxConfig cfg;
    cfg.replication = replication;
    cfg.k_stability = 2 <= replication ? 2 : 1;
    cfg.num_dcs = 1;
    cfg.client_timeout = 2 * kSecond;

    for (NodeId n = 0; n < num_nodes; ++n) {
      auto runtime = std::make_unique<TcpRuntime>(&book_);
      auto node = std::make_unique<ChainReactionNode>(n, cfg, ring);
      node->AttachEnv(runtime->Register(n, node.get()));
      nodes_.push_back(std::move(node));
      runtimes_.push_back(std::move(runtime));
    }

    client_runtime_ = std::make_unique<TcpRuntime>(&book_);
    client_ = std::make_unique<ChainReactionClient>(kClientAddressBase, cfg, ring, 42);
    client_->AttachEnv(client_runtime_->Register(kClientAddressBase, client_.get()));

    for (auto& rt : runtimes_) {
      rt->Start();
    }
    client_runtime_->Start();
  }

  ~TcpClusterFixture() {
    client_runtime_->Stop();
    for (auto& rt : runtimes_) {
      rt->Stop();
    }
  }

  SyncClient MakeSyncClient() { return SyncClient(client_.get(), client_runtime_.get()); }

  uint64_t TotalFrames() const {
    uint64_t total = client_runtime_->frames_sent();
    for (const auto& rt : runtimes_) {
      total += rt->frames_sent();
    }
    return total;
  }

 private:
  AddressBook book_;
  std::vector<std::unique_ptr<TcpRuntime>> runtimes_;
  std::vector<std::unique_ptr<ChainReactionNode>> nodes_;
  std::unique_ptr<TcpRuntime> client_runtime_;
  std::unique_ptr<ChainReactionClient> client_;
};

TEST(TcpTransport, PutGetRoundTrip) {
  TcpClusterFixture cluster(5);
  SyncClient client = cluster.MakeSyncClient();

  const auto put = client.Put("tcp-key", "tcp-value");
  ASSERT_TRUE(put.status.ok());
  EXPECT_EQ(put.version.vv.Get(0), 1u);

  const auto get = client.Get("tcp-key");
  ASSERT_TRUE(get.status.ok());
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "tcp-value");
  EXPECT_TRUE(get.version == put.version);

  EXPECT_GT(cluster.TotalFrames(), 0u) << "operations must traverse real sockets";
}

TEST(TcpTransport, MissingKey) {
  TcpClusterFixture cluster(4);
  SyncClient client = cluster.MakeSyncClient();
  const auto get = client.Get("never-written");
  ASSERT_TRUE(get.status.ok());
  EXPECT_FALSE(get.found);
}

TEST(TcpTransport, ManySequentialOps) {
  TcpClusterFixture cluster(5);
  SyncClient client = cluster.MakeSyncClient();
  for (int i = 0; i < 60; ++i) {
    const Key key = "k-" + std::to_string(i % 7);
    const Value value = "v-" + std::to_string(i);
    ASSERT_TRUE(client.Put(key, value).status.ok());
    const auto get = client.Get(key);
    ASSERT_TRUE(get.found);
    EXPECT_EQ(get.value, value);
  }
}

TEST(TcpTransport, LargeValueFraming) {
  TcpClusterFixture cluster(4);
  SyncClient client = cluster.MakeSyncClient();
  // Large enough to exercise partial reads/writes through the 16 KiB
  // socket buffers and the outbox path.
  Value big(512 * 1024, 'x');
  for (size_t i = 0; i < big.size(); i += 4096) {
    big[i] = static_cast<char>('a' + (i / 4096) % 26);
  }
  ASSERT_TRUE(client.Put("big", big).status.ok());
  const auto get = client.Get("big");
  ASSERT_TRUE(get.found);
  EXPECT_EQ(get.value, big);
}

TEST(TcpTransport, VersionsMonotonePerKey) {
  TcpClusterFixture cluster(5);
  SyncClient client = cluster.MakeSyncClient();
  Version last;
  for (int i = 0; i < 10; ++i) {
    const auto put = client.Put("mono", "v" + std::to_string(i));
    ASSERT_TRUE(put.status.ok());
    if (i > 0) {
      EXPECT_TRUE(last.LwwLess(put.version));
      EXPECT_TRUE(put.version.CausallyIncludes(last));
    }
    last = put.version;
  }
}

TEST(TcpTransport, ReplicationOneSingleProcess) {
  TcpClusterFixture cluster(2, /*replication=*/1);
  SyncClient client = cluster.MakeSyncClient();
  ASSERT_TRUE(client.Put("solo", "v").status.ok());
  const auto get = client.Get("solo");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "v");
}

// Frame accounting must balance at quiescence: every frame one runtime put
// on a socket must come out of another runtime's parser — no torn, dropped,
// or duplicated frames through the coalesced writev path. Polls until the
// counters stop moving (stability notifications trail the last client ack).
TEST(TcpTransport, FrameIntegrityAcrossRuntimes) {
  TcpCluster::Options opts;
  opts.num_nodes = 5;
  opts.loop_threads = 2;
  opts.num_clients = 2;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  TcpCluster cluster(opts);

  TcpCluster::LoadOptions load;
  load.duration = 300 * kMillisecond;
  load.value_size = 64;
  load.key_space = 32;
  load.get_fraction = 0.3;
  load.pipeline = 4;
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  ASSERT_GT(result.ops, 0u);
  EXPECT_EQ(result.failures, 0u);

  const auto totals = [&] {
    const uint64_t sent =
        cluster.server_runtime()->frames_sent() + cluster.client_runtime()->frames_sent();
    const uint64_t received = cluster.server_runtime()->frames_received() +
                              cluster.client_runtime()->frames_received();
    return std::make_pair(sent, received);
  };
  auto last = totals();
  for (int i = 0; i < 500; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto now = totals();
    if (now == last && now.first == now.second) {
      break;
    }
    last = now;
  }
  const auto final_totals = totals();
  EXPECT_GT(final_totals.first, 0u);
  EXPECT_EQ(final_totals.first, final_totals.second)
      << "frames sent and received must balance at quiescence";
}

// Ring-segment shard assignment: every loop hosts at least one node, shard
// ids are valid, and nodes are split into contiguous ring-order blocks.
TEST(TcpTransportMultiLoop, ShardAssignmentCoversAllLoops) {
  std::vector<NodeId> ids;
  for (NodeId n = 0; n < 8; ++n) {
    ids.push_back(n);
  }
  const Ring ring(ids, 16, 3, 1);
  for (uint32_t loops : {1u, 2u, 4u}) {
    const auto shard_of = TcpCluster::AssignShardsByRingOrder(ring, 8, loops);
    ASSERT_EQ(shard_of.size(), 8u);
    std::vector<uint32_t> nodes_per_loop(loops, 0);
    for (uint32_t s : shard_of) {
      ASSERT_LT(s, loops);
      ++nodes_per_loop[s];
    }
    for (uint32_t l = 0; l < loops; ++l) {
      EXPECT_GT(nodes_per_loop[l], 0u) << "loops=" << loops << " loop=" << l;
    }
  }
}

// The protocol must behave identically when the node actors are spread
// across two event loops of one runtime: chains that span the loop
// boundary exercise the cross-loop post path (TSan covers this test).
TEST(TcpTransportMultiLoop, CrossLoopChainTraffic) {
  TcpCluster::Options opts;
  opts.num_nodes = 6;
  opts.loop_threads = 2;
  opts.num_clients = 1;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  TcpCluster cluster(opts);

  // The 3-replica chains over 6 nodes in 2 blocks necessarily include
  // chains spanning both loops.
  bool cross_loop = false;
  for (NodeId n = 0; n < 6; ++n) {
    if (cluster.shard_of_node(n) != cluster.shard_of_node(0)) {
      cross_loop = true;
    }
  }
  EXPECT_TRUE(cross_loop);

  SyncClient client(cluster.client(0), cluster.client_runtime());
  Version last;
  for (int i = 0; i < 40; ++i) {
    const Key key = "ml-" + std::to_string(i % 5);
    const Value value = "v-" + std::to_string(i);
    const auto put = client.Put(key, value);
    ASSERT_TRUE(put.status.ok()) << "op " << i;
    const auto get = client.Get(key);
    ASSERT_TRUE(get.status.ok());
    ASSERT_TRUE(get.found);
    EXPECT_EQ(get.value, value);
    if (i > 0) {
      EXPECT_TRUE(last.LwwLess(put.version)) << "versions must stay monotone per client";
    }
    last = put.version;
  }
}

// Same workload with pipelining + cumulative-ack batching on: ack batches
// must cover every outstanding put (no lost completions) and preserve
// per-key version monotonicity.
TEST(TcpTransportMultiLoop, PipelinedPutsWithAckBatching) {
  TcpCluster::Options opts;
  opts.num_nodes = 6;
  opts.loop_threads = 2;
  opts.num_clients = 2;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  opts.config.ack_batch_window = 100;  // microseconds
  TcpCluster cluster(opts);

  TcpCluster::LoadOptions load;
  load.duration = 300 * kMillisecond;
  load.value_size = 64;
  load.key_space = 16;
  load.get_fraction = 0.0;
  load.pipeline = 8;
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.failures, 0u) << "every pipelined put must be acked";
}

// Wire format v2 + watermark dependency compression over real sockets: the
// varint frames must survive the coalesced writev/parser path, and the
// activity-gated watermark gossip (a periodic timer broadcasting to every
// ring peer from whichever loop thread owns the node) must not race the
// protocol handlers (TSan covers this test). Behavior must match v1: zero
// failures, every value reads back.
TEST(TcpTransportMultiLoop, WireV2WatermarkUnderLoad) {
  TcpCluster::Options opts;
  opts.num_nodes = 6;
  opts.loop_threads = 2;
  opts.num_clients = 2;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  opts.config.wire_format = WireFormat::kV2;
  opts.config.dep_watermark = true;
  TcpCluster cluster(opts);

  TcpCluster::LoadOptions load;
  load.duration = 300 * kMillisecond;
  load.value_size = 64;
  load.key_space = 32;
  load.get_fraction = 0.3;
  load.pipeline = 4;
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.failures, 0u);

  SyncClient client(cluster.client(0), cluster.client_runtime());
  for (int i = 0; i < 20; ++i) {
    const Key key = "wm-" + std::to_string(i % 4);
    const Value value = "v2-" + std::to_string(i);
    const auto put = client.Put(key, value);
    ASSERT_TRUE(put.status.ok()) << "op " << i;
    const auto get = client.Get(key);
    ASSERT_TRUE(get.status.ok());
    ASSERT_TRUE(get.found);
    EXPECT_EQ(get.value, value);
  }
}

// Elastic membership over TCP: a brand-new node boots in its own runtime
// while closed-loop load runs, its ports enter the shared address book, the
// coordinator streams its key ranges and flips the epoch — all without
// restarting any existing runtime. Afterwards the newcomer must hold data
// and every key written before the join must still read back correctly.
TEST(TcpElastic, JoinUnderLoadWithoutRestart) {
  TcpCluster::Options opts;
  opts.num_nodes = 5;
  opts.loop_threads = 2;
  opts.num_clients = 2;
  opts.elastic = true;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  opts.config.heartbeat_interval = 0;  // no FD: loopback "processes" don't crash
  TcpCluster cluster(opts);

  // Seed a known data set before the topology changes.
  SyncClient seeder(cluster.client(0), cluster.client_runtime());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(seeder.Put("pre-" + std::to_string(i), "v" + std::to_string(i)).status.ok());
  }

  // Kick off background load, then join a 6th node mid-run.
  std::thread admin([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cluster.AddJoiningServer();
  });
  TcpCluster::LoadOptions load;
  load.duration = 600 * kMillisecond;
  load.value_size = 64;
  load.key_space = 64;
  load.get_fraction = 0.3;
  load.pipeline = 2;
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  admin.join();
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.failures, 0u) << "ops spanning the epoch flip must succeed";

  ASSERT_TRUE(cluster.WaitMigrationIdle());
  EXPECT_EQ(cluster.coordinator()->completed(), 1u);
  EXPECT_EQ(cluster.coordinator()->aborted(), 0u);
  EXPECT_EQ(cluster.coordinator()->observed_epoch(), 2u);
  ASSERT_EQ(cluster.num_nodes(), 6u);

  // The newcomer received migrated entries over real sockets.
  EXPECT_GT(cluster.node(5)->mig_entries_in(), 0u);
  EXPECT_GT(cluster.node(5)->store().KeyCount(), 0u);

  // Every pre-join key still reads back through the post-flip ring.
  SyncClient reader(cluster.client(1), cluster.client_runtime());
  for (int i = 0; i < 64; ++i) {
    const auto get = reader.Get("pre-" + std::to_string(i));
    ASSERT_TRUE(get.status.ok()) << "pre-" << i;
    ASSERT_TRUE(get.found) << "pre-" << i;
    EXPECT_EQ(get.value, "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace chainreaction

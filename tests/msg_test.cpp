// Serialization round-trip and robustness tests for every wire message.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/msg/message.h"

namespace chainreaction {
namespace {

Version SampleVersion() {
  Version v;
  v.vv = VersionVector(2);
  v.vv.Set(0, 3);
  v.vv.Set(1, 1);
  v.lamport = 123456;
  v.origin = 1;
  return v;
}

std::vector<Dependency> SampleDeps() {
  Dependency d1{"dep-key-1", SampleVersion()};
  Dependency d2{"dep-key-2", Version{}};
  return {d1, d2};
}

TEST(Message, PeekType) {
  CrxPut put;
  put.key = "k";
  const std::string payload = EncodeMessage(put);
  EXPECT_EQ(PeekType(payload), MsgType::kCrxPut);
  EXPECT_EQ(PeekType(""), MsgType::kInvalid);
  EXPECT_EQ(PeekType("x"), MsgType::kInvalid);
}

TEST(Message, TypeMismatchRejected) {
  CrxPut put;
  put.key = "k";
  const std::string payload = EncodeMessage(put);
  CrxGet get;
  EXPECT_FALSE(DecodeMessage(payload, &get));
}

TEST(Message, CrxPutRoundTrip) {
  CrxPut m;
  m.req = 77;
  m.client = 1234;
  m.key = "the-key";
  m.value = std::string(300, 'v');
  m.deps = SampleDeps();
  CrxPut out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.req, m.req);
  EXPECT_EQ(out.client, m.client);
  EXPECT_EQ(out.key, m.key);
  EXPECT_EQ(out.value, m.value);
  ASSERT_EQ(out.deps.size(), 2u);
  EXPECT_EQ(out.deps[0].key, "dep-key-1");
  EXPECT_TRUE(out.deps[0].version == SampleVersion());
  EXPECT_TRUE(out.deps[1].version.IsNull());
}

TEST(Message, CrxPutAckRoundTrip) {
  CrxPutAck m;
  m.req = 9;
  m.key = "k";
  m.version = SampleVersion();
  m.acked_at = 2;
  CrxPutAck out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.acked_at, 2u);
  EXPECT_TRUE(out.version == m.version);
}

TEST(Message, CrxGetAndReplyRoundTrip) {
  CrxGet g;
  g.req = 5;
  g.client = 42;
  g.key = "k";
  g.min_version = SampleVersion();
  CrxGet gout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(g), &gout));
  EXPECT_TRUE(gout.min_version == g.min_version);

  CrxGetReply r;
  r.req = 5;
  r.key = "k";
  r.found = true;
  r.value = "val";
  r.version = SampleVersion();
  r.position = 3;
  r.stable = true;
  CrxGetReply rout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(r), &rout));
  EXPECT_TRUE(rout.found);
  EXPECT_TRUE(rout.stable);
  EXPECT_EQ(rout.position, 3u);
}

TEST(Message, CrxChainPutRoundTrip) {
  CrxChainPut m;
  m.key = "k";
  m.value = "v";
  m.version = SampleVersion();
  m.client = 17;
  m.req = 3;
  m.ack_at = 2;
  m.epoch = 8;
  m.deps = SampleDeps();
  CrxChainPut out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.epoch, 8u);
  EXPECT_EQ(out.ack_at, 2u);
  EXPECT_EQ(out.deps.size(), 2u);
}

TEST(Message, StabilityMessagesRoundTrip) {
  CrxStableNotify n;
  n.key = "k";
  n.version = SampleVersion();
  n.epoch = 2;
  CrxStableNotify nout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(n), &nout));
  EXPECT_EQ(nout.key, "k");

  CrxStabilityCheck c;
  c.key = "k";
  c.version = SampleVersion();
  c.token = 99;
  CrxStabilityCheck cout_;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(c), &cout_));
  EXPECT_EQ(cout_.token, 99u);

  CrxStabilityConfirm f;
  f.token = 99;
  CrxStabilityConfirm fout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(f), &fout));
  EXPECT_EQ(fout.token, 99u);
}

TEST(Message, CrMessagesRoundTrip) {
  CrPut p;
  p.req = 1;
  p.client = 2;
  p.key = "k";
  p.value = "v";
  CrPut pout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(p), &pout));
  EXPECT_EQ(pout.value, "v");

  CrChainPut cp;
  cp.key = "k";
  cp.value = "v";
  cp.seq = 12;
  cp.client = 2;
  cp.req = 1;
  CrChainPut cpout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(cp), &cpout));
  EXPECT_EQ(cpout.seq, 12u);

  CrGetReply gr;
  gr.req = 1;
  gr.key = "k";
  gr.found = true;
  gr.value = "v";
  gr.seq = 12;
  CrGetReply grout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(gr), &grout));
  EXPECT_EQ(grout.seq, 12u);
}

TEST(Message, CraqMessagesRoundTrip) {
  CraqVersionQuery q;
  q.key = "k";
  q.req = 4;
  q.client = 5;
  CraqVersionQuery qout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(q), &qout));
  EXPECT_EQ(qout.client, 5u);

  CraqVersionReply r;
  r.key = "k";
  r.committed_seq = 10;
  r.req = 4;
  r.client = 5;
  CraqVersionReply rout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(r), &rout));
  EXPECT_EQ(rout.committed_seq, 10u);

  CraqCommit c;
  c.key = "k";
  c.seq = 10;
  CraqCommit cout_;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(c), &cout_));
  EXPECT_EQ(cout_.seq, 10u);
}

TEST(Message, EventualMessagesRoundTrip) {
  EvReplicate m;
  m.key = "k";
  m.value = "v";
  m.version = SampleVersion();
  m.token = 6;
  EvReplicate out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.token, 6u);

  EvReadReply rr;
  rr.token = 6;
  rr.key = "k";
  rr.found = true;
  rr.value = "v";
  rr.version = SampleVersion();
  EvReadReply rrout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(rr), &rrout));
  EXPECT_TRUE(rrout.found);
}

TEST(Message, GeoMessagesRoundTrip) {
  GeoShip s;
  s.origin_dc = 1;
  s.channel_seq = 44;
  s.key = "k";
  s.value = "v";
  s.version = SampleVersion();
  s.deps = SampleDeps();
  GeoShip sout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(s), &sout));
  EXPECT_EQ(sout.origin_dc, 1u);
  EXPECT_EQ(sout.channel_seq, 44u);
  EXPECT_EQ(sout.deps.size(), 2u);

  GeoLocalStable ls;
  ls.key = "k";
  ls.version = SampleVersion();
  ls.has_payload = true;
  ls.value = "v";
  ls.deps = SampleDeps();
  GeoLocalStable lsout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(ls), &lsout));
  EXPECT_TRUE(lsout.has_payload);

  GeoApplied a;
  a.dest_dc = 2;
  a.channel_seq = 44;
  GeoApplied aout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(a), &aout));
  EXPECT_EQ(aout.dest_dc, 2u);

  GeoRemotePut rp;
  rp.key = "k";
  rp.value = "v";
  rp.version = SampleVersion();
  GeoRemotePut rpout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(rp), &rpout));
  EXPECT_EQ(rpout.key, "k");
}

TEST(Message, MembershipMessagesRoundTrip) {
  MemNewMembership m;
  m.epoch = 3;
  m.nodes = {1, 2, 3, 99};
  MemNewMembership out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.nodes, m.nodes);

  MemSyncKey s;
  s.epoch = 3;
  s.key = "k";
  s.value = "v";
  s.version = SampleVersion();
  s.stable = true;
  MemSyncKey sout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(s), &sout));
  EXPECT_TRUE(sout.stable);
}

TEST(Message, TruncationNeverCrashes) {
  CrxChainPut m;
  m.key = "some-key";
  m.value = "some-value";
  m.version = SampleVersion();
  m.deps = SampleDeps();
  const std::string payload = EncodeMessage(m);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    CrxChainPut out;
    const std::string truncated = payload.substr(0, cut);
    EXPECT_FALSE(DecodeMessage(truncated, &out)) << "cut=" << cut;
  }
}

TEST(Message, GarbageNeverCrashes) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t len = rng.NextBelow(200);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    CrxPut p;
    CrxChainPut cp;
    GeoShip gs;
    (void)DecodeMessage(garbage, &p);
    (void)DecodeMessage(garbage, &cp);
    (void)DecodeMessage(garbage, &gs);
  }
  SUCCEED();
}

}  // namespace
}  // namespace chainreaction

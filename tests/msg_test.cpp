// Serialization round-trip and robustness tests for every wire message.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/msg/message.h"

namespace chainreaction {
namespace {

Version SampleVersion() {
  Version v;
  v.vv = VersionVector(2);
  v.vv.Set(0, 3);
  v.vv.Set(1, 1);
  v.lamport = 123456;
  v.origin = 1;
  return v;
}

std::vector<Dependency> SampleDeps() {
  Dependency d1{"dep-key-1", SampleVersion()};
  Dependency d2{"dep-key-2", Version{}};
  return {d1, d2};
}

TEST(Message, PeekType) {
  CrxPut put;
  put.key = "k";
  const std::string payload = EncodeMessage(put);
  EXPECT_EQ(PeekType(payload), MsgType::kCrxPut);
  EXPECT_EQ(PeekType(""), MsgType::kInvalid);
  EXPECT_EQ(PeekType("x"), MsgType::kInvalid);
}

TEST(Message, TypeMismatchRejected) {
  CrxPut put;
  put.key = "k";
  const std::string payload = EncodeMessage(put);
  CrxGet get;
  EXPECT_FALSE(DecodeMessage(payload, &get));
}

TEST(Message, CrxPutRoundTrip) {
  CrxPut m;
  m.req = 77;
  m.client = 1234;
  m.key = "the-key";
  m.value = std::string(300, 'v');
  m.deps = SampleDeps();
  CrxPut out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.req, m.req);
  EXPECT_EQ(out.client, m.client);
  EXPECT_EQ(out.key, m.key);
  EXPECT_EQ(out.value, m.value);
  ASSERT_EQ(out.deps.size(), 2u);
  EXPECT_EQ(out.deps[0].key, "dep-key-1");
  EXPECT_TRUE(out.deps[0].version == SampleVersion());
  EXPECT_TRUE(out.deps[1].version.IsNull());
}

TEST(Message, CrxPutAckRoundTrip) {
  CrxPutAck m;
  m.req = 9;
  m.key = "k";
  m.version = SampleVersion();
  m.acked_at = 2;
  CrxPutAck out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.acked_at, 2u);
  EXPECT_TRUE(out.version == m.version);
}

TEST(Message, CrxGetAndReplyRoundTrip) {
  CrxGet g;
  g.req = 5;
  g.client = 42;
  g.key = "k";
  g.min_version = SampleVersion();
  CrxGet gout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(g), &gout));
  EXPECT_TRUE(gout.min_version == g.min_version);

  CrxGetReply r;
  r.req = 5;
  r.key = "k";
  r.found = true;
  r.value = "val";
  r.version = SampleVersion();
  r.position = 3;
  r.stable = true;
  CrxGetReply rout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(r), &rout));
  EXPECT_TRUE(rout.found);
  EXPECT_TRUE(rout.stable);
  EXPECT_EQ(rout.position, 3u);
}

TEST(Message, CrxChainPutRoundTrip) {
  CrxChainPut m;
  m.key = "k";
  m.value = "v";
  m.version = SampleVersion();
  m.client = 17;
  m.req = 3;
  m.ack_at = 2;
  m.epoch = 8;
  m.deps = SampleDeps();
  CrxChainPut out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.epoch, 8u);
  EXPECT_EQ(out.ack_at, 2u);
  EXPECT_EQ(out.deps.size(), 2u);
}

TEST(Message, StabilityMessagesRoundTrip) {
  CrxStableNotify n;
  n.key = "k";
  n.version = SampleVersion();
  n.epoch = 2;
  CrxStableNotify nout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(n), &nout));
  EXPECT_EQ(nout.key, "k");

  CrxStabilityCheck c;
  c.key = "k";
  c.version = SampleVersion();
  c.token = 99;
  CrxStabilityCheck cout_;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(c), &cout_));
  EXPECT_EQ(cout_.token, 99u);

  CrxStabilityConfirm f;
  f.token = 99;
  CrxStabilityConfirm fout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(f), &fout));
  EXPECT_EQ(fout.token, 99u);
}

TEST(Message, CrMessagesRoundTrip) {
  CrPut p;
  p.req = 1;
  p.client = 2;
  p.key = "k";
  p.value = "v";
  CrPut pout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(p), &pout));
  EXPECT_EQ(pout.value, "v");

  CrChainPut cp;
  cp.key = "k";
  cp.value = "v";
  cp.seq = 12;
  cp.client = 2;
  cp.req = 1;
  CrChainPut cpout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(cp), &cpout));
  EXPECT_EQ(cpout.seq, 12u);

  CrGetReply gr;
  gr.req = 1;
  gr.key = "k";
  gr.found = true;
  gr.value = "v";
  gr.seq = 12;
  CrGetReply grout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(gr), &grout));
  EXPECT_EQ(grout.seq, 12u);
}

TEST(Message, CraqMessagesRoundTrip) {
  CraqVersionQuery q;
  q.key = "k";
  q.req = 4;
  q.client = 5;
  CraqVersionQuery qout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(q), &qout));
  EXPECT_EQ(qout.client, 5u);

  CraqVersionReply r;
  r.key = "k";
  r.committed_seq = 10;
  r.req = 4;
  r.client = 5;
  CraqVersionReply rout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(r), &rout));
  EXPECT_EQ(rout.committed_seq, 10u);

  CraqCommit c;
  c.key = "k";
  c.seq = 10;
  CraqCommit cout_;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(c), &cout_));
  EXPECT_EQ(cout_.seq, 10u);
}

TEST(Message, EventualMessagesRoundTrip) {
  EvReplicate m;
  m.key = "k";
  m.value = "v";
  m.version = SampleVersion();
  m.token = 6;
  EvReplicate out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.token, 6u);

  EvReadReply rr;
  rr.token = 6;
  rr.key = "k";
  rr.found = true;
  rr.value = "v";
  rr.version = SampleVersion();
  EvReadReply rrout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(rr), &rrout));
  EXPECT_TRUE(rrout.found);
}

TEST(Message, GeoMessagesRoundTrip) {
  GeoShip s;
  s.origin_dc = 1;
  s.channel_seq = 44;
  s.key = "k";
  s.value = "v";
  s.version = SampleVersion();
  s.deps = SampleDeps();
  GeoShip sout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(s), &sout));
  EXPECT_EQ(sout.origin_dc, 1u);
  EXPECT_EQ(sout.channel_seq, 44u);
  EXPECT_EQ(sout.deps.size(), 2u);

  GeoLocalStable ls;
  ls.key = "k";
  ls.version = SampleVersion();
  ls.has_payload = true;
  ls.value = "v";
  ls.deps = SampleDeps();
  GeoLocalStable lsout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(ls), &lsout));
  EXPECT_TRUE(lsout.has_payload);

  GeoApplied a;
  a.dest_dc = 2;
  a.channel_seq = 44;
  GeoApplied aout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(a), &aout));
  EXPECT_EQ(aout.dest_dc, 2u);

  GeoRemotePut rp;
  rp.key = "k";
  rp.value = "v";
  rp.version = SampleVersion();
  GeoRemotePut rpout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(rp), &rpout));
  EXPECT_EQ(rpout.key, "k");
}

TEST(Message, MembershipMessagesRoundTrip) {
  MemNewMembership m;
  m.epoch = 3;
  m.nodes = {1, 2, 3, 99};
  MemNewMembership out;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(m), &out));
  EXPECT_EQ(out.nodes, m.nodes);

  MemSyncKey s;
  s.epoch = 3;
  s.key = "k";
  s.value = "v";
  s.version = SampleVersion();
  s.stable = true;
  MemSyncKey sout;
  ASSERT_TRUE(DecodeMessage(EncodeMessage(s), &sout));
  EXPECT_TRUE(sout.stable);
}

TEST(Message, TruncationNeverCrashes) {
  CrxChainPut m;
  m.key = "some-key";
  m.value = "some-value";
  m.version = SampleVersion();
  m.deps = SampleDeps();
  const std::string payload = EncodeMessage(m);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    CrxChainPut out;
    const std::string truncated = payload.substr(0, cut);
    EXPECT_FALSE(DecodeMessage(truncated, &out)) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Fuzz-lite property harness. Every wire struct gets, on random contents:
//   (a) a byte-stable round trip — encode, decode, re-encode, compare bytes
//       (stronger than field equality: catches lossy or non-canonical
//       encodings that would defeat dedup and retransmission comparison);
//   (b) decode failure at every truncation point (all fields are mandatory
//       sequential reads, so no strict prefix may parse);
//   (c) crash-free handling of single-byte corruptions — if a mutated
//       payload happens to decode, the result must re-encode cleanly;
//   (d) crash-free rejection of pure random garbage.
// ---------------------------------------------------------------------------

Key FuzzKey(Rng* rng) {
  Key k = "fk";
  const size_t len = rng->NextBelow(24);
  for (size_t i = 0; i < len; ++i) {
    k.push_back(static_cast<char>('a' + rng->NextBelow(26)));
  }
  return k;
}

Value FuzzValue(Rng* rng) {
  Value v;
  const size_t len = rng->NextBelow(300);
  for (size_t i = 0; i < len; ++i) {
    v.push_back(static_cast<char>(rng->NextBelow(256)));
  }
  return v;
}

Version FuzzVersion(Rng* rng) {
  Version v;
  if (rng->NextBelow(8) == 0) {
    return v;  // null version
  }
  const uint32_t n = 1 + static_cast<uint32_t>(rng->NextBelow(4));
  v.vv = VersionVector(n);
  for (uint32_t i = 0; i < n; ++i) {
    v.vv.Set(i, rng->NextBelow(1u << 20));
  }
  v.lamport = rng->NextBelow(1ull << 40);
  v.origin = static_cast<DcId>(rng->NextBelow(4));
  return v;
}

std::vector<Dependency> FuzzDeps(Rng* rng) {
  std::vector<Dependency> deps;
  const size_t n = rng->NextBelow(4);
  for (size_t i = 0; i < n; ++i) {
    deps.push_back(Dependency{FuzzKey(rng), FuzzVersion(rng)});
  }
  return deps;
}

TraceContext FuzzTrace(Rng* rng) {
  TraceContext t;
  if (rng->NextBool(0.5)) {
    return t;  // untraced request
  }
  t.id = rng->Next() | 1;
  const size_t n = rng->NextBelow(5);
  for (size_t i = 0; i < n; ++i) {
    t.Annotate(static_cast<HopKind>(1 + rng->NextBelow(10)),
               static_cast<uint32_t>(rng->Next()), static_cast<uint16_t>(rng->Next()),
               static_cast<uint32_t>(rng->Next()),
               static_cast<Time>(rng->NextBelow(1ull << 40)));
  }
  return t;
}

// Runs the (a)/(b)/(c) properties for one struct type. `fill` populates a
// default-constructed message from the rng. `wf` picks the wire format the
// byte-stability property is checked under (v2-capable structs get fuzzed
// in both).
template <typename M, typename FillFn>
void FuzzStruct(const char* name, uint64_t seed, FillFn fill,
                WireFormat wf = WireFormat::kV1) {
  Rng rng(seed);
  for (int trial = 0; trial < 15; ++trial) {
    M m;
    fill(&m, &rng);
    const std::string payload = EncodeMessage(m, wf);
    M out;
    ASSERT_TRUE(DecodeMessage(payload, &out)) << name << " trial=" << trial;
    EXPECT_EQ(EncodeMessage(out, wf), payload) << name << " trial=" << trial;
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      M t;
      EXPECT_FALSE(DecodeMessage(payload.substr(0, cut), &t))
          << name << " trial=" << trial << " cut=" << cut;
    }
    for (int mut = 0; mut < 10; ++mut) {
      std::string corrupted = payload;
      const size_t pos = rng.NextBelow(corrupted.size());
      corrupted[pos] =
          static_cast<char>(corrupted[pos] ^ static_cast<char>(1 + rng.NextBelow(255)));
      M c;
      if (DecodeMessage(corrupted, &c)) {
        (void)EncodeMessage(c, wf);
      }
    }
  }
}

TEST(MessageFuzz, ChainReactionStructs) {
  FuzzStruct<CrxPut>("CrxPut", 101, [](CrxPut* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->deps = FuzzDeps(rng);
    m->trace = FuzzTrace(rng);
  });
  FuzzStruct<CrxPutAck>("CrxPutAck", 102, [](CrxPutAck* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->version = FuzzVersion(rng);
    m->acked_at = static_cast<ChainIndex>(rng->NextBelow(8));
    m->trace = FuzzTrace(rng);
  });
  FuzzStruct<CrxPutAckBatch>("CrxPutAckBatch", 103, [](CrxPutAckBatch* m, Rng* rng) {
    m->up_to_seq = rng->NextBelow(1ull << 40);
    const size_t n = rng->NextBelow(5);
    for (size_t i = 0; i < n; ++i) {
      CrxPutAck a;
      a.req = rng->Next();
      a.key = FuzzKey(rng);
      a.version = FuzzVersion(rng);
      a.acked_at = static_cast<ChainIndex>(rng->NextBelow(8));
      a.trace = FuzzTrace(rng);
      m->acks.push_back(a);
    }
  });
  FuzzStruct<CrxGet>("CrxGet", 104, [](CrxGet* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
    m->min_version = FuzzVersion(rng);
    m->with_deps = rng->NextBool(0.5);
  });
  FuzzStruct<CrxGetReply>("CrxGetReply", 105, [](CrxGetReply* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->found = rng->NextBool(0.5);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
    m->position = static_cast<ChainIndex>(rng->NextBelow(8));
    m->stable = rng->NextBool(0.5);
    m->deps = FuzzDeps(rng);
  });
  FuzzStruct<CrxChainPut>("CrxChainPut", 106, [](CrxChainPut* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
    m->client = static_cast<Address>(rng->Next());
    m->req = rng->Next();
    m->ack_at = static_cast<ChainIndex>(rng->NextBelow(8));
    m->epoch = rng->NextBelow(100);
    m->chain_seq = rng->NextBelow(1ull << 40);
    m->deps = FuzzDeps(rng);
    m->trace = FuzzTrace(rng);
  });
  FuzzStruct<CrxStableNotify>("CrxStableNotify", 107, [](CrxStableNotify* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->version = FuzzVersion(rng);
    m->epoch = rng->NextBelow(100);
  });
  FuzzStruct<CrxStabilityCheck>("CrxStabilityCheck", 108, [](CrxStabilityCheck* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->version = FuzzVersion(rng);
    m->token = rng->Next();
  });
  FuzzStruct<CrxStabilityConfirm>("CrxStabilityConfirm", 109,
                                  [](CrxStabilityConfirm* m, Rng* rng) {
                                    m->token = rng->Next();
                                    m->key = FuzzKey(rng);
                                  });
}

// Same properties for every v2-capable hot-path struct under the varint
// wire format, with the watermark fields populated (they only exist on the
// v2 wire).
TEST(MessageFuzz, ChainReactionStructsV2) {
  const WireFormat v2 = WireFormat::kV2;
  FuzzStruct<CrxPut>(
      "CrxPutV2", 111,
      [](CrxPut* m, Rng* rng) {
        m->req = rng->Next();
        m->client = static_cast<Address>(rng->Next());
        m->key = FuzzKey(rng);
        m->value = FuzzValue(rng);
        m->deps = FuzzDeps(rng);
        m->wm_epoch = rng->NextBelow(100);
        m->dep_wm = rng->NextBelow(1ull << 40);
        m->trace = FuzzTrace(rng);
      },
      v2);
  FuzzStruct<CrxPutAck>(
      "CrxPutAckV2", 112,
      [](CrxPutAck* m, Rng* rng) {
        m->req = rng->Next();
        m->key = FuzzKey(rng);
        m->version = FuzzVersion(rng);
        m->acked_at = static_cast<ChainIndex>(rng->NextBelow(8));
        m->wm_epoch = rng->NextBelow(100);
        m->stable_wm = rng->NextBelow(1ull << 40);
        m->trace = FuzzTrace(rng);
      },
      v2);
  FuzzStruct<CrxPutAckBatch>(
      "CrxPutAckBatchV2", 113,
      [](CrxPutAckBatch* m, Rng* rng) {
        m->up_to_seq = rng->NextBelow(1ull << 40);
        const size_t n = rng->NextBelow(5);
        for (size_t i = 0; i < n; ++i) {
          CrxPutAck a;
          a.req = rng->Next();
          a.key = FuzzKey(rng);
          a.version = FuzzVersion(rng);
          a.acked_at = static_cast<ChainIndex>(rng->NextBelow(8));
          a.stable_wm = rng->NextBelow(1ull << 40);
          a.trace = FuzzTrace(rng);
          m->acks.push_back(a);
        }
      },
      v2);
  FuzzStruct<CrxGet>(
      "CrxGetV2", 114,
      [](CrxGet* m, Rng* rng) {
        m->req = rng->Next();
        m->client = static_cast<Address>(rng->Next());
        m->key = FuzzKey(rng);
        m->min_version = FuzzVersion(rng);
        m->with_deps = rng->NextBool(0.5);
      },
      v2);
  FuzzStruct<CrxGetReply>(
      "CrxGetReplyV2", 115,
      [](CrxGetReply* m, Rng* rng) {
        m->req = rng->Next();
        m->key = FuzzKey(rng);
        m->found = rng->NextBool(0.5);
        m->value = FuzzValue(rng);
        m->version = FuzzVersion(rng);
        m->position = static_cast<ChainIndex>(rng->NextBelow(8));
        m->stable = rng->NextBool(0.5);
        m->deps = FuzzDeps(rng);
        m->wm_epoch = rng->NextBelow(100);
        m->stable_wm = rng->NextBelow(1ull << 40);
      },
      v2);
  FuzzStruct<CrxChainPut>(
      "CrxChainPutV2", 116,
      [](CrxChainPut* m, Rng* rng) {
        m->key = FuzzKey(rng);
        m->value = FuzzValue(rng);
        m->version = FuzzVersion(rng);
        m->client = static_cast<Address>(rng->Next());
        m->req = rng->Next();
        m->ack_at = static_cast<ChainIndex>(rng->NextBelow(8));
        m->epoch = rng->NextBelow(100);
        m->chain_seq = rng->NextBelow(1ull << 40);
        m->deps = FuzzDeps(rng);
        m->stable_cut = rng->NextBelow(1ull << 40);
        m->trace = FuzzTrace(rng);
      },
      v2);
  FuzzStruct<CrxStableNotify>(
      "CrxStableNotifyV2", 117,
      [](CrxStableNotify* m, Rng* rng) {
        m->key = FuzzKey(rng);
        m->version = FuzzVersion(rng);
        m->epoch = rng->NextBelow(100);
        m->stable_cut = rng->NextBelow(1ull << 40);
      },
      v2);
  FuzzStruct<CrxStabilityCheck>(
      "CrxStabilityCheckV2", 118,
      [](CrxStabilityCheck* m, Rng* rng) {
        m->key = FuzzKey(rng);
        m->version = FuzzVersion(rng);
        m->token = rng->Next();
      },
      v2);
  FuzzStruct<CrxStabilityConfirm>(
      "CrxStabilityConfirmV2", 119,
      [](CrxStabilityConfirm* m, Rng* rng) {
        m->token = rng->Next();
        m->key = FuzzKey(rng);
      },
      v2);
  FuzzStruct<CrxWatermark>(
      "CrxWatermarkV1", 120,
      [](CrxWatermark* m, Rng* rng) {
        m->node = static_cast<NodeId>(rng->NextBelow(1u << 16));
        m->epoch = rng->NextBelow(100);
        m->cut = rng->NextBelow(1ull << 40);
      },
      WireFormat::kV1);
  FuzzStruct<CrxWatermark>(
      "CrxWatermarkV2", 121,
      [](CrxWatermark* m, Rng* rng) {
        m->node = static_cast<NodeId>(rng->NextBelow(1u << 16));
        m->epoch = rng->NextBelow(100);
        m->cut = rng->NextBelow(1ull << 40);
      },
      v2);
}

// ---------------------------------------------------------------------------
// Varint edge cases: maximal encodings, overlong (non-canonical) encodings,
// and truncated continuation chains. The decoder must never crash, must
// reject every strict prefix, and must accept the 10-byte maximum.
// ---------------------------------------------------------------------------

TEST(Varint, MaximalTenByteEncoding) {
  ByteWriter w;
  w.PutVarU64(UINT64_MAX);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_EQ(VarU64Size(UINT64_MAX), 10u);
  ByteReader r(w.data());
  uint64_t v = 0;
  ASSERT_TRUE(r.GetVarU64(&v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_EQ(r.remaining(), 0u);

  // Every power of two hits a distinct length bucket.
  for (int shift = 0; shift < 64; ++shift) {
    const uint64_t x = 1ull << shift;
    ByteWriter w2;
    w2.PutVarU64(x);
    EXPECT_EQ(w2.size(), VarU64Size(x)) << "shift=" << shift;
    ByteReader r2(w2.data());
    uint64_t y = 0;
    ASSERT_TRUE(r2.GetVarU64(&y)) << "shift=" << shift;
    EXPECT_EQ(y, x) << "shift=" << shift;
  }
}

TEST(Varint, TruncatedContinuationAlwaysFails) {
  // A continuation bit with no following byte must fail, at every length.
  for (size_t len = 1; len <= 9; ++len) {
    std::string buf(len, static_cast<char>(0x80));
    ByteReader r(buf);
    uint64_t v = 0;
    EXPECT_FALSE(r.GetVarU64(&v)) << "len=" << len;
  }
  // Same through the full varint encoding of a large value.
  ByteWriter w;
  w.PutVarU64(UINT64_MAX);
  const std::string full(w.data());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(full.data(), cut);
    uint64_t v = 0;
    EXPECT_FALSE(r.GetVarU64(&v)) << "cut=" << cut;
  }
}

TEST(Varint, ContinuationPastTenBytesFails) {
  // 10 continuation bytes followed by a terminator would need shift >= 70:
  // the decoder must reject rather than silently wrap.
  std::string buf(10, static_cast<char>(0xFF));
  buf.push_back(0x01);
  ByteReader r(buf);
  uint64_t v = 0;
  EXPECT_FALSE(r.GetVarU64(&v));
}

TEST(Varint, OverlongEncodingDecodesWithoutCrashing) {
  // Non-canonical (overlong) encodings of small values: {0x80, 0x00} is a
  // two-byte zero. The decoder accepts them (receivers are liberal); the
  // byte-stability fuzz property separately guarantees our own encoder
  // never produces them.
  const std::string two_byte_zero("\x80\x00", 2);
  ByteReader r(two_byte_zero);
  uint64_t v = 99;
  ASSERT_TRUE(r.GetVarU64(&v));
  EXPECT_EQ(v, 0u);

  // Maximal overlong zero: nine 0x80 bytes + 0x00.
  std::string long_zero(9, static_cast<char>(0x80));
  long_zero.push_back(0x00);
  ByteReader r2(long_zero);
  v = 99;
  ASSERT_TRUE(r2.GetVarU64(&v));
  EXPECT_EQ(v, 0u);
}

TEST(Varint, ZigZagRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -2, 2, INT64_MAX, INT64_MIN, -123456789, 123456789};
  for (const int64_t x : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(x)), x);
    ByteWriter w;
    w.PutVarI64(x);
    EXPECT_EQ(w.size(), VarI64Size(x));
    ByteReader r(w.data());
    int64_t y = 0;
    ASSERT_TRUE(r.GetVarI64(&y));
    EXPECT_EQ(y, x);
  }
  // Small magnitudes stay small on the wire regardless of sign.
  EXPECT_EQ(VarI64Size(-1), 1u);
  EXPECT_EQ(VarI64Size(63), 1u);
  EXPECT_EQ(VarI64Size(-64), 1u);
}

// ---------------------------------------------------------------------------
// Cross-format compatibility.
// ---------------------------------------------------------------------------

// A v1-only decoder exactly as shipped before the v2 format existed: read
// the u16 type tag, require an exact match, decode the fixed-width body.
template <typename M>
bool LegacyV1Decode(const std::string& payload, M* out) {
  ByteReader r(payload);
  uint16_t type = 0;
  if (!r.GetU16(&type) || type != static_cast<uint16_t>(M::kType)) {
    return false;
  }
  return out->Decode(&r);
}

CrxPut SampleWirePut() {
  CrxPut m;
  m.req = 42;
  m.client = 7;
  m.key = "compat-key";
  m.value = "compat-value";
  m.deps = SampleDeps();
  return m;
}

TEST(WireCompat, V1FramesDecodeAfterUpgrade) {
  const CrxPut m = SampleWirePut();
  const std::string v1 = EncodeMessage(m, WireFormat::kV1);
  EXPECT_EQ(PeekWireFormat(v1), WireFormat::kV1);
  EXPECT_EQ(PeekType(v1), MsgType::kCrxPut);
  CrxPut out;
  ASSERT_TRUE(DecodeMessage(v1, &out));
  EXPECT_EQ(out.key, m.key);
  EXPECT_EQ(out.value, m.value);
  ASSERT_EQ(out.deps.size(), m.deps.size());
  // The default EncodeMessage is still the legacy format, byte for byte.
  EXPECT_EQ(EncodeMessage(m), v1);
}

TEST(WireCompat, V2FramesRejectedByLegacyDecoder) {
  const CrxPut m = SampleWirePut();
  const std::string v2 = EncodeMessage(m, WireFormat::kV2);
  EXPECT_EQ(PeekWireFormat(v2), WireFormat::kV2);
  // PeekType masks the format flag, so dispatch switches are format-blind.
  EXPECT_EQ(PeekType(v2), MsgType::kCrxPut);
  // The upgraded decoder handles it...
  CrxPut out;
  ASSERT_TRUE(DecodeMessage(v2, &out));
  EXPECT_EQ(out.key, m.key);
  // ...a v1-only decoder rejects it cleanly (flagged tag != bare tag).
  CrxPut legacy;
  EXPECT_FALSE(LegacyV1Decode(v2, &legacy));
  // And the legacy decoder still accepts genuine v1 frames.
  CrxPut legacy_ok;
  EXPECT_TRUE(LegacyV1Decode(EncodeMessage(m, WireFormat::kV1), &legacy_ok));
}

TEST(WireCompat, V2IsSmallerOnHotPathFrames) {
  CrxPut m = SampleWirePut();
  // Dep-heavy put: the shape the compression targets.
  for (int i = 0; i < 6; ++i) {
    Dependency d;
    d.key = "dep-key-" + std::to_string(i);
    d.version = SampleVersion();
    m.deps.push_back(d);
  }
  const std::string v1 = EncodeMessage(m, WireFormat::kV1);
  const std::string v2 = EncodeMessage(m, WireFormat::kV2);
  EXPECT_LT(v2.size(), v1.size());

  CrxPutAck ack;
  ack.req = 9;
  ack.key = "k";
  ack.version = SampleVersion();
  ack.acked_at = 2;
  EXPECT_LT(EncodeMessage(ack, WireFormat::kV2).size(),
            EncodeMessage(ack, WireFormat::kV1).size());
}

TEST(WireCompat, MixedFormatsInterleave) {
  // A receiver sees alternating v1 and v2 frames (mid-upgrade cluster) and
  // decodes both with one code path.
  const CrxPut m = SampleWirePut();
  for (int i = 0; i < 4; ++i) {
    const WireFormat wf = (i % 2 == 0) ? WireFormat::kV1 : WireFormat::kV2;
    CrxPut out;
    ASSERT_TRUE(DecodeMessage(EncodeMessage(m, wf), &out)) << i;
    EXPECT_EQ(out.key, m.key) << i;
  }
}

TEST(MessageFuzz, ChainReplicationStructs) {
  FuzzStruct<CrPut>("CrPut", 201, [](CrPut* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
  });
  FuzzStruct<CrChainPut>("CrChainPut", 202, [](CrChainPut* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->seq = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->req = rng->Next();
  });
  FuzzStruct<CrPutAck>("CrPutAck", 203, [](CrPutAck* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->seq = rng->Next();
  });
  FuzzStruct<CrChainAck>("CrChainAck", 204, [](CrChainAck* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->seq = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->req = rng->Next();
  });
  FuzzStruct<CrGet>("CrGet", 205, [](CrGet* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
  });
  FuzzStruct<CrGetReply>("CrGetReply", 206, [](CrGetReply* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->found = rng->NextBool(0.5);
    m->value = FuzzValue(rng);
    m->seq = rng->Next();
  });
}

TEST(MessageFuzz, CraqStructs) {
  FuzzStruct<CraqPut>("CraqPut", 301, [](CraqPut* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
  });
  FuzzStruct<CraqChainPut>("CraqChainPut", 302, [](CraqChainPut* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->seq = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->req = rng->Next();
  });
  FuzzStruct<CraqCommit>("CraqCommit", 303, [](CraqCommit* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->seq = rng->Next();
  });
  FuzzStruct<CraqPutAck>("CraqPutAck", 304, [](CraqPutAck* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->seq = rng->Next();
  });
  FuzzStruct<CraqGet>("CraqGet", 305, [](CraqGet* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
  });
  FuzzStruct<CraqGetReply>("CraqGetReply", 306, [](CraqGetReply* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->found = rng->NextBool(0.5);
    m->value = FuzzValue(rng);
    m->seq = rng->Next();
  });
  FuzzStruct<CraqVersionQuery>("CraqVersionQuery", 307, [](CraqVersionQuery* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
  });
  FuzzStruct<CraqVersionReply>("CraqVersionReply", 308, [](CraqVersionReply* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->committed_seq = rng->Next();
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
  });
}

TEST(MessageFuzz, EventualStructs) {
  FuzzStruct<EvPut>("EvPut", 401, [](EvPut* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
  });
  FuzzStruct<EvReplicate>("EvReplicate", 402, [](EvReplicate* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
    m->token = rng->Next();
  });
  FuzzStruct<EvReplicateAck>("EvReplicateAck", 403,
                             [](EvReplicateAck* m, Rng* rng) { m->token = rng->Next(); });
  FuzzStruct<EvPutAck>("EvPutAck", 404, [](EvPutAck* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->version = FuzzVersion(rng);
  });
  FuzzStruct<EvGet>("EvGet", 405, [](EvGet* m, Rng* rng) {
    m->req = rng->Next();
    m->client = static_cast<Address>(rng->Next());
    m->key = FuzzKey(rng);
  });
  FuzzStruct<EvGetReply>("EvGetReply", 406, [](EvGetReply* m, Rng* rng) {
    m->req = rng->Next();
    m->key = FuzzKey(rng);
    m->found = rng->NextBool(0.5);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
  });
  FuzzStruct<EvReadQuery>("EvReadQuery", 407, [](EvReadQuery* m, Rng* rng) {
    m->token = rng->Next();
    m->key = FuzzKey(rng);
  });
  FuzzStruct<EvReadReply>("EvReadReply", 408, [](EvReadReply* m, Rng* rng) {
    m->token = rng->Next();
    m->key = FuzzKey(rng);
    m->found = rng->NextBool(0.5);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
  });
}

TEST(MessageFuzz, GeoStructs) {
  FuzzStruct<GeoLocalStable>("GeoLocalStable", 501, [](GeoLocalStable* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->version = FuzzVersion(rng);
    m->has_payload = rng->NextBool(0.5);
    if (m->has_payload) {
      m->value = FuzzValue(rng);
      m->deps = FuzzDeps(rng);
    }
    m->trace = FuzzTrace(rng);
  });
  FuzzStruct<GeoLocalStableAck>("GeoLocalStableAck", 502, [](GeoLocalStableAck* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->version = FuzzVersion(rng);
  });
  FuzzStruct<GeoShip>("GeoShip", 503, [](GeoShip* m, Rng* rng) {
    m->origin_dc = static_cast<DcId>(rng->NextBelow(4));
    m->channel_seq = rng->NextBelow(1ull << 40);
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
    m->deps = FuzzDeps(rng);
    m->trace = FuzzTrace(rng);
  });
  FuzzStruct<GeoShipBatch>("GeoShipBatch", 504, [](GeoShipBatch* m, Rng* rng) {
    const size_t n = rng->NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      GeoShip s;
      s.origin_dc = static_cast<DcId>(rng->NextBelow(4));
      s.channel_seq = rng->NextBelow(1ull << 40);
      s.key = FuzzKey(rng);
      s.value = FuzzValue(rng);
      s.version = FuzzVersion(rng);
      s.deps = FuzzDeps(rng);
      s.trace = FuzzTrace(rng);
      m->ships.push_back(s);
    }
  });
  FuzzStruct<GeoApplied>("GeoApplied", 505, [](GeoApplied* m, Rng* rng) {
    m->dest_dc = static_cast<DcId>(rng->NextBelow(4));
    m->channel_seq = rng->NextBelow(1ull << 40);
  });
  FuzzStruct<GeoRemotePut>("GeoRemotePut", 506, [](GeoRemotePut* m, Rng* rng) {
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
    m->deps = FuzzDeps(rng);
    m->trace = FuzzTrace(rng);
  });
}

TEST(MessageFuzz, MembershipStructs) {
  FuzzStruct<MemNewMembership>("MemNewMembership", 601, [](MemNewMembership* m, Rng* rng) {
    m->epoch = rng->NextBelow(100);
    const size_t n = rng->NextBelow(12);
    for (size_t i = 0; i < n; ++i) {
      m->nodes.push_back(static_cast<NodeId>(rng->NextBelow(256)));
      if (rng->NextBool(0.8)) {
        m->weights.push_back(1 + static_cast<uint32_t>(rng->NextBelow(64)));
      }
    }
    const size_t p = rng->NextBelow(4);
    for (size_t i = 0; i < p; ++i) {
      m->pre_synced.push_back(static_cast<NodeId>(rng->NextBelow(256)));
    }
  });
  FuzzStruct<MemHeartbeat>("MemHeartbeat", 602, [](MemHeartbeat* m, Rng* rng) {
    m->node = static_cast<NodeId>(rng->NextBelow(256));
  });
  FuzzStruct<MemSyncKey>("MemSyncKey", 603, [](MemSyncKey* m, Rng* rng) {
    m->epoch = rng->NextBelow(100);
    m->key = FuzzKey(rng);
    m->value = FuzzValue(rng);
    m->version = FuzzVersion(rng);
    m->stable = rng->NextBool(0.5);
  });
  FuzzStruct<MemSyncDone>("MemSyncDone", 604, [](MemSyncDone* m, Rng* rng) {
    m->epoch = rng->NextBelow(100);
    m->from = static_cast<NodeId>(rng->NextBelow(256));
  });
}

TEST(MessageFuzz, MigrationStructs) {
  FuzzStruct<MigSnapshotRequest>("MigSnapshotRequest", 701, [](MigSnapshotRequest* m, Rng* rng) {
    m->migration_id = rng->Next();
    m->epoch = rng->NextBelow(100);
    m->planned_epoch = m->epoch + 1;
    const size_t n = rng->NextBelow(12);
    for (size_t i = 0; i < n; ++i) {
      m->planned_nodes.push_back(static_cast<NodeId>(rng->NextBelow(256)));
      m->planned_weights.push_back(1 + static_cast<uint32_t>(rng->NextBelow(64)));
    }
    m->coordinator = static_cast<Address>(rng->Next());
    m->batch_keys = 1 + static_cast<uint32_t>(rng->NextBelow(256));
    m->batch_interval = rng->NextBelow(1ull << 30);
  });
  auto fuzz_entry = [](Rng* rng) {
    MigEntry e;
    e.key = FuzzKey(rng);
    e.has_value = rng->NextBool(0.7);
    e.value = e.has_value ? FuzzValue(rng) : Value();
    e.version = FuzzVersion(rng);
    e.stable = rng->NextBool(0.5);
    e.deps = FuzzDeps(rng);
    return e;
  };
  FuzzStruct<MigKeyBatch>("MigKeyBatch", 702, [&](MigKeyBatch* m, Rng* rng) {
    m->migration_id = rng->Next();
    m->epoch = rng->NextBelow(100);
    m->source = static_cast<NodeId>(rng->NextBelow(256));
    m->target = static_cast<NodeId>(rng->NextBelow(256));
    m->coordinator = static_cast<Address>(rng->Next());
    m->seq = rng->NextBelow(1ull << 30);
    m->last = rng->NextBool(0.3);
    const size_t n = rng->NextBelow(5);
    for (size_t i = 0; i < n; ++i) {
      m->entries.push_back(fuzz_entry(rng));
    }
  });
  FuzzStruct<MigSnapshotDone>("MigSnapshotDone", 703, [](MigSnapshotDone* m, Rng* rng) {
    m->migration_id = rng->Next();
    m->from = static_cast<NodeId>(rng->NextBelow(256));
    m->keys_streamed = rng->NextBelow(1ull << 30);
    const size_t n = rng->NextBelow(6);
    for (size_t i = 0; i < n; ++i) {
      m->targets.push_back(static_cast<NodeId>(rng->NextBelow(256)));
    }
    m->aborted = rng->NextBool(0.2);
  });
  FuzzStruct<MigRangeSealed>("MigRangeSealed", 704, [](MigRangeSealed* m, Rng* rng) {
    m->migration_id = rng->Next();
    m->source = static_cast<NodeId>(rng->NextBelow(256));
    m->target = static_cast<NodeId>(rng->NextBelow(256));
    m->entries_applied = rng->NextBelow(1ull << 30);
  });
  FuzzStruct<MigCommit>("MigCommit", 705, [](MigCommit* m, Rng* rng) {
    m->migration_id = rng->Next();
    m->planned_epoch = rng->NextBelow(100);
    const size_t n = rng->NextBelow(12);
    for (size_t i = 0; i < n; ++i) {
      m->nodes.push_back(static_cast<NodeId>(rng->NextBelow(256)));
      m->weights.push_back(1 + static_cast<uint32_t>(rng->NextBelow(64)));
    }
    const size_t p = rng->NextBelow(4);
    for (size_t i = 0; i < p; ++i) {
      m->pre_synced.push_back(static_cast<NodeId>(rng->NextBelow(256)));
    }
  });
  FuzzStruct<MigAbort>("MigAbort", 706, [](MigAbort* m, Rng* rng) {
    m->migration_id = rng->NextBool(0.2) ? 0 : rng->Next();  // 0 = wildcard
    const size_t len = rng->NextBelow(40);
    for (size_t i = 0; i < len; ++i) {
      m->reason.push_back(static_cast<char>('a' + rng->NextBelow(26)));
    }
  });
}

// Decodes `garbage` into each struct type; none may crash.
template <typename M>
void DecodeGarbageInto(const std::string& garbage) {
  M m;
  (void)DecodeMessage(garbage, &m);
}

template <typename... Ms>
void DecodeGarbageIntoAll(const std::string& garbage) {
  (DecodeGarbageInto<Ms>(garbage), ...);
}

TEST(MessageFuzz, GarbageNeverCrashes) {
  Rng rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const size_t len = rng.NextBelow(200);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    DecodeGarbageIntoAll<CrxPut, CrxPutAck, CrxPutAckBatch, CrxGet, CrxGetReply, CrxChainPut,
                         CrxStableNotify, CrxStabilityCheck, CrxStabilityConfirm, CrPut,
                         CrChainPut, CrPutAck, CrChainAck, CrGet, CrGetReply, CraqPut,
                         CraqChainPut, CraqCommit, CraqPutAck, CraqGet, CraqGetReply,
                         CraqVersionQuery, CraqVersionReply, EvPut, EvReplicate, EvReplicateAck,
                         EvPutAck, EvGet, EvGetReply, EvReadQuery, EvReadReply, GeoLocalStable,
                         GeoLocalStableAck, GeoShip, GeoShipBatch, GeoApplied, GeoRemotePut,
                         MemNewMembership, MemHeartbeat, MemSyncKey, MemSyncDone,
                         MigSnapshotRequest, MigKeyBatch, MigSnapshotDone, MigRangeSealed,
                         MigCommit, MigAbort>(garbage);
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Zero-copy view decoders (CrxPutView / CrxChainPutView / CrxGetView /
// CrxGetReplyView): parity with the owned decoders on both wire formats,
// buffer-lifetime discipline, and fuzz-lite robustness.
// ---------------------------------------------------------------------------

CrxPut SampleCrxPut() {
  CrxPut m;
  m.req = 77;
  m.client = 1234;
  m.key = "view-key";
  m.value = std::string(300, 'v');
  m.deps = SampleDeps();
  m.wm_epoch = 4;
  m.dep_wm = 99;
  m.trace.id = 0xabcdef;
  m.trace.Annotate(HopKind::kClientPut, 1234, 0, 2, 17);
  return m;
}

CrxChainPut SampleCrxChainPut() {
  CrxChainPut m;
  m.key = "chain-key";
  m.value = std::string(128, 'c');
  m.version = SampleVersion();
  m.client = 17;
  m.req = 3;
  m.ack_at = 2;
  m.epoch = 8;
  m.chain_seq = 41;
  m.deps = SampleDeps();
  m.stable_cut = 12345;
  return m;
}

CrxGet SampleCrxGet() {
  CrxGet m;
  m.req = 5;
  m.client = 42;
  m.key = "get-key";
  m.min_version = SampleVersion();
  m.with_deps = true;
  return m;
}

CrxGetReply SampleCrxGetReply() {
  CrxGetReply m;
  m.req = 5;
  m.key = "get-key";
  m.found = true;
  m.value = std::string(64, 'r');
  m.version = SampleVersion();
  m.position = 3;
  m.stable = true;
  m.deps = SampleDeps();
  m.wm_epoch = 2;
  m.stable_wm = 10;
  return m;
}

// Each hot-path struct: the view decoder must see exactly what the owned
// decoder sees, on both wire formats, and encode-from-view must produce
// byte-identical frames to encode-from-owned.
template <typename Owned, typename View>
void CheckViewParity(const Owned& m) {
  for (const WireFormat wf : {WireFormat::kV1, WireFormat::kV2}) {
    const std::string frame = EncodeMessage(m, wf);

    Owned owned;
    View view;
    ASSERT_TRUE(DecodeMessage(frame, &owned));
    ASSERT_TRUE(DecodeMessage(frame, &view));

    // Encode parity: the view round-trips to the identical byte stream.
    EXPECT_EQ(EncodeMessage(view, wf), frame);
    // And ToOwned() produces a struct that re-encodes identically too.
    EXPECT_EQ(EncodeMessage(view.ToOwned(), wf), frame);

    // The view's string fields alias the frame (zero-copy, not a copy that
    // happens to compare equal).
    const char* lo = frame.data();
    const char* hi = frame.data() + frame.size();
    EXPECT_TRUE(view.key.data() >= lo && view.key.data() + view.key.size() <= hi);
  }
}

TEST(MessageView, ParityAllHotPathStructs) {
  CheckViewParity<CrxPut, CrxPutView>(SampleCrxPut());
  CheckViewParity<CrxChainPut, CrxChainPutView>(SampleCrxChainPut());
  CheckViewParity<CrxGet, CrxGetView>(SampleCrxGet());
  // CrxGetReplyView has no ToOwned (replies are consumed within the call);
  // check decode + encode parity by hand.
  for (const WireFormat wf : {WireFormat::kV1, WireFormat::kV2}) {
    const std::string frame = EncodeMessage(SampleCrxGetReply(), wf);
    CrxGetReplyView view;
    ASSERT_TRUE(DecodeMessage(frame, &view));
    EXPECT_EQ(EncodeMessage(view, wf), frame);
    EXPECT_EQ(view.value, SampleCrxGetReply().value);
    ASSERT_EQ(view.deps.size(), 2u);
    EXPECT_EQ(std::string(view.deps[0].key), "dep-key-1");
  }
}

TEST(MessageView, FromOwnedMatchesDecodedView) {
  const CrxChainPut m = SampleCrxChainPut();
  const CrxChainPutView v = CrxChainPutView::From(m);
  EXPECT_EQ(v.key, m.key);
  EXPECT_EQ(v.value, m.value);
  EXPECT_EQ(v.chain_seq, m.chain_seq);
  EXPECT_EQ(v.deps.size(), m.deps.size());
  // From() aliases the owned struct's strings — same zero-copy contract.
  EXPECT_EQ(v.key.data(), m.key.data());
  EXPECT_EQ(v.value.data(), m.value.data());
}

// Lifetime rule: a view dies with its buffer; anything that must outlive
// the buffer goes through ToOwned() *before* the buffer is mutated or
// freed. Under ASan this test additionally proves ToOwned() shares no
// storage with the frame: the frame is heap-freed and every owned byte is
// then read.
TEST(MessageView, ToOwnedSurvivesBufferDestruction) {
  const CrxPut original = SampleCrxPut();
  auto frame = std::make_unique<std::string>(EncodeMessage(original));
  CrxPutView view;
  ASSERT_TRUE(DecodeMessage(*frame, &view));
  CrxPut owned = view.ToOwned();
  frame.reset();  // view is now dangling; owned must not be
  EXPECT_EQ(owned.key, original.key);
  EXPECT_EQ(owned.value, original.value);
  ASSERT_EQ(owned.deps.size(), original.deps.size());
  EXPECT_EQ(owned.deps[0].key, original.deps[0].key);
  EXPECT_TRUE(owned.trace.id == original.trace.id);
}

// Mutating the buffer after decode changes what the view reads (it aliases,
// never snapshots) — while a pre-mutation ToOwned() copy is unaffected.
// This pins the aliasing contract the node relies on: all view reads happen
// before any store GC or buffer reuse can touch the frame.
TEST(MessageView, ViewAliasesMutatedBufferButOwnedCopyDoesNot) {
  std::string frame = EncodeMessage(SampleCrxChainPut());
  CrxChainPutView view;
  ASSERT_TRUE(DecodeMessage(frame, &view));
  const CrxChainPut owned = view.ToOwned();
  ASSERT_FALSE(view.value.empty());
  const size_t value_off = static_cast<size_t>(view.value.data() - frame.data());
  frame[value_off] = 'X';  // in-place mutation, no reallocation
  EXPECT_EQ(view.value[0], 'X');            // the view tracks the buffer
  EXPECT_EQ(owned.value[0], 'c');           // the owned copy does not
}

// Fuzz-lite: every truncation of a valid frame and 300 random single-byte
// mutations must never crash the view decoders (failure is fine; memory
// errors are not — this runs under ASan in CI).
template <typename View>
void FuzzViewDecoder(const std::string& frame, Rng* rng) {
  for (size_t len = 0; len < frame.size(); ++len) {
    View v;
    DecodeMessage(std::string_view(frame.data(), len), &v);
  }
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = frame;
    mutated[rng->NextBelow(mutated.size())] =
        static_cast<char>(rng->NextBelow(256));
    View v;
    DecodeMessage(mutated, &v);
  }
}

TEST(MessageView, FuzzLiteTruncationAndMutation) {
  Rng rng(99);
  for (const WireFormat wf : {WireFormat::kV1, WireFormat::kV2}) {
    {
      const std::string f = EncodeMessage(SampleCrxPut(), wf);
      FuzzViewDecoder<CrxPutView>(f, &rng);
    }
    {
      const std::string f = EncodeMessage(SampleCrxChainPut(), wf);
      FuzzViewDecoder<CrxChainPutView>(f, &rng);
    }
    {
      const std::string f = EncodeMessage(SampleCrxGet(), wf);
      FuzzViewDecoder<CrxGetView>(f, &rng);
    }
    {
      const std::string f = EncodeMessage(SampleCrxGetReply(), wf);
      FuzzViewDecoder<CrxGetReplyView>(f, &rng);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace chainreaction

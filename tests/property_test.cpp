// Property-based sweeps (parameterized gtest): the causal+ guarantee and
// convergence must hold across chain lengths, k values, client counts,
// datacenter counts, and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: single-DC causal+ across (R, k, seed).
// ---------------------------------------------------------------------------

class CausalSweep : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint64_t>> {};

TEST_P(CausalSweep, CausalPlusHoldsAndConverges) {
  const auto [replication, k, seed] = GetParam();
  if (k > replication) {
    GTEST_SKIP() << "k must be <= R";
  }
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 6;
  opts.replication = replication;
  opts.k_stability = k;
  opts.seed = seed;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/100, /*value_size=*/48);
  run.warmup = 200 * kMillisecond;
  run.measure = 1 * kSecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_GT(result.stats.TotalOps(), 200u);
  EXPECT_EQ(result.checker_violations, 0u)
      << "R=" << replication << " k=" << k << " seed=" << seed << ": "
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    RkSeeds, CausalSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),   // R
                       ::testing::Values(1u, 2u, 3u),       // k
                       ::testing::Values(101u, 202u)),      // seed
    [](const ::testing::TestParamInfo<CausalSweep::ParamType>& info) {
      return "R" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 2: geo causal+ across (num_dcs, workload, seed).
// ---------------------------------------------------------------------------

class GeoSweep : public ::testing::TestWithParam<std::tuple<uint16_t, char, uint64_t>> {};

TEST_P(GeoSweep, CausalPlusHoldsAcrossDcs) {
  const auto [dcs, workload, seed] = GetParam();
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 3;
  opts.num_dcs = dcs;
  opts.seed = seed;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = workload == 'A' ? WorkloadSpec::A(80, 48) : WorkloadSpec::B(80, 48);
  run.warmup = 300 * kMillisecond;
  run.measure = 1500 * kMillisecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_EQ(result.checker_violations, 0u)
      << "dcs=" << dcs << " wl=" << workload << " seed=" << seed << ": "
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    DcsWorkloadSeeds, GeoSweep,
    ::testing::Combine(::testing::Values(static_cast<uint16_t>(2), static_cast<uint16_t>(3)),
                       ::testing::Values('A', 'B'),
                       ::testing::Values(11u, 12u)),
    [](const ::testing::TestParamInfo<GeoSweep::ParamType>& info) {
      return "dc" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(1, std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 3: failure injection across seeds and victim counts.
// ---------------------------------------------------------------------------

class FailureSweep : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(FailureSweep, SurvivesCrashes) {
  const auto [victims, seed] = GetParam();
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 12;
  opts.clients_per_dc = 4;
  opts.seed = seed;
  Cluster cluster(opts);
  cluster.Preload(150, 48);

  RunOptions run;
  run.spec = WorkloadSpec::A(150, 48);
  run.preload = false;
  run.warmup = 200 * kMillisecond;
  run.measure = 2 * kSecond;
  run.attach_checker = true;
  for (uint32_t v = 0; v < victims; ++v) {
    cluster.sim()->Schedule((600 + 600 * v) * kMillisecond,
                            [&cluster, v]() { cluster.KillServer(0, 1 + 3 * v); });
  }
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_EQ(result.checker_violations, 0u)
      << "victims=" << victims << " seed=" << seed << ": "
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(VictimsSeeds, FailureSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(41u, 42u)),
                         [](const ::testing::TestParamInfo<FailureSweep::ParamType>& info) {
                           return "kill" + std::to_string(std::get<0>(info.param)) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Sweep 4: the ack position always equals k.
// ---------------------------------------------------------------------------

class AckSweep : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(AckSweep, AckPositionEqualsK) {
  const auto [replication, k] = GetParam();
  if (k > replication) {
    GTEST_SKIP();
  }
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  opts.replication = replication;
  opts.k_stability = k;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);
  for (int i = 0; i < 20; ++i) {
    const Key key = "ack-" + std::to_string(i);
    bool done = false;
    client->Put(key, "v", [&](const auto&) {
      ChainIndex idx = 0;
      ASSERT_TRUE(client->LookupMetadata(key, nullptr, &idx));
      EXPECT_EQ(idx, k);
      done = true;
    });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }
}

INSTANTIATE_TEST_SUITE_P(RTimesK, AckSweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u),
                                            ::testing::Values(1u, 2u, 3u, 4u)),
                         [](const ::testing::TestParamInfo<AckSweep::ParamType>& info) {
                           return "R" + std::to_string(std::get<0>(info.param)) + "_k" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace chainreaction

// Property-based sweeps (parameterized gtest): the causal+ guarantee and
// convergence must hold across chain lengths, k values, client counts,
// datacenter counts, and seeds.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: single-DC causal+ across (R, k, seed).
// ---------------------------------------------------------------------------

class CausalSweep : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint64_t>> {};

TEST_P(CausalSweep, CausalPlusHoldsAndConverges) {
  const auto [replication, k, seed] = GetParam();
  if (k > replication) {
    GTEST_SKIP() << "k must be <= R";
  }
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 6;
  opts.replication = replication;
  opts.k_stability = k;
  opts.seed = seed;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/100, /*value_size=*/48);
  run.warmup = 200 * kMillisecond;
  run.measure = 1 * kSecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_GT(result.stats.TotalOps(), 200u);
  EXPECT_EQ(result.checker_violations, 0u)
      << "R=" << replication << " k=" << k << " seed=" << seed << ": "
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    RkSeeds, CausalSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),   // R
                       ::testing::Values(1u, 2u, 3u),       // k
                       ::testing::Values(101u, 202u)),      // seed
    [](const ::testing::TestParamInfo<CausalSweep::ParamType>& info) {
      return "R" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 2: geo causal+ across (num_dcs, workload, seed).
// ---------------------------------------------------------------------------

class GeoSweep : public ::testing::TestWithParam<std::tuple<uint16_t, char, uint64_t>> {};

TEST_P(GeoSweep, CausalPlusHoldsAcrossDcs) {
  const auto [dcs, workload, seed] = GetParam();
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 3;
  opts.num_dcs = dcs;
  opts.seed = seed;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = workload == 'A' ? WorkloadSpec::A(80, 48) : WorkloadSpec::B(80, 48);
  run.warmup = 300 * kMillisecond;
  run.measure = 1500 * kMillisecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_EQ(result.checker_violations, 0u)
      << "dcs=" << dcs << " wl=" << workload << " seed=" << seed << ": "
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    DcsWorkloadSeeds, GeoSweep,
    ::testing::Combine(::testing::Values(static_cast<uint16_t>(2), static_cast<uint16_t>(3)),
                       ::testing::Values('A', 'B'),
                       ::testing::Values(11u, 12u)),
    [](const ::testing::TestParamInfo<GeoSweep::ParamType>& info) {
      return "dc" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(1, std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 3: failure injection across seeds and victim counts.
// ---------------------------------------------------------------------------

class FailureSweep : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(FailureSweep, SurvivesCrashes) {
  const auto [victims, seed] = GetParam();
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 12;
  opts.clients_per_dc = 4;
  opts.seed = seed;
  Cluster cluster(opts);
  cluster.Preload(150, 48);

  RunOptions run;
  run.spec = WorkloadSpec::A(150, 48);
  run.preload = false;
  run.warmup = 200 * kMillisecond;
  run.measure = 2 * kSecond;
  run.attach_checker = true;
  for (uint32_t v = 0; v < victims; ++v) {
    cluster.sim()->Schedule((600 + 600 * v) * kMillisecond,
                            [&cluster, v]() { cluster.KillServer(0, 1 + 3 * v); });
  }
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_EQ(result.checker_violations, 0u)
      << "victims=" << victims << " seed=" << seed << ": "
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(VictimsSeeds, FailureSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(41u, 42u)),
                         [](const ::testing::TestParamInfo<FailureSweep::ParamType>& info) {
                           return "kill" + std::to_string(std::get<0>(info.param)) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Sweep 4: differential watermark-compression test (DESIGN.md §14). The same
// seeded workload runs twice — explicit COPS-style dependency lists (v1
// wire) vs watermark-compressed dependencies (v2 wire + dep_watermark) —
// and both runs must (a) pass the causal+ checker with zero violations and
// (b) land every key on the same final value. Values, not versions, are
// compared: the byte-size-dependent service model makes timing (and thus
// lamport assignment) diverge between formats, but with per-client key
// ownership and sequential op chains the last write per key is the same
// logical operation in both runs.
// ---------------------------------------------------------------------------

class WatermarkDifferential : public ::testing::TestWithParam<uint64_t> {};

constexpr uint32_t kScriptClients = 4;
constexpr int kScriptSteps = 36;
constexpr int kScriptSlots = 4;  // keys per client

Key ScriptKey(uint32_t client, int slot) {
  return "dk-c" + std::to_string(client) + "-k" + std::to_string(slot);
}

// Each client runs a deterministic sequential chain: two writes to its own
// key slots, then a read of a peer's key (which lands in the accessed set
// and rides the next put as a dependency — the shape the watermark
// compresses). Ownership is disjoint, so the final value of every key is
// the owner's last write regardless of cross-client timing.
void RunScript(Cluster* cluster) {
  std::vector<std::unique_ptr<std::function<void(int)>>> chains;
  for (uint32_t c = 0; c < kScriptClients; ++c) {
    ChainReactionClient* cl = cluster->crx_client(c);
    chains.push_back(std::make_unique<std::function<void(int)>>());
    auto* advance = chains.back().get();
    *advance = [cl, c, advance](int i) {
      if (i >= kScriptSteps) {
        return;
      }
      if (i % 3 == 2) {
        const Key peer = ScriptKey((c + 1) % kScriptClients, i % kScriptSlots);
        cl->Get(peer, [advance, i](const ChainReactionClient::GetResult&) {
          (*advance)(i + 1);
        });
      } else {
        const Key own = ScriptKey(c, i % kScriptSlots);
        cl->Put(own, "v-" + std::to_string(c) + "-" + std::to_string(i),
                [advance, i](const ChainReactionClient::PutResult&) { (*advance)(i + 1); });
      }
    };
    (*advance)(0);
  }
  cluster->sim()->Run();
}

// Final (found, value) per scripted key, read through a client after the
// cluster reached quiescence.
std::map<Key, std::pair<bool, Value>> ScriptSnapshot(Cluster* cluster) {
  std::map<Key, std::pair<bool, Value>> snap;
  for (uint32_t c = 0; c < kScriptClients; ++c) {
    for (int slot = 0; slot < kScriptSlots; ++slot) {
      const Key key = ScriptKey(c, slot);
      cluster->crx_client(0)->Get(key, [&snap, key](const ChainReactionClient::GetResult& r) {
        snap[key] = {r.found, r.value};
      });
      cluster->sim()->Run();
    }
  }
  return snap;
}

ClusterOptions DifferentialOptions(uint64_t seed, bool watermark) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 6;
  opts.seed = seed;
  opts.wire_format = watermark ? WireFormat::kV2 : WireFormat::kV1;
  opts.dep_watermark = watermark;
  return opts;
}

TEST_P(WatermarkDifferential, CheckerCleanBothWays) {
  const uint64_t seed = GetParam();
  for (const bool watermark : {false, true}) {
    Cluster cluster(DifferentialOptions(seed, watermark));
    RunOptions run;
    run.spec = WorkloadSpec::A(/*records=*/100, /*value_size=*/48);
    run.warmup = 200 * kMillisecond;
    run.measure = 1 * kSecond;
    run.attach_checker = true;
    const RunResult result = RunWorkload(&cluster, run);
    EXPECT_GT(result.stats.TotalOps(), 200u) << "watermark=" << watermark;
    EXPECT_EQ(result.checker_violations, 0u)
        << "watermark=" << watermark << " seed=" << seed << ": "
        << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
    std::string diag;
    EXPECT_TRUE(cluster.CheckConvergence(&diag)) << "watermark=" << watermark << " " << diag;
  }
}

// Multi-DC is where the compression actually changes what goes on the wire:
// with remote DCs, explicit mode carries every accessed entry (COPS-style)
// while watermark mode drops locally-covered ones from the lists that ride
// the chain and the geo-replication path. Causal+ must hold identically —
// the checker sees cross-DC reads, and replicas must converge across DCs.
TEST_P(WatermarkDifferential, CheckerCleanBothWaysMultiDc) {
  const uint64_t seed = GetParam();
  for (const bool watermark : {false, true}) {
    ClusterOptions opts = DifferentialOptions(seed, watermark);
    opts.num_dcs = 2;
    opts.clients_per_dc = 4;
    Cluster cluster(opts);
    RunOptions run;
    run.spec = WorkloadSpec::A(/*records=*/100, /*value_size=*/48);
    run.warmup = 200 * kMillisecond;
    run.measure = 1 * kSecond;
    run.attach_checker = true;
    const RunResult result = RunWorkload(&cluster, run);
    EXPECT_GT(result.stats.TotalOps(), 200u) << "watermark=" << watermark;
    EXPECT_EQ(result.checker_violations, 0u)
        << "watermark=" << watermark << " seed=" << seed << ": "
        << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
    std::string diag;
    EXPECT_TRUE(cluster.CheckConvergence(&diag)) << "watermark=" << watermark << " " << diag;
  }
}

TEST_P(WatermarkDifferential, FinalStoreContentsIdentical) {
  const uint64_t seed = GetParam();
  Cluster explicit_deps(DifferentialOptions(seed, /*watermark=*/false));
  RunScript(&explicit_deps);
  std::string diag;
  ASSERT_TRUE(explicit_deps.CheckConvergence(&diag)) << diag;

  Cluster compressed(DifferentialOptions(seed, /*watermark=*/true));
  RunScript(&compressed);
  ASSERT_TRUE(compressed.CheckConvergence(&diag)) << diag;
  // The compression must actually have engaged: by quiescence the clients
  // learned a non-zero cluster watermark from their acks.
  EXPECT_GT(compressed.crx_client(0)->watermark(), 0u);

  const auto a = ScriptSnapshot(&explicit_deps);
  const auto b = ScriptSnapshot(&compressed);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, fv] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    EXPECT_EQ(fv.first, it->second.first) << key;
    EXPECT_EQ(fv.second, it->second.second) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WatermarkDifferential, ::testing::Values(301u, 302u, 303u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "s" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Sweep 5: the ack position always equals k.
// ---------------------------------------------------------------------------

class AckSweep : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(AckSweep, AckPositionEqualsK) {
  const auto [replication, k] = GetParam();
  if (k > replication) {
    GTEST_SKIP();
  }
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  opts.replication = replication;
  opts.k_stability = k;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);
  for (int i = 0; i < 20; ++i) {
    const Key key = "ack-" + std::to_string(i);
    bool done = false;
    client->Put(key, "v", [&](const auto&) {
      ChainIndex idx = 0;
      ASSERT_TRUE(client->LookupMetadata(key, nullptr, &idx));
      EXPECT_EQ(idx, k);
      done = true;
    });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }
}

INSTANTIATE_TEST_SUITE_P(RTimesK, AckSweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u),
                                            ::testing::Values(1u, 2u, 3u, 4u)),
                         [](const ::testing::TestParamInfo<AckSweep::ParamType>& info) {
                           return "R" + std::to_string(std::get<0>(info.param)) + "_k" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace chainreaction

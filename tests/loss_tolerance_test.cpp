// Message-loss tolerance: client retries, head anti-entropy re-propagation,
// gated-put re-probing, and geo retransmission must together keep the
// system live AND causal+ on a lossy network.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

ClusterOptions LossyOpts(double drop, uint64_t seed) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 4;
  opts.seed = seed;
  opts.net.drop_probability = drop;
  opts.client_timeout = 50 * kMillisecond;
  return opts;
}

TEST(LossTolerance, SingleWriteSurvivesDrops) {
  Cluster cluster(LossyOpts(0.2, 3));
  ChainReactionClient* client = cluster.crx_client(0);
  bool done = false;
  client->Put("lossy", "survives", [&](const auto& r) {
    EXPECT_TRUE(r.status.ok());
    done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(done);

  bool read = false;
  client->Get("lossy", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, "survives");
    read = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(read);
}

TEST(LossTolerance, WorkloadStaysCausalAtFivePercentLoss) {
  Cluster cluster(LossyOpts(0.05, 7));
  RunOptions run;
  run.spec = WorkloadSpec::A(100, 64);
  run.warmup = 200 * kMillisecond;
  run.measure = 2 * kSecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_GT(result.stats.TotalOps(), 200u);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  // The drain (sim ran to quiescence) plus anti-entropy means every write
  // eventually stabilized everywhere.
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
  // Nothing may remain parked at heads.
  for (uint32_t i = 0; i < cluster.options().servers_per_dc; ++i) {
    EXPECT_EQ(cluster.crx_node(0, i)->gated_puts_pending(), 0u) << "node " << i;
  }
}

TEST(LossTolerance, DependentWriteUnblocksDespiteLostChainPut) {
  // Deterministic scenario: write k1 (k=1 ack), sever the network after the
  // ack so k1 cannot stabilize, write k2 (gated on k1), then heal. The
  // anti-entropy re-propagation must stabilize k1 and release k2.
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 2;
  opts.k_stability = 1;
  opts.client_timeout = 100 * kMillisecond;
  opts.seed = 11;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  // k=1: the ack arrives from the head before the chain put reaches the
  // successor. Crash-and-restore every *other* node right after the ack to
  // swallow the in-flight propagation without a membership change.
  bool put1_acked = false;
  client->Put("k1", "v1", [&](const auto&) {
    put1_acked = true;
    for (uint32_t i = 0; i < 6; ++i) {
      cluster.net()->Crash(cluster.ServerAddress(0, i));
    }
  });
  cluster.sim()->RunUntil(cluster.sim()->Now() + 10 * kMillisecond);
  ASSERT_TRUE(put1_acked);
  for (uint32_t i = 0; i < 6; ++i) {
    cluster.net()->Restore(cluster.ServerAddress(0, i));
  }

  // k2 depends on k1, which is NOT stable: the put parks at k2's head (or
  // completes quickly if both keys share a head). Anti-entropy eventually
  // re-propagates k1 down its chain, stabilizing it and releasing k2.
  bool put2_acked = false;
  client->Put("k2", "v2", [&](const auto& r) {
    EXPECT_TRUE(r.status.ok());
    put2_acked = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(put2_acked);

  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(LossTolerance, GeoWorkloadSurvivesLoss) {
  ClusterOptions opts = LossyOpts(0.03, 13);
  opts.num_dcs = 2;
  opts.clients_per_dc = 2;
  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::A(60, 64);
  run.warmup = 200 * kMillisecond;
  run.measure = 1500 * kMillisecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
  EXPECT_EQ(cluster.geo(0)->waiting_now(), 0u);
  EXPECT_EQ(cluster.geo(1)->waiting_now(), 0u);
}

}  // namespace
}  // namespace chainreaction

// Tests for the YCSB reimplementation: distribution shapes, workload
// definitions, key/value helpers, and driver behaviour.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "src/ycsb/generators.h"
#include "src/ycsb/workload.h"

namespace chainreaction {
namespace {

TEST(Generators, UniformCoversRange) {
  UniformChooser gen(100);
  Rng rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = gen.Next(&rng);
    ASSERT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Generators, ZipfianIsSkewed) {
  ZipfianChooser gen(1000, 0.99);
  Rng rng(2);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[gen.Next(&rng)]++;
  }
  // Item 0 is by far the most popular; top-10 items carry a large share.
  int top10 = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    top10 += counts[i];
  }
  EXPECT_GT(counts[0], n / 20);              // >5% on the hottest item
  EXPECT_GT(top10, n / 4);                   // >25% on the top 10
  EXPECT_GT(counts[0], counts[100] * 5);     // strong rank decay
}

TEST(Generators, ZipfianStaysInRange) {
  ZipfianChooser gen(37, 0.99);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(gen.Next(&rng), 37u);
  }
}

TEST(Generators, ScrambledZipfianSpreadsHotKeys) {
  ScrambledZipfianChooser gen(1000);
  Rng rng(4);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[gen.Next(&rng)]++;
  }
  // Still skewed: some key is hot...
  int max_count = 0;
  for (auto& [k, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, n / 20);
  // ...but the hottest keys are not consecutive small indices.
  std::vector<uint64_t> hot;
  for (auto& [k, c] : counts) {
    if (c > n / 50) {
      hot.push_back(k);
    }
  }
  ASSERT_GE(hot.size(), 2u);
  bool all_small = true;
  for (uint64_t k : hot) {
    if (k > 10) {
      all_small = false;
    }
  }
  EXPECT_FALSE(all_small);
}

TEST(Generators, LatestPrefersRecent) {
  uint64_t max_index = 1000;
  LatestChooser gen(&max_index);
  Rng rng(5);
  int recent = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = gen.Next(&rng);
    ASSERT_LT(v, max_index);
    if (v >= 900) {
      recent++;
    }
  }
  EXPECT_GT(recent, n / 3);  // newest 10% of keys get a large share

  // Growing the key space shifts popularity to the new keys.
  max_index = 2000;
  int new_keys = 0;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(&rng) >= 1000) {
      new_keys++;
    }
  }
  EXPECT_GT(new_keys, n / 2);
}

TEST(Workload, SpecProportions) {
  const WorkloadSpec a = WorkloadSpec::A();
  EXPECT_DOUBLE_EQ(a.read_proportion + a.update_proportion + a.insert_proportion, 1.0);
  EXPECT_DOUBLE_EQ(a.read_proportion, 0.5);

  const WorkloadSpec b = WorkloadSpec::B();
  EXPECT_DOUBLE_EQ(b.read_proportion, 0.95);

  const WorkloadSpec c = WorkloadSpec::C();
  EXPECT_DOUBLE_EQ(c.read_proportion, 1.0);

  const WorkloadSpec d = WorkloadSpec::D();
  EXPECT_DOUBLE_EQ(d.insert_proportion, 0.05);
  EXPECT_EQ(d.distribution, Distribution::kLatest);
}

TEST(Workload, RecordKeyFormat) {
  EXPECT_EQ(RecordKey(0), "user000000000000");
  EXPECT_EQ(RecordKey(42), "user000000000042");
  EXPECT_NE(RecordKey(1), RecordKey(2));
}

TEST(Workload, MakeValueSizedAndUnique) {
  const Value v1 = MakeValue(7, 1, 64);
  const Value v2 = MakeValue(7, 2, 64);
  const Value v3 = MakeValue(8, 1, 64);
  EXPECT_EQ(v1.size(), 64u);
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, v3);
  // Large ids still fit.
  EXPECT_GE(MakeValue(UINT32_MAX, UINT64_MAX, 8).size(), 8u);
}

TEST(Driver, WorkloadProportionsObserved) {
  ClusterOptions opts;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 4;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::B(/*records=*/500, /*value_size=*/32);
  run.warmup = 100 * kMillisecond;
  run.measure = 2 * kSecond;
  const RunResult result = RunWorkload(&cluster, run);

  const double total = static_cast<double>(result.stats.TotalOps());
  ASSERT_GT(total, 500.0);
  EXPECT_NEAR(static_cast<double>(result.stats.reads) / total, 0.95, 0.03);
  EXPECT_NEAR(static_cast<double>(result.stats.writes) / total, 0.05, 0.03);
}

TEST(Driver, DeterministicForSeed) {
  auto run_once = [] {
    ClusterOptions opts;
    opts.servers_per_dc = 6;
    opts.clients_per_dc = 3;
    opts.seed = 77;
    Cluster cluster(opts);
    RunOptions run;
    run.spec = WorkloadSpec::A(/*records=*/200, /*value_size=*/32);
    run.warmup = 100 * kMillisecond;
    run.measure = 1 * kSecond;
    const RunResult r = RunWorkload(&cluster, run);
    return std::make_pair(r.stats.TotalOps(), r.stats.read_latency.max());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Driver, InsertsGrowKeySpace) {
  ClusterOptions opts;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 2;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::D(/*records=*/300, /*value_size=*/32);
  run.warmup = 100 * kMillisecond;
  run.measure = 2 * kSecond;
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_GT(result.insert_counter, 300u);
  // D has no not-found reads: latest-distribution reads stay within the
  // grown key space, which was fully loaded/inserted.
  EXPECT_LT(static_cast<double>(result.stats.not_found),
            0.02 * static_cast<double>(result.stats.reads));
}

TEST(Driver, ThinkTimeReducesThroughput) {
  auto run_with_think = [](Duration think) {
    ClusterOptions opts;
    opts.servers_per_dc = 6;
    opts.clients_per_dc = 2;
    Cluster cluster(opts);
    RunOptions run;
    run.spec = WorkloadSpec::C(/*records=*/100, /*value_size=*/32);
    run.warmup = 100 * kMillisecond;
    run.measure = 1 * kSecond;
    run.think_time = think;
    return RunWorkload(&cluster, run).throughput_ops_sec;
  };
  const double fast = run_with_think(0);
  const double slow = run_with_think(10 * kMillisecond);
  EXPECT_GT(fast, slow * 2);
  // With 10ms think time, 2 clients do at most ~200 ops/s.
  EXPECT_LT(slow, 220.0);
}

}  // namespace
}  // namespace chainreaction

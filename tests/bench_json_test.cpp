// Regression tests for the bench JSON emitter: names and keys containing
// JSON-special characters must be escaped (they used to be printed raw,
// producing unparseable files).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "tests/json_checker.h"

namespace chainreaction {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class BenchJsonTest : public ::testing::Test {
 protected:
  BenchJsonTest() {
    path_ = ::testing::TempDir() + "crx_bench_json_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".json";
  }
  ~BenchJsonTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(BenchJsonTest, PlainRowsAreValidJson) {
  std::vector<BenchJsonRow> rows;
  rows.push_back({"throughput", {{"ops_per_sec", 1234.5}, {"p99_us", 210}}});
  rows.push_back({"latency", {{"p50_us", 80.25}}});
  ASSERT_TRUE(WriteBenchJson(path_, "bench_e_example", rows));
  const std::string text = ReadFile(path_);
  EXPECT_TRUE(JsonChecker::Valid(text)) << text;
  EXPECT_NE(text.find("\"throughput\""), std::string::npos);
}

TEST_F(BenchJsonTest, SpecialCharactersAreEscaped) {
  std::vector<BenchJsonRow> rows;
  rows.push_back({"name with \"quotes\" and \\backslash\\", {{"key\nnewline", 1}}});
  rows.push_back({"tab\there", {{"plain", 2}}});
  ASSERT_TRUE(WriteBenchJson(path_, "bench \"quoted\"", rows));
  const std::string text = ReadFile(path_);
  EXPECT_TRUE(JsonChecker::Valid(text)) << text;
  // The raw (unescaped) quote sequence must not appear inside a string.
  EXPECT_NE(text.find("\\\"quotes\\\""), std::string::npos) << text;
  EXPECT_NE(text.find("\\n"), std::string::npos) << text;
}

TEST_F(BenchJsonTest, EmptyRowsStillValid) {
  ASSERT_TRUE(WriteBenchJson(path_, "empty", {}));
  EXPECT_TRUE(JsonChecker::Valid(ReadFile(path_)));
}

}  // namespace
}  // namespace chainreaction

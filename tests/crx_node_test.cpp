// Protocol-level tests of the ChainReaction node and client library:
// k-stability acks, chain-index metadata evolution, read distribution,
// dependency gating, retry dedup, and the unsafe modes the checker must
// catch.
#include <gtest/gtest.h>

#include <set>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "src/msg/message.h"
#include "src/sim/network.h"

namespace chainreaction {
namespace {

ClusterOptions SmallCrx(uint32_t servers = 8, uint32_t clients = 2) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = servers;
  opts.clients_per_dc = clients;
  return opts;
}

TEST(CrxProtocol, AckArrivesFromPositionK) {
  for (uint32_t k = 1; k <= 3; ++k) {
    ClusterOptions opts = SmallCrx();
    opts.replication = 3;
    opts.k_stability = k;
    Cluster cluster(opts);
    ChainIndex acked_at = 0;
    cluster.crx_client(0)->Put("key", "v", [&](const ChainReactionClient::PutResult& r) {
      ASSERT_TRUE(r.status.ok());
      acked_at = 0;
      ChainIndex idx = 0;
      ASSERT_TRUE(cluster.crx_client(0)->LookupMetadata("key", nullptr, &idx));
      acked_at = idx;
    });
    cluster.sim()->Run();
    EXPECT_EQ(acked_at, k) << "k=" << k;
  }
}

TEST(CrxProtocol, StableReadExtendsChainIndexToR) {
  ClusterOptions opts = SmallCrx();
  opts.replication = 3;
  opts.k_stability = 1;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  bool put_done = false;
  client->Put("key", "v", [&](const auto&) { put_done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(put_done);

  // The simulator drained: the write reached the tail and became stable.
  // The next read (from position 1, the only allowed one) reports
  // stability and the client may use the whole chain afterwards.
  ChainIndex idx = 0;
  ASSERT_TRUE(client->LookupMetadata("key", nullptr, &idx));
  EXPECT_EQ(idx, 1u);

  bool read_done = false;
  client->Get("key", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.found);
    read_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(read_done);
  ASSERT_TRUE(client->LookupMetadata("key", nullptr, &idx));
  EXPECT_EQ(idx, 3u);
}

TEST(CrxProtocol, ReadsSpreadOverWholeChainForStableData) {
  ClusterOptions opts = SmallCrx(8, 1);
  opts.replication = 3;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  bool done = false;
  client->Put("key", "v", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);

  // First read marks the key stable at the client; subsequent reads pick
  // uniformly among all three positions.
  std::set<ChainIndex> positions;
  for (int i = 0; i < 100; ++i) {
    client->Get("key", [&](const ChainReactionClient::GetResult& r) {
      positions.insert(r.answered_by_position);
    });
    cluster.sim()->Run();
  }
  EXPECT_EQ(positions.size(), 3u) << "reads were not distributed";
  const auto by_pos = cluster.ReadsByPosition();
  uint64_t total = 0;
  for (uint64_t c : by_pos) {
    total += c;
  }
  EXPECT_EQ(total, 100u);
}

TEST(CrxProtocol, HeadOnlyPolicyNeverLeavesPositionOne) {
  ClusterOptions opts = SmallCrx(8, 1);
  opts.read_policy = ReadPolicy::kHeadOnly;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);
  bool done = false;
  client->Put("key", "v", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  for (int i = 0; i < 20; ++i) {
    client->Get("key", [&](const ChainReactionClient::GetResult& r) {
      EXPECT_EQ(r.answered_by_position, 1u);
    });
    cluster.sim()->Run();
  }
}

TEST(CrxProtocol, VersionsGrowPerKey) {
  Cluster cluster(SmallCrx());
  ChainReactionClient* client = cluster.crx_client(0);
  Version v1, v2;
  client->Put("key", "a", [&](const auto& r) { v1 = r.version; });
  cluster.sim()->Run();
  client->Put("key", "b", [&](const auto& r) { v2 = r.version; });
  cluster.sim()->Run();
  EXPECT_EQ(v1.vv.Get(0), 1u);
  EXPECT_EQ(v2.vv.Get(0), 2u);
  EXPECT_TRUE(v1.LwwLess(v2));
  EXPECT_TRUE(v2.CausallyIncludes(v1));
}

TEST(CrxProtocol, AccessedSetCollapsesAfterWrite) {
  Cluster cluster(SmallCrx());
  ChainReactionClient* client = cluster.crx_client(0);

  // Prepare three keys.
  for (const char* key : {"a", "b", "c"}) {
    bool done = false;
    client->Put(key, "v", [&](const auto&) { done = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }
  // After the last write the accessed set is just that key.
  EXPECT_EQ(client->accessed_set_size(), 1u);

  // Reads accumulate dependencies...
  for (const char* key : {"a", "b"}) {
    client->Get(key, [](const auto&) {});
    cluster.sim()->Run();
  }
  EXPECT_EQ(client->accessed_set_size(), 3u);  // c (written) + a + b

  // ...and the next write collapses them. In a single-DC deployment the
  // client omits dependencies it knows to be DC-Write-Stable (a and b were
  // read as stable after the simulator drained), so only the unread-since-
  // write entry for c is carried.
  std::vector<Dependency> carried;
  client->Put("d", "v", [&](const ChainReactionClient::PutResult& r) { carried = r.deps; });
  cluster.sim()->Run();
  ASSERT_EQ(carried.size(), 1u);
  EXPECT_EQ(carried[0].key, "c");
  EXPECT_EQ(client->accessed_set_size(), 1u);
}

TEST(CrxProtocol, GeoModeCarriesStableDepsWithFlag) {
  ClusterOptions opts = SmallCrx(6, 1);
  opts.num_dcs = 2;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  bool done = false;
  client->Put("a", "v", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  client->Get("a", [](const auto&) {});  // learns stability
  cluster.sim()->Run();

  std::vector<Dependency> carried;
  client->Put("b", "v", [&](const ChainReactionClient::PutResult& r) { carried = r.deps; });
  cluster.sim()->Run();
  // With remote DCs the stable dependency must still travel (remote DCs
  // check it), but flagged so the local head skips the stability wait.
  ASSERT_EQ(carried.size(), 1u);
  EXPECT_EQ(carried[0].key, "a");
  EXPECT_TRUE(carried[0].local_stable);
}

TEST(CrxProtocol, DependencyGatingWaitsForSlowTail) {
  // Manual topology: find two keys with disjoint chains, make the dep
  // key's tail slow, and verify the dependent write waits for stability.
  ClusterOptions opts = SmallCrx(8, 1);
  opts.replication = 3;
  opts.k_stability = 1;  // ack as soon as the head applies
  // Slow down everything uniformly so the tail hop dominates.
  opts.server_service = ServiceModel{2000, 0.0, 0};  // 2ms per message
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  // Write the dependency key, then immediately write a second key. With
  // k=1 the ack for key1 arrives long before key1 reaches its tail, so the
  // write of key2 (which depends on key1) must be gated at key2's head.
  Time t_ack2 = 0;
  bool done2 = false;
  client->Put("key-one", "v1", [&](const auto&) {
    client->Put("key-two", "v2", [&](const auto&) {
      t_ack2 = cluster.sim()->Now();
      done2 = true;
    });
  });
  cluster.sim()->Run();
  ASSERT_TRUE(done2);

  // key-two depends on key-one, which cannot be DC-Write-Stable yet when
  // the put arrives (its chain needs several 2ms hops): the head must wait.
  EXPECT_GE(cluster.TotalDepWaits(), 1u);
  EXPECT_GT(cluster.TotalDepWaitMicros(), 0u);
  // Nothing may remain parked.
  for (uint32_t i = 0; i < opts.servers_per_dc; ++i) {
    EXPECT_EQ(cluster.crx_node(0, i)->gated_puts_pending(), 0u);
  }
}

TEST(CrxProtocol, SameKeyWriteBurstNotGated) {
  ClusterOptions opts = SmallCrx(8, 1);
  opts.k_stability = 1;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  int remaining = 10;
  std::function<void()> next = [&]() {
    if (remaining-- == 0) {
      return;
    }
    client->Put("hot", "v", [&](const auto&) { next(); });
  };
  next();
  cluster.sim()->Run();
  // Same-chain dependencies never require a stability round trip.
  EXPECT_EQ(cluster.TotalDepWaits(), 0u);
}

TEST(CrxProtocol, RetriedPutIsDeduplicated) {
  // A raw actor impersonates a client that sends the same request twice
  // (as a timeout-retry would); the head must assign one version only.
  ClusterOptions opts = SmallCrx(8, 1);
  Cluster cluster(opts);

  class RawClient : public Actor {
   public:
    void OnMessage(Address, std::string_view payload) override {
      CrxPutAck ack;
      if (DecodeMessage(payload, &ack)) {
        acks.push_back(ack.version);
      }
    }
    std::vector<Version> acks;
  } raw;
  Env* env = cluster.net()->Register(kClientAddressBase + 999, &raw, 0);

  CrxPut put;
  put.req = 1;
  put.client = kClientAddressBase + 999;
  put.key = "dup-key";
  put.value = "v";
  // The head of dup-key's chain:
  const Ring& ring = cluster.membership(0)->ring();
  const NodeId head = ring.HeadFor("dup-key");
  env->Send(head, EncodeMessage(put));
  cluster.sim()->Run();
  env->Send(head, EncodeMessage(put));  // retry
  cluster.sim()->Run();

  ASSERT_EQ(raw.acks.size(), 2u);
  EXPECT_TRUE(raw.acks[0] == raw.acks[1]) << "retry produced a second version";
  // The store holds exactly one version.
  uint32_t idx = 0;
  for (; idx < opts.servers_per_dc; ++idx) {
    if (cluster.crx_node(0, idx)->id() == head) {
      break;
    }
  }
  EXPECT_EQ(cluster.crx_node(0, idx)->store().VersionCount("dup-key"), 1u);
}

TEST(CrxProtocol, UnsafeReadPolicyCaughtByChecker) {
  ClusterOptions opts = SmallCrx(8, 8);
  opts.read_policy = ReadPolicy::kAnyNodeUnsafe;
  // Long chains, slow links, and a hot key space widen the window between
  // a write's ack (position k=1) and its arrival at the tail, so unsafe
  // whole-chain reads observe causally stale data.
  opts.replication = 5;
  opts.k_stability = 1;
  opts.net.intra_site = LinkModel{800, 400};
  opts.server_service = ServiceModel{200, 0.1, 50};
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/20, /*value_size=*/64);  // hot keys
  run.warmup = 100 * kMillisecond;
  run.measure = 3 * kSecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_GT(result.checker_violations, 0u)
      << "the unsafe read policy should produce detectable violations";
}

TEST(CrxProtocol, SafePolicyCleanUnderSameConditions) {
  ClusterOptions opts = SmallCrx(8, 8);
  opts.net.intra_site = LinkModel{400, 200};
  opts.server_service = ServiceModel{50, 0.1, 10};
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(/*records=*/50, /*value_size=*/64);
  run.warmup = 100 * kMillisecond;
  run.measure = 3 * kSecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
}

TEST(CrxProtocol, ReplicationOneChain) {
  ClusterOptions opts = SmallCrx(4, 1);
  opts.replication = 1;
  opts.k_stability = 1;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);
  bool done = false;
  client->Put("solo", "v", [&](const auto& r) {
    EXPECT_TRUE(r.status.ok());
    done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  bool read = false;
  client->Get("solo", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(r.version.IsNull() == false);
    read = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(read);
}

TEST(CrxProtocol, InterleavedSessionsSeeEachOther) {
  Cluster cluster(SmallCrx(8, 2));
  ChainReactionClient* a = cluster.crx_client(0);
  ChainReactionClient* b = cluster.crx_client(1);

  bool done = false;
  a->Put("shared", "from-a", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);

  Value seen;
  b->Get("shared", [&](const ChainReactionClient::GetResult& r) { seen = r.value; });
  cluster.sim()->Run();
  EXPECT_EQ(seen, "from-a");

  done = false;
  b->Put("shared", "from-b", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);

  a->Get("shared", [&](const ChainReactionClient::GetResult& r) { seen = r.value; });
  cluster.sim()->Run();
  EXPECT_EQ(seen, "from-b");
}

}  // namespace
}  // namespace chainreaction

// Focused unit tests of the client library's session-state rules: metadata
// update precedence, accessed-set stability tracking, retries, and
// determinism of whole-cluster runs.
#include <gtest/gtest.h>

#include "src/common/flags.h"
#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

ClusterOptions Small(uint64_t seed = 1) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 2;
  opts.seed = seed;
  return opts;
}

TEST(ClientSession, MetadataNeverShrinksForSameVersion) {
  Cluster cluster(Small());
  ChainReactionClient* client = cluster.crx_client(0);

  bool done = false;
  client->Put("k", "v", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);

  // Read until the reply reports stability (chain_index -> R), then keep
  // reading: the index must stay at R even when later replies come from
  // position 1.
  for (int i = 0; i < 20; ++i) {
    client->Get("k", [](const auto&) {});
    cluster.sim()->Run();
    ChainIndex idx = 0;
    ASSERT_TRUE(client->LookupMetadata("k", nullptr, &idx));
    if (i > 0) {
      EXPECT_EQ(idx, cluster.options().replication) << "iteration " << i;
    }
  }
}

TEST(ClientSession, NewerVersionReplacesMetadata) {
  Cluster cluster(Small());
  ChainReactionClient* a = cluster.crx_client(0);
  ChainReactionClient* b = cluster.crx_client(1);

  bool done = false;
  a->Put("k", "v1", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  b->Get("k", [](const auto&) {});
  cluster.sim()->Run();
  Version v1;
  ASSERT_TRUE(b->LookupMetadata("k", &v1, nullptr));

  done = false;
  a->Put("k", "v2", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  b->Get("k", [](const auto&) {});
  cluster.sim()->Run();
  Version v2;
  ASSERT_TRUE(b->LookupMetadata("k", &v2, nullptr));
  EXPECT_TRUE(v1.LwwLess(v2));
  EXPECT_TRUE(v2.CausallyIncludes(v1));
}

TEST(ClientSession, ResetForgetsEverything) {
  Cluster cluster(Small());
  ChainReactionClient* client = cluster.crx_client(0);
  bool done = false;
  client->Put("k", "v", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);
  EXPECT_GT(client->metadata_entries(), 0u);
  EXPECT_GT(client->accessed_set_size(), 0u);
  client->ResetSession();
  EXPECT_EQ(client->metadata_entries(), 0u);
  EXPECT_EQ(client->accessed_set_size(), 0u);
}

TEST(ClientSession, RetryOnLostAckIsTransparent) {
  ClusterOptions opts = Small(5);
  opts.client_timeout = 20 * kMillisecond;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  // First write pins down the chain so we can intercept the acking node.
  bool done = false;
  client->Put("probe", "v0", [&](const auto&) { done = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done);

  // Crash-and-restore the whole cluster's links briefly right as the next
  // write's ack would flow: simplest deterministic loss is a short global
  // crash of the client itself... instead, drop everything via the network
  // for a moment after issuing the put.
  int acks = 0;
  client->Put("probe", "v1", [&](const ChainReactionClient::PutResult& r) {
    EXPECT_TRUE(r.status.ok());
    acks++;
  });
  // Let the put reach the head, then sever the client for one timeout.
  cluster.sim()->RunUntil(cluster.sim()->Now() + 150);
  cluster.net()->Crash(client->address());
  cluster.sim()->RunUntil(cluster.sim()->Now() + 5 * kMillisecond);
  cluster.net()->Restore(client->address());
  cluster.sim()->Run();

  EXPECT_EQ(acks, 1) << "exactly one completion despite retries";
  EXPECT_GE(client->retries(), 1u);

  // The retried write must not have created a second version.
  bool read_done = false;
  client->Get("probe", [&](const ChainReactionClient::GetResult& r) {
    EXPECT_EQ(r.value, "v1");
    EXPECT_EQ(r.version.vv.Get(0), 2u) << "duplicate version assigned on retry";
    read_done = true;
  });
  cluster.sim()->Run();
  ASSERT_TRUE(read_done);
}

TEST(ClientSession, WholeClusterRunsAreDeterministic) {
  auto fingerprint = [](uint64_t seed) {
    ClusterOptions opts;
    opts.system = SystemKind::kChainReaction;
    opts.servers_per_dc = 8;
    opts.clients_per_dc = 4;
    opts.seed = seed;
    Cluster cluster(opts);
    RunOptions run;
    run.spec = WorkloadSpec::A(150, 64);
    run.warmup = 100 * kMillisecond;
    run.measure = 1 * kSecond;
    const RunResult r = RunWorkload(&cluster, run);
    return std::make_tuple(r.stats.TotalOps(), r.stats.read_latency.max(),
                           r.stats.write_latency.max(),
                           cluster.sim()->events_executed());
  };
  EXPECT_EQ(fingerprint(42), fingerprint(42));
  EXPECT_NE(fingerprint(42), fingerprint(43));
}

// ------------------------------ flags util ---------------------------------

TEST(Flags, ParsesFormsAndRejectsUnknown) {
  Flags flags;
  const char* argv[] = {"prog", "--alpha", "7", "--beta=hello", "--gamma"};
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv), {"alpha", "beta", "gamma"}));
  EXPECT_EQ(flags.GetInt("alpha", 0), 7);
  EXPECT_EQ(flags.GetString("beta", ""), "hello");
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_FALSE(flags.Has("missing"));

  Flags bad;
  const char* argv2[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(bad.Parse(3, const_cast<char**>(argv2), {"alpha"}));

  Flags positional;
  const char* argv3[] = {"prog", "stray"};
  EXPECT_FALSE(positional.Parse(2, const_cast<char**>(argv3), {"alpha"}));
}

TEST(Flags, DoubleAndDefaults) {
  Flags flags;
  const char* argv[] = {"prog", "--rate=0.25"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv), {"rate"}));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("other", 1.5), 1.5);
}

}  // namespace
}  // namespace chainreaction

// Telemetry pipeline tests: JSON validity of every obs renderer, windowed
// aggregation across counter resets, flight-recorder wraparound and
// concurrency, lock-free LatencyMetric under contention, sampling policy
// determinism, retained-trace eviction, and a live HTTP scrape of the
// TelemetryServer.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/sampling.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/obs/window.h"
#include "tests/json_checker.h"

namespace chainreaction {
namespace {

TEST(JsonCheckerTest, SelfTest) {
  EXPECT_TRUE(JsonChecker::Valid("{}"));
  EXPECT_TRUE(JsonChecker::Valid("[]"));
  EXPECT_TRUE(JsonChecker::Valid("{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\\\"y\"},\"d\":null}"));
  EXPECT_TRUE(JsonChecker::Valid("[{\"t\":true},{\"f\":false}]"));
  EXPECT_FALSE(JsonChecker::Valid("{"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":}"));
  EXPECT_FALSE(JsonChecker::Valid("[1,]"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":1} trailing"));
  EXPECT_FALSE(JsonChecker::Valid("\"unterminated"));
}

// ---------------------------------------------------------------------------
// Renderer validity.

TEST(TelemetryJsonTest, MetricsSnapshotRenderJsonIsValid) {
  MetricsRegistry registry;
  registry.GetCounter("test_counter", {{"node", "1"}})->Inc(42);
  registry.GetGauge("test_gauge")->Set(-7);
  LatencyMetric* lat = registry.GetLatency("test_latency", {{"dc", "0"}});
  for (int i = 1; i <= 100; ++i) {
    lat->Record(i * 10);
  }
  lat->RecordWithExemplar(5000, 0xabcdef0123456789ULL);
  const std::string json = registry.Snapshot().RenderJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("test_counter"), std::string::npos);
}

TEST(TelemetryJsonTest, WindowedViewRenderJsonIsValid) {
  MetricsRegistry registry;
  registry.GetCounter("w_counter")->Inc(10);
  registry.GetLatency("w_latency")->Record(123);
  WindowedAggregator agg;
  agg.Advance(registry.Snapshot(), 1'000'000);
  registry.GetCounter("w_counter")->Inc(5);
  const WindowedView view = agg.Advance(registry.Snapshot(), 2'000'000);
  const std::string json = view.RenderJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(TelemetryJsonTest, TraceAndEventsRenderJsonAreValid) {
  TraceCollector traces;
  TraceContext ctx;
  ctx.id = 0x1234;
  ctx.Annotate(HopKind::kClientPut, 1000, 0, 0, 10);
  ctx.Annotate(HopKind::kHeadApply, 3, 0, 1, 25);
  traces.Report(ctx);
  TraceCollector::Trace t;
  ASSERT_TRUE(traces.Find(0x1234, &t));
  EXPECT_TRUE(JsonChecker::Valid(TraceCollector::RenderJson(t)));

  FlightRecorder recorder;
  recorder.Emit(EventKind::kEpochChange, 100, 2, 1);
  recorder.Emit(EventKind::kWalRotate, 200, 3, 4096);
  EXPECT_TRUE(JsonChecker::Valid(FlightRecorder::RenderJson(recorder.Snapshot())));
}

TEST(TelemetryPrometheusTest, ExpositionFormat) {
  MetricsRegistry registry;
  registry.GetCounter("crx_test_total", {{"node", "3"}})->Inc(9);
  LatencyMetric* lat = registry.GetLatency("crx_test_latency_us");
  for (int i = 0; i < 1000; ++i) {
    lat->Record(100 + i);
  }
  lat->RecordWithExemplar(90000, 0xdeadbeefULL);
  const std::string prom = registry.Snapshot().RenderPrometheus();

  EXPECT_NE(prom.find("# TYPE crx_test_total counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("crx_test_total{node=\"3\"} 9"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE crx_test_latency_us histogram"), std::string::npos);
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"} 1001"), std::string::npos) << prom;
  EXPECT_NE(prom.find("crx_test_latency_us_count 1001"), std::string::npos);
  // The slow sample's exemplar annotation links its bucket to the trace id.
  EXPECT_NE(prom.find("# {trace_id=\"00000000deadbeef\"} 90000"), std::string::npos) << prom;

  // Cumulative bucket counts must be monotone non-decreasing.
  uint64_t prev = 0;
  size_t at = 0;
  while ((at = prom.find("_bucket{le=\"", at)) != std::string::npos) {
    const size_t sp = prom.find("} ", at);
    ASSERT_NE(sp, std::string::npos);
    const uint64_t count = std::strtoull(prom.c_str() + sp + 2, nullptr, 10);
    EXPECT_GE(count, prev);
    prev = count;
    ++at;
  }
}

// ---------------------------------------------------------------------------
// Windowed aggregation.

TEST(WindowedAggregatorTest, CounterDeltasAndRates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ops");
  c->Inc(100);
  WindowedAggregator agg;
  const WindowedView first = agg.Advance(registry.Snapshot(), 1'000'000);
  // First window reports cumulative history.
  ASSERT_NE(first.Find("ops"), nullptr);
  EXPECT_EQ(first.Find("ops")->delta, 100);

  c->Inc(50);
  const WindowedView second = agg.Advance(registry.Snapshot(), 2'000'000);
  ASSERT_NE(second.Find("ops"), nullptr);
  EXPECT_EQ(second.Find("ops")->delta, 50);
  EXPECT_EQ(second.interval_us, 1'000'000);
  EXPECT_DOUBLE_EQ(second.Find("ops")->rate, 50.0);
}

TEST(WindowedAggregatorTest, CounterResetReportsFreshStart) {
  // Hand-built snapshots simulate an instrument that went backwards (a
  // restarted node re-registering): the aggregator must not report a
  // negative delta.
  MetricsSnapshot before;
  MetricPoint p;
  p.name = "ops";
  p.kind = MetricKind::kCounter;
  p.value = 1000;
  before.points.push_back(p);

  MetricsSnapshot after = before;
  after.points[0].value = 30;  // reset + 30 new ops

  WindowedAggregator agg;
  agg.Advance(before, 1'000'000);
  const WindowedView view = agg.Advance(after, 2'000'000);
  ASSERT_NE(view.Find("ops"), nullptr);
  EXPECT_EQ(view.Find("ops")->delta, 30);
}

TEST(WindowedAggregatorTest, HistogramIntervalAndGauge) {
  MetricsRegistry registry;
  LatencyMetric* lat = registry.GetLatency("lat");
  Gauge* g = registry.GetGauge("depth");
  for (int i = 0; i < 10; ++i) {
    lat->Record(100);
  }
  g->Set(7);
  WindowedAggregator agg;
  agg.Advance(registry.Snapshot(), 1'000'000);
  for (int i = 0; i < 5; ++i) {
    lat->Record(200);
  }
  g->Set(3);
  const WindowedView view = agg.Advance(registry.Snapshot(), 2'000'000);
  const WindowedPoint* lp = view.Find("lat");
  ASSERT_NE(lp, nullptr);
  EXPECT_EQ(lp->interval.count(), 5u);  // only the new samples
  const WindowedPoint* gp = view.Find("depth");
  ASSERT_NE(gp, nullptr);
  EXPECT_EQ(gp->delta, 3);  // gauges report the current level
}

TEST(WindowedAggregatorTest, ResetForgetsBaseline) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ops");
  c->Inc(10);
  WindowedAggregator agg;
  agg.Advance(registry.Snapshot(), 1'000'000);
  c->Inc(10);
  agg.Reset();
  const WindowedView view = agg.Advance(registry.Snapshot(), 2'000'000);
  ASSERT_NE(view.Find("ops"), nullptr);
  EXPECT_EQ(view.Find("ops")->delta, 20);  // cumulative again after reset
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorderTest, WraparoundKeepsNewest) {
  FlightRecorder recorder;
  const uint64_t total = 1000;
  for (uint64_t i = 0; i < total; ++i) {
    recorder.Emit(EventKind::kEpochChange, static_cast<int64_t>(i), static_cast<int64_t>(i));
  }
  EXPECT_EQ(recorder.emitted(), total);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kSlots);
  EXPECT_EQ(events.front().seq, total - FlightRecorder::kSlots);
  EXPECT_EQ(events.back().seq, total - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);  // dense and sorted
    EXPECT_EQ(events[i].a, static_cast<int64_t>(events[i].seq));  // payload matches
  }
}

TEST(FlightRecorderTest, ConcurrentEmitAndSnapshot) {
  FlightRecorder recorder;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop]() {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<FlightEvent> events = recorder.Snapshot();
      for (size_t i = 1; i < events.size(); ++i) {
        // A torn snapshot would show duplicate or unsorted seqs.
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Emit(EventKind::kGeoShip, static_cast<int64_t>(i), t, static_cast<int64_t>(i));
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.emitted(), kThreads * kPerThread);
  EXPECT_EQ(recorder.Snapshot().size(), FlightRecorder::kSlots);
}

TEST(FlightRecorderTest, DumpToFileWritesCrashHeader) {
  FlightRecorder recorder;
  recorder.Emit(EventKind::kEpochChange, 10, 1);
  recorder.Emit(EventKind::kWalRecovery, 20, 55, 3);
  const std::string path = ::testing::TempDir() + "flight_dump_test.log";
  ASSERT_TRUE(recorder.DumpToFile(path, 12345));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(4096, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("crash_dump"), std::string::npos) << contents;
  EXPECT_NE(contents.find("epoch_change"), std::string::npos);
  EXPECT_NE(contents.find("wal_recovery a=55 b=3"), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFileShutdownHeader) {
  FlightRecorder recorder;
  recorder.Emit(EventKind::kEpochChange, 10, 1);
  const std::string path = ::testing::TempDir() + "flight_shutdown_test.log";
  ASSERT_TRUE(recorder.DumpToFile(path, 777, EventKind::kShutdownDump));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(4096, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("shutdown_dump"), std::string::npos) << contents;
  EXPECT_EQ(contents.find("crash_dump"), std::string::npos);
}

// Clean harness teardown must leave each node's flight recorder on disk —
// crash dumps alone are not enough for post-mortems of runs that ended
// normally but behaved oddly.
TEST(FlightRecorderTest, ClusterTeardownDumpsFlightLogs) {
  const std::string root = ::testing::TempDir() + "flight_teardown_cluster";
  std::string node_dir;
  {
    ClusterOptions opts;
    opts.servers_per_dc = 3;
    opts.clients_per_dc = 2;
    opts.data_root = root;
    Cluster cluster(opts);
    cluster.Preload(20, 32);
    node_dir = cluster.NodeDataDir(0, 0);
  }  // ~Cluster: clean shutdown, no crash
  const std::string path = node_dir + "/flight.log";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path << " missing after clean teardown";
  std::string contents(65536, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  EXPECT_NE(contents.find("shutdown_dump"), std::string::npos) << contents;
}

// ---------------------------------------------------------------------------
// Lock-free LatencyMetric.

TEST(LatencyMetricTest, ConcurrentRecordLosesNothing) {
  MetricsRegistry registry;
  LatencyMetric* lat = registry.GetLatency("contended");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([lat]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        lat->Record(static_cast<int64_t>(i % 1000) + 1);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  // Writers have quiesced, so the relaxed snapshot is exact.
  const Histogram h = lat->Snapshot();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
}

TEST(LatencyMetricTest, ExemplarLinksBucketToTrace) {
  LatencyMetric lat;
  lat.RecordWithExemplar(750, 0x1111222233334444ULL);
  const std::vector<LatencyExemplar> ex = lat.Exemplars();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].trace_id, 0x1111222233334444ULL);
  EXPECT_EQ(ex[0].value, 750);
  EXPECT_GE(ex[0].bucket_upper, 750);
}

// ---------------------------------------------------------------------------
// Sampling policy.

TEST(SamplingPolicyTest, StrideAndProbability) {
  TraceSamplingPolicy off;
  uint64_t rng = 1;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.HeadSample(0, &rng));

  TraceSamplingPolicy stride;
  stride.sample_every = 4;
  EXPECT_TRUE(stride.HeadSample(0, &rng));
  EXPECT_FALSE(stride.HeadSample(1, &rng));
  EXPECT_TRUE(stride.HeadSample(4, &rng));

  TraceSamplingPolicy always;
  always.probability = 1.0;
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(always.HeadSample(i, &rng));
  }

  // Deterministic: same seed, same decisions.
  TraceSamplingPolicy half;
  half.probability = 0.5;
  uint64_t rng_a = 42, rng_b = 42;
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(half.HeadSample(i, &rng_a), half.HeadSample(i, &rng_b));
  }

  TraceSamplingPolicy tail;
  tail.slow_trace_us = 500;
  EXPECT_TRUE(tail.capture_all());
  EXPECT_TRUE(tail.enabled());
}

// ---------------------------------------------------------------------------
// Retained-trace eviction.

TEST(TraceRetentionTest, RetainedTracesSurviveEvictionPressure) {
  TraceCollector traces;
  // First trace goes in and is retained (a tail-sampled slow put).
  TraceContext slow;
  slow.id = 0x51;
  slow.Annotate(HopKind::kClientPut, 1, 0, 0, 1);
  traces.Report(slow);
  traces.Retain(0x51);

  // Flood well past the collector's cap; unretained old traces evict.
  for (uint64_t i = 0; i < 6000; ++i) {
    TraceContext ctx;
    ctx.id = 0x1000 + i;
    ctx.Annotate(HopKind::kClientPut, 1, 0, 0, static_cast<Time>(i));
    traces.Report(ctx);
  }

  TraceCollector::Trace t;
  EXPECT_TRUE(traces.Find(0x51, &t)) << "retained trace was evicted";
  EXPECT_TRUE(traces.IsRetained(0x51));
  EXPECT_FALSE(traces.Find(0x1000, &t)) << "oldest unretained trace should be gone";
  EXPECT_EQ(traces.retained_count(), 1u);
}

TEST(TraceRetentionTest, DiscardDropsImmediately) {
  TraceCollector traces;
  TraceContext ctx;
  ctx.id = 0x99;
  ctx.Annotate(HopKind::kClientPut, 1, 0, 0, 1);
  traces.Report(ctx);
  EXPECT_EQ(traces.size(), 1u);
  traces.Discard(0x99);
  EXPECT_EQ(traces.size(), 0u);
  TraceCollector::Trace t;
  EXPECT_FALSE(traces.Find(0x99, &t));
}

// ---------------------------------------------------------------------------
// Live HTTP scrape.

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string Body(const std::string& resp) {
  const size_t split = resp.find("\r\n\r\n");
  return split == std::string::npos ? "" : resp.substr(split + 4);
}

TEST(TelemetryServerTest, LiveScrape) {
  MetricsRegistry registry;
  registry.GetCounter("scrape_counter", {{"node", "0"}})->Inc(5);
  registry.GetLatency("scrape_latency")->Record(100);
  TraceCollector traces;
  TraceContext ctx;
  ctx.id = 0xabc;
  ctx.Annotate(HopKind::kClientPut, 1, 0, 0, 1);
  ctx.Annotate(HopKind::kClientAck, 1, 0, 0, 900);
  traces.Report(ctx);
  traces.Retain(0xabc);
  FlightRecorder recorder;
  recorder.Emit(EventKind::kEpochChange, 1, 2);

  TelemetryServer server(0);
  ASSERT_TRUE(server.ok());
  server.AttachMetrics(&registry);
  server.AttachTraces(&traces);
  server.AddRecorder("n0", &recorder);
  server.SetStatusProvider([]() { return std::string("{\"role\":\"test\"}"); });
  server.Start();
  const uint16_t port = server.port();
  ASSERT_NE(port, 0);

  const std::string prom = HttpGet(port, "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE scrape_counter counter"), std::string::npos);
  EXPECT_NE(prom.find("scrape_counter{node=\"0\"} 5"), std::string::npos);

  EXPECT_NE(HttpGet(port, "/metrics?filter=scrape_counter").find("scrape_counter"),
            std::string::npos);

  EXPECT_TRUE(JsonChecker::Valid(Body(HttpGet(port, "/metrics.json"))));
  EXPECT_TRUE(JsonChecker::Valid(Body(HttpGet(port, "/metrics/window?format=json"))));
  EXPECT_TRUE(JsonChecker::Valid(Body(HttpGet(port, "/events?format=json"))));
  EXPECT_TRUE(JsonChecker::Valid(Body(HttpGet(port, "/status"))));

  const std::string list = Body(HttpGet(port, "/traces"));
  EXPECT_NE(list.find("0000000000000abc retained"), std::string::npos) << list;
  const std::string trace = HttpGet(port, "/traces/0000000000000abc");
  EXPECT_NE(trace.find("client_put"), std::string::npos);
  EXPECT_TRUE(
      JsonChecker::Valid(Body(HttpGet(port, "/traces/0000000000000abc?format=json"))));

  EXPECT_NE(HttpGet(port, "/nope").find("404"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace chainreaction

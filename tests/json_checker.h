// A tiny recursive-descent JSON syntax checker — enough for tests to assert
// that a renderer emits well-formed JSON without adding a parser dependency.
// Shared by the telemetry tests (obs renderers) and the bench-JSON tests.
#ifndef TESTS_JSON_CHECKER_H_
#define TESTS_JSON_CHECKER_H_

#include <cctype>
#include <cstring>
#include <string>

namespace chainreaction {

class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker c(text);
    c.SkipWs();
    if (!c.Value()) {
      return false;
    }
    c.SkipWs();
    return c.at_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Value() {
    if (at_ >= text_.size()) {
      return false;
    }
    switch (text_[at_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++at_;  // '{'
    SkipWs();
    if (Peek('}')) {
      ++at_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (!Peek(':')) {
        return false;
      }
      ++at_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek(',')) {
        ++at_;
        continue;
      }
      if (Peek('}')) {
        ++at_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++at_;  // '['
    SkipWs();
    if (Peek(']')) {
      ++at_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek(',')) {
        ++at_;
        continue;
      }
      if (Peek(']')) {
        ++at_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (!Peek('"')) {
      return false;
    }
    ++at_;
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c == '"') {
        ++at_;
        return true;
      }
      if (c == '\\') {
        ++at_;
        if (at_ >= text_.size()) {
          return false;
        }
      }
      ++at_;
    }
    return false;
  }

  bool Number() {
    const size_t start = at_;
    if (Peek('-')) {
      ++at_;
    }
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) || text_[at_] == '.' ||
            text_[at_] == 'e' || text_[at_] == 'E' || text_[at_] == '+' ||
            text_[at_] == '-')) {
      ++at_;
    }
    return at_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(at_, len, word) != 0) {
      return false;
    }
    at_ += len;
    return true;
  }

  bool Peek(char c) const { return at_ < text_.size() && text_[at_] == c; }

  void SkipWs() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\n' || text_[at_] == '\t' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  const std::string& text_;
  size_t at_ = 0;
};

}  // namespace chainreaction

#endif  // TESTS_JSON_CHECKER_H_

// Checkpoint save/load round trips, corruption detection, and the recovery
// semantics (a restored store behaves identically, including causal
// bookkeeping and GC state).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/msg/message.h"
#include "src/storage/checkpoint.h"

namespace chainreaction {
namespace {

Version V(uint64_t lamport, DcId origin, std::initializer_list<uint64_t> vv) {
  Version v;
  v.lamport = lamport;
  v.origin = origin;
  v.vv = VersionVector(vv.size());
  size_t i = 0;
  for (uint64_t c : vv) {
    v.vv.Set(static_cast<DcId>(i++), c);
  }
  return v;
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() {
    path_ = ::testing::TempDir() + "crx_checkpoint_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  ~CheckpointTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CheckpointTest, RoundTripPreservesEverything) {
  VersionedStore store;
  const std::vector<Dependency> a1_deps = {Dependency{"z", V(9, 1, {0, 3}), true}};
  store.Apply("a", "a1", V(1, 0, {1, 0}), a1_deps);
  store.Apply("a", "a2", V(2, 0, {2, 0}));
  store.MarkStable("a", V(1, 0, {1, 0}));
  store.Apply("b", "b-geo", V(5, 1, {0, 1}));
  store.MarkStable("b", V(5, 1, {0, 1}));

  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());

  VersionedStore restored;
  ASSERT_TRUE(LoadCheckpoint(path_, &restored).ok());

  EXPECT_EQ(restored.KeyCount(), store.KeyCount());
  EXPECT_EQ(restored.total_versions(), store.total_versions());

  const StoredVersion* a = restored.Latest("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, "a2");
  EXPECT_FALSE(a->stable);
  const StoredVersion* a_stable = restored.LatestStable("a");
  ASSERT_NE(a_stable, nullptr);
  EXPECT_EQ(a_stable->value, "a1");
  ASSERT_EQ(a_stable->deps.size(), 1u);
  EXPECT_EQ(a_stable->deps[0].key, "z");
  EXPECT_TRUE(a_stable->deps[0].local_stable);

  const StoredVersion* b = restored.Latest("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->stable);

  // Causal bookkeeping restored too.
  EXPECT_TRUE(restored.HasAtLeast("a", V(2, 0, {2, 0})));
  EXPECT_FALSE(restored.HasAtLeast("a", V(3, 0, {3, 0})));
  EXPECT_EQ(restored.UnstableVersions("a").size(), 1u);
}

TEST_F(CheckpointTest, EmptyStoreRoundTrips) {
  VersionedStore store;
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());
  VersionedStore restored;
  ASSERT_TRUE(LoadCheckpoint(path_, &restored).ok());
  EXPECT_EQ(restored.KeyCount(), 0u);
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  VersionedStore restored;
  const Status s = LoadCheckpoint(path_ + ".nope", &restored);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, CorruptionDetected) {
  VersionedStore store;
  for (int i = 0; i < 20; ++i) {
    store.Apply("key-" + std::to_string(i), "value-" + std::to_string(i),
                V(static_cast<uint64_t>(i + 1), 0, {static_cast<uint64_t>(i + 1)}));
  }
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());

  // Flip one payload byte.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 64, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 64, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);

  VersionedStore restored;
  const Status s = LoadCheckpoint(path_, &restored);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST_F(CheckpointTest, TruncationDetected) {
  VersionedStore store;
  store.Apply("k", "v", V(1, 0, {1}));
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());

  // Truncate the file to half.
  FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);

  VersionedStore restored;
  const Status s = LoadCheckpoint(path_, &restored);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST_F(CheckpointTest, GarbageFileRejected) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a checkpoint", f);
  std::fclose(f);
  VersionedStore restored;
  const Status s = LoadCheckpoint(path_, &restored);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, SaveIsAtomic) {
  VersionedStore store;
  store.Apply("k", "old", V(1, 0, {1}));
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());

  store.Apply("k", "new", V(2, 0, {2}));
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());

  // The temp file never survives a successful save, and the final file is
  // the complete new checkpoint.
  FILE* tmp = std::fopen((path_ + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) {
    std::fclose(tmp);
  }
  VersionedStore restored;
  ASSERT_TRUE(LoadCheckpoint(path_, &restored).ok());
  EXPECT_EQ(restored.Latest("k")->value, "new");
}

TEST_F(CheckpointTest, WalSeqRoundTrips) {
  VersionedStore store;
  store.Apply("k", "v", V(1, 0, {1}));
  ASSERT_TRUE(SaveCheckpoint(store, path_, /*wal_seq=*/42).ok());

  VersionedStore restored;
  uint64_t wal_seq = 0;
  ASSERT_TRUE(LoadCheckpoint(path_, &restored, &wal_seq).ok());
  EXPECT_EQ(wal_seq, 42u);
}

TEST_F(CheckpointTest, UnknownFormatVersionRejected) {
  VersionedStore store;
  store.Apply("k", "v", V(1, 0, {1}));
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());

  // Bump the format field (bytes 4..7) to a future version.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 4, SEEK_SET);
  const uint32_t future = 99;
  std::fwrite(&future, sizeof(future), 1, f);
  std::fclose(f);

  VersionedStore restored;
  const Status s = LoadCheckpoint(path_, &restored);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.ToString().find("unsupported checkpoint format"), std::string::npos);
}

TEST_F(CheckpointTest, LoadsFormatV1Files) {
  // Hand-build a v1 checkpoint (no wal_seq field): one entry for key "k".
  ByteWriter payload;
  payload.PutString("k");
  payload.PutString("v1-value");
  V(3, 0, {3}).Encode(&payload);
  payload.PutBool(true);
  EncodeDeps(std::vector<Dependency>{}, &payload);

  ByteWriter file;
  file.PutU32(0x43525843);  // magic
  file.PutU32(1);           // v1
  file.PutU64(1);           // entries
  file.PutU64(Fnv1a64(payload.data()));
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(file.data().data(), 1, file.size(), f);
  std::fwrite(payload.data().data(), 1, payload.size(), f);
  std::fclose(f);

  VersionedStore restored;
  uint64_t wal_seq = 77;
  ASSERT_TRUE(LoadCheckpoint(path_, &restored, &wal_seq).ok());
  EXPECT_EQ(wal_seq, 0u);  // v1 carries no WAL coordination
  ASSERT_NE(restored.Latest("k"), nullptr);
  EXPECT_EQ(restored.Latest("k")->value, "v1-value");
  EXPECT_TRUE(restored.Latest("k")->stable);
}

TEST_F(CheckpointTest, LoadsFormatV2Files) {
  // Hand-build a v2 checkpoint (wal_seq, no engine byte): one entry.
  ByteWriter payload;
  payload.PutString("k");
  payload.PutString("v2-value");
  V(4, 0, {4}).Encode(&payload);
  payload.PutBool(false);
  EncodeDeps(std::vector<Dependency>{}, &payload);

  ByteWriter file;
  file.PutU32(0x43525843);  // magic
  file.PutU32(2);           // v2
  file.PutU64(13);          // wal_seq
  file.PutU64(1);           // entries
  file.PutU64(Fnv1a64(payload.data()));
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(file.data().data(), 1, file.size(), f);
  std::fwrite(payload.data().data(), 1, payload.size(), f);
  std::fclose(f);

  VersionedStore restored;
  uint64_t wal_seq = 0;
  ASSERT_TRUE(LoadCheckpoint(path_, &restored, &wal_seq).ok());
  EXPECT_EQ(wal_seq, 13u);
  ASSERT_NE(restored.Latest("k"), nullptr);
  EXPECT_EQ(restored.Latest("k")->value, "v2-value");
  EXPECT_FALSE(restored.Latest("k")->stable);
}

TEST_F(CheckpointTest, UnknownEngineKindRejected) {
  VersionedStore store;
  store.Apply("k", "v", V(1, 0, {1}));
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());

  // v3 header: magic u32, format u32, wal_seq u64, engine u8 at offset 16.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16, SEEK_SET);
  std::fputc(7, f);
  std::fclose(f);

  VersionedStore restored;
  const Status s = LoadCheckpoint(path_, &restored);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.ToString().find("unknown checkpoint engine kind"), std::string::npos);
}

// The disk-engine cross-version / incremental behavior needs a value-log
// directory alongside the checkpoint file.
class DiskCheckpointTest : public CheckpointTest {
 protected:
  DiskCheckpointTest() {
    vlog_ = ::testing::TempDir() + "crx_checkpoint_vlog_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  ~DiskCheckpointTest() override {
    std::error_code ec;
    std::filesystem::remove_all(vlog_, ec);
  }

  std::unique_ptr<StorageEngine> OpenVlog() {
    std::unique_ptr<StorageEngine> engine;
    const Status st = OpenDiskEngine(vlog_, DiskEngineOptions{}, &engine);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return engine;
  }

  void FillStore(VersionedStore* store, uint64_t records, size_t value_size) {
    for (uint64_t i = 0; i < records; ++i) {
      const Key key = "bulk-" + std::to_string(i);
      const Version v = V(i + 1, 0, {i + 1});
      store->Apply(key, std::string(value_size, 'd'), v);
      store->MarkStable(key, v);
    }
  }

  std::string vlog_;
};

TEST_F(DiskCheckpointTest, DiskCheckpointIsIndexSized) {
  // Same data under both engines: the disk checkpoint stores handles, not
  // values, so it must be a small fraction of the mem checkpoint.
  const std::string mem_path = path_ + ".mem";
  {
    VersionedStore store;
    FillStore(&store, 500, 1024);
    ASSERT_TRUE(SaveCheckpoint(store, mem_path).ok());
  }
  {
    VersionedStore store;
    store.AttachEngine(OpenVlog());
    FillStore(&store, 500, 1024);
    ASSERT_TRUE(SaveCheckpoint(store, path_).ok());
  }
  const uint64_t mem_bytes = std::filesystem::file_size(mem_path);
  const uint64_t disk_bytes = std::filesystem::file_size(path_);
  std::remove(mem_path.c_str());
  EXPECT_LE(disk_bytes * 4, mem_bytes)
      << "disk=" << disk_bytes << " mem=" << mem_bytes;
}

TEST_F(DiskCheckpointTest, DiskCheckpointRequiresDiskEngine) {
  {
    VersionedStore store;
    store.AttachEngine(OpenVlog());
    store.Apply("k", "v", V(1, 0, {1}));
    ASSERT_TRUE(SaveCheckpoint(store, path_).ok());
  }
  VersionedStore mem_store;  // no disk engine attached
  const Status s = LoadCheckpoint(path_, &mem_store);
  // Caller misconfiguration (the file itself is fine): kInternal.
  EXPECT_EQ(s.code(), StatusCode::kInternal) << s.ToString();
  EXPECT_NE(s.ToString().find("requires a disk engine"), std::string::npos);
}

TEST_F(DiskCheckpointTest, MemCheckpointLoadsUnderDiskEngine) {
  // Cross-engine compatibility: a v3-mem (value-carrying) checkpoint loads
  // into a disk-engine store — values are re-appended to the log.
  {
    VersionedStore store;
    store.Apply("a", "value-a", V(1, 0, {1}));
    store.Apply("b", "value-b", V(2, 0, {2}));
    store.MarkStable("a", V(1, 0, {1}));
    ASSERT_TRUE(SaveCheckpoint(store, path_).ok());
  }
  VersionedStore restored;
  restored.AttachEngine(OpenVlog());
  ASSERT_TRUE(LoadCheckpoint(path_, &restored).ok());
  EXPECT_GT(restored.engine()->Stats().appends, 0u);
  ASSERT_NE(restored.Latest("a"), nullptr);
  EXPECT_EQ(restored.Latest("a")->value, "value-a");
  EXPECT_TRUE(restored.Latest("a")->stable);
  ASSERT_NE(restored.Latest("b"), nullptr);
  EXPECT_EQ(restored.Latest("b")->value, "value-b");
}

TEST_F(DiskCheckpointTest, StaleHandleRejectedAsCorruption) {
  // A checkpoint whose handles point beyond the (shorter) value log is the
  // log/checkpoint-mismatch case: load must fail cleanly, not serve junk.
  {
    VersionedStore store;
    store.AttachEngine(OpenVlog());
    FillStore(&store, 50, 256);
    ASSERT_TRUE(SaveCheckpoint(store, path_).ok());
  }
  std::filesystem::remove_all(vlog_);  // the log vanishes; checkpoint stays
  VersionedStore restored;
  restored.AttachEngine(OpenVlog());  // fresh, empty log
  const Status s = LoadCheckpoint(path_, &restored);
  // The manifest high-water mark is past the (empty) log's end.
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST_F(CheckpointTest, LargeStoreRoundTrip) {
  VersionedStore store;
  for (uint64_t i = 0; i < 2000; ++i) {
    const Key key = "bulk-" + std::to_string(i % 500);
    Version v = V(i + 1, 0, {i + 1});
    store.Apply(key, std::string(200, static_cast<char>('a' + i % 26)), v);
    if (i % 3 == 0) {
      store.MarkStable(key, v);
    }
  }
  ASSERT_TRUE(SaveCheckpoint(store, path_).ok());
  VersionedStore restored;
  ASSERT_TRUE(LoadCheckpoint(path_, &restored).ok());
  EXPECT_EQ(restored.KeyCount(), store.KeyCount());
  EXPECT_EQ(restored.total_versions(), store.total_versions());
  for (uint64_t i = 0; i < 500; ++i) {
    const Key key = "bulk-" + std::to_string(i);
    const StoredVersion* a = store.Latest(key);
    const StoredVersion* b = restored.Latest(key);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->value, b->value);
    EXPECT_TRUE(a->version == b->version);
    EXPECT_EQ(a->stable, b->stable);
  }
}

}  // namespace
}  // namespace chainreaction

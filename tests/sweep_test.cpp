// Parameterized property sweeps over the substrate modules: version-vector
// algebra across dimensions, zipfian shape across skews and sizes, the
// histogram error bound across magnitudes, and node checkpoint recovery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/version.h"
#include "src/harness/cluster.h"
#include "src/storage/checkpoint.h"
#include "src/ycsb/generators.h"

namespace chainreaction {
namespace {

// ------------------------- version vector algebra --------------------------

class VvAlgebraSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(VvAlgebraSweep, PartialOrderLaws) {
  const size_t dims = GetParam();
  Rng rng(dims * 31 + 1);
  for (int trial = 0; trial < 500; ++trial) {
    VersionVector a(dims), b(dims), c(dims);
    for (size_t d = 0; d < dims; ++d) {
      a.Set(static_cast<DcId>(d), rng.NextBelow(5));
      b.Set(static_cast<DcId>(d), rng.NextBelow(5));
      c.Set(static_cast<DcId>(d), rng.NextBelow(5));
    }
    // Reflexivity and antisymmetry.
    EXPECT_TRUE(a.Dominates(a));
    if (a.Dominates(b) && b.Dominates(a)) {
      EXPECT_TRUE(a == b);
    }
    // Transitivity.
    if (a.Dominates(b) && b.Dominates(c)) {
      EXPECT_TRUE(a.Dominates(c));
    }
    // Merge is an upper bound and idempotent.
    VersionVector m = a;
    m.MergeMax(b);
    EXPECT_TRUE(m.Dominates(a));
    EXPECT_TRUE(m.Dominates(b));
    VersionVector m2 = m;
    m2.MergeMax(b);
    EXPECT_TRUE(m2 == m);
    // Concurrency is symmetric and exclusive with dominance.
    EXPECT_EQ(a.ConcurrentWith(b), b.ConcurrentWith(a));
    if (a.ConcurrentWith(b)) {
      EXPECT_FALSE(a.Dominates(b));
      EXPECT_FALSE(b.Dominates(a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, VvAlgebraSweep, ::testing::Values(1, 2, 3, 5, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "d" + std::to_string(info.param);
                         });

// ------------------------------ zipf shape ---------------------------------

class ZipfSweep : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfSweep, RankFrequencyDecaysLikePowerLaw) {
  const auto [items, theta] = GetParam();
  ZipfianChooser zipf(items, theta);
  Rng rng(7);
  std::vector<uint32_t> counts(items, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(&rng)]++;
  }
  // Zipf's law: count(rank) ~ rank^-theta. Check the decade ratio between
  // rank 1 and rank 10 within generous tolerance.
  ASSERT_GT(counts[0], 0u);
  if (items >= 16) {
    const double expected_ratio = std::pow(10.0, theta);
    const double measured_ratio =
        static_cast<double>(counts[0]) / std::max<uint32_t>(1, counts[9]);
    EXPECT_GT(measured_ratio, expected_ratio * 0.5);
    EXPECT_LT(measured_ratio, expected_ratio * 2.0);
  }
  // All mass within range.
  uint64_t total = 0;
  for (uint32_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    ItemsTheta, ZipfSweep,
    ::testing::Combine(::testing::Values(16u, 1000u, 100000u), ::testing::Values(0.5, 0.99)),
    [](const ::testing::TestParamInfo<ZipfSweep::ParamType>& info) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "n%llu_t%d",
                    static_cast<unsigned long long>(std::get<0>(info.param)),
                    static_cast<int>(std::get<1>(info.param) * 100));
      return std::string(buf);
    });

// --------------------------- histogram error -------------------------------

class HistogramErrorSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramErrorSweep, PercentileWithinRelativeErrorBound) {
  const int64_t scale = GetParam();
  Histogram h;
  Rng rng(3);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(scale))) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const int64_t exact = values[static_cast<size_t>(p / 100.0 * (values.size() - 1))];
    const int64_t approx = h.Percentile(p);
    EXPECT_LE(std::llabs(approx - exact), exact / 16 + 2)
        << "p" << p << " scale " << scale;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramErrorSweep,
                         ::testing::Values(100, 10000, 1000000, int64_t{1} << 30),
                         [](const ::testing::TestParamInfo<int64_t>& info) {
                           return "s" + std::to_string(info.index);
                         });

// --------------------------- node recovery ---------------------------------

TEST(NodeRecovery, CheckpointRestoresServingState) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 1;
  Cluster cluster(opts);
  ChainReactionClient* client = cluster.crx_client(0);

  for (int i = 0; i < 25; ++i) {
    bool done = false;
    client->Put("ckpt-" + std::to_string(i), "v" + std::to_string(i),
                [&](const auto&) { done = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }

  // Save node 0's state, then restore it into a fresh store and compare.
  const std::string path = ::testing::TempDir() + "node0.ckpt";
  ChainReactionNode* node = cluster.crx_node(0, 0);
  ASSERT_TRUE(node->SaveStateCheckpoint(path).ok());

  VersionedStore restored;
  ASSERT_TRUE(LoadCheckpoint(path, &restored).ok());
  EXPECT_EQ(restored.KeyCount(), node->store().KeyCount());
  node->store().ForEachKey([&](const Key& key, const StoredVersion& latest) {
    const StoredVersion* r = restored.Latest(key);
    ASSERT_NE(r, nullptr) << key;
    EXPECT_EQ(r->value, latest.value);
    EXPECT_TRUE(r->version == latest.version);
    EXPECT_EQ(r->stable, latest.stable);
  });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chainreaction

// Geo-replication tests: remote visibility, dependency parking, conflict
// convergence (causal+'s "+"), global stability, and partitions.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

ClusterOptions GeoOpts(uint16_t dcs, uint64_t seed = 1) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 2;
  opts.num_dcs = dcs;
  opts.seed = seed;
  return opts;
}

TEST(Geo, RemoteVisibilityTakesAtLeastWanLatency) {
  ClusterOptions opts = GeoOpts(2);
  opts.net.default_inter_site = LinkModel{80 * kMillisecond, 0};
  Cluster cluster(opts);

  Time visible_at = -1;
  cluster.geo(1)->on_remote_visible = [&](const Key& key, const Version&, Time now) {
    if (key == "geo-k") {
      visible_at = now;
    }
  };

  Time acked_at = -1;
  cluster.crx_client(0)->Put("geo-k", "v", [&](const auto&) {
    acked_at = cluster.sim()->Now();
  });
  cluster.sim()->Run();

  ASSERT_GE(acked_at, 0);
  ASSERT_GE(visible_at, 0) << "update never became visible in DC 1";
  // Local ack is fast; remote visibility pays (at least) one WAN crossing.
  EXPECT_LT(acked_at, 20 * kMillisecond);
  EXPECT_GE(visible_at - acked_at, 70 * kMillisecond);
}

TEST(Geo, GlobalWriteStabilityTracked) {
  Cluster cluster(GeoOpts(3));
  int global_stable = 0;
  for (DcId dc = 0; dc < 3; ++dc) {
    cluster.geo(dc)->on_global_stable = [&](const Key&, const Version&, Time shipped, Time now) {
      EXPECT_GE(now, shipped);
      global_stable++;
    };
  }
  for (int i = 0; i < 10; ++i) {
    bool done = false;
    cluster.crx_client(0)->Put("g-" + std::to_string(i), "v", [&](const auto&) { done = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }
  EXPECT_EQ(global_stable, 10);
  EXPECT_EQ(cluster.geo(0)->global_stable_delay().count(), 10u);
  // Global stability requires at least a WAN round trip.
  EXPECT_GE(cluster.geo(0)->global_stable_delay().min(),
            2 * cluster.options().net.default_inter_site.base - 1 * kMillisecond);
}

TEST(Geo, ConcurrentConflictConvergesLww) {
  Cluster cluster(GeoOpts(2, 5));

  // Issue conflicting writes in both DCs without running the simulator in
  // between: they are genuinely concurrent.
  bool done0 = false, done1 = false;
  cluster.crx_client(0)->Put("conflict", "from-dc0", [&](const auto&) { done0 = true; });
  cluster.crx_client(2)->Put("conflict", "from-dc1", [&](const auto&) { done1 = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(done0 && done1);

  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;

  // Both DCs read the same winner.
  Value v0, v1;
  cluster.crx_client(1)->Get("conflict",
                             [&](const ChainReactionClient::GetResult& r) { v0 = r.value; });
  cluster.crx_client(3)->Get("conflict",
                             [&](const ChainReactionClient::GetResult& r) { v1 = r.value; });
  cluster.sim()->Run();
  EXPECT_EQ(v0, v1);
  EXPECT_TRUE(v0 == "from-dc0" || v0 == "from-dc1");
}

TEST(Geo, DependencyParkingWithAsymmetricLatencies) {
  // Three DCs. dc0 -> dc2 is much slower than dc0 -> dc1 -> dc2, so a
  // dependent update written in dc1 overtakes its dependency from dc0 on
  // the way to dc2 and must be parked there.
  ClusterOptions opts = GeoOpts(3, 3);
  Cluster cluster(opts);
  cluster.net()->SetInterSiteLatency(0, 1, LinkModel{10 * kMillisecond, 0});
  cluster.net()->SetInterSiteLatency(1, 2, LinkModel{10 * kMillisecond, 0});
  cluster.net()->SetInterSiteLatency(0, 2, LinkModel{150 * kMillisecond, 0});

  // dc0 writes k1.
  bool done = false;
  cluster.crx_client(0)->Put("k1", "base", [&](const auto&) { done = true; });
  // Let it reach dc1 (10ms) but NOT dc2 (150ms).
  cluster.sim()->RunUntil(cluster.sim()->Now() + 40 * kMillisecond);
  ASSERT_TRUE(done);

  // dc1 reads k1 (creating the causal dependency) and writes k2.
  ChainReactionClient* b = cluster.crx_client(2);  // dc1 client
  bool read_ok = false;
  b->Get("k1", [&](const ChainReactionClient::GetResult& r) {
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, "base");
    read_ok = true;
    b->Put("k2", "depends-on-k1", [](const auto&) {});
  });
  cluster.sim()->Run();
  ASSERT_TRUE(read_ok);

  // k2 must have been parked at dc2 until k1 arrived.
  EXPECT_GT(cluster.geo(2)->updates_parked(), 0u);
  EXPECT_EQ(cluster.geo(2)->waiting_now(), 0u) << "updates stuck parked";

  // And a dc2 session that reads k2 then k1 must see causal order.
  ChainReactionClient* c = cluster.crx_client(4);  // dc2 client
  bool got_k2 = false;
  Value k1_value;
  c->Get("k2", [&](const ChainReactionClient::GetResult& r2) {
    if (r2.found) {
      got_k2 = true;
      c->Get("k1", [&](const ChainReactionClient::GetResult& r1) {
        ASSERT_TRUE(r1.found);
        k1_value = r1.value;
      });
    }
  });
  cluster.sim()->Run();
  ASSERT_TRUE(got_k2);
  EXPECT_EQ(k1_value, "base");
}

TEST(Geo, PartitionParksShipmentsUntilHeal) {
  ClusterOptions opts = GeoOpts(2, 9);
  Cluster cluster(opts);

  cluster.net()->PartitionSites(0, 1);
  bool done = false;
  cluster.crx_client(0)->Put("partitioned", "v", [&](const auto&) { done = true; });
  // Run for bounded simulated time: the retransmission timer keeps the
  // event queue non-empty while the shipment is unacknowledged.
  cluster.sim()->RunUntil(cluster.sim()->Now() + 600 * kMillisecond);
  ASSERT_TRUE(done) << "local writes must complete during a WAN partition";
  EXPECT_EQ(cluster.geo(1)->updates_received(), 0u);

  int visible = 0;
  cluster.geo(1)->on_remote_visible = [&](const Key&, const Version&, Time) { visible++; };
  cluster.net()->HealSites(0, 1);

  // The replicator implements reliable channels over the lossy network by
  // retransmitting unacknowledged shipments; after the heal the parked
  // update is re-shipped and becomes visible, and a follow-up write flows
  // normally.
  cluster.crx_client(0)->Put("partitioned", "v2", [](const auto&) {});
  cluster.sim()->Run();
  EXPECT_GE(visible, 1);
  EXPECT_GE(cluster.geo(1)->updates_received(), 2u);
  EXPECT_GT(cluster.geo(0)->retransmissions(), 0u);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(Geo, WorkloadWithCheckerCleanTwoDcs) {
  ClusterOptions opts = GeoOpts(2, 21);
  opts.clients_per_dc = 4;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(200, 64);
  run.warmup = 300 * kMillisecond;
  run.measure = 2 * kSecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  EXPECT_GT(result.stats.TotalOps(), 500u);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(Geo, ThreeDcWorkloadConverges) {
  ClusterOptions opts = GeoOpts(3, 23);
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(100, 64);
  run.warmup = 300 * kMillisecond;
  run.measure = 2 * kSecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);
  EXPECT_EQ(result.checker_violations, 0u)
      << (result.checker_diagnostics.empty() ? "" : result.checker_diagnostics[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(Geo, RemoteUpdatesCountedOncePerPeer) {
  Cluster cluster(GeoOpts(2, 31));
  for (int i = 0; i < 5; ++i) {
    bool done = false;
    cluster.crx_client(0)->Put("once-" + std::to_string(i), "v",
                               [&](const auto&) { done = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(done);
  }
  EXPECT_EQ(cluster.geo(0)->updates_shipped(), 5u);
  EXPECT_EQ(cluster.geo(1)->updates_received(), 5u);
  EXPECT_EQ(cluster.geo(1)->updates_applied(), 5u);
  EXPECT_EQ(cluster.geo(1)->updates_shipped(), 0u);
}

}  // namespace
}  // namespace chainreaction
